/// \file test_job_service.cpp
/// The multi-tenant job service and its arbitration core: SlotGovernor
/// apportionment (weighted-share error bounds, progress floor, gate
/// blocking/cancel semantics), JobService admission control and
/// backpressure, drain/shutdown termination with in-flight chunks,
/// per-job replay parity against solo runs, and the fluid job-stream
/// pricing model of the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/job_service.hpp"
#include "core/runner.hpp"
#include "core/slot_governor.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/job_stream.hpp"

namespace {

using namespace hdls;

// ------------------------------------------------------------- SlotGovernor

/// |entitlement - ideal| stays within one slot of the exact weighted share
/// (the largest-remainder bound) at 2x and 4x priority ratios.
TEST(SlotGovernor, WeightedShareErrorBound) {
    for (const int slots : {4, 12, 16, 31}) {
        for (const double ratio : {2.0, 4.0}) {
            core::SlotGovernor gov(slots);
            const std::uint64_t hi = gov.add_job(ratio, 1000);
            const std::uint64_t lo = gov.add_job(1.0, 1000);
            const double ideal_hi =
                static_cast<double>(slots) * ratio / (ratio + 1.0);
            const double ideal_lo = static_cast<double>(slots) - ideal_hi;
            const core::SlotGovernor::JobShare hs = gov.share(hi);
            const core::SlotGovernor::JobShare ls = gov.share(lo);
            EXPECT_EQ(hs.entitlement + ls.entitlement, slots);
            EXPECT_LE(std::abs(hs.entitlement - ideal_hi), 1.0)
                << "slots=" << slots << " ratio=" << ratio;
            EXPECT_LE(std::abs(ls.entitlement - ideal_lo), 1.0)
                << "slots=" << slots << " ratio=" << ratio;
            gov.remove_job(hi);
            gov.remove_job(lo);
        }
    }
}

/// Weight = priority x remaining: a nearly drained high-priority job cedes
/// slots to the job with more work left.
TEST(SlotGovernor, RemainingWorkShiftsEntitlement) {
    core::SlotGovernor gov(8);
    const std::uint64_t big = gov.add_job(1.0, 10000);
    const std::uint64_t small = gov.add_job(1.0, 10000);
    EXPECT_EQ(gov.share(big).entitlement, 4);

    // Drain `small` through its gate: 9900 of its 10000 iterations.
    core::ChunkGate& gate = gov.gate(small);
    ASSERT_TRUE(gate.begin_chunk(0));
    gate.end_chunk(0, 9900);
    // weights now 10000 : 100 -> 7.92 : 0.08 -> 8 : 0 with floor -> 7 : 1.
    EXPECT_GE(gov.share(big).entitlement, 7);
    EXPECT_GE(gov.share(small).entitlement, 1);  // progress floor
    gov.remove_job(big);
    gov.remove_job(small);
}

/// Whenever live jobs <= slots, every job keeps at least one slot no
/// matter how extreme the weight ratio — starvation-freedom.
TEST(SlotGovernor, ProgressFloor) {
    core::SlotGovernor gov(4);
    std::vector<std::uint64_t> ids;
    ids.push_back(gov.add_job(10000.0, 1000000));
    for (int i = 0; i < 3; ++i) {
        ids.push_back(gov.add_job(1.0, 10));
    }
    int total = 0;
    for (const std::uint64_t id : ids) {
        const int e = gov.share(id).entitlement;
        EXPECT_GE(e, 1);
        total += e;
    }
    EXPECT_EQ(total, 4);
    for (const std::uint64_t id : ids) {
        gov.remove_job(id);
    }
}

/// begin_chunk admits up to the entitlement without blocking, blocks at
/// the limit, and resumes when a slot frees.
TEST(SlotGovernor, GateBlocksAtEntitlement) {
    core::SlotGovernor gov(2);
    const std::uint64_t id = gov.add_job(1.0, 100);
    core::ChunkGate& gate = gov.gate(id);
    ASSERT_TRUE(gate.begin_chunk(0));
    ASSERT_TRUE(gate.begin_chunk(1));
    EXPECT_EQ(gov.share(id).running, 2);

    std::atomic<bool> admitted{false};
    std::thread blocked([&] {
        const bool ok = gate.begin_chunk(2);
        admitted.store(ok);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(admitted.load());  // at entitlement: third chunk waits

    gate.end_chunk(0, 10);  // frees a slot
    blocked.join();
    EXPECT_TRUE(admitted.load());
    gate.end_chunk(1, 10);
    gate.end_chunk(2, 10);
    gov.remove_job(id);
}

/// cancel_job wakes blocked ranks with `false` so they can exit their
/// scheduling loops; in-flight end_chunk calls stay harmless.
TEST(SlotGovernor, CancelReleasesBlockedRanks) {
    core::SlotGovernor gov(1);
    const std::uint64_t id = gov.add_job(1.0, 100);
    core::ChunkGate& gate = gov.gate(id);
    ASSERT_TRUE(gate.begin_chunk(0));

    std::promise<bool> verdict;
    std::thread blocked([&] { verdict.set_value(gate.begin_chunk(1)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    gov.cancel_job(id);
    EXPECT_FALSE(verdict.get_future().get());
    blocked.join();
    gate.end_chunk(0, 5);  // the in-flight chunk still completes cleanly
    gov.remove_job(id);
}

// --------------------------------------------------------------- JobService

core::JobService::Config small_service_config() {
    core::JobService::Config cfg;
    cfg.shape = core::ClusterShape{2, 2};
    cfg.approach = core::Approach::MpiMpi;
    cfg.base.inter = dls::Technique::GSS;
    cfg.base.intra = dls::Technique::Static;
    cfg.base.min_chunk = 8;
    return cfg;
}

TEST(JobService, RunsAStreamToCompletion) {
    core::JobService::Config cfg = small_service_config();
    cfg.max_active = 3;
    core::JobService service(cfg);

    std::vector<std::atomic<std::int64_t>> sums(4);
    std::vector<std::uint64_t> ids;
    const std::int64_t n = 512;
    for (int j = 0; j < 4; ++j) {
        core::LoopJob job;
        job.name = "stream" + std::to_string(j);
        job.iterations = n;
        job.body = [&sums, j](std::int64_t b, std::int64_t e) {
            std::int64_t s = 0;
            for (std::int64_t i = b; i < e; ++i) {
                s += i;
            }
            sums[static_cast<std::size_t>(j)].fetch_add(s);
        };
        ids.push_back(service.submit(std::move(job)));
    }
    for (std::size_t j = 0; j < ids.size(); ++j) {
        const core::JobResult r = service.wait(ids[j]);
        EXPECT_FALSE(r.cancelled);
        EXPECT_EQ(r.report.executed_iterations(), n);
        EXPECT_EQ(sums[j].load(), n * (n - 1) / 2);  // every iteration exactly once
        EXPECT_GE(r.latency_seconds, r.run_seconds);
        EXPECT_GT(r.slot_seconds, 0.0);
    }
    EXPECT_EQ(service.active_jobs(), 0);
}

TEST(JobService, BackpressureOverflowThrowsResource) {
    core::JobService::Config cfg = small_service_config();
    cfg.max_active = 1;
    cfg.queue_depth = 1;
    core::JobService service(cfg);

    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    core::LoopJob blocker;
    blocker.iterations = 4;
    blocker.body = [released](std::int64_t, std::int64_t) { released.wait(); };
    const std::uint64_t first = service.submit(std::move(blocker));

    core::LoopJob queued;
    queued.iterations = 4;
    queued.body = [](std::int64_t, std::int64_t) {};
    const std::uint64_t second = service.submit(std::move(queued));
    EXPECT_EQ(service.pending_jobs(), 1);

    core::LoopJob overflow;
    overflow.iterations = 4;
    overflow.body = [](std::int64_t, std::int64_t) {};
    try {
        (void)service.submit(std::move(overflow));
        FAIL() << "submit past the queue depth must throw";
    } catch (const minimpi::Error& e) {
        EXPECT_EQ(e.code(), minimpi::ErrorCode::Resource);
    }

    release.set_value();
    EXPECT_FALSE(service.wait(first).cancelled);
    EXPECT_FALSE(service.wait(second).cancelled);
}

TEST(JobService, SubmitValidationErrors) {
    core::JobService service(small_service_config());
    core::LoopJob no_body;
    no_body.iterations = 8;
    EXPECT_THROW((void)service.submit(std::move(no_body)), std::invalid_argument);

    core::LoopJob bad_priority;
    bad_priority.iterations = 8;
    bad_priority.body = [](std::int64_t, std::int64_t) {};
    bad_priority.priority = 0.0;
    EXPECT_THROW((void)service.submit(std::move(bad_priority)), std::invalid_argument);

    EXPECT_THROW((void)service.wait(999), std::invalid_argument);
}

TEST(JobService, DrainWithInflightChunksTerminates) {
    core::JobService::Config cfg = small_service_config();
    cfg.max_active = 2;
    core::JobService service(cfg);

    for (int j = 0; j < 6; ++j) {
        core::LoopJob job;
        job.iterations = 256;
        job.body = [](std::int64_t b, std::int64_t e) {
            std::this_thread::sleep_for(std::chrono::microseconds(50 * (e - b)));
        };
        (void)service.submit(std::move(job));
    }
    // Cancel while chunks are in flight: queued jobs die in the queue,
    // running jobs stop at their next chunk boundary, and everything
    // terminates (the hierarchy's collective teardown included).
    service.shutdown(/*cancel=*/true);
    const std::vector<core::JobResult> results = service.drain();
    ASSERT_EQ(results.size(), 6u);
    std::int64_t executed = 0;
    for (const auto& r : results) {
        executed += r.report.executed_iterations();
        if (!r.cancelled) {
            EXPECT_EQ(r.report.executed_iterations(), 256);
        }
    }
    EXPECT_LE(executed, 6 * 256);
    core::LoopJob late;
    late.iterations = 8;
    late.body = [](std::int64_t, std::int64_t) {};
    EXPECT_THROW((void)service.submit(std::move(late)), std::runtime_error);
}

TEST(JobService, ShutdownWithoutCancelCompletesEverything) {
    core::JobService::Config cfg = small_service_config();
    cfg.max_active = 1;  // forces the queue path
    core::JobService service(cfg);
    std::atomic<std::int64_t> executed{0};
    for (int j = 0; j < 3; ++j) {
        core::LoopJob job;
        job.iterations = 128;
        job.body = [&executed](std::int64_t b, std::int64_t e) { executed += e - b; };
        (void)service.submit(std::move(job));
    }
    service.shutdown(/*cancel=*/false);
    EXPECT_EQ(executed.load(), 3 * 128);
    for (const auto& r : service.drain()) {
        EXPECT_FALSE(r.cancelled);
    }
}

// Chunk multiset recorder: which [begin, end) ranges a run's body saw.
using ChunkSet = std::vector<std::pair<std::int64_t, std::int64_t>>;

core::ChunkBody recording_body(ChunkSet& out, std::mutex& mu) {
    return [&out, &mu](std::int64_t b, std::int64_t e) {
        const std::lock_guard<std::mutex> lock(mu);
        out.emplace_back(b, e);
    };
}

/// A job's chunk multiset under multiplexing is identical to its solo run:
/// the gate changes only *when* chunks execute, never the chunk sequence
/// the work-source chain produces. GSS chunk sizes depend purely on the
/// remaining count at each acquisition, so the multiset is deterministic.
TEST(JobService, ReplayParityAgainstSoloRuns) {
    const core::JobService::Config cfg = small_service_config();
    const std::vector<std::int64_t> sizes = {512, 384, 257};

    std::vector<ChunkSet> solo(sizes.size());
    for (std::size_t j = 0; j < sizes.size(); ++j) {
        std::mutex mu;
        (void)core::run_hierarchical(cfg.shape, cfg.approach, cfg.base, sizes[j],
                                     recording_body(solo[j], mu));
        std::sort(solo[j].begin(), solo[j].end());
    }

    core::JobService::Config svc_cfg = cfg;
    svc_cfg.max_active = static_cast<int>(sizes.size());
    core::JobService service(svc_cfg);
    std::vector<ChunkSet> multi(sizes.size());
    std::vector<std::mutex> mus(sizes.size());
    std::vector<std::uint64_t> ids;
    for (std::size_t j = 0; j < sizes.size(); ++j) {
        core::LoopJob job;
        job.iterations = sizes[j];
        job.body = recording_body(multi[j], mus[j]);
        ids.push_back(service.submit(std::move(job)));
    }
    for (std::size_t j = 0; j < ids.size(); ++j) {
        EXPECT_FALSE(service.wait(ids[j]).cancelled);
        std::sort(multi[j].begin(), multi[j].end());
        EXPECT_EQ(multi[j], solo[j]) << "job " << j << " diverged from its solo run";
    }
}

/// Real-service weighted sharing: with 2:1 priorities on a uniform
/// latency-bound workload, each job's occupancy tracks its integrated
/// entitlement. The bound here is loose (wall-clock on shared CI); the
/// multitenancy bench asserts the tight 10% bound.
TEST(JobService, PriorityShareTracksEntitlement) {
    core::JobService::Config cfg = small_service_config();
    cfg.base.inter = dls::Technique::SS;
    cfg.base.intra = dls::Technique::SS;
    // Chunks long (2ms) relative to the scheduling gap between them, so
    // occupancy ~ entitlement even under sanitizer slowdowns (TSan makes
    // every queue operation ~10x slower; the sleep below it does not).
    cfg.base.min_chunk = 4;
    cfg.max_active = 2;
    core::JobService service(cfg);

    const std::int64_t n = 64;
    const core::ChunkBody body = [](std::int64_t b, std::int64_t e) {
        std::this_thread::sleep_for(std::chrono::microseconds(500 * (e - b)));
    };
    core::LoopJob hi;
    hi.iterations = n;
    hi.priority = 2.0;
    hi.body = body;
    core::LoopJob lo = hi;
    lo.priority = 1.0;
    const std::uint64_t hi_id = service.submit(std::move(hi));
    const std::uint64_t lo_id = service.submit(std::move(lo));
    // Sanitizer instrumentation inflates the scheduling gaps between chunks
    // far beyond production ratios, so only a loose bound is meaningful
    // there. The tight 10% bound lives in bench_ablation_multitenancy.
#if defined(__SANITIZE_THREAD__)
    const double bound = 0.75;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    const double bound = 0.75;
#else
    const double bound = 0.35;
#endif
#else
    const double bound = 0.35;
#endif
    for (const std::uint64_t id : {hi_id, lo_id}) {
        const core::JobResult r = service.wait(id);
        ASSERT_GT(r.entitled_slot_seconds, 0.0);
        const double err = std::abs(r.slot_seconds - r.entitled_slot_seconds) /
                           r.entitled_slot_seconds;
        EXPECT_LT(err, bound) << "job " << r.id << " occupancy drifted from entitlement";
    }
}

// ------------------------------------------------------- sim::job_stream

sim::WorkloadTrace uniform_load(std::int64_t n, double cost) {
    return sim::WorkloadTrace(std::vector<double>(static_cast<std::size_t>(n), cost));
}

sim::WorkloadTrace imbalanced_load(std::int64_t n, double base) {
    std::vector<double> costs(static_cast<std::size_t>(n), base);
    for (std::int64_t i = (3 * n) / 4; i < n; ++i) {
        costs[static_cast<std::size_t>(i)] = 8.0 * base;
    }
    return sim::WorkloadTrace(costs);
}

sim::ClusterSpec stream_cluster() {
    sim::ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 2;
    return cluster;
}

TEST(JobStream, SoloStreamMatchesEngine) {
    const sim::WorkloadTrace load = uniform_load(1024, 1e-5);
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::Static;
    const sim::SimReport solo =
        simulate(sim::ExecModel::MpiMpi, stream_cluster(), cfg, load);

    std::vector<sim::StreamJob> jobs(1);
    jobs[0].name = "only";
    jobs[0].workload = load;
    const sim::JobStreamReport r =
        simulate_job_stream(sim::ExecModel::MpiMpi, stream_cluster(), cfg, jobs);
    EXPECT_NEAR(r.makespan, solo.parallel_time, 1e-9);
    EXPECT_NEAR(r.jobs[0].latency, solo.parallel_time, 1e-9);
    EXPECT_NEAR(r.aggregate_speedup(), 1.0, 1e-9);
    // Fluid invariant: a completed job's slot-seconds equal its solo busy.
    EXPECT_NEAR(r.jobs[0].slot_seconds, solo.total_busy(), solo.total_busy() * 1e-6);
}

TEST(JobStream, EqualJobsShareEqually) {
    for (const sim::ExecModel model :
         {sim::ExecModel::MpiMpi, sim::ExecModel::MpiOpenMp}) {
        sim::SimConfig cfg;
        cfg.inter = dls::Technique::GSS;
        cfg.intra = dls::Technique::Static;
        std::vector<sim::StreamJob> jobs(2);
        for (auto& j : jobs) {
            j.workload = uniform_load(1024, 1e-5);
        }
        const sim::JobStreamReport r =
            simulate_job_stream(model, stream_cluster(), cfg, jobs);
        EXPECT_NEAR(r.jobs[0].latency, r.jobs[1].latency, r.jobs[0].latency * 1e-6);
        EXPECT_NEAR(r.jobs[0].entitled_seconds, r.jobs[1].entitled_seconds,
                    r.jobs[0].entitled_seconds * 1e-6);
    }
}

/// 2x/4x priority ratios: the integrated entitlement ratio while both jobs
/// are active matches the priority ratio, and higher priority strictly
/// shortens latency.
TEST(JobStream, PriorityRatiosOrderLatencies) {
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::Static;
    // 16 slots so 2x and 4x ratios land on distinct integer apportionments
    // (8 -> 11 -> 13 of 16); at 4 slots both would round to 3:1.
    sim::ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    double last_hi_latency = 1e18;
    for (const double ratio : {1.0, 2.0, 4.0}) {
        std::vector<sim::StreamJob> jobs(2);
        jobs[0].name = "hi";
        jobs[0].priority = ratio;
        jobs[0].workload = uniform_load(2048, 1e-5);
        jobs[1].name = "lo";
        jobs[1].workload = uniform_load(2048, 1e-5);
        const sim::JobStreamReport r =
            simulate_job_stream(sim::ExecModel::MpiMpi, cluster, cfg, jobs);
        EXPECT_LE(r.jobs[0].latency, r.jobs[1].latency + 1e-12);
        EXPECT_LT(r.jobs[0].latency, last_hi_latency);
        last_hi_latency = r.jobs[0].latency;
    }
}

TEST(JobStream, ImbalancedConcurrencyBeatsSerial) {
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::Static;
    cfg.intra = dls::Technique::SS;
    cfg.min_chunk = 4;
    std::vector<sim::StreamJob> jobs(8);
    for (auto& j : jobs) {
        j.workload = imbalanced_load(256, 1e-5);
    }
    const sim::JobStreamReport r =
        simulate_job_stream(sim::ExecModel::MpiMpi, stream_cluster(), cfg, jobs);
    EXPECT_GT(r.aggregate_speedup(), 1.3)
        << "multiplexing must fill STATIC straggler tails with other jobs' work";
    EXPECT_GE(r.p99_latency(), r.p50_latency());
}

TEST(JobStream, ArrivalsDelayStart) {
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::Static;
    std::vector<sim::StreamJob> jobs(2);
    jobs[0].workload = uniform_load(1024, 1e-5);
    jobs[1].workload = uniform_load(1024, 1e-5);
    jobs[1].arrival = 1.0;  // long after job 0 finishes
    const sim::JobStreamReport r =
        simulate_job_stream(sim::ExecModel::MpiMpi, stream_cluster(), cfg, jobs);
    EXPECT_LT(r.jobs[0].finish, 1.0);
    EXPECT_GE(r.jobs[1].finish, 1.0);
    EXPECT_NEAR(r.jobs[1].latency, r.jobs[0].latency, r.jobs[0].latency * 1e-6);
}

TEST(JobStream, RejectsMalformedStreams) {
    sim::SimConfig cfg;
    EXPECT_THROW((void)simulate_job_stream(sim::ExecModel::MpiMpi, stream_cluster(),
                                           cfg, {}),
                 std::invalid_argument);
    std::vector<sim::StreamJob> jobs(1);
    jobs[0].workload = uniform_load(16, 1e-6);
    jobs[0].priority = -1.0;
    EXPECT_THROW((void)simulate_job_stream(sim::ExecModel::MpiMpi, stream_cluster(),
                                           cfg, jobs),
                 std::invalid_argument);
}

}  // namespace
