/// \file test_dls.cpp
/// Unit and property tests for the DLS technique library: golden chunk
/// sequences from the literature, partition invariants over parameter
/// sweeps, and stateful-vs-step-indexed cross validation (the property the
/// paper's distributed chunk-calculation model depends on).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dls/chunk_formulas.hpp"
#include "dls/scheduler.hpp"
#include "dls/technique.hpp"

namespace {

using namespace hdls::dls;

LoopParams make_params(std::int64_t n, int p) {
    LoopParams lp;
    lp.total_iterations = n;
    lp.workers = p;
    lp.sigma = 0.2;  // give FAC/FSC plausible probabilistic inputs
    lp.mu = 1.0;
    lp.overhead_h = 0.01;
    return lp;
}

std::vector<std::int64_t> sizes_of(const std::vector<Assignment>& chunks) {
    std::vector<std::int64_t> out;
    out.reserve(chunks.size());
    for (const auto& c : chunks) {
        out.push_back(c.size);
    }
    return out;
}

// ------------------------------------------------------------------ registry

TEST(TechniqueRegistryTest, NameRoundTrip) {
    for (const Technique t : all_techniques()) {
        const auto parsed = technique_from_string(technique_name(t));
        ASSERT_TRUE(parsed.has_value()) << technique_name(t);
        EXPECT_EQ(*parsed, t);
    }
}

TEST(TechniqueRegistryTest, ParseIsCaseInsensitiveAndDashTolerant) {
    EXPECT_EQ(technique_from_string("gss"), Technique::GSS);
    EXPECT_EQ(technique_from_string("Fac2"), Technique::FAC2);
    EXPECT_EQ(technique_from_string("awfb"), Technique::AWFB);
    EXPECT_EQ(technique_from_string("AWF-E"), Technique::AWFE);
    EXPECT_EQ(technique_from_string("nope"), std::nullopt);
}

TEST(TechniqueRegistryTest, PaperTechniqueSets) {
    EXPECT_EQ(paper_internode_techniques().size(), 4u);
    EXPECT_EQ(paper_intranode_techniques().size(), 5u);
    // Table 1: only STATIC, SS, GSS map onto the OpenMP schedule clause.
    EXPECT_TRUE(openmp_supports(Technique::Static));
    EXPECT_TRUE(openmp_supports(Technique::SS));
    EXPECT_TRUE(openmp_supports(Technique::GSS));
    EXPECT_FALSE(openmp_supports(Technique::TSS));
    EXPECT_FALSE(openmp_supports(Technique::FAC2));
}

TEST(TechniqueRegistryTest, StepIndexedSupportMatchesFormulaAvailability) {
    const LoopParams p = make_params(1000, 4);
    for (const Technique t : all_techniques()) {
        if (supports_step_indexed(t)) {
            EXPECT_GT(chunk_size_for_step(t, p, 0), 0) << technique_name(t);
        } else {
            EXPECT_THROW((void)chunk_size_for_step(t, p, 0), std::invalid_argument)
                << technique_name(t);
        }
    }
}

TEST(TechniqueRegistryTest, AdaptiveFlags) {
    EXPECT_TRUE(is_adaptive(Technique::AWFB));
    EXPECT_TRUE(is_adaptive(Technique::AWFE));
    EXPECT_FALSE(is_adaptive(Technique::WF));
    EXPECT_FALSE(is_adaptive(Technique::GSS));
}

// ------------------------------------------------------------ golden values

TEST(GoldenSequenceTest, StaticSplitsEvenly) {
    const auto chunks = enumerate_chunks(Technique::Static, make_params(10, 4));
    EXPECT_EQ(sizes_of(chunks), (std::vector<std::int64_t>{3, 3, 2, 2}));
}

TEST(GoldenSequenceTest, StaticExactDivision) {
    const auto chunks = enumerate_chunks(Technique::Static, make_params(100, 4));
    EXPECT_EQ(sizes_of(chunks), (std::vector<std::int64_t>{25, 25, 25, 25}));
}

TEST(GoldenSequenceTest, SsIsAllOnes) {
    const auto chunks = enumerate_chunks(Technique::SS, make_params(17, 4));
    EXPECT_EQ(chunks.size(), 17u);
    for (const auto& c : chunks) {
        EXPECT_EQ(c.size, 1);
    }
}

TEST(GoldenSequenceTest, GssClassicExample) {
    // N=100, P=4: ceil(remaining/4) each step — the canonical GSS trace.
    const auto chunks = enumerate_chunks(Technique::GSS, make_params(100, 4));
    EXPECT_EQ(sizes_of(chunks),
              (std::vector<std::int64_t>{25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1}));
}

TEST(GoldenSequenceTest, Fac2HalvesEveryBatch) {
    // N=100, P=4: batches of 4 chunks sized ceil(R/2P): 13,6,3,2,1.
    const auto chunks = enumerate_chunks(Technique::FAC2, make_params(100, 4));
    EXPECT_EQ(sizes_of(chunks),
              (std::vector<std::int64_t>{13, 13, 13, 13, 6, 6, 6, 6, 3, 3, 3, 3, 2, 2, 2, 2, 1, 1,
                                         1, 1}));
}

TEST(GoldenSequenceTest, Fac2FirstChunkIsHalfOfGss) {
    const LoopParams p = make_params(1 << 20, 16);
    const auto gss = enumerate_chunks(Technique::GSS, p);
    const auto fac2 = enumerate_chunks(Technique::FAC2, p);
    EXPECT_EQ(fac2.front().size * 2, gss.front().size);
}

TEST(GoldenSequenceTest, TssStartsAtHalfStaticAndDecreasesLinearly) {
    const auto chunks = enumerate_chunks(Technique::TSS, make_params(1000, 4));
    const auto sizes = sizes_of(chunks);
    ASSERT_GE(sizes.size(), 3u);
    EXPECT_EQ(sizes[0], 125);  // F = ceil(N/2P)
    EXPECT_EQ(sizes[1], 117);  // F - delta, delta = (125-1)/15
    EXPECT_EQ(sizes[2], 108);
    // Linear decrease means (almost) constant difference until the tail.
    for (std::size_t i = 0; i + 2 < sizes.size(); ++i) {
        EXPECT_GE(sizes[i], sizes[i + 1]);
    }
}

TEST(GoldenSequenceTest, FacWithZeroSigmaDegeneratesToStaticBatch) {
    LoopParams p = make_params(100, 4);
    p.sigma = 0.0;
    const auto chunks = enumerate_chunks(Technique::FAC, p);
    EXPECT_EQ(sizes_of(chunks), (std::vector<std::int64_t>{25, 25, 25, 25}));
}

TEST(GoldenSequenceTest, FacBatchesShrinkWithVariance) {
    LoopParams p = make_params(10000, 8);
    p.sigma = 0.5;
    p.mu = 1.0;
    const auto chunks = enumerate_chunks(Technique::FAC, p);
    const auto sizes = sizes_of(chunks);
    // First batch must hold back work (smaller than N/P) and sizes must be
    // non-increasing across batches.
    EXPECT_LT(sizes.front(), 10000 / 8);
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        EXPECT_GE(sizes[i], sizes[i + 1]);
    }
}

TEST(GoldenSequenceTest, FscKruskalWeissFormula) {
    LoopParams p = make_params(10000, 16);
    p.sigma = 0.1;
    p.overhead_h = 0.001;
    // (sqrt(2)*N*h / (sigma*P*sqrt(ln P)))^(2/3) = 3.04... -> ceil = 4
    EXPECT_EQ(fsc_chunk(p), 4);
    const auto chunks = enumerate_chunks(Technique::FSC, p);
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i].size, 4);
    }
}

TEST(GoldenSequenceTest, FscExplicitChunkWins) {
    LoopParams p = make_params(100, 4);
    p.fsc_chunk = 7;
    const auto chunks = enumerate_chunks(Technique::FSC, p);
    EXPECT_EQ(chunks.front().size, 7);
    EXPECT_EQ(chunks.back().size, 100 % 7);  // tail clamp
}

TEST(GoldenSequenceTest, TfssBatchesDecreaseLinearly) {
    const auto chunks = enumerate_chunks(Technique::TFSS, make_params(4000, 4));
    const auto sizes = sizes_of(chunks);
    ASSERT_GE(sizes.size(), 8u);
    // Within a batch sizes are equal; across batches they decrease.
    EXPECT_EQ(sizes[0], sizes[1]);
    EXPECT_EQ(sizes[1], sizes[2]);
    EXPECT_EQ(sizes[2], sizes[3]);
    EXPECT_GT(sizes[0], sizes[4]);
    EXPECT_GT(sizes[4], sizes[8]);
}

// -------------------------------------------------------------- WF and AWF

TEST(WeightedTest, WfRespectsWeightRatios) {
    LoopParams p = make_params(120, 3);
    p.weights = {2.0, 1.0, 1.0};
    auto sched = make_scheduler(Technique::WF, p);
    const auto a0 = sched->next(0);
    const auto a1 = sched->next(1);
    const auto a2 = sched->next(2);
    ASSERT_TRUE(a0 && a1 && a2);
    // Batch total = 60; normalized weights {1.5, .75, .75} -> 30, 15, 15.
    EXPECT_EQ(a0->size, 30);
    EXPECT_EQ(a1->size, 15);
    EXPECT_EQ(a2->size, 15);
}

TEST(WeightedTest, WfDefaultsToEqualWeights) {
    LoopParams p = make_params(80, 4);
    auto sched = make_scheduler(Technique::WF, p);
    for (int w = 0; w < 4; ++w) {
        const auto a = sched->next(w);
        ASSERT_TRUE(a);
        EXPECT_EQ(a->size, 10);  // batch 40, equal shares
    }
}

TEST(WeightedTest, AwfStartsNeutralThenAdapts) {
    LoopParams p = make_params(1 << 16, 2);
    auto sched = make_scheduler(Technique::AWFB, p);
    const auto a0 = sched->next(0);
    const auto a1 = sched->next(1);
    ASSERT_TRUE(a0 && a1);
    EXPECT_EQ(a0->size, a1->size);  // no feedback yet -> equal
    // Worker 0 is reported 4x faster; from the next batch on it gets more.
    sched->report(0, a0->size, 1.0, 0.0);
    sched->report(1, a1->size, 4.0, 0.0);
    const auto b0 = sched->next(0);
    const auto b1 = sched->next(1);
    ASSERT_TRUE(b0 && b1);
    EXPECT_GT(b0->size, b1->size);
    // Rates 4:1 -> normalized weights 1.6 : 0.4 -> sizes ~4x apart.
    EXPECT_NEAR(static_cast<double>(b0->size) / static_cast<double>(b1->size), 4.0, 0.25);
}

TEST(WeightedTest, AwfBDefersAdaptationToBatchBoundary) {
    LoopParams p = make_params(1 << 16, 2);
    auto sched = make_scheduler(Technique::AWFB, p);
    const auto a0 = sched->next(0);
    ASSERT_TRUE(a0);
    // Report *mid-batch*: AWF-B must not react until the batch ends.
    sched->report(0, a0->size, 1.0, 0.0);
    sched->report(1, 100, 100.0, 0.0);  // worker 1 looks terribly slow
    const auto a1 = sched->next(1);
    ASSERT_TRUE(a1);
    EXPECT_EQ(a1->size, a0->size);  // same batch -> same (neutral) weights
}

TEST(WeightedTest, AwfCAdaptsWithinBatch) {
    LoopParams p = make_params(1 << 16, 2);
    auto sched = make_scheduler(Technique::AWFC, p);
    const auto a0 = sched->next(0);
    ASSERT_TRUE(a0);
    sched->report(0, a0->size, 1.0, 0.0);
    sched->report(1, 100, 100.0, 0.0);
    const auto a1 = sched->next(1);
    ASSERT_TRUE(a1);
    EXPECT_LT(a1->size, a0->size);  // AWF-C reacts immediately
}

TEST(WeightedTest, AwfDIncludesOverheadInRate) {
    // Two workers with identical compute rates, but worker 1 suffers heavy
    // scheduling overhead. AWF-B ignores it; AWF-D penalizes it.
    const auto run = [](Technique t) {
        LoopParams p = make_params(1 << 16, 2);
        auto sched = make_scheduler(t, p);
        const auto a0 = sched->next(0);
        const auto a1 = sched->next(1);
        sched->report(0, a0->size, 2.0, 0.0);
        sched->report(1, a1->size, 2.0, 6.0);
        const auto b0 = sched->next(0);
        const auto b1 = sched->next(1);
        return std::pair<std::int64_t, std::int64_t>{b0->size, b1->size};
    };
    const auto [b_b0, b_b1] = run(Technique::AWFB);
    EXPECT_EQ(b_b0, b_b1);  // overhead invisible to AWF-B
    const auto [d_b0, d_b1] = run(Technique::AWFD);
    EXPECT_GT(d_b0, d_b1);  // AWF-D sees it
}

TEST(WeightedTest, ReportValidatesWorkerId) {
    auto sched = make_scheduler(Technique::AWFC, make_params(100, 2));
    EXPECT_THROW(sched->report(5, 1, 1.0, 0.0), std::out_of_range);
    EXPECT_THROW(sched->report(-1, 1, 1.0, 0.0), std::out_of_range);
}

// ----------------------------------------------------------------------- RND

TEST(RndTest, DeterministicPerSeed) {
    LoopParams p = make_params(100000, 8);
    p.seed = 99;
    const auto a = enumerate_chunks(Technique::RND, p);
    const auto b = enumerate_chunks(Technique::RND, p);
    EXPECT_EQ(sizes_of(a), sizes_of(b));
    p.seed = 100;
    const auto c = enumerate_chunks(Technique::RND, p);
    EXPECT_NE(sizes_of(a), sizes_of(c));
}

TEST(RndTest, SizesWithinBounds) {
    LoopParams p = make_params(100000, 8);
    p.rnd_lo = 50;
    p.rnd_hi = 200;
    const auto chunks = enumerate_chunks(Technique::RND, p);
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be clamped
        EXPECT_GE(chunks[i].size, 50);
        EXPECT_LE(chunks[i].size, 200);
    }
}

// ------------------------------------------------------------- validation

TEST(ValidationTest, BadParamsThrow) {
    LoopParams p;
    p.total_iterations = -1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = make_params(10, 0);
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = make_params(10, 2);
    p.weights = {1.0};  // wrong arity
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = make_params(10, 2);
    p.weights = {1.0, -1.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = make_params(10, 2);
    p.min_chunk = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = make_params(10, 2);
    p.mu = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ValidationTest, WorkerIdRangeEnforced) {
    auto sched = make_scheduler(Technique::GSS, make_params(100, 4));
    EXPECT_THROW((void)sched->next(4), std::out_of_range);
    EXPECT_THROW((void)sched->next(-1), std::out_of_range);
}

TEST(ValidationTest, EmptyLoopYieldsNothing) {
    for (const Technique t : all_techniques()) {
        auto sched = make_scheduler(t, make_params(0, 4));
        EXPECT_EQ(sched->next(0), std::nullopt) << technique_name(t);
        EXPECT_EQ(sched->remaining(), 0);
    }
}

// -------------------------------------------------- partition property sweep

struct SweepCase {
    Technique technique;
    std::int64_t n;
    int p;
};

class PartitionSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PartitionSweep, ChunksPartitionTheIterationSpace) {
    const auto& [tech, n, p] = GetParam();
    const auto chunks = enumerate_chunks(tech, make_params(n, p));
    std::int64_t expected_start = 0;
    for (const auto& c : chunks) {
        EXPECT_EQ(c.start, expected_start);
        EXPECT_GE(c.size, 1);
        expected_start += c.size;
    }
    EXPECT_EQ(expected_start, n);
    // Steps must be consecutive from 0.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i].step, static_cast<std::int64_t>(i));
    }
}

std::vector<SweepCase> partition_cases() {
    std::vector<SweepCase> cases;
    for (const Technique t : all_techniques()) {
        for (const std::int64_t n : {1LL, 7LL, 100LL, 4096LL, 100000LL}) {
            for (const int p : {1, 2, 4, 16, 61}) {
                cases.push_back({t, n, p});
            }
        }
    }
    return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
    std::string name(technique_name(info.param.technique));
    for (char& c : name) {
        if (c == '-') {
            c = '_';
        }
    }
    return name + "_N" + std::to_string(info.param.n) + "_P" + std::to_string(info.param.p);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, PartitionSweep, ::testing::ValuesIn(partition_cases()),
                         sweep_name);

// ------------------------------------- distributed (step-indexed) protocol

/// Sequential model of the distributed chunk-calculation protocol: a shared
/// step counter and a shared scheduled-iterations counter, with the hint
/// clamped against the latter — exactly what the MPI window in the paper
/// stores (latest scheduling step + total scheduled iterations).
std::vector<Assignment> drain_step_indexed(Technique t, const LoopParams& p) {
    std::vector<Assignment> out;
    std::int64_t step_counter = 0;
    std::int64_t scheduled = 0;
    while (scheduled < p.total_iterations) {
        const std::int64_t step = step_counter++;
        const std::int64_t hint = chunk_size_for_step(t, p, step);
        const std::int64_t start = scheduled;
        const std::int64_t size = std::min(hint, p.total_iterations - start);
        scheduled += size;
        if (size > 0) {
            out.push_back({start, size, step});
        }
    }
    return out;
}

class StepIndexedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StepIndexedSweep, DistributedProtocolCoversLoopExactly) {
    const auto& [tech, n, p] = GetParam();
    const auto chunks = drain_step_indexed(tech, make_params(n, p));
    std::int64_t covered = 0;
    std::int64_t expected_start = 0;
    for (const auto& c : chunks) {
        EXPECT_EQ(c.start, expected_start);
        expected_start += c.size;
        covered += c.size;
    }
    EXPECT_EQ(covered, n);
}

TEST_P(StepIndexedSweep, HintsArePositiveWhileIterationsRemain) {
    const auto& [tech, n, p] = GetParam();
    const LoopParams lp = make_params(n, p);
    // The first ceil(N / min-hint) steps can never produce a non-positive
    // hint, otherwise the distributed protocol would stall.
    for (std::int64_t s = 0; s < 64; ++s) {
        const auto hint = chunk_size_for_step(tech, lp, s);
        if (tech == Technique::Static && s >= std::min<std::int64_t>(n, p)) {
            continue;  // STATIC legitimately runs out after min(N, P) steps
        }
        EXPECT_GT(hint, 0) << technique_name(tech) << " step " << s;
    }
}

std::vector<SweepCase> step_indexed_cases() {
    std::vector<SweepCase> cases;
    for (const Technique t : all_techniques()) {
        if (!supports_step_indexed(t)) {
            continue;
        }
        for (const std::int64_t n : {1LL, 100LL, 4096LL, 100000LL}) {
            for (const int p : {1, 2, 4, 16, 61}) {
                cases.push_back({t, n, p});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(StepIndexed, StepIndexedSweep,
                         ::testing::ValuesIn(step_indexed_cases()), sweep_name);

// ------------------------------ stateful vs step-indexed exact equivalence

/// STATIC and SS must agree bit-for-bit between the two forms; TSS agrees by
/// construction (both use the same linear formula); GSS/FAC2 use documented
/// closed-form approximations, so only their coverage is asserted (above).
TEST(CrossValidationTest, StaticStatefulEqualsStepIndexed) {
    for (const std::int64_t n : {1LL, 10LL, 999LL, 4096LL}) {
        for (const int p : {1, 3, 16}) {
            const LoopParams lp = make_params(n, p);
            EXPECT_EQ(sizes_of(enumerate_chunks(Technique::Static, lp)),
                      sizes_of(drain_step_indexed(Technique::Static, lp)));
        }
    }
}

TEST(CrossValidationTest, SsStatefulEqualsStepIndexed) {
    const LoopParams lp = make_params(257, 4);
    EXPECT_EQ(sizes_of(enumerate_chunks(Technique::SS, lp)),
              sizes_of(drain_step_indexed(Technique::SS, lp)));
}

TEST(CrossValidationTest, TssStatefulEqualsStepIndexed) {
    for (const std::int64_t n : {100LL, 1000LL, 54321LL}) {
        const LoopParams lp = make_params(n, 8);
        EXPECT_EQ(sizes_of(enumerate_chunks(Technique::TSS, lp)),
                  sizes_of(drain_step_indexed(Technique::TSS, lp)));
    }
}

TEST(CrossValidationTest, GssClosedFormTracksExactForm) {
    // The closed form ceil((N/P)(1-1/P)^s) must stay within a small relative
    // envelope of the exact remaining-based sizes for the bulk of the loop.
    const LoopParams lp = make_params(1 << 20, 16);
    const auto exact = enumerate_chunks(Technique::GSS, lp);
    for (std::size_t s = 0; s < exact.size() && exact[s].size > 64; ++s) {
        const auto approx = gss_chunk(lp, static_cast<std::int64_t>(s));
        const double rel = std::abs(static_cast<double>(approx - exact[s].size)) /
                           static_cast<double>(exact[s].size);
        EXPECT_LT(rel, 0.05) << "step " << s;
    }
}

TEST(CrossValidationTest, Fac2ClosedFormMatchesBatchPattern) {
    // Closed form: within each batch of P steps the size is constant and
    // halves (up to ceiling) across batches.
    const LoopParams lp = make_params(1 << 20, 16);
    for (std::int64_t b = 0; b < 10; ++b) {
        const auto first = fac2_chunk(lp, b * 16);
        const auto last = fac2_chunk(lp, b * 16 + 15);
        EXPECT_EQ(first, last);
        const auto next_batch = fac2_chunk(lp, (b + 1) * 16);
        EXPECT_LE(next_batch * 2, first + 1);
    }
}

// -------------------------------------------------------- shape properties

TEST(ShapePropertyTest, DecreasingTechniquesAreNonIncreasing) {
    for (const Technique t : {Technique::GSS, Technique::TSS, Technique::FAC2}) {
        const auto sizes = sizes_of(enumerate_chunks(t, make_params(100000, 16)));
        for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
            EXPECT_GE(sizes[i], sizes[i + 1]) << technique_name(t) << " at " << i;
        }
    }
}

TEST(ShapePropertyTest, GssFirstChunkIsStaticChunk) {
    const auto chunks = enumerate_chunks(Technique::GSS, make_params(64000, 16));
    EXPECT_EQ(chunks.front().size, 64000 / 16);
}

TEST(ShapePropertyTest, SchedulingStepCountsOrdering) {
    // SS takes the most steps, STATIC the fewest; GSS sits in between —
    // the overhead-vs-balance spectrum from the paper's Section 2.
    const LoopParams p = make_params(10000, 8);
    const auto n_static = enumerate_chunks(Technique::Static, p).size();
    const auto n_gss = enumerate_chunks(Technique::GSS, p).size();
    const auto n_ss = enumerate_chunks(Technique::SS, p).size();
    EXPECT_LT(n_static, n_gss);
    EXPECT_LT(n_gss, n_ss);
    EXPECT_EQ(n_ss, 10000u);
    EXPECT_EQ(n_static, 8u);
}

TEST(ShapePropertyTest, MinChunkHonoredByDynamicTechniques) {
    LoopParams p = make_params(10000, 8);
    p.min_chunk = 16;
    for (const Technique t : {Technique::SS, Technique::GSS, Technique::TSS, Technique::FAC2}) {
        const auto chunks = enumerate_chunks(t, p);
        for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // tail may clamp
            EXPECT_GE(chunks[i].size, 16) << technique_name(t);
        }
    }
}

}  // namespace
