/// \file test_core.cpp
/// Tests for the hierarchical DLS core: queue protocols, exact iteration
/// coverage across every paper combination and both approaches, parity with
/// serial execution on a real kernel, and the paper's behavioural claims
/// (fastest-rank refill, no implicit barrier).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/mandelbrot.hpp"
#include "core/hdls.hpp"

namespace {

using namespace hdls::core;
using hdls::dls::Technique;

// ----------------------------------------------------------- global queue

TEST(GlobalQueueTest, StaticHandsOutExactlyOneChunkPerNode) {
    minimpi::Runtime::run(4, minimpi::Topology{2}, [](minimpi::Context& ctx) {
        GlobalWorkQueue q(ctx.world(), 1000, Technique::Static, ctx.nodes(), 1);
        // Drain cooperatively: every rank pulls until empty.
        std::int64_t mine = 0;
        while (auto c = q.try_acquire()) {
            mine += c->size;
        }
        const auto total = ctx.world().allreduce(mine, minimpi::ReduceOp::Sum);
        EXPECT_EQ(total, 1000);
        const auto chunks =
            ctx.world().allreduce(q.acquired(), minimpi::ReduceOp::Sum);
        EXPECT_EQ(chunks, 2);  // STATIC at level 1: one chunk per *node*
        q.free();
    });
}

TEST(GlobalQueueTest, GssChunksFollowClosedFormAndCoverLoop) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 5000;
        GlobalWorkQueue q(ctx.world(), kN, Technique::GSS, 4, 1);
        hdls::dls::LoopParams p;
        p.total_iterations = kN;
        p.workers = 4;
        std::int64_t covered = 0;
        std::int64_t step = 0;
        while (auto c = q.try_acquire()) {
            EXPECT_EQ(c->step, step);
            const auto hint = hdls::dls::chunk_size_for_step(Technique::GSS, p, step);
            EXPECT_EQ(c->size, std::min(hint, kN - covered));
            covered += c->size;
            ++step;
        }
        EXPECT_EQ(covered, kN);
        q.free();
    });
}

TEST(GlobalQueueTest, EmptyLoopYieldsNoChunks) {
    minimpi::Runtime::run(2, [](minimpi::Context& ctx) {
        GlobalWorkQueue q(ctx.world(), 0, Technique::GSS, 2, 1);
        EXPECT_EQ(q.try_acquire(), std::nullopt);
        q.free();
    });
}

TEST(GlobalQueueTest, AdaptiveTechniqueRejected) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        EXPECT_THROW(GlobalWorkQueue(ctx.world(), 10, Technique::AWFB, 1, 1), minimpi::Error);
    });
}

// ------------------------------------------------------------- local queue

TEST(LocalQueueTest, PushPopProtocolWithGssSubChunks) {
    minimpi::Runtime::run(4, [](minimpi::Context& ctx) {
        const auto node = ctx.world().split_type(minimpi::SplitType::Shared, ctx.rank());
        NodeWorkQueue q(node, Technique::GSS, 1);
        if (ctx.rank() == 0) {
            EXPECT_FALSE(q.has_pending());
            q.begin_refill();
            const auto first = q.push_and_pop(100, 64);
            ASSERT_TRUE(first);
            // GSS over a 64-iteration chunk with P=4: first sub-chunk 16.
            EXPECT_EQ(first->begin, 100);
            EXPECT_EQ(first->end, 116);
            EXPECT_TRUE(q.has_pending());
            EXPECT_FALSE(q.refills_in_flight());
        }
        ctx.world().barrier();
        // Everyone drains the rest cooperatively.
        std::int64_t mine = 0;
        while (auto sc = q.try_pop()) {
            mine += sc->end - sc->begin;
        }
        const auto rest = ctx.world().allreduce(mine, minimpi::ReduceOp::Sum);
        EXPECT_EQ(rest, 64 - 16);
        EXPECT_FALSE(q.has_pending());
        q.free();
    });
}

TEST(LocalQueueTest, InflightCounterKeepsPeersAlive) {
    minimpi::Runtime::run(2, [](minimpi::Context& ctx) {
        const auto node = ctx.world().split_type(minimpi::SplitType::Shared, ctx.rank());
        NodeWorkQueue q(node, Technique::SS, 1);
        if (ctx.rank() == 0) {
            q.begin_refill();
            EXPECT_TRUE(q.refills_in_flight());
            q.end_refill();
            EXPECT_FALSE(q.refills_in_flight());
        }
        ctx.world().barrier();
        q.free();
    });
}

TEST(LocalQueueTest, MultipleChunksQueueFifo) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        const auto node = ctx.world().split_type(minimpi::SplitType::Shared, 0);
        NodeWorkQueue q(node, Technique::SS, 1);
        q.begin_refill();
        (void)q.push_and_pop(0, 2);  // chunk A: pops iteration 0
        q.begin_refill();
        (void)q.push_and_pop(50, 2);  // chunk B appended; pops A's iteration 1
        // Remaining: B entirely.
        const auto s1 = q.try_pop();
        ASSERT_TRUE(s1);
        EXPECT_EQ(s1->begin, 50);
        const auto s2 = q.try_pop();
        ASSERT_TRUE(s2);
        EXPECT_EQ(s2->begin, 51);
        EXPECT_EQ(q.try_pop(), std::nullopt);
        q.free();
    });
}

// -------------------------------------------- termination protocol

TEST(LocalQueueTest, SlowRefillerInFlightKeepsPeersAliveAndLosesNoIterations) {
    // One rank announces a refill, then takes its time fetching the chunk
    // (the global queue looks exhausted to everyone else meanwhile). Peers
    // running the executor's termination protocol must keep polling — not
    // terminate — until the chunk lands, and every iteration must execute.
    minimpi::Runtime::run(4, [](minimpi::Context& ctx) {
        constexpr std::int64_t kChunk = 48;
        const auto node = ctx.world().split_type(minimpi::SplitType::Shared, ctx.rank());
        NodeWorkQueue q(node, Technique::SS, 1);
        std::int64_t mine = 0;
        if (ctx.rank() == 0) {
            q.begin_refill();  // announce *before* the slow global fetch
            ctx.world().barrier();
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            if (const auto sub = q.push_and_pop(0, kChunk)) {
                mine += sub->end - sub->begin;
            }
            // Stay busy with "its own" sub-chunk while the peers (which
            // kept polling through the 30 ms refill) drain the rest.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        } else {
            ctx.world().barrier();
        }
        // Everyone (refiller included) drains with the executor's
        // termination condition: only stop when nothing is pending and no
        // refill is in flight.
        for (;;) {
            if (const auto sub = q.try_pop()) {
                mine += sub->end - sub->begin;
                continue;
            }
            if (!q.refills_in_flight() && !q.has_pending()) {
                break;
            }
            std::this_thread::yield();
        }
        const auto total = ctx.world().allreduce(mine, minimpi::ReduceOp::Sum);
        EXPECT_EQ(total, kChunk);  // no rank left early, nothing lost
        const auto non_refiller =
            ctx.world().allreduce(ctx.rank() == 0 ? 0 : mine, minimpi::ReduceOp::Sum);
        EXPECT_GT(non_refiller, 0);  // peers stayed alive to take work
        q.free();
    });
}

TEST(LocalQueueTest, CapacityThrowReleasesRefillAnnouncement) {
    // Regression: the capacity-exceeded throw in push_and_pop used to leak
    // the in-flight announcement, leaving kInflight > 0 forever so peers
    // spun in the termination protocol. The announcement must be withdrawn
    // on the throw path too.
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        const auto node = ctx.world().split_type(minimpi::SplitType::Shared, 0);
        NodeWorkQueue q(node, Technique::SS, 1);
        // Capacity is node.size() + 4 = 5. Chunks are large enough that no
        // slot retires (each embedded pop takes one SS iteration), so the
        // sixth push must hit the capacity check and throw.
        for (int i = 0; i < 5; ++i) {
            q.begin_refill();
            (void)q.push_and_pop(i * 100, 100);
        }
        q.begin_refill();
        EXPECT_TRUE(q.refills_in_flight());
        EXPECT_THROW((void)q.push_and_pop(900, 100), minimpi::Error);
        // The failed refill must not leave the announcement raised.
        EXPECT_FALSE(q.refills_in_flight());
        // The queue remains usable: drain everything that was pushed.
        std::int64_t drained = 0;
        while (auto sub = q.try_pop()) {
            drained += sub->end - sub->begin;
        }
        EXPECT_EQ(drained, 5 * 100 - 5);  // 5 chunks of 100, 1 popped each
        q.free();
    });
}

// ------------------------------------------------- coverage across combos

struct ComboCase {
    Approach approach;
    Technique inter;
    Technique intra;
    int nodes;
    int wpn;
    std::int64_t n;
};

class HierCoverage : public ::testing::TestWithParam<ComboCase> {};

TEST_P(HierCoverage, EveryIterationExecutedExactlyOnce) {
    const auto& [approach, inter, intra, nodes, wpn, n] = GetParam();
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    HierConfig cfg;
    cfg.inter = inter;
    cfg.intra = intra;
    const ClusterShape shape{nodes, wpn};
    const auto report =
        hdls::parallel_for(shape, approach, cfg, n, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "iteration " << i << " combo " << hdls::dls::technique_name(inter) << "+"
            << hdls::dls::technique_name(intra);
    }
    EXPECT_EQ(report.executed_iterations(), n);
    EXPECT_EQ(report.workers.size(), static_cast<std::size_t>(nodes * wpn));
    EXPECT_GE(report.parallel_seconds, 0.0);
}

std::vector<ComboCase> coverage_cases() {
    std::vector<ComboCase> cases;
    // The paper's full grid at small scale, both approaches.
    for (const Technique inter : hdls::dls::paper_internode_techniques()) {
        for (const Technique intra : hdls::dls::paper_intranode_techniques()) {
            cases.push_back({Approach::MpiMpi, inter, intra, 2, 3, 500});
            cases.push_back({Approach::MpiOpenMp, inter, intra, 2, 3, 500});
        }
    }
    // Edge shapes.
    cases.push_back({Approach::MpiMpi, Technique::GSS, Technique::SS, 1, 1, 37});
    cases.push_back({Approach::MpiMpi, Technique::TSS, Technique::FAC2, 4, 2, 1});
    cases.push_back({Approach::MpiOpenMp, Technique::FAC2, Technique::GSS, 3, 1, 64});
    cases.push_back({Approach::MpiMpi, Technique::Static, Technique::Static, 2, 2, 0});
    // Extension techniques at level 2 (beyond the paper's five).
    cases.push_back({Approach::MpiMpi, Technique::GSS, Technique::TFSS, 2, 2, 300});
    cases.push_back({Approach::MpiMpi, Technique::FAC2, Technique::RND, 2, 2, 300});
    return cases;
}

std::string combo_name(const ::testing::TestParamInfo<ComboCase>& info) {
    const auto& c = info.param;
    std::string name = c.approach == Approach::MpiMpi ? "MpiMpi_" : "MpiOpenMp_";
    name += std::string(hdls::dls::technique_name(c.inter)) + "_" +
            std::string(hdls::dls::technique_name(c.intra));
    for (char& ch : name) {
        if (ch == '-') {
            ch = '_';
        }
    }
    name += "_" + std::to_string(c.nodes) + "x" + std::to_string(c.wpn) + "_n" +
            std::to_string(c.n);
    return name;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, HierCoverage, ::testing::ValuesIn(coverage_cases()),
                         combo_name);

// ----------------------------------------------------------- real kernel

TEST(IntegrationTest, MandelbrotResultsMatchSerialForBothApproaches) {
    hdls::apps::MandelbrotConfig mcfg;
    mcfg.width = 64;
    mcfg.height = 48;
    mcfg.max_iter = 150;

    hdls::apps::MandelbrotImage serial(mcfg);
    run_serial(mcfg.pixels(), [&](std::int64_t b, std::int64_t e) {
        serial.compute_range(b, e);
    });
    ASSERT_EQ(serial.uncomputed(), 0);

    for (const Approach approach : {Approach::MpiMpi, Approach::MpiOpenMp}) {
        hdls::apps::MandelbrotImage parallel_img(mcfg);
        HierConfig cfg;
        cfg.inter = Technique::GSS;
        cfg.intra = Technique::Static;
        const auto report = hdls::parallel_for(ClusterShape{2, 4}, approach, cfg, mcfg.pixels(),
                                               [&](std::int64_t b, std::int64_t e) {
                                                   parallel_img.compute_range(b, e);
                                               });
        EXPECT_EQ(parallel_img.uncomputed(), 0);
        EXPECT_EQ(parallel_img.checksum(), serial.checksum())
            << approach_name(approach);
        EXPECT_EQ(report.executed_iterations(), mcfg.pixels());
    }
}

// ------------------------------------------------ behavioural properties

TEST(BehaviourTest, FastestRankRefillsUnderSkew) {
    // Make one rank per node persistently slow; the others must take over
    // the refilling role (the paper: "the responsibility of obtaining work
    // is not assigned to a specific MPI process").
    HierConfig cfg;
    cfg.inter = Technique::FAC2;
    cfg.intra = Technique::GSS;
    const ClusterShape shape{2, 3};
    const auto report = hdls::parallel_for(
        shape, Approach::MpiMpi, cfg, 600, [&](std::int64_t b, std::int64_t e) {
            // Iterations 0-99 are 30x slower, pinning whoever executes them.
            if (b < 100) {
                std::this_thread::sleep_for(std::chrono::microseconds(300 * (e - b)));
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(10 * (e - b)));
            }
        });
    EXPECT_EQ(report.executed_iterations(), 600);
    EXPECT_GT(report.distinct_refillers(), 1);
}

TEST(BehaviourTest, MpiMpiSkipsTheImplicitBarrier) {
    // One pathological iteration blocks a worker for a long time. Under
    // MPI+MPI the remaining workers finish the rest of the loop and leave;
    // their finish times must be far below the straggler's. (Under
    // MPI+OpenMP the implicit barrier would hold everyone back, but that
    // contrast is quantified by the simulator benches; here we pin the
    // library behaviour.)
    HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    const auto report = hdls::parallel_for(
        ClusterShape{1, 4}, Approach::MpiMpi, cfg, 64, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                if (i == 0) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(120));
                }
            }
        });
    std::vector<double> finishes;
    for (const auto& w : report.workers) {
        finishes.push_back(w.finish_seconds);
    }
    std::sort(finishes.begin(), finishes.end());
    EXPECT_GE(finishes.back(), 0.110);          // the straggler
    EXPECT_LT(finishes[1], finishes.back() / 2);  // a non-straggler left early
}

TEST(BehaviourTest, HybridBarrierHoldsWholeTeam) {
    // The mirror image of the previous test: with the MPI+OpenMP model and
    // a static intra schedule, the implicit barrier forces every thread's
    // finish time up to (nearly) the straggler's.
    HierConfig cfg;
    cfg.inter = Technique::Static;
    cfg.intra = Technique::Static;
    const auto report = hdls::parallel_for(
        ClusterShape{1, 4}, Approach::MpiOpenMp, cfg, 64, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                if (i == 0) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(120));
                }
            }
        });
    for (const auto& w : report.workers) {
        EXPECT_GE(w.finish_seconds, 0.110) << "thread " << w.worker_in_node;
    }
}

// ------------------------------------------------------------- validation

TEST(ValidationTest, CombinationRulesEnforced) {
    const ClusterShape shape{2, 2};
    HierConfig cfg;

    // Adaptive techniques are valid at the inter level (served by the
    // remaining-count/feedback form of AdaptiveGlobalQueue)...
    cfg.inter = Technique::AWFB;
    EXPECT_NO_THROW(validate_combination(shape, Approach::MpiMpi, cfg));

    cfg.inter = Technique::GSS;
    cfg.intra = Technique::FAC;  // ...but not at the MPI+MPI intra level
    EXPECT_THROW(validate_combination(shape, Approach::MpiMpi, cfg), std::invalid_argument);
    cfg.intra = Technique::AWFC;
    EXPECT_THROW(validate_combination(shape, Approach::MpiMpi, cfg), std::invalid_argument);

    // WF static node weights must match the node count when given.
    cfg.intra = Technique::GSS;
    cfg.inter = Technique::WF;
    cfg.node_weights = {2.0, 1.0, 1.0};  // shape has 2 nodes
    EXPECT_THROW(validate_combination(shape, Approach::MpiMpi, cfg), std::invalid_argument);
    cfg.node_weights = {2.0, 1.0};
    EXPECT_NO_THROW(validate_combination(shape, Approach::MpiMpi, cfg));
    cfg.node_weights.clear();
    cfg.inter = Technique::GSS;

    // TSS intra under MPI+OpenMP: fine with extensions, rejected without
    // (the paper's Intel-runtime limitation).
    cfg.intra = Technique::TSS;
    cfg.allow_extended_openmp_schedules = true;
    EXPECT_NO_THROW(validate_combination(shape, Approach::MpiOpenMp, cfg));
    cfg.allow_extended_openmp_schedules = false;
    EXPECT_THROW(validate_combination(shape, Approach::MpiOpenMp, cfg),
                 UnsupportedCombination);

    cfg.intra = Technique::GSS;
    EXPECT_THROW(validate_combination(ClusterShape{0, 4}, Approach::MpiMpi, cfg),
                 std::invalid_argument);
    cfg.min_chunk = 0;
    EXPECT_THROW(validate_combination(shape, Approach::MpiMpi, cfg), std::invalid_argument);
}

TEST(ValidationTest, RunnerArgumentChecks) {
    HierConfig cfg;
    EXPECT_THROW((void)run_hierarchical(ClusterShape{1, 1}, Approach::MpiMpi, cfg, -1,
                                        [](std::int64_t, std::int64_t) {}),
                 std::invalid_argument);
    EXPECT_THROW((void)run_hierarchical(ClusterShape{1, 1}, Approach::MpiMpi, cfg, 10,
                                        ChunkBody{}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- reports

TEST(ReportTest, AccountingInvariants) {
    HierConfig cfg;
    cfg.inter = Technique::TSS;
    cfg.intra = Technique::FAC2;
    const ClusterShape shape{2, 2};
    const auto report = hdls::parallel_for(shape, Approach::MpiMpi, cfg, 2000,
                                           [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.executed_iterations(), 2000);
    EXPECT_GT(report.global_chunks(), 0);
    EXPECT_GE(report.executed_chunks(), report.global_chunks());
    EXPECT_GE(report.finish_cov(), 0.0);
    EXPECT_GE(report.distinct_refillers(), 1);
    // Per-worker sanity.
    for (const auto& w : report.workers) {
        EXPECT_GE(w.iterations, 0);
        EXPECT_GE(w.busy_seconds, 0.0);
        EXPECT_LE(w.busy_seconds, w.finish_seconds + 1e-9);
        EXPECT_GE(w.node, 0);
        EXPECT_LT(w.node, shape.nodes);
    }
    // The report prints without blowing up.
    std::ostringstream oss;
    report.print(oss);
    EXPECT_NE(oss.str().find("MPI+MPI"), std::string::npos);
    EXPECT_NE(oss.str().find("TSS+FAC2"), std::string::npos);
}

// -------------------------------------------------- env / topology parsing

TEST(EnvConfigTest, TopologyParsesTheDocumentedGrammar) {
    const auto tree = parse_topology("racks=2, nodes=4, cores=8");
    ASSERT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree[0].name, "racks");
    EXPECT_EQ(tree[0].fan_out, 2);
    EXPECT_EQ(tree[2].name, "cores");
    EXPECT_EQ(tree[2].fan_out, 8);
    // Canonical round trip.
    EXPECT_EQ(format_topology(tree), "racks=2,nodes=4,cores=8");
    EXPECT_EQ(format_topology(parse_topology(format_topology(tree))),
              format_topology(tree));
}

TEST(EnvConfigTest, TopologyParsingRejectsMalformedSpecsWithClearErrors) {
    const auto message_of = [](const char* text) -> std::string {
        try {
            (void)parse_topology(text);
        } catch (const std::invalid_argument& e) {
            return e.what();
        }
        return "";
    };
    EXPECT_NE(message_of("").find("empty"), std::string::npos);
    EXPECT_NE(message_of("racks=2,,cores=8").find("empty level"), std::string::npos);
    EXPECT_NE(message_of("racks2,cores=8").find("name=fanout"), std::string::npos);
    EXPECT_NE(message_of("=4").find("empty name"), std::string::npos);
    EXPECT_NE(message_of("racks=x").find("not a number"), std::string::npos);
    EXPECT_NE(message_of("racks=0").find(">= 1"), std::string::npos);
    EXPECT_NE(message_of("racks=-3").find(">= 1"), std::string::npos);
}

TEST(EnvConfigTest, TopologyEnvThrowsInsteadOfSilentlyFallingBack) {
    ::setenv("HDLS_TOPOLOGY", "nodes=2,cores=4", 1);
    const auto tree = topology_from_env();
    ASSERT_EQ(tree.size(), 2u);
    EXPECT_EQ(tree[1].fan_out, 4);
    ::setenv("HDLS_TOPOLOGY", "garbage", 1);
    EXPECT_THROW((void)topology_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_TOPOLOGY");
    EXPECT_TRUE(topology_from_env().empty());
}

TEST(EnvConfigTest, InterBackendEnvThrowsOnUnknownValues) {
    ::setenv("HDLS_INTER_BACKEND", "hexagonal", 1);
    EXPECT_THROW((void)inter_backend_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_INTER_BACKEND");
    EXPECT_EQ(inter_backend_from_env(), hdls::dls::InterBackend::Centralized);
}

TEST(EnvConfigTest, TransportEnvThrowsOnUnknownValues) {
    ::setenv("HDLS_TRANSPORT", "shm", 1);
    EXPECT_EQ(transport_from_env(), minimpi::TransportKind::Shm);
    ::setenv("HDLS_TRANSPORT", "Threads", 1);
    EXPECT_EQ(transport_from_env(), minimpi::TransportKind::Threads);
    ::setenv("HDLS_TRANSPORT", "openmpi", 1);
    EXPECT_THROW((void)transport_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_TRANSPORT");
    EXPECT_EQ(transport_from_env(), minimpi::TransportKind::Threads);
    EXPECT_EQ(hdls::core::transport_from_env(minimpi::TransportKind::Shm),
              minimpi::TransportKind::Shm);
}

TEST(EnvConfigTest, SimdEnvThrowsOnUnknownPolicies) {
    ::setenv("HDLS_SIMD", " Auto ", 1);
    EXPECT_EQ(simd_mode_from_env(), hdls::simd::SimdMode::Auto);
    ::setenv("HDLS_SIMD", "scalar", 1);
    EXPECT_EQ(simd_mode_from_env(), hdls::simd::SimdMode::ForceScalar);
    ::setenv("HDLS_SIMD", "NATIVE", 1);
    EXPECT_EQ(simd_mode_from_env(), hdls::simd::SimdMode::Native);
    for (const char* bad : {"avx512", "vector", "", "on"}) {
        ::setenv("HDLS_SIMD", bad, 1);
        EXPECT_THROW((void)simd_mode_from_env(), std::invalid_argument) << bad;
    }
    ::unsetenv("HDLS_SIMD");
    EXPECT_EQ(simd_mode_from_env(), hdls::simd::SimdMode::Auto);
    EXPECT_EQ(simd_mode_from_env(hdls::simd::SimdMode::Native),
              hdls::simd::SimdMode::Native);
}

TEST(EnvConfigTest, PinEnvThrowsOnUnknownPolicies) {
    ::setenv("HDLS_PIN", " Compact ", 1);
    EXPECT_EQ(pin_from_env(), minimpi::PinPolicy::Compact);
    ::setenv("HDLS_PIN", "SCATTER", 1);
    EXPECT_EQ(pin_from_env(), minimpi::PinPolicy::Scatter);
    ::setenv("HDLS_PIN", "none", 1);
    EXPECT_EQ(pin_from_env(minimpi::PinPolicy::Compact), minimpi::PinPolicy::None);
    for (const char* bad : {"numa", "cores", "", "1"}) {
        ::setenv("HDLS_PIN", bad, 1);
        EXPECT_THROW((void)pin_from_env(), std::invalid_argument) << bad;
    }
    ::unsetenv("HDLS_PIN");
    EXPECT_EQ(pin_from_env(), minimpi::PinPolicy::None);
    EXPECT_EQ(pin_from_env(minimpi::PinPolicy::Scatter), minimpi::PinPolicy::Scatter);
}

TEST(EnvConfigTest, MetricsEnvThrowsOnNonBooleanValues) {
    ::setenv("HDLS_METRICS", "1", 1);
    EXPECT_TRUE(metrics_from_env());
    ::setenv("HDLS_METRICS", "off", 1);
    EXPECT_FALSE(metrics_from_env(true));
    ::setenv("HDLS_METRICS", "sometimes", 1);
    EXPECT_THROW((void)metrics_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_METRICS");
    EXPECT_FALSE(metrics_from_env());
    EXPECT_TRUE(metrics_from_env(true));
}

TEST(EnvConfigTest, MetricsPeriodEnvThrowsOnNonPositiveValues) {
    ::setenv("HDLS_METRICS_PERIOD_MS", " 250 ", 1);
    EXPECT_EQ(metrics_period_from_env(), std::chrono::milliseconds(250));
    for (const char* bad : {"0", "-5", "fast", "100x", ""}) {
        ::setenv("HDLS_METRICS_PERIOD_MS", bad, 1);
        EXPECT_THROW((void)metrics_period_from_env(), std::invalid_argument) << bad;
    }
    ::unsetenv("HDLS_METRICS_PERIOD_MS");
    EXPECT_EQ(metrics_period_from_env(), std::chrono::milliseconds(100));
    EXPECT_EQ(metrics_period_from_env(std::chrono::milliseconds(7)),
              std::chrono::milliseconds(7));
}

TEST(EnvConfigTest, MetricsFileEnvThrowsOnEmptyPath) {
    ::setenv("HDLS_METRICS_FILE", "/tmp/custom.prom", 1);
    EXPECT_EQ(metrics_file_from_env(), "/tmp/custom.prom");
    ::setenv("HDLS_METRICS_FILE", "", 1);
    EXPECT_THROW((void)metrics_file_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_METRICS_FILE");
    EXPECT_EQ(metrics_file_from_env(), "hdls-metrics.prom");
}

TEST(EnvConfigTest, MultiLevelSchedulesParseAndRoundTrip) {
    const auto cfg = parse_schedule("fac2+gss+ss,min_chunk=2");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->inter, Technique::FAC2);
    EXPECT_EQ(cfg->intra, Technique::SS);
    ASSERT_EQ(cfg->levels.size(), 3u);
    EXPECT_EQ(cfg->levels[1].technique, Technique::GSS);
    EXPECT_FALSE(cfg->levels[1].backend.has_value());
    EXPECT_EQ(cfg->min_chunk, 2);
    EXPECT_EQ(format_schedule(*cfg), "FAC2+GSS+SS,min_chunk=2");
    // Two-part combos keep the classic shape (no levels vector).
    const auto classic = parse_schedule("gss+static");
    ASSERT_TRUE(classic.has_value());
    EXPECT_TRUE(classic->levels.empty());
    EXPECT_FALSE(parse_schedule("gss").has_value());
    EXPECT_FALSE(parse_schedule("gss+bogus+ss").has_value());
}

TEST(EnvConfigTest, MismatchedTopologyProductFailsTheRun) {
    HierConfig cfg;
    cfg.topology = {{"racks", 2}, {"nodes", 2}, {"cores", 2}};
    // 2*2*2 = 8 != 4 nodes x 2 workers = 8? -> use a real mismatch: 3 x 2.
    EXPECT_THROW((void)hdls::parallel_for(ClusterShape{3, 2}, Approach::MpiMpi, cfg, 10,
                                          [](std::int64_t, std::int64_t) {}),
                 std::invalid_argument);
    // minimpi rejects trees whose product disagrees with the world size.
    EXPECT_THROW(minimpi::Runtime::run(
                     6, minimpi::Topology::tree({{"nodes", 2}, {"cores", 2}}),
                     [](minimpi::Context&) {}),
                 std::invalid_argument);
}

}  // namespace
