/// \file test_adaptive_queue.cpp
/// The adaptive inter-node scheduling path: AdaptiveGlobalQueue protocol
/// correctness under concurrency (many ranks hammering try_acquire,
/// including a deliberately slow rank), adaptive-rate edge cases
/// (zero-time chunks, silent nodes, single-node clusters, min_chunk
/// clamping), and end-to-end selectability of FAC/WF/AWF-B/C/D/E as
/// HierConfig::inter in both real executors and all three sim engines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/hdls.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hdls::core;
using hdls::dls::Technique;

// ------------------------------------------------- concurrency stress

/// Every rank hammers the queue; iteration i must be handed out exactly
/// once, the slow rank must not break the tiling, and the sum must be N.
void stress_queue(Technique inter, int ranks, int ranks_per_node, std::int64_t n,
                  bool with_reports) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    std::atomic<std::int64_t> total{0};
    minimpi::Runtime::run(ranks, minimpi::Topology{ranks_per_node},
                          [&](minimpi::Context& ctx) {
        HierConfig cfg;
        cfg.inter = inter;
        const auto q = make_inter_queue(ctx.world(), n, cfg, ctx.nodes(), ctx.node());
        std::int64_t mine = 0;
        while (const auto c = q->try_acquire()) {
            ASSERT_GT(c->size, 0);
            ASSERT_GE(c->start, 0);
            ASSERT_LE(c->start + c->size, n);
            for (std::int64_t i = c->start; i < c->start + c->size; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
            mine += c->size;
            if (with_reports) {
                // Rank 0 is the deliberately slow one: it executes (and
                // reports) 20x slower, so AWF rates diverge while the
                // protocol must stay exact.
                const double seconds = ctx.rank() == 0 ? 2e-3 : 1e-4;
                q->report(c->size, seconds * static_cast<double>(c->size), 1e-6);
            }
            if (ctx.rank() == 0) {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        }
        total.fetch_add(mine, std::memory_order_relaxed);
        q->free();
    });
    EXPECT_EQ(total.load(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << hdls::dls::technique_name(inter) << ": iteration " << i;
    }
}

TEST(QueueStressTest, StepIndexedQueueUnderConcurrentHammering) {
    stress_queue(Technique::GSS, 8, 2, 20000, false);
    stress_queue(Technique::FAC2, 8, 4, 20000, false);
    stress_queue(Technique::SS, 6, 3, 1500, false);
}

TEST(QueueStressTest, AdaptiveQueueUnderConcurrentHammering) {
    stress_queue(Technique::FAC, 8, 2, 20000, false);
    stress_queue(Technique::WF, 8, 4, 20000, false);
    stress_queue(Technique::AWFB, 8, 2, 20000, true);
    stress_queue(Technique::AWFC, 6, 3, 20000, true);
    stress_queue(Technique::AWFE, 8, 4, 20000, true);
}

// --------------------------------------------------- protocol details

TEST(AdaptiveQueueTest, DrainsExactlyAndCountsSteps) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 10000;
        AdaptiveGlobalQueue q(ctx.world(), kN, Technique::FAC, /*level_workers=*/4,
                              /*node=*/0, /*min_chunk=*/1);
        EXPECT_EQ(q.remaining(), kN);
        std::int64_t covered = 0;
        std::int64_t step = 0;
        while (const auto c = q.try_acquire()) {
            EXPECT_EQ(c->step, step++);
            EXPECT_EQ(c->start, covered);  // serial drain: contiguous
            covered += c->size;
        }
        EXPECT_EQ(covered, kN);
        EXPECT_EQ(q.remaining(), 0);
        EXPECT_EQ(q.acquired(), step);
        q.free();
    });
}

TEST(AdaptiveQueueTest, WfStaticWeightsScaleChunks) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 8000;
        // Node 0 is 3x the speed of node 1: its first chunk must be ~3x.
        AdaptiveGlobalQueue fast(ctx.world(), kN, Technique::WF, 2, 0, 1, {3.0, 1.0});
        const auto big = fast.try_acquire();
        ASSERT_TRUE(big);
        fast.free();
        AdaptiveGlobalQueue slow(ctx.world(), kN, Technique::WF, 2, 1, 1, {3.0, 1.0});
        const auto small = slow.try_acquire();
        ASSERT_TRUE(small);
        slow.free();
        // Weighted halving batch: fast ~ N/2 * 1.5 / 2, slow ~ N/2 * 0.5 / 2.
        EXPECT_GT(big->size, 2 * small->size);
    });
}

TEST(AdaptiveQueueTest, AwfWeightsShiftWorkTowardsTheFastNode) {
    minimpi::Runtime::run(2, minimpi::Topology{1}, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 100000;
        AdaptiveGlobalQueue q(ctx.world(), kN, Technique::AWFC, 2, ctx.node(), 1);
        // Seed feedback: node 0 runs 4x faster than node 1.
        if (ctx.rank() == 0) {
            q.report(1000, 0.1, 0.0);
        } else {
            q.report(1000, 0.4, 0.0);
        }
        ctx.world().barrier();
        const auto c = q.try_acquire();
        ASSERT_TRUE(c);
        // Both nodes see rates (10000 vs 2500); weights 1.6 vs 0.4.
        if (ctx.rank() == 0) {
            EXPECT_GT(c->size, kN / 4);  // ~ (N/2) * 1.6 / 2 = 0.4 N
        } else {
            EXPECT_LT(c->size, kN / 4);  // ~ (N/2) * 0.4 / 2 = 0.1 N
        }
        const auto fb = q.feedback_of(ctx.node() == 0 ? 1 : 0);
        EXPECT_EQ(fb.iterations, 1000);  // peers' reports are visible
        ctx.world().barrier();
        q.free();
    });
}

// ------------------------------------------------- adaptive-rate edges

TEST(AdaptiveEdgeTest, ZeroTimeChunksKeepNeutralWeights) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 5000;
        AdaptiveGlobalQueue q(ctx.world(), kN, Technique::AWFE, 3, 0, 1);
        std::int64_t covered = 0;
        while (const auto c = q.try_acquire()) {
            covered += c->size;
            q.report(c->size, 0.0, 0.0);  // infinitely fast chunks: no rate
        }
        EXPECT_EQ(covered, kN);
        // Zero-time reports never became a rate: iterations accumulate but
        // the weight derivation must have stayed neutral (no NaN/inf blowup
        // and exact drain above proves the chunks stayed sane).
        EXPECT_EQ(q.feedback_of(0).iterations, kN);
        EXPECT_EQ(q.feedback_of(0).compute_seconds, 0.0);
        q.free();
    });
}

TEST(AdaptiveEdgeTest, SilentNodeGetsNeutralWeight) {
    using hdls::dls::NodeFeedback;
    // Node 1 never reported a chunk: its weight is the neutral 1.0 and the
    // observed nodes' weights are normalized around it.
    std::vector<NodeFeedback> fb(3);
    fb[0] = {.iterations = 4000, .compute_seconds = 1.0, .overhead_seconds = 0.0};
    fb[2] = {.iterations = 1000, .compute_seconds = 1.0, .overhead_seconds = 0.0};
    const auto w = hdls::dls::awf_weights(Technique::AWFB, fb);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_GT(w[0], w[1]);
    EXPECT_GT(w[1], w[2]);
    double sum = 0.0;
    for (const double x : w) {
        sum += x;
    }
    EXPECT_NEAR(sum, 3.0, 1e-9);  // mean-1 normalization
    // No feedback at all: everyone neutral.
    const auto bootstrap = hdls::dls::awf_weights(
        Technique::AWFB, std::vector<NodeFeedback>(4));
    for (const double x : bootstrap) {
        EXPECT_EQ(x, 1.0);
    }
}

TEST(AdaptiveEdgeTest, SingleNodeClusterDrainsExactly) {
    for (const Technique t : {Technique::FAC, Technique::WF, Technique::AWFB,
                              Technique::AWFD}) {
        minimpi::Runtime::run(1, [t](minimpi::Context& ctx) {
            AdaptiveGlobalQueue q(ctx.world(), 777, t, /*level_workers=*/1, 0, 1);
            std::int64_t covered = 0;
            while (const auto c = q.try_acquire()) {
                covered += c->size;
                q.report(c->size, 1e-5, 1e-7);
            }
            EXPECT_EQ(covered, 777);
            q.free();
        });
    }
}

TEST(AdaptiveEdgeTest, MinChunkClampsRenormalizedAwfWeights) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        constexpr std::int64_t kN = 4000;
        constexpr std::int64_t kMin = 16;
        // This node is catastrophically slow: weight -> ~0 after the first
        // refresh. min_chunk must keep every chunk at >= 16 regardless.
        AdaptiveGlobalQueue q(ctx.world(), kN, Technique::AWFC, 4, 0, kMin);
        q.report(10, 10.0, 0.0);     // own rate: 1 iter/s
        std::int64_t covered = 0;
        while (const auto c = q.try_acquire()) {
            EXPECT_GE(c->size, std::min<std::int64_t>(kMin, kN - covered));
            covered += c->size;
        }
        EXPECT_EQ(covered, kN);
        q.free();
    });
}

TEST(AdaptiveEdgeTest, ConstructorRejectsBadArguments) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        EXPECT_THROW(AdaptiveGlobalQueue(ctx.world(), 10, Technique::GSS, 2, 0, 1),
                     minimpi::Error);  // step-indexed technique: wrong queue
        EXPECT_THROW(AdaptiveGlobalQueue(ctx.world(), 10, Technique::WF, 2, 5, 1),
                     minimpi::Error);  // node out of range
        EXPECT_THROW(AdaptiveGlobalQueue(ctx.world(), 10, Technique::WF, 2, 0, 1, {1.0}),
                     minimpi::Error);  // weights size mismatch
        EXPECT_THROW(AdaptiveGlobalQueue(ctx.world(), 10, Technique::WF, 2, 0, 1,
                                         {-1.0, 1.0}),
                     minimpi::Error);  // negative weight
    });
}

// ------------------------------------------- end-to-end selectability

TEST(AdaptiveExecutorTest, EveryFeedbackTechniqueRunsInBothApproaches) {
    for (const Technique inter : {Technique::FAC, Technique::WF, Technique::AWFB,
                                  Technique::AWFC, Technique::AWFD, Technique::AWFE}) {
        for (const Approach approach : {Approach::MpiMpi, Approach::MpiOpenMp}) {
            constexpr std::int64_t kN = 600;
            std::vector<std::atomic<int>> hits(kN);
            HierConfig cfg;
            cfg.inter = inter;
            cfg.intra = Technique::GSS;
            const auto report = hdls::parallel_for(
                ClusterShape{2, 3}, approach, cfg, kN, [&](std::int64_t b, std::int64_t e) {
                    for (std::int64_t i = b; i < e; ++i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(
                            1, std::memory_order_relaxed);
                    }
                });
            EXPECT_EQ(report.executed_iterations(), kN);
            for (std::int64_t i = 0; i < kN; ++i) {
                ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                    << hdls::dls::technique_name(inter) << "+" << approach_name(approach)
                    << " iteration " << i;
            }
        }
    }
}

TEST(AdaptiveExecutorTest, AdaptiveRunSurvivesASlowedNode) {
    // One node's iterations are 4x slower (crude induced perturbation);
    // AWF-B must still execute everything exactly once and spread refills.
    HierConfig cfg;
    cfg.inter = Technique::AWFB;
    cfg.intra = Technique::GSS;
    cfg.trace = true;  // exercise FeedbackReport emission too
    std::atomic<std::int64_t> executed{0};
    const auto report = hdls::parallel_for(
        ClusterShape{2, 2}, Approach::MpiMpi, cfg, 400, [&](std::int64_t b, std::int64_t e) {
            executed.fetch_add(e - b, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(10 * (e - b)));
        });
    EXPECT_EQ(executed.load(), 400);
    EXPECT_EQ(report.executed_iterations(), 400);
    ASSERT_NE(report.trace, nullptr);
    bool saw_feedback = false;
    for (const auto& e : report.trace->events) {
        if (e.kind == hdls::trace::EventKind::FeedbackReport) {
            saw_feedback = true;
            EXPECT_GT(e.a, 0);  // iterations reported
        }
    }
    EXPECT_TRUE(saw_feedback);
}

TEST(AdaptiveSimTest, SimRejectsWhatTheRealPathRejects) {
    // Sim/real parity on bad adaptive inputs: FAC with mu=0 would divide
    // by zero (NaN chunks) and negative WF weights would starve a node.
    using namespace hdls::sim;
    ClusterSpec cluster;
    const WorkloadTrace trace(std::vector<double>(100, 1e-5));
    SimConfig cfg;
    cfg.inter = Technique::FAC;
    cfg.fac_mu = 0.0;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.fac_mu = 1.0;
    cfg.fac_sigma = -1.0;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.fac_sigma = 0.0;
    cfg.inter = Technique::WF;
    cfg.inter_weights = {1.0, -1.0};
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);

    HierConfig hcfg;
    hcfg.inter = Technique::FAC;
    hcfg.fac_mu = 0.0;
    EXPECT_THROW(validate_combination(ClusterShape{2, 2}, Approach::MpiMpi, hcfg),
                 std::invalid_argument);
    hcfg.fac_mu = 1.0;
    hcfg.inter = Technique::WF;
    hcfg.node_weights = {1.0, -1.0};
    EXPECT_THROW(validate_combination(ClusterShape{2, 2}, Approach::MpiMpi, hcfg),
                 std::invalid_argument);
}

TEST(AdaptiveSimTest, EveryFeedbackTechniqueRunsInAllThreeEngines) {
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 3;
    cluster.workers_per_node = 4;
    const WorkloadTrace trace(std::vector<double>(3000, 1e-5));
    for (const Technique inter : {Technique::FAC, Technique::WF, Technique::AWFB,
                                  Technique::AWFC, Technique::AWFD, Technique::AWFE}) {
        for (const ExecModel model :
             {ExecModel::MpiMpi, ExecModel::MpiOpenMp, ExecModel::MpiOpenMpNowait}) {
            SimConfig cfg;
            cfg.inter = inter;
            cfg.intra = Technique::Static;
            const auto report = simulate(model, cluster, cfg, trace);
            EXPECT_EQ(report.executed_iterations(), 3000)
                << hdls::dls::technique_name(inter) << " under " << exec_model_name(model);
            EXPECT_GT(report.parallel_time, 0.0);
        }
    }
}

TEST(AdaptiveSimTest, AwfbBeatsFac2OnFinishCovUnderASlowedNode) {
    // The acceptance experiment of the adaptive path (the bench's second
    // table in miniature): one node at half speed, moderately imbalanced
    // workload — AWF-B must level finish times better than FAC2.
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 8;
    cluster.node_speed = {0.5, 1.0, 1.0, 1.0};
    std::vector<double> costs(40000);
    for (std::size_t i = 0; i < costs.size(); ++i) {
        costs[i] = 1e-5 * (1.0 + static_cast<double>(i % 7));
    }
    const WorkloadTrace trace(std::move(costs));
    SimConfig fac2;
    fac2.inter = Technique::FAC2;
    fac2.intra = Technique::Static;
    SimConfig awfb = fac2;
    awfb.inter = Technique::AWFB;
    const auto r_fac2 = simulate(ExecModel::MpiMpi, cluster, fac2, trace);
    const auto r_awfb = simulate(ExecModel::MpiMpi, cluster, awfb, trace);
    EXPECT_EQ(r_fac2.executed_iterations(), r_awfb.executed_iterations());
    EXPECT_LT(r_awfb.finish_cov(), r_fac2.finish_cov());
    // Determinism: the same inputs reproduce the same virtual times.
    const auto r_again = simulate(ExecModel::MpiMpi, cluster, awfb, trace);
    EXPECT_EQ(r_again.parallel_time, r_awfb.parallel_time);
}

}  // namespace
