/// \file test_trace.cpp
/// Tests for the chunk-event tracing subsystem: ring-buffer overflow
/// accounting, recorder/merge semantics, exporter output structure, the
/// derived diagnostics, and end-to-end integration with both executors and
/// the simulator (event counts must agree with the execution reports).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/hdls.hpp"
#include "sim/simulator.hpp"
#include "trace/ring_buffer.hpp"

namespace {

using namespace hdls;
using hdls::dls::Technique;
using trace::EventKind;

// ------------------------------------------------------------ ring buffer

TEST(RingBufferTest, FifoOrderWithinCapacity) {
    trace::SpscRingBuffer<int> rb(4);
    EXPECT_EQ(rb.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(rb.try_push(i));
    }
    for (int i = 0; i < 4; ++i) {
        const auto v = rb.try_pop();
        ASSERT_TRUE(v);
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(rb.try_pop(), std::nullopt);
}

TEST(RingBufferTest, OverflowDropsAndCounts) {
    trace::SpscRingBuffer<int> rb(8);
    for (int i = 0; i < 13; ++i) {
        (void)rb.try_push(i);
    }
    // Capacity 8: pushes 8..12 (5 of them) must be dropped and counted.
    EXPECT_EQ(rb.size(), 8u);
    EXPECT_EQ(rb.dropped(), 5u);
    const auto drained = rb.drain();
    ASSERT_EQ(drained.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(drained[static_cast<std::size_t>(i)], i);  // survivors are the oldest
    }
    // Drain frees space: pushes succeed again and the drop count persists.
    EXPECT_TRUE(rb.try_push(99));
    EXPECT_EQ(rb.dropped(), 5u);
}

TEST(RingBufferTest, CapacityRoundsUpToPowerOfTwo) {
    trace::SpscRingBuffer<int> rb(5);
    EXPECT_EQ(rb.capacity(), 8u);
}

TEST(RingBufferTest, ConcurrentProducerConsumerLosesNothing) {
    trace::SpscRingBuffer<int> rb(64);
    constexpr int kN = 20000;
    std::vector<int> got;
    std::thread consumer([&] {
        while (static_cast<int>(got.size()) + static_cast<int>(rb.dropped()) < kN) {
            if (auto v = rb.try_pop()) {
                got.push_back(*v);
            }
        }
    });
    for (int i = 0; i < kN; ++i) {
        (void)rb.try_push(i);
    }
    consumer.join();
    // Everything is either delivered in order or counted as dropped.
    EXPECT_EQ(got.size() + rb.dropped(), static_cast<std::size_t>(kN));
    for (std::size_t i = 1; i < got.size(); ++i) {
        EXPECT_LT(got[i - 1], got[i]);
    }
}

// -------------------------------------------------------------- recorder

TEST(RecorderTest, DisabledTracerRecordsNothingAndCostsNoClock) {
    const trace::WorkerTracer disabled;
    EXPECT_FALSE(disabled.enabled());
    EXPECT_EQ(disabled.now(), 0.0);
    // Must be safe no-ops.
    trace::WorkerTracer copy = disabled;
    copy.record(EventKind::ChunkExecBegin, 0.0, 1.0, 0, 10);
    copy.instant(EventKind::Terminate, 2.0);
}

TEST(RecorderTest, MergeSortsAndNormalizes) {
    trace::TraceSession session(2, 16);
    auto t0 = session.tracer(0, 0);
    auto t1 = session.tracer(1, 0);
    ASSERT_TRUE(t0.enabled());
    t1.record(EventKind::LocalPop, 5.0, 6.0, 0, 4, 0.25);
    t0.instant(EventKind::ChunkExecBegin, 4.0, 0, 4);
    t0.instant(EventKind::ChunkExecEnd, 7.0, 0, 4);
    const trace::Trace merged = session.merge();
    ASSERT_EQ(merged.events.size(), 3u);
    // Sorted by start time and normalized: earliest event begins at 0.
    EXPECT_EQ(merged.events[0].kind, EventKind::ChunkExecBegin);
    EXPECT_DOUBLE_EQ(merged.events[0].t0, 0.0);
    EXPECT_EQ(merged.events[1].kind, EventKind::LocalPop);
    EXPECT_DOUBLE_EQ(merged.events[1].t0, 1.0);
    EXPECT_DOUBLE_EQ(merged.events[1].wait, 0.25);
    EXPECT_DOUBLE_EQ(merged.duration(), 3.0);
    EXPECT_EQ(merged.count(EventKind::ChunkExecEnd), 1);
    EXPECT_EQ(merged.count(EventKind::ChunkExecEnd, 0), 1);
    EXPECT_EQ(merged.count(EventKind::ChunkExecEnd, 1), 0);
    EXPECT_EQ(merged.dropped(), 0);
}

TEST(RecorderTest, OutOfRangeWorkerYieldsDisabledTracer) {
    trace::TraceSession session(2, 16);
    EXPECT_FALSE(session.tracer(-1, 0).enabled());
    EXPECT_FALSE(session.tracer(2, 0).enabled());
}

TEST(RecorderTest, OverflowAccountingReachesTheTrace) {
    trace::TraceSession session(1, 4);
    auto t = session.tracer(0, 0);
    for (int i = 0; i < 10; ++i) {
        t.instant(EventKind::ChunkExecBegin, static_cast<double>(i));
    }
    const trace::Trace merged = session.merge();
    EXPECT_EQ(merged.events.size(), 4u);
    EXPECT_EQ(merged.dropped_per_worker[0], 6);
    EXPECT_EQ(merged.dropped(), 6);
}

// ------------------------------------------------------------- exporters

trace::Trace tiny_trace() {
    trace::TraceSession session(2, 64);
    auto t0 = session.tracer(0, 0);
    auto t1 = session.tracer(1, 0);
    t0.record(EventKind::GlobalAcquire, 0.0, 0.5e-3, 0, 64);
    t0.record(EventKind::LocalPop, 0.5e-3, 0.6e-3, 0, 16, 0.02e-3);
    t0.instant(EventKind::ChunkExecBegin, 0.6e-3, 0, 16);
    t0.instant(EventKind::ChunkExecEnd, 2.0e-3, 0, 16);
    t0.instant(EventKind::Terminate, 2.1e-3);
    t1.record(EventKind::BarrierWait, 0.0, 1.0e-3);
    t1.instant(EventKind::Terminate, 2.0e-3);
    trace::Trace tr = session.merge();
    tr.meta.approach = "MPI+MPI";
    tr.meta.inter = "GSS";
    tr.meta.intra = "SS";
    tr.meta.nodes = 1;
    tr.meta.workers_per_node = 2;
    tr.meta.total_iterations = 64;
    return tr;
}

/// Minimal structural JSON check: balanced braces/brackets outside strings.
void expect_balanced_json(const std::string& s) {
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : s) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = in_string;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string) {
            continue;
        }
        if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(ExportTest, ChromeJsonStructure) {
    const trace::Trace tr = tiny_trace();
    std::ostringstream oss;
    trace::export_chrome_json(tr, oss);
    const std::string json = oss.str();
    expect_balanced_json(json);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"approach\":\"MPI+MPI\""), std::string::npos);
    // Interval events appear as complete ("X") events with microsecond ts.
    EXPECT_NE(json.find("\"name\":\"GlobalAcquire\",\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"LocalPop\",\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"BarrierWait\",\"ph\":\"X\""), std::string::npos);
    // Exec pairs appear as B/E duration events, Terminate as an instant.
    EXPECT_NE(json.find("\"name\":\"ChunkExec\",\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ChunkExec\",\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"Terminate\",\"ph\":\"i\""), std::string::npos);
    // One JSON entry per event (plus two thread_name metadata entries).
    const auto entries = [&] {
        std::size_t count = 0;
        for (std::size_t pos = json.find("\"ph\":"); pos != std::string::npos;
             pos = json.find("\"ph\":", pos + 1)) {
            ++count;
        }
        return count;
    }();
    EXPECT_EQ(entries, tr.events.size() + 2);
}

TEST(ExportTest, CsvHasOneRowPerEvent) {
    const trace::Trace tr = tiny_trace();
    std::ostringstream oss;
    trace::export_csv(tr, oss);
    const std::string csv = oss.str();
    EXPECT_EQ(csv.rfind("kind,worker,node,level,job,t0,t1,wait,a,b\n", 0), 0u);
    const auto lines = static_cast<std::size_t>(
        std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, tr.events.size() + 1);
    EXPECT_NE(csv.find("GlobalAcquire,0,0,"), std::string::npos);
}

TEST(ExportTest, AsciiGanttRendersEveryWorkerRow) {
    const trace::Trace tr = tiny_trace();
    std::ostringstream oss;
    trace::ascii_gantt(tr, oss, 40);
    const std::string gantt = oss.str();
    EXPECT_NE(gantt.find("w0  "), std::string::npos);
    EXPECT_NE(gantt.find("w1  "), std::string::npos);
    EXPECT_NE(gantt.find('#'), std::string::npos);  // worker 0 computed
    EXPECT_NE(gantt.find('.'), std::string::npos);  // worker 1 waited
}

// -------------------------------------------------------------- analysis

TEST(AnalysisTest, BreakdownMatchesHandConstructedTrace) {
    const trace::Trace tr = tiny_trace();
    const trace::TraceAnalysis a = trace::analyze(tr);
    ASSERT_EQ(a.workers.size(), 2u);
    const auto& w0 = a.workers[0];
    EXPECT_NEAR(w0.compute, 1.4e-3, 1e-12);          // 0.6ms -> 2.0ms
    EXPECT_NEAR(w0.sched_overhead, 0.6e-3, 1e-12);   // 0.5 acquire + 0.1 pop
    EXPECT_NEAR(w0.lock_wait, 0.02e-3, 1e-12);
    EXPECT_EQ(w0.chunks, 1);
    EXPECT_EQ(w0.iterations, 16);
    EXPECT_EQ(w0.global_chunks, 1);
    const auto& w1 = a.workers[1];
    EXPECT_NEAR(w1.barrier_wait, 1.0e-3, 1e-12);
    EXPECT_DOUBLE_EQ(w1.compute, 0.0);
    EXPECT_NEAR(a.makespan, 2.1e-3, 1e-12);
    EXPECT_GT(a.percent_imbalance, 0.0);
    EXPECT_GT(a.finish_cov, 0.0);
    EXPECT_EQ(a.lock_wait_stats.count, 1u);
    std::ostringstream oss;
    a.print(oss);
    EXPECT_NE(oss.str().find("makespan"), std::string::npos);
}

// ------------------------------------------------- executor integration

void check_trace_matches_report(const core::ExecutionReport& report) {
    ASSERT_TRUE(report.trace);
    const trace::Trace& tr = *report.trace;
    EXPECT_EQ(tr.dropped(), 0);
    // Every executed sub-chunk produced exactly one exec begin/end pair...
    EXPECT_EQ(tr.count(EventKind::ChunkExecEnd), report.executed_chunks());
    EXPECT_EQ(tr.count(EventKind::ChunkExecBegin), report.executed_chunks());
    // ...every global-queue chunk one successful GlobalAcquire...
    EXPECT_EQ(tr.global_chunks(), report.global_chunks());
    // ...and every worker one Terminate.
    EXPECT_EQ(tr.count(EventKind::Terminate),
              static_cast<std::int64_t>(report.workers.size()));
    // Exec events cover exactly the iteration space.
    std::int64_t iterations = 0;
    for (const auto& e : tr.events) {
        if (e.kind == EventKind::ChunkExecEnd) {
            iterations += e.b - e.a;
        }
    }
    EXPECT_EQ(iterations, report.total_iterations);
    // The analysis agrees on chunk accounting.
    const trace::TraceAnalysis a = trace::analyze(tr);
    std::int64_t chunks = 0;
    for (const auto& w : a.workers) {
        chunks += w.chunks;
    }
    EXPECT_EQ(chunks, report.executed_chunks());
}

TEST(TraceIntegrationTest, MpiMpiGssSsOn4x4EventCountsMatchReport) {
    core::HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    cfg.trace = true;
    const auto report = hdls::parallel_for(
        core::ClusterShape{4, 4}, core::Approach::MpiMpi, cfg, 2000,
        [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.executed_iterations(), 2000);
    check_trace_matches_report(report);
    EXPECT_EQ(report.trace->meta.approach, "MPI+MPI");
    EXPECT_EQ(report.trace->meta.inter, "GSS");
    EXPECT_EQ(report.trace->meta.intra, "SS");
}

TEST(TraceIntegrationTest, HybridTracingMatchesReport) {
    core::HierConfig cfg;
    cfg.inter = Technique::FAC2;
    cfg.intra = Technique::GSS;
    cfg.trace = true;
    const auto report = hdls::parallel_for(
        core::ClusterShape{2, 3}, core::Approach::MpiOpenMp, cfg, 700,
        [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.executed_iterations(), 700);
    check_trace_matches_report(report);
    EXPECT_EQ(report.trace->meta.approach, "MPI+OpenMP");
}

TEST(TraceIntegrationTest, DisabledRecorderAddsZeroEvents) {
    core::HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    cfg.trace = false;  // default, spelled out: tracing is strictly opt-in
    const auto report = hdls::parallel_for(
        core::ClusterShape{4, 4}, core::Approach::MpiMpi, cfg, 500,
        [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.executed_iterations(), 500);
    EXPECT_EQ(report.trace, nullptr);
}

TEST(TraceIntegrationTest, TinyBufferDropsAreCountedNotFatal) {
    core::HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    cfg.trace = true;
    cfg.trace_capacity = 8;  // far too small on purpose
    const auto report = hdls::parallel_for(
        core::ClusterShape{2, 2}, core::Approach::MpiMpi, cfg, 1000,
        [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.executed_iterations(), 1000);
    ASSERT_TRUE(report.trace);
    EXPECT_GT(report.trace->dropped(), 0);
    // Per-worker buffers hold at most the (rounded) capacity.
    for (int w = 0; w < report.trace->workers(); ++w) {
        EXPECT_LE(report.trace->worker_events(w).size(), 8u);
    }
}

// ------------------------------------------------------ sim integration

TEST(TraceIntegrationTest, SimulatorTracesMatchSimReport) {
    apps::WorkloadSpec spec;
    spec.kind = apps::WorkloadKind::Gaussian;
    spec.iterations = 800;
    spec.mean_seconds = 1e-4;
    spec.cov = 0.6;
    const sim::WorkloadTrace workload(apps::make_workload(spec));
    sim::ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 4;
    sim::SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::Static;
    cfg.trace = true;
    for (const sim::ExecModel model :
         {sim::ExecModel::MpiMpi, sim::ExecModel::MpiOpenMp,
          sim::ExecModel::MpiOpenMpNowait}) {
        const auto r = simulate(model, cluster, cfg, workload);
        ASSERT_TRUE(r.trace) << exec_model_name(model);
        EXPECT_EQ(r.trace->dropped(), 0) << exec_model_name(model);
        EXPECT_EQ(r.trace->count(EventKind::ChunkExecEnd), r.sub_chunks())
            << exec_model_name(model);
        EXPECT_EQ(r.trace->global_chunks(), r.global_chunks()) << exec_model_name(model);
        std::int64_t iterations = 0;
        for (const auto& e : r.trace->events) {
            if (e.kind == EventKind::ChunkExecEnd) {
                iterations += e.b - e.a;
            }
        }
        EXPECT_EQ(iterations, 800) << exec_model_name(model);
        // Virtual-time events never extend past the simulated makespan.
        EXPECT_LE(r.trace->duration(), r.parallel_time + 1e-12) << exec_model_name(model);
        EXPECT_EQ(r.trace->count(EventKind::Terminate),
                  static_cast<std::int64_t>(r.workers.size()))
            << exec_model_name(model);
    }
}

TEST(TraceIntegrationTest, SimulatorTraceOffByDefault) {
    const sim::WorkloadTrace workload(std::vector<double>(100, 1e-5));
    const auto r = simulate(sim::ExecModel::MpiMpi, sim::ClusterSpec{}, sim::SimConfig{},
                            workload);
    EXPECT_EQ(r.trace, nullptr);
}

// ------------------------------------------------------------ multi-tenant

/// One job's private session: 32 iterations of compute on worker 0, a
/// barrier wait on worker 1, all born stamped with the session's job id.
trace::Trace job_trace(int job) {
    trace::TraceSession session(2, 64, job);
    auto t0 = session.tracer(0, 0);
    auto t1 = session.tracer(1, 0);
    t0.record(EventKind::GlobalAcquire, 0.0, 0.1e-3, 0, 32);
    t0.instant(EventKind::ChunkExecBegin, 0.1e-3, 0, 32);
    t0.instant(EventKind::ChunkExecEnd, 1.0e-3, 0, 32);
    t1.record(EventKind::BarrierWait, 0.0, 0.5e-3);
    trace::Trace tr = session.merge();
    tr.meta.approach = "MPI+MPI";
    tr.meta.nodes = 1;
    tr.meta.workers_per_node = 2;
    tr.meta.total_iterations = 32;
    tr.meta.job = job;
    return tr;
}

TEST(MultiTenantTraceTest, SessionStampsEveryEventWithItsJob) {
    const trace::Trace tr = job_trace(7);
    ASSERT_FALSE(tr.events.empty());
    for (const auto& e : tr.events) {
        EXPECT_EQ(e.job, 7);
    }
    EXPECT_EQ(tr.job_events(7).size(), tr.events.size());
    EXPECT_TRUE(tr.job_events(3).empty());
}

TEST(MultiTenantTraceTest, MergeRealignsTagsAndSplits) {
    const trace::Trace ta = job_trace(0);
    const trace::Trace tb = job_trace(1);
    const trace::Trace merged = trace::merge_job_traces({
        {0, "alpha", &ta, 0.0},
        {1, "beta", &tb, 0.4e-3},  // beta submitted 0.4ms later
    });
    ASSERT_EQ(merged.meta.jobs.size(), 2u);
    EXPECT_EQ(merged.meta.jobs[0].second, "alpha");
    EXPECT_EQ(merged.meta.jobs[1].second, "beta");
    EXPECT_EQ(merged.events.size(), ta.events.size() + tb.events.size());
    EXPECT_EQ(merged.job_events(0).size(), ta.events.size());
    EXPECT_EQ(merged.job_events(1).size(), tb.events.size());
    // beta's events are shifted by its offset relative to alpha's.
    const auto alpha_events = merged.job_events(0);
    const auto beta_events = merged.job_events(1);
    EXPECT_NEAR(alpha_events.front().t0, 0.0, 1e-12);
    EXPECT_NEAR(beta_events.front().t0, 0.4e-3, 1e-12);
    // Sorted by t0 across jobs after the merge.
    for (std::size_t i = 1; i < merged.events.size(); ++i) {
        EXPECT_LE(merged.events[i - 1].t0, merged.events[i].t0);
    }
}

TEST(MultiTenantTraceTest, AnalyzeBreaksDownPerJob) {
    const trace::Trace ta = job_trace(0);
    const trace::Trace tb = job_trace(1);
    const trace::Trace merged = trace::merge_job_traces({
        {0, "alpha", &ta, 0.0},
        {1, "beta", &tb, 0.2e-3},
    });
    const trace::TraceAnalysis a = trace::analyze(merged);
    ASSERT_EQ(a.jobs.size(), 2u);
    for (const auto& jb : a.jobs) {
        EXPECT_EQ(jb.iterations, 32);
        EXPECT_EQ(jb.chunks, 1);
        EXPECT_EQ(jb.workers, 2);
        EXPECT_NEAR(jb.compute, 0.9e-3, 1e-9);
        EXPECT_GT(jb.sched_overhead, 0.0);
        EXPECT_GT(jb.barrier_wait, 0.0);
    }
    EXPECT_EQ(a.jobs[0].name, "alpha");
    EXPECT_EQ(a.jobs[1].name, "beta");
    std::ostringstream oss;
    a.print(oss);
    EXPECT_NE(oss.str().find("per-job breakdown"), std::string::npos);
    // Single-tenant traces keep the analysis job-free.
    const trace::TraceAnalysis solo = trace::analyze(tiny_trace());
    EXPECT_TRUE(solo.jobs.empty());
}

TEST(MultiTenantTraceTest, ChromeExportGroupsByJob) {
    const trace::Trace ta = job_trace(0);
    const trace::Trace tb = job_trace(1);
    const trace::Trace merged = trace::merge_job_traces({
        {0, "alpha", &ta, 0.0},
        {1, "beta", &tb, 0.1e-3},
    });
    std::ostringstream oss;
    trace::export_chrome_json(merged, oss);
    const std::string json = oss.str();
    expect_balanced_json(json);
    // Jobs become Chrome processes, named after the job.
    EXPECT_NE(json.find("job 0: alpha"), std::string::npos);
    EXPECT_NE(json.find("job 1: beta"), std::string::npos);
    // Work events carry their job id as an argument.
    EXPECT_NE(json.find("\"job\":0"), std::string::npos);
    EXPECT_NE(json.find("\"job\":1"), std::string::npos);
    // The CSV gains the job column per event row.
    std::ostringstream csv_oss;
    trace::export_csv(merged, csv_oss);
    EXPECT_NE(csv_oss.str().find("GlobalAcquire,0,0,0,1,"), std::string::npos);
}

TEST(MultiTenantTraceTest, RealRunsMergeEndToEnd) {
    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 2;
    core::HierConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::Static;
    cfg.trace = true;
    const auto run = [&](int job, std::int64_t n) {
        core::RunOptions opts;
        opts.job = job;
        return core::run_hierarchical(shape, core::Approach::MpiMpi, cfg, n,
                                      [](std::int64_t, std::int64_t) {}, opts);
    };
    const auto ra = run(0, 300);
    const auto rb = run(1, 200);
    ASSERT_NE(ra.trace, nullptr);
    ASSERT_NE(rb.trace, nullptr);

    const trace::Trace merged = trace::merge_job_traces({
        {0, "first", ra.trace.get(), 0.0},
        {1, "second", rb.trace.get(), 1e-3},
    });
    const trace::TraceAnalysis a = trace::analyze(merged);
    ASSERT_EQ(a.jobs.size(), 2u);
    EXPECT_EQ(a.jobs[0].iterations, 300);
    EXPECT_EQ(a.jobs[1].iterations, 200);
    EXPECT_EQ(a.jobs[0].name, "first");
    EXPECT_EQ(a.jobs[1].name, "second");
}

}  // namespace
