/// \file test_prefetch.cpp
/// Asynchronous chunk prefetching: the nonblocking window request
/// primitive, exact-tiling/replay-parity across the technique x depth x
/// backend grid (prefetch on vs off), termination with a prefetched chunk
/// outstanding, the HDLS_PREFETCH knob, trace hit/miss accounting, and the
/// simulators' overlap-aware pricing (deterministic, never slower, chunk
/// sequences unchanged). Plus the bench JSON report schema.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/json_report.hpp"
#include "core/hdls.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace {

using hdls::core::Approach;
using hdls::core::ClusterShape;
using hdls::core::HierConfig;
using hdls::core::LevelConfig;
using hdls::dls::InterBackend;
using hdls::dls::Technique;
using minimpi::TopologyLevel;

// ---------------------------------------------------------------- minimpi --

TEST(AtomicUpdateRequestTest, EmptyRequestIsComplete) {
    minimpi::AtomicUpdateRequest<std::int64_t> req;
    EXPECT_TRUE(req.done());
    EXPECT_TRUE(req.test());
    EXPECT_EQ(req.wait(), 0);
}

TEST(AtomicUpdateRequestTest, StartTestWaitAppliesTheTransform) {
    minimpi::Runtime::run(2, [](minimpi::Context& ctx) {
        const minimpi::Comm& w = ctx.world();
        minimpi::Window win = minimpi::Window::allocate_shared(
            w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 40;
        }
        w.barrier();
        if (ctx.rank() == 1) {
            auto req = win.start_atomic_update<std::int64_t>(
                0, 0, [](std::int64_t v) { return v + 2; });
            EXPECT_FALSE(req.done());
            const std::int64_t applied_to = req.wait();
            EXPECT_TRUE(req.done());
            EXPECT_EQ(applied_to, 40);
            EXPECT_EQ(req.result(), 40);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0), 42);
            // Completing an already-complete request is a no-op.
            EXPECT_TRUE(req.test());
            EXPECT_EQ(req.wait(), 40);
        }
        w.barrier();
        win.free();
    });
}

TEST(AtomicUpdateRequestTest, OutOfRangeAccessThrowsAtIssueTime) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        const minimpi::Comm& w = ctx.world();
        minimpi::Window win = minimpi::Window::allocate_shared(w, sizeof(std::int64_t));
        EXPECT_THROW((void)win.start_atomic_update<std::int64_t>(
                         0, 99, [](std::int64_t v) { return v; }),
                     minimpi::Error);
        w.barrier();
        win.free();
    });
}

TEST(AtomicUpdateRequestTest, ConcurrentRequestsLoseNoUpdate) {
    constexpr int kRanks = 8;
    constexpr int kUpdates = 500;
    minimpi::Runtime::run(kRanks, [](minimpi::Context& ctx) {
        const minimpi::Comm& w = ctx.world();
        minimpi::Window win = minimpi::Window::allocate_shared(
            w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 0;
        }
        w.barrier();
        for (int i = 0; i < kUpdates; ++i) {
            auto req = win.start_atomic_update<std::int64_t>(
                0, 0, [](std::int64_t v) { return v + 1; });
            (void)req.wait();
        }
        w.barrier();
        if (ctx.rank() == 0) {
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0),
                      static_cast<std::int64_t>(kRanks) * kUpdates);
        }
        w.barrier();
        win.free();
    });
}

// ------------------------------------------------------- real executors ----

/// Runs the loop and asserts every iteration executed exactly once.
void expect_exact_tiling(const ClusterShape& shape, Approach approach, const HierConfig& cfg,
                         std::int64_t n) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    const auto report = hdls::parallel_for(shape, approach, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               for (std::int64_t i = b; i < e; ++i) {
                                                   hits[static_cast<std::size_t>(i)]
                                                       .fetch_add(1, std::memory_order_relaxed);
                                               }
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "iteration " << i << " (prefetch=" << cfg.prefetch << ")";
    }
}

/// Executes the loop and returns the sorted multiset of leaf sub-chunks.
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> executed_chunks(
    const ClusterShape& shape, const HierConfig& cfg, std::int64_t n) {
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    const auto report = hdls::parallel_for(shape, Approach::MpiMpi, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               const std::lock_guard<std::mutex> lock(mu);
                                               chunks.emplace_back(b, e);
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(PrefetchParityTest, PrefetchedRunsYieldTheSynchronousChunkMultiset) {
    // Centralized backends produce run-invariant chunk multisets (the step
    // counter serializes size decisions), so prefetch on vs off must match
    // exactly — the double buffer only reorders *who* pops, never *what*.
    struct Case {
        ClusterShape shape;
        std::vector<TopologyLevel> tree;
        std::vector<LevelConfig> levels;
    };
    const std::vector<Case> cases = {
        {{4, 4}, {}, {}},  // classic two-level defaults (GSS+GSS)
        {{3, 2},
         {{"nodes", 3}, {"cores", 2}},
         {{Technique::TSS, std::nullopt}, {Technique::SS, std::nullopt}}},
        {{4, 2},
         {{"nodes", 4}, {"cores", 2}},
         {{Technique::WF, std::nullopt}, {Technique::GSS, std::nullopt}}},
        {{6, 2},
         {{"racks", 2}, {"nodes", 3}, {"cores", 2}},
         {{Technique::FAC2, std::nullopt},
          {Technique::GSS, std::nullopt},
          {Technique::SS, std::nullopt}}},
    };
    for (const Case& c : cases) {
        for (const std::int64_t n : {std::int64_t{103}, std::int64_t{3000}}) {
            HierConfig off;
            off.topology = c.tree;
            off.levels = c.levels;
            HierConfig on = off;
            on.prefetch = true;
            SCOPED_TRACE("depth=" + std::to_string(std::max<std::size_t>(c.tree.size(), 2)) +
                         " n=" + std::to_string(n));
            EXPECT_EQ(executed_chunks(c.shape, on, n), executed_chunks(c.shape, off, n));
        }
    }
}

TEST(PrefetchTilingTest, ExactTilingAcrossBackendsDepthsAndApproaches) {
    // The sharded backends steal nondeterministically, so the multiset is
    // run-dependent — the invariant is exact tiling, prefetch on or off.
    struct Case {
        ClusterShape shape;
        Approach approach;
        std::vector<TopologyLevel> tree;
        std::vector<LevelConfig> levels;
    };
    const std::vector<Case> cases = {
        {{4, 3}, Approach::MpiMpi, {}, {}},
        // sharded root
        {{4, 2},
         Approach::MpiMpi,
         {{"nodes", 4}, {"cores", 2}},
         {{Technique::GSS, InterBackend::Sharded}, {Technique::SS, std::nullopt}}},
        // depth 3 with a sharded middle relay
        {{6, 3},
         Approach::MpiMpi,
         {{"racks", 3}, {"nodes", 2}, {"cores", 3}},
         {{Technique::TSS, std::nullopt},
          {Technique::GSS, InterBackend::Sharded},
          {Technique::GSS, std::nullopt}}},
        // depth 4, mixed backends
        {{8, 2},
         Approach::MpiMpi,
         {{"racks", 2}, {"nodes", 2}, {"sockets", 2}, {"cores", 2}},
         {{Technique::GSS, InterBackend::Sharded},
          {Technique::FAC2, InterBackend::Sharded},
          {Technique::GSS, std::nullopt},
          {Technique::SS, std::nullopt}}},
        // hybrid executor over a deep tree (prefetch rides the relay chain)
        {{6, 4},
         Approach::MpiOpenMp,
         {{"racks", 2}, {"nodes", 3}, {"cores", 4}},
         {{Technique::FAC2, std::nullopt},
          {Technique::GSS, std::nullopt},
          {Technique::GSS, std::nullopt}}},
    };
    for (const Case& c : cases) {
        for (const std::int64_t n : {std::int64_t{0}, std::int64_t{1}, std::int64_t{103},
                                     std::int64_t{1500}}) {
            HierConfig cfg;
            cfg.topology = c.tree;
            cfg.levels = c.levels;
            cfg.prefetch = true;
            SCOPED_TRACE("n=" + std::to_string(n));
            expect_exact_tiling(c.shape, c.approach, cfg, n);
        }
    }
}

TEST(PrefetchTilingTest, AdaptiveRootKeepsFeedbackOrderingAndTiles) {
    // AWF-* roots gate the prefetcher off the refill boundary; the run must
    // still tile exactly and terminate (slot-only prefetching).
    for (const Technique inter : {Technique::AWFB, Technique::AWFD}) {
        HierConfig cfg;
        cfg.inter = inter;
        cfg.intra = Technique::GSS;
        cfg.prefetch = true;
        SCOPED_TRACE(std::string(hdls::dls::technique_name(inter)));
        expect_exact_tiling(ClusterShape{4, 4}, Approach::MpiMpi, cfg, 2000);
    }
}

TEST(PrefetchTerminationTest, TerminatesWithAPrefetchedChunkOutstanding) {
    // Tiny loops: the last chunk is routinely sitting in somebody's
    // prefetch slot while every other rank runs the termination protocol
    // (queue drained, no refill in flight, parent dry). The run must not
    // hang, lose the slot's chunk, or double-execute it — across enough
    // repetitions to hit the race windows.
    for (int rep = 0; rep < 20; ++rep) {
        for (const std::int64_t n : {std::int64_t{1}, std::int64_t{2}, std::int64_t{7}}) {
            HierConfig cfg;
            cfg.inter = Technique::SS;  // one root chunk per acquisition
            cfg.intra = Technique::SS;
            cfg.prefetch = true;
            expect_exact_tiling(ClusterShape{2, 2}, Approach::MpiMpi, cfg, n);
        }
    }
    // A slow last chunk: one rank executes while its peers terminate
    // against the raised-and-resolved refill announcements.
    HierConfig cfg;
    cfg.inter = Technique::SS;
    cfg.intra = Technique::SS;
    cfg.prefetch = true;
    std::atomic<std::int64_t> sum{0};
    const auto report = hdls::parallel_for(
        ClusterShape{2, 2}, Approach::MpiMpi, cfg, 9, [&](std::int64_t b, std::int64_t e) {
            if (b >= 8) {
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            }
            sum.fetch_add(e - b);
        });
    EXPECT_EQ(report.executed_iterations(), 9);
    EXPECT_EQ(sum.load(), 9);
}

TEST(PrefetchEnvTest, HdlsPrefetchParsesStrictly) {
    using hdls::core::prefetch_from_env;
    ::unsetenv("HDLS_PREFETCH");
    EXPECT_FALSE(prefetch_from_env());
    EXPECT_TRUE(prefetch_from_env(true));  // fallback when unset
    ::setenv("HDLS_PREFETCH", "1", 1);
    EXPECT_TRUE(prefetch_from_env());
    ::setenv("HDLS_PREFETCH", "on", 1);
    EXPECT_TRUE(prefetch_from_env());
    ::setenv("HDLS_PREFETCH", "FALSE", 1);
    EXPECT_FALSE(prefetch_from_env(true));
    ::setenv("HDLS_PREFETCH", "0", 1);
    EXPECT_FALSE(prefetch_from_env(true));
    ::setenv("HDLS_PREFETCH", "maybe", 1);
    EXPECT_THROW((void)prefetch_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_PREFETCH");
}

TEST(PrefetchTraceTest, EveryAcquireRecordsOneHitOrMiss) {
    HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::GSS;
    cfg.prefetch = true;
    cfg.trace = true;
    cfg.trace_capacity = 1 << 16;
    std::atomic<std::int64_t> sum{0};
    const auto report = hdls::parallel_for(ClusterShape{2, 4}, Approach::MpiMpi, cfg, 4000,
                                           [&](std::int64_t b, std::int64_t e) {
                                               sum.fetch_add(e - b);
                                           });
    EXPECT_EQ(sum.load(), 4000);
    ASSERT_NE(report.trace, nullptr);
    ASSERT_EQ(report.trace->dropped(), 0);
    EXPECT_TRUE(report.prefetch);

    std::int64_t hits = 0;
    std::int64_t misses = 0;
    for (const auto& e : report.trace->events) {
        if (e.kind == hdls::trace::EventKind::Prefetch) {
            (e.a != 0 ? hits : misses) += 1;
            EXPECT_GE(e.wait, 0.0);
        }
    }
    // One Prefetch outcome per chunk the top source handed out.
    EXPECT_EQ(hits + misses, report.executed_chunks());
    EXPECT_GT(hits, 0);    // steady state serves from the slot
    EXPECT_GT(misses, 0);  // each rank's first acquire has an empty slot

    const auto analysis = hdls::trace::analyze(*report.trace);
    EXPECT_EQ(analysis.prefetch_hits, hits);
    EXPECT_EQ(analysis.prefetch_misses, misses);
    EXPECT_GE(analysis.prefetch_hidden_seconds, 0.0);
    EXPECT_GT(analysis.prefetch_hit_rate(), 0.0);
    EXPECT_LE(analysis.prefetch_hit_rate(), 1.0);
}

TEST(PrefetchTraceTest, DisabledRunsRecordNoPrefetchEvents) {
    HierConfig cfg;
    cfg.trace = true;
    const auto report = hdls::parallel_for(ClusterShape{2, 2}, Approach::MpiMpi, cfg, 500,
                                           [](std::int64_t, std::int64_t) {});
    ASSERT_NE(report.trace, nullptr);
    EXPECT_FALSE(report.prefetch);
    for (const auto& e : report.trace->events) {
        EXPECT_NE(e.kind, hdls::trace::EventKind::Prefetch);
    }
    const auto analysis = hdls::trace::analyze(*report.trace);
    EXPECT_EQ(analysis.prefetch_hits + analysis.prefetch_misses, 0);
}

// ------------------------------------------------------------- simulator ---

TEST(PrefetchSimTest, PricesAreDeterministicAndSequencesUnchanged) {
    using namespace hdls::sim;
    const WorkloadTrace load(std::vector<double>(6000, 2e-5));
    ClusterSpec cluster;
    cluster.nodes = 8;
    cluster.workers_per_node = 4;
    for (const ExecModel model : {ExecModel::MpiMpi, ExecModel::MpiOpenMp}) {
        SimConfig off;
        off.inter = Technique::SS;
        off.intra = model == ExecModel::MpiOpenMp ? Technique::Static : Technique::GSS;
        off.min_chunk = 8;
        SimConfig on = off;
        on.prefetch = true;
        const SimReport a = simulate(model, cluster, on, load);
        const SimReport b = simulate(model, cluster, on, load);
        const SimReport sync = simulate(model, cluster, off, load);
        SCOPED_TRACE(exec_model_name(model));
        // Deterministic prices.
        EXPECT_DOUBLE_EQ(a.parallel_time, b.parallel_time);
        EXPECT_EQ(a.global_chunks(), b.global_chunks());
        // Overlap changes pricing, not scheduling: same chunk totals.
        EXPECT_EQ(a.executed_iterations(), sync.executed_iterations());
        EXPECT_EQ(a.global_chunks(), sync.global_chunks());
        EXPECT_EQ(a.sub_chunks(), sync.sub_chunks());
        if (model == ExecModel::MpiOpenMp) {
            // Depth-2 hybrid: the funneled master has no relay chain to
            // prefetch through — the engine mirrors the real executor's
            // no-op gating exactly.
            EXPECT_DOUBLE_EQ(a.parallel_time, sync.parallel_time);
        } else {
            // Hiding latency behind compute can only help an
            // acquisition-heavy run whose chunks out-compute the RMA
            // latency.
            EXPECT_LT(a.parallel_time, sync.parallel_time);
        }
    }
}

TEST(PrefetchSimTest, TracesCarryHitsAndHiddenTime) {
    using namespace hdls::sim;
    const WorkloadTrace load(std::vector<double>(4000, 5e-5));
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    SimConfig cfg;
    cfg.inter = Technique::SS;
    cfg.intra = Technique::GSS;
    cfg.min_chunk = 8;
    cfg.prefetch = true;
    cfg.trace = true;
    const SimReport r = simulate(ExecModel::MpiMpi, cluster, cfg, load);
    ASSERT_NE(r.trace, nullptr);
    const auto analysis = hdls::trace::analyze(*r.trace);
    EXPECT_GT(analysis.prefetch_hits, 0);
    EXPECT_GT(analysis.prefetch_hidden_seconds, 0.0);
    EXPECT_GT(analysis.prefetch_hit_rate(), 0.5);  // 400us chunks vs us-scale RMA
}

TEST(PrefetchSimTest, AdaptiveRootsAreNeverDiscounted) {
    using namespace hdls::sim;
    const WorkloadTrace load(std::vector<double>(3000, 1e-5));
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    SimConfig cfg;
    cfg.inter = Technique::AWFB;
    cfg.intra = Technique::GSS;
    cfg.prefetch = true;
    cfg.trace = true;
    const SimReport on = simulate(ExecModel::MpiMpi, cluster, cfg, load);
    SimConfig off = cfg;
    off.prefetch = false;
    const SimReport sync = simulate(ExecModel::MpiMpi, cluster, off, load);
    // The feedback-ordering gate: identical prices and no Prefetch events.
    EXPECT_DOUBLE_EQ(on.parallel_time, sync.parallel_time);
    ASSERT_NE(on.trace, nullptr);
    for (const auto& e : on.trace->events) {
        EXPECT_NE(e.kind, hdls::trace::EventKind::Prefetch);
    }
}

TEST(PrefetchSimTest, DeepTreesBenefitInBothEngines) {
    using namespace hdls::sim;
    const WorkloadTrace load(std::vector<double>(8000, 4e-5));
    ClusterSpec cluster;
    cluster.nodes = 8;
    cluster.workers_per_node = 4;
    cluster.tree = {{"racks", 2}, {"nodes", 4}, {"cores", 4}};
    for (const ExecModel model : {ExecModel::MpiMpi, ExecModel::MpiOpenMp}) {
        SimConfig cfg;
        cfg.levels = {{Technique::FAC2, std::nullopt},
                      {Technique::SS, std::nullopt},
                      {model == ExecModel::MpiOpenMp ? Technique::Static : Technique::GSS,
                       std::nullopt}};
        cfg.min_chunk = 8;
        SimConfig on = cfg;
        on.prefetch = true;
        const SimReport sync = simulate(model, cluster, cfg, load);
        const SimReport pre = simulate(model, cluster, on, load);
        SCOPED_TRACE(exec_model_name(model));
        EXPECT_EQ(pre.executed_iterations(), 8000);
        EXPECT_LE(pre.parallel_time, sync.parallel_time);
    }
}

// ------------------------------------------------------------ json report --

TEST(JsonReportTest, RendersParamsPointsAndSummaryStats) {
    hdls::bench::JsonReport report("bench_unit_test");
    report.add_param("scale", 0.5);
    report.add_param("label", "a \"quoted\" value");
    report.point()
        .label("nodes", std::int64_t{32})
        .sample("t_s", 1.0)
        .sample("t_s", 3.0)
        .sample("t_s", 2.0);
    const std::string doc = report.render();
    EXPECT_NE(doc.find("\"name\":\"bench_unit_test\""), std::string::npos);
    EXPECT_NE(doc.find("\"scale\":\"0.5\""), std::string::npos);
    EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(doc.find("\"nodes\":\"32\""), std::string::npos);
    // util::summarize over {1,3,2}: median 2, count 3, min 1, max 3.
    EXPECT_NE(doc.find("\"count\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"median\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"min\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"max\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"values\":[1,3,2]"), std::string::npos);
}

TEST(JsonReportTest, WriteFailureThrows) {
    hdls::bench::JsonReport report("bench_unit_test");
    EXPECT_THROW(report.write("/nonexistent-dir/nope.json"), std::runtime_error);
}

}  // namespace
