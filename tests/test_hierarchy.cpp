/// \file test_hierarchy.cpp
/// Arbitrary-depth scheduling hierarchies: exact tiling across the
/// depth x technique x fan-out grid, depth-2 replay parity with the
/// classic two-level configuration, per-level trace tagging, and the
/// simulator's deep-tree engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "core/hdls.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace {

using hdls::core::Approach;
using hdls::core::ClusterShape;
using hdls::core::HierConfig;
using hdls::core::LevelConfig;
using hdls::dls::InterBackend;
using hdls::dls::Technique;
using minimpi::TopologyLevel;

/// Runs the loop and asserts every iteration executed exactly once.
void expect_exact_tiling(const ClusterShape& shape, Approach approach, const HierConfig& cfg,
                         std::int64_t n) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    const auto report = hdls::parallel_for(shape, approach, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               for (std::int64_t i = b; i < e; ++i) {
                                                   hits[static_cast<std::size_t>(i)]
                                                       .fetch_add(1, std::memory_order_relaxed);
                                               }
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "iteration " << i << " under depth " << report.topology.size();
    }
}

/// Executes the loop and returns the sorted multiset of leaf sub-chunks.
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> executed_chunks(
    const ClusterShape& shape, const HierConfig& cfg, std::int64_t n) {
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    const auto report = hdls::parallel_for(shape, Approach::MpiMpi, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               const std::lock_guard<std::mutex> lock(mu);
                                               chunks.emplace_back(b, e);
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(HierarchyResolveTest, DefaultsToTheClassicTwoLevelTree) {
    HierConfig cfg;
    cfg.inter = Technique::TSS;
    cfg.intra = Technique::SS;
    const auto rh = hdls::core::resolve_hierarchy(ClusterShape{4, 8}, cfg);
    ASSERT_EQ(rh.depth(), 2);
    EXPECT_EQ(rh.tree[0].fan_out, 4);
    EXPECT_EQ(rh.tree[1].fan_out, 8);
    ASSERT_EQ(rh.levels.size(), 2u);
    EXPECT_EQ(rh.levels[0].technique, Technique::TSS);
    EXPECT_EQ(rh.levels[1].technique, Technique::SS);
    EXPECT_FALSE(rh.levels[1].backend.has_value());
}

TEST(HierarchyResolveTest, RejectsInconsistentTrees) {
    HierConfig cfg;
    cfg.topology = {{"racks", 2}, {"nodes", 2}, {"cores", 4}};
    // Product 16 != 2 * 4 = 8 workers.
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{2, 4}, cfg),
                 std::invalid_argument);
    // Innermost fan-out must equal workers_per_node.
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{4, 2}, cfg),
                 std::invalid_argument);
    // Fan-out < 1.
    cfg.topology = {{"nodes", 0}, {"cores", 4}};
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{0, 4}, cfg),
                 std::invalid_argument);
    // A single level is not a hierarchy.
    cfg.topology = {{"cores", 8}};
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{1, 8}, cfg),
                 std::invalid_argument);
    // Level-config count must match the depth.
    cfg.topology = {{"racks", 2}, {"nodes", 2}, {"cores", 2}};
    cfg.levels = {{Technique::GSS, std::nullopt}, {Technique::GSS, std::nullopt}};
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{4, 2}, cfg),
                 std::invalid_argument);
    // An interior level needs a step-indexed or sharded form (FAC has
    // neither).
    cfg.levels = {{Technique::GSS, std::nullopt},
                  {Technique::FAC, std::nullopt},
                  {Technique::GSS, std::nullopt}};
    EXPECT_THROW((void)hdls::core::resolve_hierarchy(ClusterShape{4, 2}, cfg),
                 std::invalid_argument);
}

TEST(HierarchyResolveTest, ShardedFallsBackPerLevel) {
    HierConfig cfg;
    cfg.topology = {{"racks", 2}, {"nodes", 2}, {"cores", 2}};
    cfg.inter_backend = InterBackend::Sharded;
    // WF has a sharded form; AWF-B does not and must fall back at level 0.
    cfg.levels = {{Technique::AWFB, std::nullopt},
                  {Technique::WF, std::nullopt},
                  {Technique::SS, std::nullopt}};
    const auto rh = hdls::core::resolve_hierarchy(ClusterShape{4, 2}, cfg);
    EXPECT_EQ(rh.levels[0].backend, InterBackend::Centralized);
    EXPECT_EQ(rh.levels[1].backend, InterBackend::Sharded);
}

TEST(HierarchyGridTest, ExactTilingAcrossDepthsTechniquesAndFanOuts) {
    struct Case {
        ClusterShape shape;
        std::vector<TopologyLevel> tree;
        std::vector<LevelConfig> levels;
    };
    const std::vector<Case> cases = {
        // depth 2 (the classic pair, via the explicit-tree path)
        {{3, 2}, {{"nodes", 3}, {"cores", 2}}, {{Technique::GSS, std::nullopt},
                                                {Technique::SS, std::nullopt}}},
        // depth 3, even fan-outs, centralized middle
        {{6, 2},
         {{"racks", 2}, {"nodes", 3}, {"cores", 2}},
         {{Technique::FAC2, std::nullopt},
          {Technique::GSS, std::nullopt},
          {Technique::SS, std::nullopt}}},
        // depth 3, uneven fan-outs, sharded middle (work stealing between
        // sibling nodes of a rack)
        {{6, 3},
         {{"racks", 3}, {"nodes", 2}, {"cores", 3}},
         {{Technique::TSS, std::nullopt},
          {Technique::GSS, InterBackend::Sharded},
          {Technique::GSS, std::nullopt}}},
        // depth 3, WF root (remaining-based) over a STATIC relay
        {{4, 2},
         {{"racks", 2}, {"nodes", 2}, {"cores", 2}},
         {{Technique::WF, std::nullopt},
          {Technique::Static, std::nullopt},
          {Technique::GSS, std::nullopt}}},
        // depth 4, mixed backends in the middle levels
        {{8, 2},
         {{"racks", 2}, {"nodes", 2}, {"sockets", 2}, {"cores", 2}},
         {{Technique::GSS, std::nullopt},
          {Technique::FAC2, InterBackend::Sharded},
          {Technique::GSS, std::nullopt},
          {Technique::SS, std::nullopt}}},
        // depth 4, sharded root + sharded socket level
        {{8, 2},
         {{"racks", 2}, {"nodes", 2}, {"sockets", 2}, {"cores", 2}},
         {{Technique::GSS, InterBackend::Sharded},
          {Technique::TSS, std::nullopt},
          {Technique::WF, InterBackend::Sharded},
          {Technique::GSS, std::nullopt}}},
    };
    for (const Case& c : cases) {
        for (const std::int64_t n : {std::int64_t{0}, std::int64_t{1}, std::int64_t{103},
                                     std::int64_t{1500}}) {
            HierConfig cfg;
            cfg.topology = c.tree;
            cfg.levels = c.levels;
            SCOPED_TRACE("depth=" + std::to_string(c.tree.size()) +
                         " n=" + std::to_string(n));
            expect_exact_tiling(c.shape, Approach::MpiMpi, cfg, n);
        }
    }
}

TEST(HierarchyGridTest, HybridExecutorRunsDeepTrees) {
    HierConfig cfg;
    cfg.topology = {{"racks", 2}, {"nodes", 3}, {"cores", 4}};
    cfg.levels = {{Technique::FAC2, std::nullopt},
                  {Technique::GSS, std::nullopt},
                  {Technique::GSS, std::nullopt}};
    expect_exact_tiling(ClusterShape{6, 4}, Approach::MpiOpenMp, cfg, 1203);
    cfg.levels[1].backend = InterBackend::Sharded;
    expect_exact_tiling(ClusterShape{6, 4}, Approach::MpiOpenMp, cfg, 777);
}

TEST(HierarchyParityTest, ExplicitDepthTwoReproducesTheClassicChunks) {
    // The {nodes, cores} tree with per-level configs must produce exactly
    // the chunk multiset of the implicit two-level configuration — the
    // refactor's "the old path falls out as the depth-2 special case".
    const ClusterShape shape{4, 4};
    constexpr std::int64_t kN = 3000;
    const std::vector<std::pair<Technique, Technique>> combos = {
        {Technique::GSS, Technique::SS},
        {Technique::TSS, Technique::FAC2},
        {Technique::Static, Technique::GSS},
        {Technique::WF, Technique::GSS},  // remaining-based root
    };
    for (const auto& [inter, intra] : combos) {
        HierConfig classic;
        classic.inter = inter;
        classic.intra = intra;
        const auto expected = executed_chunks(shape, classic, kN);

        HierConfig explicit_cfg;
        explicit_cfg.topology = {{"nodes", 4}, {"cores", 4}};
        explicit_cfg.levels = {{inter, std::nullopt}, {intra, std::nullopt}};
        const auto actual = executed_chunks(shape, explicit_cfg, kN);
        EXPECT_EQ(actual, expected)
            << hdls::dls::technique_name(inter) << "+" << hdls::dls::technique_name(intra);
    }
}

TEST(HierarchyTraceTest, EventsCarryLevelsAndAnalysisBreaksThemDown) {
    HierConfig cfg;
    cfg.topology = {{"racks", 2}, {"nodes", 2}, {"cores", 3}};
    cfg.levels = {{Technique::FAC2, std::nullopt},
                  {Technique::GSS, InterBackend::Sharded},
                  {Technique::SS, std::nullopt}};
    cfg.trace = true;
    std::atomic<std::int64_t> sum{0};
    const auto report = hdls::parallel_for(ClusterShape{4, 3}, Approach::MpiMpi, cfg, 900,
                                           [&](std::int64_t b, std::int64_t e) {
                                               sum.fetch_add(e - b);
                                           });
    ASSERT_NE(report.trace, nullptr);
    EXPECT_EQ(sum.load(), 900);
    ASSERT_EQ(report.topology.size(), 3u);

    bool saw_level0_acquire = false;
    bool saw_level1_pull = false;
    bool saw_leaf_pop = false;
    for (const auto& e : report.trace->events) {
        switch (e.kind) {
            case hdls::trace::EventKind::GlobalAcquire:
            case hdls::trace::EventKind::Steal:
                EXPECT_GE(e.level, 0);
                EXPECT_LE(e.level, 2);
                saw_level0_acquire |= e.level == 0 && e.b > 0;
                saw_level1_pull |= e.level == 1 && e.b > 0;
                break;
            case hdls::trace::EventKind::LocalPop:
                EXPECT_GE(e.level, 1);
                saw_leaf_pop |= e.level == 2 && e.a >= 0;
                break;
            default:
                break;
        }
    }
    EXPECT_TRUE(saw_level0_acquire);
    EXPECT_TRUE(saw_level1_pull);
    EXPECT_TRUE(saw_leaf_pop);

    const auto analysis = hdls::trace::analyze(*report.trace);
    ASSERT_GE(analysis.levels.size(), 3u);
    EXPECT_EQ(analysis.levels[0].level, 0);
    EXPECT_GT(analysis.levels[0].acquires, 0);
    EXPECT_GT(analysis.levels[1].acquires, 0);
    EXPECT_GT(analysis.levels[2].pops, 0);
}

TEST(HierarchySimTest, DeepTreesTileDeterministicallyInBothEngines) {
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 6;
    cluster.workers_per_node = 4;
    cluster.tree = {{"racks", 2}, {"nodes", 3}, {"cores", 4}};
    cluster.costs.level_rma_us = {6.0, 3.0};
    const WorkloadTrace load(std::vector<double>(4000, 5e-6));

    for (const ExecModel model : {ExecModel::MpiMpi, ExecModel::MpiOpenMp}) {
        for (const InterBackend mid : {InterBackend::Centralized, InterBackend::Sharded}) {
            SimConfig config;
            config.levels = {{Technique::FAC2, std::nullopt},
                             {Technique::GSS, mid},
                             {Technique::GSS, std::nullopt}};
            config.trace = true;
            const SimReport a = simulate(model, cluster, config, load);
            const SimReport b = simulate(model, cluster, config, load);
            EXPECT_EQ(a.executed_iterations(), 4000);
            EXPECT_DOUBLE_EQ(a.parallel_time, b.parallel_time);
            EXPECT_EQ(a.global_chunks(), b.global_chunks());
            ASSERT_NE(a.trace, nullptr);
            bool saw_mid_level = false;
            for (const auto& e : a.trace->events) {
                if ((e.kind == hdls::trace::EventKind::GlobalAcquire ||
                     e.kind == hdls::trace::EventKind::Steal) &&
                    e.level == 1 && e.b > 0) {
                    saw_mid_level = true;
                    break;
                }
            }
            EXPECT_TRUE(saw_mid_level)
                << exec_model_name(model) << " mid=" << hdls::dls::inter_backend_name(mid);
        }
    }
}

TEST(HierarchySimTest, ExplicitDepthTwoMatchesTheClassicSimExactly) {
    using namespace hdls::sim;
    const WorkloadTrace load(std::vector<double>(3000, 2e-6));
    ClusterSpec classic;
    classic.nodes = 4;
    classic.workers_per_node = 4;
    SimConfig config;
    config.inter = Technique::GSS;
    config.intra = Technique::SS;

    ClusterSpec tree = classic;
    tree.tree = {{"nodes", 4}, {"cores", 4}};
    SimConfig levels = config;
    levels.levels = {{Technique::GSS, std::nullopt}, {Technique::SS, std::nullopt}};

    for (const ExecModel model :
         {ExecModel::MpiMpi, ExecModel::MpiOpenMp, ExecModel::MpiOpenMpNowait}) {
        const SimReport a = simulate(model, classic, config, load);
        const SimReport b = simulate(model, tree, levels, load);
        EXPECT_DOUBLE_EQ(a.parallel_time, b.parallel_time) << exec_model_name(model);
        EXPECT_EQ(a.global_chunks(), b.global_chunks());
        EXPECT_EQ(a.sub_chunks(), b.sub_chunks());
        EXPECT_DOUBLE_EQ(a.total_overhead(), b.total_overhead());
    }
}

}  // namespace
