/// \file test_sim.cpp
/// Tests for the discrete-event cluster simulator: resource math against
/// hand-computed schedules, conservation and accounting invariants,
/// determinism, and the qualitative model behaviours the paper's figures
/// rest on (barrier idle, lock-polling contention, any-rank refill).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/mandelbrot.hpp"
#include "apps/synthetic.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hdls::sim;
using hdls::apps::WorkloadKind;
using hdls::apps::WorkloadSpec;
using hdls::dls::Technique;

WorkloadTrace make_trace(WorkloadKind kind, std::size_t n, double mean, double cov,
                         std::uint64_t seed = 0xFEEDULL) {
    WorkloadSpec spec;
    spec.kind = kind;
    spec.iterations = n;
    spec.mean_seconds = mean;
    spec.cov = cov;
    spec.seed = seed;
    return WorkloadTrace(hdls::apps::make_workload(spec));
}

CostModel zero_costs() {
    CostModel m;
    m.internode_rma_us = 0;
    m.global_queue_service_us = 0;
    m.shmem_lock_hold_us = 0;
    m.shmem_lock_poll_us = 0;
    m.shmem_lock_attempt_us = 0;
    m.omp_dequeue_us = 0;
    m.omp_barrier_base_us = 0;
    m.omp_barrier_per_thread_us = 0;
    m.chunk_overhead_us = 0;
    return m;
}

// ---------------------------------------------------------------- resources

TEST(ResourceTest, FcfsChainsArrivals) {
    FcfsResource r(1.0);
    EXPECT_DOUBLE_EQ(r.acquire(0.0), 1.0);   // idle server
    EXPECT_DOUBLE_EQ(r.acquire(0.5), 2.0);   // queues behind the first
    EXPECT_DOUBLE_EQ(r.acquire(3.0), 4.0);   // server idle again
    EXPECT_DOUBLE_EQ(r.busy_until(), 4.0);
}

TEST(ResourceTest, PollingLockQuantizesContendedGrants) {
    PollingLock lock(2.0, 5.0, 1.0);
    const auto a = lock.acquire(0.0);
    EXPECT_DOUBLE_EQ(a.acquired, 0.0);  // free lock: immediate
    EXPECT_DOUBLE_EQ(a.released, 2.0);
    EXPECT_DOUBLE_EQ(a.wait, 0.0);
    // Contended with no other poller: handoff slips by poll/2 past the
    // release (the average lock-attempt arrival offset of ref [38]).
    const auto b = lock.acquire(1.0);
    EXPECT_DOUBLE_EQ(b.acquired, 2.0 + 2.5);
    EXPECT_DOUBLE_EQ(b.wait, 3.5);
    EXPECT_DOUBLE_EQ(b.released, 6.5);
    // Contended with one origin still polling (b, granted at 4.5 > 2.0):
    // its queued attempt adds one attempt-processing delay.
    const auto c = lock.acquire(2.0);
    EXPECT_DOUBLE_EQ(c.acquired, 6.5 + 2.5 + 1.0);
    EXPECT_DOUBLE_EQ(c.released, 12.0);
    // Free again afterwards.
    const auto d = lock.acquire(20.0);
    EXPECT_DOUBLE_EQ(d.acquired, 20.0);
    EXPECT_DOUBLE_EQ(d.wait, 0.0);
}

TEST(ResourceTest, PollingLockDegradesSuperlinearlyWithContention) {
    // k simultaneous requesters: each successive grant pays for the
    // still-polling peers, so per-grant cost grows with depth.
    PollingLock lock(1.0, 2.0, 0.5);
    std::vector<double> waits;
    for (int i = 0; i < 6; ++i) {
        waits.push_back(lock.acquire(0.0).wait);
    }
    for (std::size_t i = 1; i < waits.size(); ++i) {
        EXPECT_GT(waits[i], waits[i - 1]);
    }
    // Depth grows by one per pending origin: increments must themselves
    // grow (superlinear total wait).
    EXPECT_GT(waits[5] - waits[4], waits[2] - waits[1]);
}

TEST(ResourceTest, PollingLockWithZeroPollAndAttemptIsFifo) {
    PollingLock lock(1.0, 0.0, 0.0);
    (void)lock.acquire(0.0);
    const auto g = lock.acquire(0.25);
    EXPECT_DOUBLE_EQ(g.acquired, 1.0);  // plain FIFO handoff
}

// ----------------------------------------------------------------- workload

TEST(WorkloadTraceTest, RangeCostsViaPrefixSums) {
    WorkloadTrace t({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(t.total(), 10.0);
    EXPECT_DOUBLE_EQ(t.range_cost(0, 4), 10.0);
    EXPECT_DOUBLE_EQ(t.range_cost(1, 3), 5.0);
    EXPECT_DOUBLE_EQ(t.range_cost(2, 2), 0.0);
    EXPECT_DOUBLE_EQ(t.cost(3), 4.0);
    EXPECT_THROW((void)t.range_cost(-1, 2), std::out_of_range);
    EXPECT_THROW((void)t.range_cost(2, 5), std::out_of_range);
    EXPECT_THROW(WorkloadTrace({1.0, -0.5}), std::invalid_argument);
}

// --------------------------------------------------------- analytic cases

TEST(AnalyticTest, BalancedStaticStaticIsPerfectWithZeroCosts) {
    // Constant costs, zero overheads: T_par must be exactly W/P for both
    // execution models.
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    cluster.costs = zero_costs();
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 1600, 1e-3, 0.0);
    SimConfig cfg;
    cfg.inter = Technique::Static;
    cfg.intra = Technique::Static;
    for (const ExecModel m : {ExecModel::MpiMpi, ExecModel::MpiOpenMp}) {
        const auto r = simulate(m, cluster, cfg, trace);
        EXPECT_NEAR(r.parallel_time, trace.total() / 16.0, 1e-12) << exec_model_name(m);
        EXPECT_NEAR(r.efficiency(), 1.0, 1e-9);
        EXPECT_EQ(r.executed_iterations(), 1600);
    }
}

TEST(AnalyticTest, SingleWorkerRunsSerially) {
    ClusterSpec cluster;
    cluster.nodes = 1;
    cluster.workers_per_node = 1;
    cluster.costs = zero_costs();
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 500, 1e-3, 1.0);
    for (const Technique intra : {Technique::Static, Technique::SS, Technique::GSS}) {
        SimConfig cfg;
        cfg.inter = Technique::GSS;
        cfg.intra = intra;
        const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
        EXPECT_NEAR(r.parallel_time, trace.total(), 1e-9);
    }
}

TEST(AnalyticTest, KnownTwoWorkerSchedule) {
    // 2 workers, 1 node, SS, zero costs, trace {4,1,1,1,1}: W0 takes i0
    // (4s); W1 takes i1..i4 (1s each). T_par = 4.
    ClusterSpec cluster;
    cluster.nodes = 1;
    cluster.workers_per_node = 2;
    cluster.costs = zero_costs();
    const WorkloadTrace trace(std::vector<double>{4, 1, 1, 1, 1});
    SimConfig cfg;
    cfg.inter = Technique::Static;
    cfg.intra = Technique::SS;
    const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    EXPECT_DOUBLE_EQ(r.parallel_time, 4.0);
    // One worker did 1 iteration, the other 4.
    std::vector<std::int64_t> iters = {r.workers[0].iterations, r.workers[1].iterations};
    std::sort(iters.begin(), iters.end());
    EXPECT_EQ(iters[0], 1);
    EXPECT_EQ(iters[1], 4);
}

TEST(AnalyticTest, HybridBarrierIdleIsExact) {
    // 1 node x 2 threads, STATIC+Static, zero costs, trace {3,1}:
    // thread 0 computes 3s, thread 1 computes 1s, then the implicit
    // barrier parks thread 1 for exactly 2s.
    ClusterSpec cluster;
    cluster.nodes = 1;
    cluster.workers_per_node = 2;
    cluster.costs = zero_costs();
    const WorkloadTrace trace(std::vector<double>{3, 1});
    SimConfig cfg;
    cfg.inter = Technique::Static;
    cfg.intra = Technique::Static;
    const auto r = simulate(ExecModel::MpiOpenMp, cluster, cfg, trace);
    EXPECT_DOUBLE_EQ(r.parallel_time, 3.0);
    EXPECT_DOUBLE_EQ(r.workers[1].idle, 2.0);
    EXPECT_DOUBLE_EQ(r.workers[0].idle, 0.0);
}

// ------------------------------------------------------------ conservation

struct ConservationCase {
    ExecModel model;
    Technique inter;
    Technique intra;
};

class Conservation : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(Conservation, IterationsAndTimeAreConserved) {
    const auto& [model, inter, intra] = GetParam();
    ClusterSpec cluster;
    cluster.nodes = 3;
    cluster.workers_per_node = 5;
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 5000, 2e-4, 1.0);
    SimConfig cfg;
    cfg.inter = inter;
    cfg.intra = intra;
    const auto r = simulate(model, cluster, cfg, trace);
    // Every iteration executed exactly once (in cost terms too).
    EXPECT_EQ(r.executed_iterations(), trace.iterations());
    EXPECT_NEAR(r.total_busy(), trace.total(), 1e-9);
    EXPECT_GT(r.global_chunks(), 0);
    EXPECT_GE(r.sub_chunks(), r.global_chunks());
    // Per-worker time accounting closes: busy + overhead + idle = finish.
    for (const auto& w : r.workers) {
        EXPECT_NEAR(w.busy + w.overhead + w.idle, w.finish, 1e-6)
            << "worker " << w.node << "/" << w.worker_in_node;
        EXPECT_LE(w.finish, r.parallel_time + 1e-12);
    }
}

std::vector<ConservationCase> conservation_cases() {
    std::vector<ConservationCase> cases;
    for (const ExecModel m :
         {ExecModel::MpiMpi, ExecModel::MpiOpenMp, ExecModel::MpiOpenMpNowait}) {
        for (const Technique inter : hdls::dls::paper_internode_techniques()) {
            for (const Technique intra : hdls::dls::paper_intranode_techniques()) {
                cases.push_back({m, inter, intra});
            }
        }
    }
    return cases;
}

std::string conservation_name(const ::testing::TestParamInfo<ConservationCase>& info) {
    std::string s;
    switch (info.param.model) {
        case ExecModel::MpiMpi:
            s = "MpiMpi_";
            break;
        case ExecModel::MpiOpenMp:
            s = "MpiOpenMp_";
            break;
        case ExecModel::MpiOpenMpNowait:
            s = "Nowait_";
            break;
    }
    s += std::string(hdls::dls::technique_name(info.param.inter)) + "_" +
         std::string(hdls::dls::technique_name(info.param.intra));
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllModels, Conservation, ::testing::ValuesIn(conservation_cases()),
                         conservation_name);

// ------------------------------------------------------------- determinism

TEST(DeterminismTest, IdenticalInputsIdenticalReports) {
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 8;
    const WorkloadTrace trace = make_trace(WorkloadKind::Bimodal, 20000, 1e-4, 0.9);
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    const auto a = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    const auto b = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    EXPECT_EQ(a.parallel_time, b.parallel_time);  // bitwise
    for (std::size_t i = 0; i < a.workers.size(); ++i) {
        EXPECT_EQ(a.workers[i].finish, b.workers[i].finish);
        EXPECT_EQ(a.workers[i].iterations, b.workers[i].iterations);
    }
}

// ------------------------------------------------- model behaviours (paper)

TEST(ModelBehaviourTest, DynamicBeatsStaticOnImbalancedWork) {
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 8;
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 16000, 1e-3, 1.0);
    SimConfig stat;
    stat.inter = Technique::Static;
    stat.intra = Technique::Static;
    SimConfig dyn;
    dyn.inter = Technique::GSS;
    dyn.intra = Technique::GSS;
    const auto t_static = simulate(ExecModel::MpiMpi, cluster, stat, trace).parallel_time;
    const auto t_dynamic = simulate(ExecModel::MpiMpi, cluster, dyn, trace).parallel_time;
    EXPECT_LT(t_dynamic, t_static);
}

TEST(ModelBehaviourTest, BarrierIdleMakesHybridLoseWithStaticIntra) {
    // The paper's headline (GSS+STATIC, Figure 5): per-chunk implicit
    // barriers under MPI+OpenMP waste the fast threads' time on workloads
    // with *spatially correlated* imbalance (static slices of a chunk then
    // differ wildly); MPI+MPI has no such barrier. An iid workload would
    // not show this — slice sums self-average — so the test uses the real
    // Mandelbrot cost profile the paper's evaluation relies on.
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 16;
    hdls::apps::MandelbrotConfig mc;
    mc.width = 256;
    mc.height = 256;
    mc.max_iter = 256;
    mc.re_min = -2.1;
    mc.re_max = 0.9;
    mc.im_min = -2.0;
    mc.im_max = 1.0;
    const WorkloadTrace trace(hdls::apps::mandelbrot_cost_trace(mc, 8e-6));
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::Static;
    const auto mm = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    const auto hy = simulate(ExecModel::MpiOpenMp, cluster, cfg, trace);
    EXPECT_GT(hy.parallel_time, 1.15 * mm.parallel_time);
    EXPECT_GT(hy.total_idle(), 3.0 * mm.total_idle());
}

TEST(ModelBehaviourTest, LockPollingMakesMpiMpiLoseWithSsIntra) {
    // The paper's counterpoint (Figures 4-7, SS panels): per-iteration
    // MPI_Win_lock epochs under MPI+MPI collapse against OpenMP's atomic
    // dequeues when iterations are fine-grained.
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 16;
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 40000, 1e-4, 0.0);
    SimConfig cfg;
    cfg.inter = Technique::Static;
    cfg.intra = Technique::SS;
    const auto mm = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    const auto hy = simulate(ExecModel::MpiOpenMp, cluster, cfg, trace);
    EXPECT_GT(mm.parallel_time, 1.3 * hy.parallel_time);
    EXPECT_GT(mm.total_lock_wait(), hy.total_lock_wait());
}

TEST(ModelBehaviourTest, CoarseIntraTechniquesTieAcrossModels) {
    // Away from the two extremes the models should roughly coincide
    // (paper: "the same performance compared to their counterparts").
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 16;
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 60000, 5e-4, 1.0);
    for (const Technique intra : {Technique::GSS, Technique::TSS, Technique::FAC2}) {
        SimConfig cfg;
        cfg.inter = Technique::GSS;
        cfg.intra = intra;
        const auto mm = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
        const auto hy = simulate(ExecModel::MpiOpenMp, cluster, cfg, trace);
        const double ratio = mm.parallel_time / hy.parallel_time;
        EXPECT_GT(ratio, 0.8) << hdls::dls::technique_name(intra);
        EXPECT_LT(ratio, 1.2) << hdls::dls::technique_name(intra);
    }
}

TEST(ModelBehaviourTest, PollIntervalDrivesTheSsPenalty) {
    // Ablation invariant: the SS penalty grows monotonically with the
    // lock-attempt polling period (ref [38]).
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 16;
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 20000, 1e-4, 0.0);
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;
    double last = 0.0;
    for (const double poll : {0.5, 2.0, 8.0}) {
        cluster.costs.shmem_lock_poll_us = poll;
        const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
        EXPECT_GT(r.parallel_time, last);
        last = r.parallel_time;
    }
}

TEST(ModelBehaviourTest, NowaitClosesMostOfTheBarrierGap) {
    // The paper's future work: nowait + funneled refill sits between the
    // barrier-bound baseline and MPI+MPI on imbalanced workloads.
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 16;
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 60000, 5e-4, 1.0);
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::Static;
    const auto barrier = simulate(ExecModel::MpiOpenMp, cluster, cfg, trace);
    const auto nowait = simulate(ExecModel::MpiOpenMpNowait, cluster, cfg, trace);
    EXPECT_LT(nowait.parallel_time, barrier.parallel_time);
}

TEST(ModelBehaviourTest, MoreNodesShrinkTheParallelTime) {
    const WorkloadTrace trace = make_trace(WorkloadKind::Exponential, 100000, 5e-4, 1.0);
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::GSS;
    double last = std::numeric_limits<double>::infinity();
    for (const int nodes : {2, 4, 8, 16}) {
        ClusterSpec cluster;
        cluster.nodes = nodes;
        cluster.workers_per_node = 16;
        const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
        EXPECT_LT(r.parallel_time, last) << nodes;
        last = r.parallel_time;
    }
}

TEST(ModelBehaviourTest, MinChunkReducesSchedulingEvents) {
    ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 8;
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 10000, 1e-4, 0.0);
    SimConfig fine;
    fine.inter = Technique::GSS;
    fine.intra = Technique::SS;
    SimConfig coarse = fine;
    coarse.min_chunk = 32;
    const auto rf = simulate(ExecModel::MpiMpi, cluster, fine, trace);
    const auto rc = simulate(ExecModel::MpiMpi, cluster, coarse, trace);
    EXPECT_GT(rf.sub_chunks(), 4 * rc.sub_chunks());
    EXPECT_GT(rf.total_overhead(), rc.total_overhead());
}

// ---------------------------------------------------------------- validation

TEST(SimValidationTest, BadInputsThrow) {
    ClusterSpec cluster;
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 10, 1e-3, 0.0);
    SimConfig cfg;
    // Adaptive techniques are valid at the inter level (remaining-based
    // form) but have no step-indexed form for the intra level.
    cfg.intra = Technique::AWFB;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.intra = Technique::GSS;
    cfg.inter = Technique::WF;
    cfg.inter_weights = {1.0, 2.0, 3.0};  // cluster has 2 nodes
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.inter_weights.clear();
    cluster.node_speed = {1.0};  // must match the node count
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cluster.node_speed = {1.0, 0.0};  // speeds must be positive
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cluster.node_speed.clear();
    cfg.inter = Technique::GSS;
    cfg.min_chunk = 0;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.min_chunk = 1;
    cluster.nodes = 0;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cluster.nodes = 2;
    cluster.costs.internode_rma_us = -1.0;
    EXPECT_THROW((void)simulate(ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
}

TEST(SimValidationTest, EmptyTraceYieldsZeroReport) {
    ClusterSpec cluster;
    SimConfig cfg;
    const WorkloadTrace empty;
    for (const ExecModel m :
         {ExecModel::MpiMpi, ExecModel::MpiOpenMp, ExecModel::MpiOpenMpNowait}) {
        const auto r = simulate(m, cluster, cfg, empty);
        EXPECT_EQ(r.parallel_time, 0.0) << exec_model_name(m);
        EXPECT_EQ(r.executed_iterations(), 0);
    }
}

TEST(SimValidationTest, ExecModelNames) {
    EXPECT_EQ(exec_model_from_string("MPI+MPI"), ExecModel::MpiMpi);
    EXPECT_EQ(exec_model_from_string("mpi+openmp"), ExecModel::MpiOpenMp);
    EXPECT_EQ(exec_model_from_string("nowait"), ExecModel::MpiOpenMpNowait);
    EXPECT_EQ(exec_model_from_string("???"), std::nullopt);
    EXPECT_EQ(exec_model_name(ExecModel::MpiOpenMp), "MPI+OpenMP");
}

TEST(SimReportTest, PrintsSummary) {
    ClusterSpec cluster;
    const WorkloadTrace trace = make_trace(WorkloadKind::Constant, 1000, 1e-4, 0.0);
    SimConfig cfg;
    const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, trace);
    std::ostringstream oss;
    r.print(oss);
    EXPECT_NE(oss.str().find("T_par="), std::string::npos);
    EXPECT_NE(oss.str().find("efficiency="), std::string::npos);
}

}  // namespace
