/// \file test_sharded_queue.cpp
/// The sharded inter-node backend: exact-tiling property grid across
/// techniques x (N, cluster shape, weights), concurrent steal storms with
/// a deliberately slow node, termination with all-but-one node idle, the
/// shard-partition arithmetic, backend selection (factory fallback, env
/// knob, report plumbing), sim/real mirroring (Steal events, determinism,
/// per-acquire latency) and the window lock-polling policies.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/hdls.hpp"
#include "core/sharded_queue.hpp"
#include "dls/sharding.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hdls::core;
using hdls::dls::InterBackend;
using hdls::dls::Technique;

// ---------------------------------------------------- shard arithmetic

TEST(ShardPartitionTest, SumsExactlyAndFollowsWeights) {
    using hdls::dls::shard_partition;
    for (const std::int64_t n : {0LL, 1LL, 7LL, 1000LL, 12345LL}) {
        for (const int nodes : {1, 2, 3, 8}) {
            const auto equal = shard_partition(n, {}, nodes);
            ASSERT_EQ(equal.size(), static_cast<std::size_t>(nodes));
            std::int64_t sum = 0;
            for (const auto s : equal) {
                EXPECT_GE(s, 0);
                sum += s;
            }
            EXPECT_EQ(sum, n) << n << " over " << nodes;
            // Equal weights: sizes differ by at most one iteration.
            for (const auto s : equal) {
                EXPECT_LE(std::abs(s - equal[0]), 1);
            }
        }
    }
    // 3:1 weights hand node 0 three quarters of the space (+-1 iteration).
    const auto skewed = hdls::dls::shard_partition(1000, {3.0, 1.0}, 2);
    EXPECT_EQ(skewed[0] + skewed[1], 1000);
    EXPECT_NEAR(static_cast<double>(skewed[0]), 750.0, 1.0);
    // A zero-weight node gets an empty shard.
    const auto starved = hdls::dls::shard_partition(100, {0.0, 1.0, 1.0}, 3);
    EXPECT_EQ(starved[0], 0);
    EXPECT_EQ(starved[0] + starved[1] + starved[2], 100);
    EXPECT_THROW((void)hdls::dls::shard_partition(10, {1.0}, 2), std::invalid_argument);
    EXPECT_THROW((void)hdls::dls::shard_partition(10, {-1.0, 1.0}, 2),
                 std::invalid_argument);
}

TEST(ShardPartitionTest, StealAmountHalvesAndDrains) {
    using hdls::dls::steal_amount;
    EXPECT_EQ(steal_amount(0, 1), 0);
    EXPECT_EQ(steal_amount(-5, 1), 0);
    EXPECT_EQ(steal_amount(100, 1), 50);
    EXPECT_EQ(steal_amount(101, 1), 51);  // ceil half
    EXPECT_EQ(steal_amount(1, 1), 1);     // last crumb goes whole
    EXPECT_EQ(steal_amount(16, 16), 16);  // <= min_chunk goes whole
    EXPECT_EQ(steal_amount(17, 16), 9);
}

TEST(ShardPartitionTest, ShardedFormsAndNames) {
    using namespace hdls::dls;
    for (const Technique t : {Technique::Static, Technique::SS, Technique::GSS,
                              Technique::TSS, Technique::FAC2, Technique::WF}) {
        EXPECT_TRUE(supports_sharded(t)) << technique_name(t);
    }
    for (const Technique t : {Technique::FAC, Technique::AWFB, Technique::AWFC,
                              Technique::AWFD, Technique::AWFE}) {
        EXPECT_FALSE(supports_sharded(t)) << technique_name(t);
    }
    EXPECT_EQ(shard_formula(Technique::WF), Technique::FAC2);
    EXPECT_EQ(shard_formula(Technique::GSS), Technique::GSS);
    EXPECT_THROW((void)shard_formula(Technique::AWFB), std::invalid_argument);
    EXPECT_EQ(inter_backend_from_string("SHARDED"), InterBackend::Sharded);
    EXPECT_EQ(inter_backend_from_string("centralized"), InterBackend::Centralized);
    EXPECT_FALSE(inter_backend_from_string("bogus").has_value());
    EXPECT_EQ(inter_backend_name(InterBackend::Sharded), "sharded");
}

// ------------------------------------------------ exact-tiling property

/// Every rank hammers the sharded queue; iteration i must be handed out
/// exactly once and the sum must be N, no matter how steals interleave.
void sharded_tiling(Technique inter, int ranks, int ranks_per_node, std::int64_t n,
                    std::vector<double> weights = {}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    std::atomic<std::int64_t> total{0};
    minimpi::Runtime::run(ranks, minimpi::Topology{ranks_per_node},
                          [&](minimpi::Context& ctx) {
        HierConfig cfg;
        cfg.inter = inter;
        cfg.inter_backend = InterBackend::Sharded;
        cfg.node_weights = weights;
        const auto q = make_inter_queue(ctx.world(), n, cfg, ctx.nodes(), ctx.node());
        std::int64_t mine = 0;
        while (const auto c = q->try_acquire()) {
            ASSERT_GT(c->size, 0);
            ASSERT_GE(c->start, 0);
            ASSERT_LE(c->start + c->size, n);
            for (std::int64_t i = c->start; i < c->start + c->size; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
            mine += c->size;
        }
        total.fetch_add(mine, std::memory_order_relaxed);
        q->free();
    });
    EXPECT_EQ(total.load(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << hdls::dls::technique_name(inter) << ": iteration " << i;
    }
}

TEST(ShardedQueueTest, ExactTilingPropertyGrid) {
    const std::vector<Technique> techniques = {
        Technique::Static, Technique::SS,   Technique::FSC,  Technique::GSS, Technique::TSS,
        Technique::FAC2,   Technique::TFSS, Technique::RND,  Technique::WF};
    const std::vector<std::int64_t> loop_sizes = {0, 1, 7, 1000, 12345};
    struct Shape {
        int ranks;
        int ranks_per_node;
    };
    const std::vector<Shape> shapes = {{1, 1}, {4, 2}, {6, 2}};
    for (const Technique t : techniques) {
        for (const std::int64_t n : loop_sizes) {
            for (const Shape s : shapes) {
                sharded_tiling(t, s.ranks, s.ranks_per_node, n);
            }
        }
    }
    // Weighted shards (3:1 and a starved node) across representative
    // techniques — WF is the one whose semantics the weights carry.
    for (const Technique t : {Technique::WF, Technique::GSS, Technique::SS}) {
        sharded_tiling(t, 4, 2, 5000, {3.0, 1.0});
        sharded_tiling(t, 6, 2, 5000, {0.0, 1.0, 2.0});
    }
}

// --------------------------------------------------------- steal storms

TEST(ShardedQueueTest, StealStormDrainsAWeightedSlowNode) {
    // Node 0 holds 4/5 of the space but executes chunks 50x slower: the
    // other nodes must drain it through concurrent half-remainder steals
    // while the tiling stays exact.
    constexpr std::int64_t kN = 20000;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<std::int64_t> total{0};
    std::atomic<std::int64_t> stolen_total{0};
    minimpi::Runtime::run(8, minimpi::Topology{2}, [&](minimpi::Context& ctx) {
        ShardedInterQueue q(ctx.world(), kN, Technique::GSS, ctx.nodes(), ctx.node(), 1,
                            {4.0, 1.0, 1.0, 1.0} /* node 0: 4x the shard */);
        std::int64_t mine = 0;
        while (const auto c = q.try_acquire()) {
            for (std::int64_t i = c->start; i < c->start + c->size; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
            mine += c->size;
            if (ctx.node() == 0) {
                std::this_thread::sleep_for(std::chrono::microseconds(500));
            }
        }
        total.fetch_add(mine, std::memory_order_relaxed);
        stolen_total.fetch_add(q.stolen(), std::memory_order_relaxed);
        // Drained everywhere: no shard holds unassigned work any more.
        for (int j = 0; j < ctx.nodes(); ++j) {
            EXPECT_EQ(q.remaining_of(j), 0);
        }
        q.free();
    });
    EXPECT_EQ(total.load(), kN);
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
    }
    EXPECT_GT(stolen_total.load(), 0) << "fast nodes never stole from the slow shard";
}

TEST(ShardedQueueTest, TerminationWithAllButOneNodeIdle) {
    // Three of four nodes own empty shards: their ranks live entirely off
    // steals and must still terminate; the loop must tile exactly.
    constexpr std::int64_t kN = 4000;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<std::int64_t> total{0};
    minimpi::Runtime::run(8, minimpi::Topology{2}, [&](minimpi::Context& ctx) {
        ShardedInterQueue q(ctx.world(), kN, Technique::FAC2, ctx.nodes(), ctx.node(), 1,
                            {0.0, 0.0, 0.0, 1.0});
        EXPECT_EQ(q.shard_size(0), 0);
        EXPECT_EQ(q.shard_size(3), kN);
        while (const auto c = q.try_acquire()) {
            for (std::int64_t i = c->start; i < c->start + c->size; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
            total.fetch_add(c->size, std::memory_order_relaxed);
        }
        q.free();
    });
    EXPECT_EQ(total.load(), kN);
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
    }
    // Degenerate loops terminate too (every rank sees nullopt immediately).
    minimpi::Runtime::run(4, minimpi::Topology{1}, [](minimpi::Context& ctx) {
        ShardedInterQueue empty(ctx.world(), 0, Technique::GSS, ctx.nodes(), ctx.node(), 1);
        EXPECT_FALSE(empty.try_acquire().has_value());
        empty.free();
        ShardedInterQueue one(ctx.world(), 1, Technique::GSS, ctx.nodes(), ctx.node(), 1);
        std::int64_t seen = 0;
        while (const auto c = one.try_acquire()) {
            seen += c->size;
        }
        EXPECT_LE(seen, 1);
        one.free();
    });
}

TEST(ShardedQueueTest, ConstructorRejectsBadArguments) {
    minimpi::Runtime::run(1, [](minimpi::Context& ctx) {
        EXPECT_THROW(ShardedInterQueue(ctx.world(), 10, Technique::AWFB, 2, 0, 1),
                     minimpi::Error);  // no sharded form
        EXPECT_THROW(ShardedInterQueue(ctx.world(), 10, Technique::GSS, 2, 5, 1),
                     minimpi::Error);  // node out of range
        EXPECT_THROW(ShardedInterQueue(ctx.world(), 10, Technique::GSS, 2, 0, 0),
                     minimpi::Error);  // min_chunk < 1
        EXPECT_THROW(ShardedInterQueue(ctx.world(), 10, Technique::WF, 2, 0, 1, {1.0}),
                     minimpi::Error);  // weights size mismatch
    });
}

// --------------------------------------------- backend selection plumbing

TEST(ShardedBackendTest, FactoryFallsBackToCentralizedForAdaptive) {
    minimpi::Runtime::run(2, minimpi::Topology{1}, [](minimpi::Context& ctx) {
        HierConfig cfg;
        cfg.inter = Technique::AWFB;
        cfg.inter_backend = InterBackend::Sharded;
        const auto q = make_inter_queue(ctx.world(), 1000, cfg, ctx.nodes(), ctx.node());
        // The centralized adaptive queue serves AWF-B: feedback matters.
        EXPECT_TRUE(q->wants_feedback());
        std::int64_t covered = 0;
        while (const auto c = q->try_acquire()) {
            covered += c->size;
            EXPECT_FALSE(c->stolen);
        }
        ctx.world().barrier();
        q->free();
    });
}

TEST(ShardedBackendTest, EnvKnobSelectsTheBackend) {
    ::setenv("HDLS_INTER_BACKEND", "sharded", 1);
    EXPECT_EQ(inter_backend_from_env(), InterBackend::Sharded);
    ::setenv("HDLS_INTER_BACKEND", "CENTRALIZED", 1);
    EXPECT_EQ(inter_backend_from_env(InterBackend::Sharded), InterBackend::Centralized);
    // A malformed value throws instead of silently falling back: an
    // unknown backend would change what the run measures.
    ::setenv("HDLS_INTER_BACKEND", "nonsense", 1);
    EXPECT_THROW((void)inter_backend_from_env(InterBackend::Sharded), std::invalid_argument);
    ::unsetenv("HDLS_INTER_BACKEND");
    EXPECT_EQ(inter_backend_from_env(), InterBackend::Centralized);
}

TEST(ShardedBackendTest, EndToEndThroughBothExecutors) {
    for (const Approach approach : {Approach::MpiMpi, Approach::MpiOpenMp}) {
        for (const Technique inter : {Technique::GSS, Technique::FAC2, Technique::WF}) {
            constexpr std::int64_t kN = 800;
            std::vector<std::atomic<int>> hits(kN);
            HierConfig cfg;
            cfg.inter = inter;
            cfg.intra = Technique::GSS;
            cfg.inter_backend = InterBackend::Sharded;
            cfg.trace = true;
            const auto report = hdls::parallel_for(
                ClusterShape{2, 3}, approach, cfg, kN, [&](std::int64_t b, std::int64_t e) {
                    for (std::int64_t i = b; i < e; ++i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(
                            1, std::memory_order_relaxed);
                    }
                });
            EXPECT_EQ(report.executed_iterations(), kN);
            EXPECT_EQ(report.inter_backend, InterBackend::Sharded);
            for (std::int64_t i = 0; i < kN; ++i) {
                ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                    << hdls::dls::technique_name(inter) << "+" << approach_name(approach)
                    << " iteration " << i;
            }
            // Level-1 acquisitions surface as GlobalAcquire or Steal events.
            ASSERT_NE(report.trace, nullptr);
            EXPECT_GT(report.trace->count(hdls::trace::EventKind::GlobalAcquire) +
                          report.trace->count(hdls::trace::EventKind::Steal),
                      0);
        }
    }
}

// ----------------------------------------------------------- simulator

TEST(ShardedSimTest, AllEnginesTileAndStayDeterministic) {
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    const WorkloadTrace trace(std::vector<double>(6000, 1e-5));
    for (const Technique inter : {Technique::GSS, Technique::FAC2, Technique::WF}) {
        for (const ExecModel model :
             {ExecModel::MpiMpi, ExecModel::MpiOpenMp, ExecModel::MpiOpenMpNowait}) {
            SimConfig cfg;
            cfg.inter = inter;
            cfg.intra = Technique::Static;
            cfg.inter_backend = InterBackend::Sharded;
            const auto r = simulate(model, cluster, cfg, trace);
            EXPECT_EQ(r.executed_iterations(), 6000)
                << hdls::dls::technique_name(inter) << " under " << exec_model_name(model);
            const auto again = simulate(model, cluster, cfg, trace);
            EXPECT_EQ(again.parallel_time, r.parallel_time);
        }
    }
}

TEST(ShardedSimTest, SlowedNodeTriggersStealEvents) {
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    cluster.node_speed = {0.25, 1.0, 1.0, 1.0};
    const WorkloadTrace workload(std::vector<double>(20000, 1e-5));
    SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::Static;
    cfg.inter_backend = InterBackend::Sharded;
    cfg.trace = true;
    const auto r = simulate(ExecModel::MpiMpi, cluster, cfg, workload);
    EXPECT_EQ(r.executed_iterations(), 20000);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->count(hdls::trace::EventKind::Steal), 0)
        << "fast nodes should steal from the slowed node's shard";
}

TEST(ShardedSimTest, ShardedAcquiresBeatTheCentralizedQueueAt16Nodes) {
    // The acceptance experiment in miniature (bench_ablation_shard_contention
    // sweeps it): at 16 nodes the centralized rank-0 server serializes every
    // acquisition across the fabric, while shard acquisitions stay node-local.
    using namespace hdls::sim;
    ClusterSpec cluster;
    cluster.nodes = 16;
    cluster.workers_per_node = 4;
    const WorkloadTrace workload(std::vector<double>(60000, 2e-6));
    SimConfig cfg;
    cfg.inter = Technique::SS;  // one acquisition per iteration batch: max pressure
    cfg.intra = Technique::Static;
    cfg.trace = true;
    cfg.min_chunk = 4;
    const auto mean_acquire = [](const SimReport& r) {
        double sum = 0.0;
        std::int64_t count = 0;
        for (const auto& e : r.trace->events) {
            if ((e.kind == hdls::trace::EventKind::GlobalAcquire ||
                 e.kind == hdls::trace::EventKind::Steal) &&
                e.b > 0) {
                sum += e.duration();
                ++count;
            }
        }
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    };
    cfg.inter_backend = InterBackend::Centralized;
    const auto central = simulate(ExecModel::MpiMpi, cluster, cfg, workload);
    cfg.inter_backend = InterBackend::Sharded;
    const auto sharded = simulate(ExecModel::MpiMpi, cluster, cfg, workload);
    EXPECT_EQ(central.executed_iterations(), sharded.executed_iterations());
    ASSERT_NE(central.trace, nullptr);
    ASSERT_NE(sharded.trace, nullptr);
    EXPECT_LT(mean_acquire(sharded), mean_acquire(central));
}

// ------------------------------------------------- lock polling policies

TEST(LockPolicyTest, AllPoliciesScheduleCorrectly) {
    const minimpi::LockPolicy original = minimpi::lock_policy();
    for (const minimpi::LockPolicy policy :
         {minimpi::LockPolicy::Spin, minimpi::LockPolicy::Backoff,
          minimpi::LockPolicy::Block}) {
        minimpi::set_lock_policy(policy);
        EXPECT_EQ(minimpi::lock_policy(), policy);
        constexpr std::int64_t kN = 2000;
        std::vector<std::atomic<int>> hits(kN);
        HierConfig cfg;
        cfg.inter = Technique::GSS;
        cfg.intra = Technique::SS;  // one lock epoch per sub-chunk: contended
        const auto report = hdls::parallel_for(
            ClusterShape{2, 4}, Approach::MpiMpi, cfg, kN,
            [&](std::int64_t b, std::int64_t e) {
                for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                                std::memory_order_relaxed);
                }
            });
        EXPECT_EQ(report.executed_iterations(), kN);
        for (std::int64_t i = 0; i < kN; ++i) {
            ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                << "policy " << static_cast<int>(policy) << " iteration " << i;
        }
    }
    minimpi::set_lock_policy(original);
}

}  // namespace
