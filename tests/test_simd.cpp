/// \file test_simd.cpp
/// SIMD kernel layer, software prefetch, and topology-aware placement:
/// backend parity (every backend bit-identical to the scalar reference),
/// runtime dispatch, the prefetch ring, socket planning, team pinning and
/// the probed-rate honesty loop — including the end-to-end checksum grid
/// over techniques x depths x transports.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <numeric>
#include <vector>

#include "apps/mandelbrot.hpp"
#include "apps/psia.hpp"
#include "apps/synthetic.hpp"
#include "core/hdls.hpp"
#include "minimpi/host_topology.hpp"
#include "ompsim/first_touch.hpp"
#include "ompsim/team.hpp"
#include "simd/dispatch.hpp"
#include "simd/simd.hpp"
#include "util/prefetch.hpp"

namespace {

using hdls::dls::Technique;

/// Restores SimdMode::Auto when a test body returns or throws.
struct ModeGuard {
    ~ModeGuard() { hdls::simd::set_mode(hdls::simd::SimdMode::Auto); }
};

// ------------------------------------------------------------ vec types --

TEST(SimdVecTest, ScalarVecLaneOps) {
    using V = hdls::simd::scalar_vec<4>;
    const double in_a[4] = {1.0, -2.0, 3.0, 4.0};
    const double in_b[4] = {0.5, 2.0, 3.0, -1.0};
    const V a = V::load(in_a);
    const V b = V::load(in_b);

    double out[4];
    (a + b).store(out);
    EXPECT_EQ(out[0], 1.5);
    EXPECT_EQ(out[3], 3.0);
    (a * b).store(out);
    EXPECT_EQ(out[1], -4.0);
    abs(a).store(out);
    EXPECT_EQ(out[1], 2.0);
    sqrt(V::broadcast(9.0)).store(out);
    EXPECT_EQ(out[2], 3.0);

    const auto gt = cmp_gt(a, b);  // {1>0.5, -2>2, 3>3, 4>-1}
    EXPECT_TRUE(gt.test(0));
    EXPECT_FALSE(gt.test(1));
    EXPECT_FALSE(gt.test(2));
    EXPECT_TRUE(gt.test(3));
    EXPECT_TRUE(gt.any());
    EXPECT_FALSE(gt.none());
    EXPECT_TRUE(cmp_le(a, b).test(2));

    const auto both = gt & cmp_lt(b, a);
    EXPECT_TRUE(both.test(0));
    EXPECT_FALSE(both.test(2));
    select(gt, a, b).store(out);
    EXPECT_EQ(out[0], 1.0);   // gt lane -> a
    EXPECT_EQ(out[1], 2.0);   // !gt lane -> b
    select(~gt, a, b).store(out);
    EXPECT_EQ(out[0], 0.5);
}

// ------------------------------------------------------------- dispatch --

TEST(SimdDispatchTest, ScalarBackendAlwaysUsable) {
    EXPECT_TRUE(hdls::simd::backend_compiled(hdls::simd::Backend::Scalar));
    EXPECT_TRUE(hdls::simd::backend_usable(hdls::simd::Backend::Scalar));
    EXPECT_TRUE(hdls::simd::backend_usable(hdls::simd::best_backend()));
    const auto usable = hdls::simd::usable_backends();
    ASSERT_FALSE(usable.empty());
    EXPECT_EQ(usable.front(), hdls::simd::Backend::Scalar);
}

TEST(SimdDispatchTest, ForceScalarNarrowsToWidthOne) {
    const ModeGuard guard;
    hdls::simd::set_mode(hdls::simd::SimdMode::ForceScalar);
    EXPECT_EQ(hdls::simd::active_backend(), hdls::simd::Backend::Scalar);
    EXPECT_EQ(hdls::simd::active_width(), 1);
    hdls::simd::set_mode(hdls::simd::SimdMode::Auto);
    EXPECT_EQ(hdls::simd::active_backend(), hdls::simd::best_backend());
}

TEST(SimdDispatchTest, NativeRequiresAVectorBackend) {
    const ModeGuard guard;
    if (hdls::simd::best_backend() == hdls::simd::Backend::Scalar) {
        EXPECT_THROW(hdls::simd::set_mode(hdls::simd::SimdMode::Native),
                     std::runtime_error);
    } else {
        hdls::simd::set_mode(hdls::simd::SimdMode::Native);
        EXPECT_NE(hdls::simd::active_backend(), hdls::simd::Backend::Scalar);
        EXPECT_GT(hdls::simd::active_width(), 1);
    }
}

TEST(SimdDispatchTest, KernelsForThrowsOnUnusableBackend) {
    for (const auto b : {hdls::simd::Backend::Avx2, hdls::simd::Backend::Neon}) {
        if (!hdls::simd::backend_usable(b)) {
            EXPECT_THROW((void)hdls::simd::kernels_for(b), std::runtime_error);
        } else {
            EXPECT_GT(hdls::simd::kernels_for(b).width, 1);
        }
    }
}

// ------------------------------------------------- kernel parity (direct) --

TEST(SimdParityTest, MandelbrotKernelsBitIdenticalAcrossBackends) {
    hdls::apps::MandelbrotConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.max_iter = 200;
    const hdls::simd::MandelbrotGeom geom = hdls::apps::mandelbrot_geometry(cfg);
    const std::int64_t pixels = cfg.pixels();

    std::vector<int> reference(static_cast<std::size_t>(pixels));
    hdls::simd::kernels_for(hdls::simd::Backend::Scalar)
        .mandelbrot(geom, 0, pixels, reference.data());
    // The scalar kernel must equal the per-pixel escape loop.
    for (const std::int64_t p : {std::int64_t{0}, pixels / 2, pixels - 1}) {
        EXPECT_EQ(reference[static_cast<std::size_t>(p)],
                  hdls::apps::mandelbrot_iterations(cfg, p));
    }
    for (const auto b : hdls::simd::usable_backends()) {
        std::vector<int> out(static_cast<std::size_t>(pixels), -7);
        // Odd split so vector backends hit their scalar-tail path too.
        const std::int64_t split = pixels / 3 + 1;
        const auto& k = hdls::simd::kernels_for(b);
        k.mandelbrot(geom, 0, split, out.data());
        k.mandelbrot(geom, split, pixels - split, out.data() + split);
        EXPECT_EQ(out, reference) << hdls::simd::backend_name(b);
    }
}

TEST(SimdParityTest, SpinSupportKernelsBitIdenticalAcrossBackends) {
    const auto cloud = hdls::apps::PointCloud::synthetic(700, 9);
    hdls::apps::PsiaConfig cfg;
    cfg.support_angle_cos = 0.2;  // engage every filter lane
    const auto* aos = reinterpret_cast<const double*>(cloud.points().data());
    const auto n = static_cast<std::int64_t>(cloud.size());
    const hdls::apps::OrientedPoint& center = cloud[3];
    const hdls::simd::SpinFilter filter{
        center.position.x, center.position.y, center.position.z,
        center.normal.x,   center.normal.y,   center.normal.z,
        cfg.support_angle_cos, cfg.beta_max(),
        cfg.alpha_max() * cfg.alpha_max()};

    std::vector<double> ref_alpha(cloud.size()), ref_beta(cloud.size());
    const std::int64_t ref_count =
        hdls::simd::kernels_for(hdls::simd::Backend::Scalar)
            .spin_support(aos, 0, n, filter, ref_alpha.data(), ref_beta.data());
    EXPECT_EQ(static_cast<std::size_t>(ref_count),
              hdls::apps::support_count(cloud, 3, cfg));

    for (const auto b : hdls::simd::usable_backends()) {
        const auto& k = hdls::simd::kernels_for(b);
        for (const bool prefetch : {false, true}) {
            std::vector<double> alpha(cloud.size()), beta(cloud.size());
            const std::int64_t count =
                (prefetch ? k.spin_support_prefetch : k.spin_support)(
                    aos, 0, n, filter, alpha.data(), beta.data());
            ASSERT_EQ(count, ref_count)
                << hdls::simd::backend_name(b) << " prefetch=" << prefetch;
            for (std::int64_t i = 0; i < count; ++i) {
                const auto at = static_cast<std::size_t>(i);
                EXPECT_EQ(alpha[at], ref_alpha[at]);
                EXPECT_EQ(beta[at], ref_beta[at]);
            }
        }
    }
}

TEST(SimdParityTest, SpinImagePrefetchAndBackendsDoNotChangeBins) {
    const ModeGuard guard;
    const auto cloud = hdls::apps::PointCloud::synthetic(400, 21);
    hdls::apps::PsiaConfig cfg;
    hdls::simd::set_mode(hdls::simd::SimdMode::ForceScalar);
    const auto reference = hdls::apps::compute_spin_image(cloud, 7, cfg, false);
    for (const auto mode :
         {hdls::simd::SimdMode::ForceScalar, hdls::simd::SimdMode::Auto}) {
        hdls::simd::set_mode(mode);
        for (const bool prefetch : {false, true}) {
            const auto image = hdls::apps::compute_spin_image(cloud, 7, cfg, prefetch);
            ASSERT_EQ(image.data().size(), reference.data().size());
            EXPECT_EQ(std::memcmp(image.data().data(), reference.data().data(),
                                  reference.data().size() * sizeof(float)),
                      0)
                << "mode=" << hdls::simd::mode_name(mode) << " prefetch=" << prefetch;
        }
    }
}

TEST(SimdParityTest, BurnerIsFiniteOnEveryBackend) {
    const ModeGuard guard;
    for (const auto mode :
         {hdls::simd::SimdMode::ForceScalar, hdls::simd::SimdMode::Auto}) {
        hdls::simd::set_mode(mode);
        EXPECT_GT(hdls::apps::burner_rounds_per_second(), 0.0);
        hdls::apps::burn_seconds(1e-4);  // must return (calibrated, not a spin)
    }
}

// --------------------------------------- end-to-end grid (runner checksums) --

struct GridCase {
    Technique inter;
    Technique intra;
    int depth;  // 2 or 3
    minimpi::TransportKind transport;
};

class SimdRunnerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(SimdRunnerGrid, MandelbrotChecksumInvariantAcrossSimdVariants) {
    const GridCase& c = GetParam();
    hdls::apps::MandelbrotConfig mcfg;
    mcfg.width = 96;
    mcfg.height = 96;
    mcfg.max_iter = 96;

    hdls::core::HierConfig cfg;
    cfg.inter = c.inter;
    cfg.intra = c.intra;
    cfg.transport = c.transport;
    hdls::core::ClusterShape shape{2, 2};
    if (c.depth == 3) {
        shape = hdls::core::ClusterShape{4, 2};
        cfg.topology = {{"groups", 2}, {"nodes", 2}, {"cores", 2}};
    }

    auto checksum_with = [&](hdls::simd::SimdMode mode, bool prefetch) {
        hdls::core::HierConfig run = cfg;
        run.simd = mode;
        run.prefetch = prefetch;
        hdls::apps::MandelbrotImage image(mcfg);
        const auto report = hdls::parallel_for(
            shape, hdls::core::Approach::MpiMpi, run, mcfg.pixels(),
            [&](std::int64_t b, std::int64_t e) { image.compute_range(b, e); });
        EXPECT_EQ(report.executed_iterations(), mcfg.pixels());
        EXPECT_EQ(image.uncomputed(), 0);
        return image.checksum();
    };

    const std::uint64_t scalar = checksum_with(hdls::simd::SimdMode::ForceScalar, false);
    EXPECT_EQ(checksum_with(hdls::simd::SimdMode::Auto, false), scalar);
    EXPECT_EQ(checksum_with(hdls::simd::SimdMode::Auto, true), scalar);
    hdls::simd::set_mode(hdls::simd::SimdMode::Auto);
}

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
    std::string name = std::string(hdls::dls::technique_name(info.param.inter)) + "_" +
                       std::string(hdls::dls::technique_name(info.param.intra)) +
                       "_depth" + std::to_string(info.param.depth) + "_" +
                       std::string(minimpi::transport_name(info.param.transport));
    // technique_name yields e.g. "AWF-B"; gtest param names must be alnum/_.
    std::erase_if(name, [](char c) { return c != '_' && !std::isalnum(
                                                static_cast<unsigned char>(c)); });
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesDepthsTransports, SimdRunnerGrid,
    ::testing::Values(
        GridCase{Technique::GSS, Technique::FAC2, 2, minimpi::TransportKind::Threads},
        GridCase{Technique::SS, Technique::Static, 2, minimpi::TransportKind::Threads},
        GridCase{Technique::AWFB, Technique::GSS, 2, minimpi::TransportKind::Threads},
        GridCase{Technique::TSS, Technique::GSS, 3, minimpi::TransportKind::Threads},
        GridCase{Technique::GSS, Technique::FAC2, 2, minimpi::TransportKind::Shm},
        GridCase{Technique::TSS, Technique::GSS, 3, minimpi::TransportKind::Shm}),
    grid_name);

TEST(SimdRunnerTest, ReportCarriesSimdAndPinSettings) {
    hdls::core::HierConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::GSS;
    cfg.simd = hdls::simd::SimdMode::ForceScalar;
    cfg.pin = minimpi::PinPolicy::Compact;
    const auto report =
        hdls::parallel_for(hdls::core::ClusterShape{2, 2}, hdls::core::Approach::MpiOpenMp,
                           cfg, 512, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(report.simd_mode, hdls::simd::SimdMode::ForceScalar);
    EXPECT_EQ(report.simd_backend, hdls::simd::Backend::Scalar);
    EXPECT_EQ(report.pin, minimpi::PinPolicy::Compact);
    hdls::simd::set_mode(hdls::simd::SimdMode::Auto);
}

// -------------------------------------------------------- prefetch ring --

TEST(PrefetchRingTest, DefersPayloadsByDepthAndDrainsInOrder) {
    hdls::util::PrefetchRing<3, int> ring;
    std::vector<int> consumed;
    const auto consume = [&](int v) { consumed.push_back(v); };
    double data[8] = {};
    for (int i = 0; i < 8; ++i) {
        ring.push(&data[i], i, consume);
        // Nothing pops until the ring holds Depth deferred payloads.
        EXPECT_EQ(consumed.size(), static_cast<std::size_t>(std::max(0, i + 1 - 3)));
    }
    EXPECT_EQ(ring.pending(), 3u);
    ring.drain(consume);
    EXPECT_EQ(ring.pending(), 0u);
    std::vector<int> expected(8);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(consumed, expected);  // strict FIFO
}

// ------------------------------------------------------- host topology --

TEST(HostTopologyTest, CompactPlanFillsSocketsInOrder) {
    const auto host = minimpi::HostTopology::uniform(2, 4);  // cpus 0-3 / 4-7
    EXPECT_EQ(host.total_cpus(), 8);
    EXPECT_EQ(host.plan(minimpi::PinPolicy::Compact, 0, 8),
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    // first_worker offsets the flat list (co-located teams interleave).
    EXPECT_EQ(host.plan(minimpi::PinPolicy::Compact, 6, 4),
              (std::vector<int>{6, 7, 0, 1}));
}

TEST(HostTopologyTest, ScatterPlanAlternatesSockets) {
    const auto host = minimpi::HostTopology::uniform(2, 4);
    EXPECT_EQ(host.plan(minimpi::PinPolicy::Scatter, 0, 8),
              (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
    EXPECT_EQ(host.plan(minimpi::PinPolicy::Scatter, 3, 2), (std::vector<int>{5, 2}));
}

TEST(HostTopologyTest, NonePlanLeavesEveryWorkerUnpinned) {
    const auto host = minimpi::HostTopology::uniform(2, 2);
    EXPECT_EQ(host.plan(minimpi::PinPolicy::None, 0, 3), (std::vector<int>{-1, -1, -1}));
    EXPECT_TRUE(minimpi::pin_current_thread(-1));  // unpinned slot is a no-op
}

TEST(HostTopologyTest, DetectFindsAtLeastOneSocketAndCpu) {
    const auto host = minimpi::HostTopology::detect();
    ASSERT_FALSE(host.sockets().empty());
    EXPECT_GE(host.total_cpus(), 1);
    const auto affinity = minimpi::current_thread_affinity();
    EXPECT_FALSE(affinity.empty());
    EXPECT_TRUE(minimpi::set_current_thread_affinity(affinity));  // round-trip
}

TEST(HostTopologyTest, PinPolicyNamesRoundTrip) {
    for (const auto p : {minimpi::PinPolicy::None, minimpi::PinPolicy::Compact,
                         minimpi::PinPolicy::Scatter}) {
        const auto back = minimpi::pin_policy_from_string(
            std::string(minimpi::pin_policy_name(p)));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, p);
    }
    EXPECT_FALSE(minimpi::pin_policy_from_string("numa").has_value());
}

// -------------------------------------------------------- team placement --

TEST(TeamPlacementTest, PinnedCpusFollowThePlan) {
    hdls::ompsim::ThreadTeam::Placement placement;
    placement.policy = minimpi::PinPolicy::Scatter;
    placement.host = minimpi::HostTopology::uniform(2, 4);
    placement.first_worker = 2;
    hdls::ompsim::ThreadTeam team(4, placement);
    EXPECT_EQ(team.pin_policy(), minimpi::PinPolicy::Scatter);
    const auto plan = placement.host.plan(minimpi::PinPolicy::Scatter, 2, 4);
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(team.pinned_cpu(t), plan[static_cast<std::size_t>(t)]);
    }
    EXPECT_EQ(team.pinned_cpu(-1), -1);
    EXPECT_EQ(team.pinned_cpu(99), -1);
}

TEST(TeamPlacementTest, UnpinnedTeamReportsNoCpus) {
    hdls::ompsim::ThreadTeam team(3);
    EXPECT_EQ(team.pin_policy(), minimpi::PinPolicy::None);
    for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(team.pinned_cpu(t), -1);
    }
}

TEST(TeamPlacementTest, MeasurePerThreadIndexesByThreadId) {
    hdls::ompsim::ThreadTeam team(3);
    const auto rates = team.measure_per_thread([](int tid) { return 1.0 + tid; });
    EXPECT_EQ(rates, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TeamPlacementTest, FirstTouchFillCoversTheWholeBuffer) {
    hdls::ompsim::ThreadTeam team(4);
    std::vector<double> data(1027, -1.0);
    hdls::ompsim::first_touch_fill(team, data.data(),
                                   static_cast<std::int64_t>(data.size()), 3.5);
    for (const double v : data) {
        ASSERT_EQ(v, 3.5);
    }
}

// ------------------------------------------------------------ honesty loop --

TEST(ProbeTest, ProbedRatesArePositiveAndCached) {
    hdls::simd::reset_probe_cache();
    for (const auto b : hdls::simd::usable_backends()) {
        const double first = hdls::simd::probe_mandelbrot_rate(b, 0.001);
        EXPECT_GT(first, 0.0);
        // Cached: the second call returns the identical measurement.
        EXPECT_EQ(hdls::simd::probe_mandelbrot_rate(b, 0.001), first);
    }
}

TEST(ProbeTest, PinnedWfRunFillsNodeWeightsFromProbedRates) {
    // The runner's honesty loop: a pinned WF run with empty node_weights
    // gets per-node weights probed from measured kernel throughput. The
    // run must still execute every iteration exactly once.
    hdls::core::HierConfig cfg;
    cfg.inter = Technique::WF;
    cfg.intra = Technique::GSS;
    cfg.pin = minimpi::PinPolicy::Compact;
    cfg.simd = hdls::simd::SimdMode::ForceScalar;
    std::atomic<std::int64_t> executed{0};
    const auto report = hdls::parallel_for(
        hdls::core::ClusterShape{2, 2}, hdls::core::Approach::MpiMpi, cfg, 4096,
        [&](std::int64_t b, std::int64_t e) { executed += e - b; });
    EXPECT_EQ(executed.load(), 4096);
    EXPECT_EQ(report.executed_iterations(), 4096);
    EXPECT_EQ(report.pin, minimpi::PinPolicy::Compact);
    hdls::simd::set_mode(hdls::simd::SimdMode::Auto);
}

}  // namespace
