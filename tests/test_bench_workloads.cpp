/// \file test_bench_workloads.cpp
/// Guards the calibration of the benchmark workloads and CLI plumbing —
/// the properties EXPERIMENTS.md claims (imbalance ordering, granularity
/// invariance under --scale, cost-model knob wiring). A regression here
/// would silently change the reproduced figures.

#include <gtest/gtest.h>

#include "common/workloads.hpp"

namespace {

using namespace hdls::bench;

TEST(BenchWorkloadTest, MandelbrotIsHighlyImbalancedPsiaModerately) {
    const auto mandel = mandelbrot_paper_trace(256);
    const auto psia = psia_paper_trace(1 << 16);
    const auto ms = mandel.stats();
    const auto ps = psia.stats();
    // The paper's central workload contrast.
    EXPECT_GT(ms.cov, 1.5);
    EXPECT_LT(ps.cov, 0.6);
    EXPECT_GT(ms.cov, 2.0 * ps.cov);
}

TEST(BenchWorkloadTest, GranularityIsScaleInvariant) {
    // --scale must not change per-iteration cost magnitudes (they set the
    // contention regimes); only the loop size shrinks.
    const auto full = mandelbrot_paper_trace(512);
    const auto small = mandelbrot_paper_trace(256);
    EXPECT_NEAR(full.stats().mean, small.stats().mean, 0.25 * full.stats().mean);
    EXPECT_GT(full.iterations(), 3 * small.iterations());

    const auto psia_full = psia_paper_trace(1 << 17);
    const auto psia_small = psia_paper_trace(1 << 15);
    EXPECT_NEAR(psia_full.stats().mean, psia_small.stats().mean,
                0.25 * psia_full.stats().mean);
}

TEST(BenchWorkloadTest, MandelbrotHeavyRegionIsPastMidLoop) {
    // The viewport choice DESIGN.md documents: the expensive band must not
    // sit in the first (largest) chunks of decreasing techniques.
    const auto trace = mandelbrot_paper_trace(256);
    const auto n = trace.iterations();
    const double first_half = trace.range_cost(0, n / 2);
    const double second_half = trace.range_cost(n / 2, n);
    EXPECT_GT(second_half, 1.5 * first_half);
}

TEST(BenchWorkloadTest, TracesAreDeterministic) {
    const auto a = psia_paper_trace(1 << 14);
    const auto b = psia_paper_trace(1 << 14);
    ASSERT_EQ(a.iterations(), b.iterations());
    EXPECT_DOUBLE_EQ(a.total(), b.total());
    EXPECT_DOUBLE_EQ(a.cost(123), b.cost(123));
}

TEST(BenchCliTest, CommonOptionsBuildTheClusterSpec) {
    hdls::util::ArgParser cli("t", "t");
    add_common_options(cli);
    ASSERT_TRUE(cli.parse({"--rpn", "8", "--lock_poll_us", "7.5", "--lock_attempt_us", "0"}));
    const auto cluster = cluster_from_options(cli, 4);
    EXPECT_EQ(cluster.nodes, 4);
    EXPECT_EQ(cluster.workers_per_node, 8);
    EXPECT_DOUBLE_EQ(cluster.costs.shmem_lock_poll_us, 7.5);
    EXPECT_DOUBLE_EQ(cluster.costs.shmem_lock_attempt_us, 0.0);
    // Untouched knobs keep their defaults.
    EXPECT_DOUBLE_EQ(cluster.costs.internode_rma_us, hdls::sim::CostModel{}.internode_rma_us);
}

TEST(BenchCliTest, ScaleMapsToWorkloadSizes) {
    hdls::util::ArgParser cli("t", "t");
    add_common_options(cli);
    ASSERT_TRUE(cli.parse({"--scale", "0.25"}));
    EXPECT_EQ(scaled_mandelbrot_dim(cli), 512);  // quarter the pixels
    EXPECT_EQ(scaled_psia_points(cli), (1 << 20) / 4);
    hdls::util::ArgParser full("t", "t");
    add_common_options(full);
    ASSERT_TRUE(full.parse({}));
    EXPECT_EQ(scaled_mandelbrot_dim(full), 1024);
    EXPECT_EQ(scaled_psia_points(full), 1 << 20);
    // Out-of-range scales clamp instead of exploding.
    hdls::util::ArgParser tiny("t", "t");
    add_common_options(tiny);
    ASSERT_TRUE(tiny.parse({"--scale", "0.0000001"}));
    EXPECT_GE(scaled_mandelbrot_dim(tiny), 64);
    EXPECT_GE(scaled_psia_points(tiny), 4096);
}

TEST(BenchCliTest, NegativeCostKnobIsRejected) {
    hdls::util::ArgParser cli("t", "t");
    add_common_options(cli);
    ASSERT_TRUE(cli.parse({"--rma_us", "-1"}));
    EXPECT_THROW((void)cluster_from_options(cli, 2), std::invalid_argument);
}

}  // namespace
