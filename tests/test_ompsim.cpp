/// \file test_ompsim.cpp
/// Tests for the OpenMP-like shim: schedule coverage/layout semantics,
/// Table-1 equivalences against the DLS library, implicit barriers and the
/// nowait extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "dls/chunk_formulas.hpp"
#include "dls/scheduler.hpp"
#include "ompsim/team.hpp"

namespace {

using namespace hdls::ompsim;
using hdls::dls::Technique;

struct ChunkRecord {
    std::int64_t begin;
    std::int64_t end;
    int thread;
};

/// Runs one parallel-for and returns the chunks, sorted by begin.
std::vector<ChunkRecord> run_and_record(ThreadTeam& team, std::int64_t n,
                                        const ForOptions& opts) {
    std::vector<ChunkRecord> chunks;
    std::mutex mutex;
    team.parallel_for(0, n, opts, [&](std::int64_t b, std::int64_t e, int tid) {
        const std::lock_guard<std::mutex> lock(mutex);
        chunks.push_back({b, e, tid});
    });
    std::sort(chunks.begin(), chunks.end(),
              [](const ChunkRecord& a, const ChunkRecord& b) { return a.begin < b.begin; });
    return chunks;
}

void expect_partition(const std::vector<ChunkRecord>& chunks, std::int64_t n) {
    std::int64_t expected = 0;
    for (const auto& c : chunks) {
        EXPECT_EQ(c.begin, expected);
        EXPECT_GT(c.end, c.begin);
        expected = c.end;
    }
    EXPECT_EQ(expected, n);
}

// ---------------------------------------------------------------- regions

TEST(TeamTest, ParallelRunsEveryThreadOnce) {
    ThreadTeam team(4);
    EXPECT_EQ(team.size(), 4);
    std::mutex mutex;
    std::multiset<int> tids;
    team.parallel([&](int tid) {
        const std::lock_guard<std::mutex> lock(mutex);
        tids.insert(tid);
    });
    EXPECT_EQ(tids, (std::multiset<int>{0, 1, 2, 3}));
}

TEST(TeamTest, TeamIsReusableAcrossRegions) {
    ThreadTeam team(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
        team.parallel([&](int) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 150);
}

TEST(TeamTest, SingleThreadTeamWorks) {
    ThreadTeam team(1);
    std::atomic<std::int64_t> sum{0};
    team.parallel_for(0, 100, ForOptions{Schedule::Dynamic, 1, false},
                      [&](std::int64_t b, std::int64_t e, int) { sum.fetch_add(e - b); });
    EXPECT_EQ(sum.load(), 100);
}

TEST(TeamTest, MisuseThrows) {
    EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
    ThreadTeam team(2);
    EXPECT_THROW(team.barrier(), std::logic_error);
    EXPECT_THROW(team.for_chunks(0, 10, ForOptions{}, [](std::int64_t, std::int64_t, int) {}),
                 std::logic_error);
    team.parallel([&](int tid) {
        if (tid == 0) {
            EXPECT_THROW(team.parallel([](int) {}), std::logic_error);
        }
        team.barrier();
        EXPECT_THROW(
            team.for_chunks(10, 0, ForOptions{}, [](std::int64_t, std::int64_t, int) {}),
            std::invalid_argument);
        team.barrier();  // keep the construct sequence aligned across threads
    });
}

TEST(TeamTest, BarrierSynchronizesAllThreads) {
    ThreadTeam team(4);
    std::atomic<int> before{0};
    std::atomic<bool> violated{false};
    team.parallel([&](int) {
        before.fetch_add(1);
        team.barrier();
        if (before.load() != 4) {
            violated.store(true);
        }
    });
    EXPECT_FALSE(violated.load());
}

// --------------------------------------------------------------- coverage

struct CoverageCase {
    Schedule schedule;
    std::int64_t chunk;
    int threads;
    std::int64_t n;
};

class ScheduleCoverage : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(ScheduleCoverage, EveryIterationExecutedExactlyOnce) {
    const auto& [schedule, chunk, threads, n] = GetParam();
    ThreadTeam team(threads);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    team.parallel([&](int) {
        team.for_each(0, n, ForOptions{schedule, chunk, false},
                      [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    });
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
    }
}

std::vector<CoverageCase> coverage_cases() {
    std::vector<CoverageCase> cases;
    for (const Schedule s : {Schedule::Static, Schedule::StaticChunk, Schedule::Dynamic,
                             Schedule::Guided, Schedule::Tss, Schedule::Fac2}) {
        for (const int threads : {1, 2, 4, 7}) {
            for (const std::int64_t n : {0LL, 1LL, 13LL, 1000LL}) {
                cases.push_back({s, s == Schedule::StaticChunk ? 3 : 0, threads, n});
            }
        }
    }
    // Dynamic with larger grain.
    cases.push_back({Schedule::Dynamic, 16, 4, 1000});
    cases.push_back({Schedule::Guided, 8, 4, 1000});
    return cases;
}

std::string coverage_name(const ::testing::TestParamInfo<CoverageCase>& info) {
    return std::string(schedule_name(info.param.schedule)) + "_c" +
           std::to_string(info.param.chunk) + "_t" + std::to_string(info.param.threads) + "_n" +
           std::to_string(info.param.n);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleCoverage, ::testing::ValuesIn(coverage_cases()),
                         coverage_name);

// ------------------------------------------------------------ layout rules

TEST(ScheduleLayoutTest, StaticBlockPartition) {
    ThreadTeam team(4);
    const auto chunks = run_and_record(team, 10, ForOptions{Schedule::Static, 0, false});
    // OpenMP schedule(static): blocks of ceil/floor with leftovers first.
    ASSERT_EQ(chunks.size(), 4u);
    EXPECT_EQ(chunks[0].begin, 0);
    EXPECT_EQ(chunks[0].end, 3);
    EXPECT_EQ(chunks[0].thread, 0);
    EXPECT_EQ(chunks[1].begin, 3);
    EXPECT_EQ(chunks[1].end, 6);
    EXPECT_EQ(chunks[1].thread, 1);
    EXPECT_EQ(chunks[2].begin, 6);
    EXPECT_EQ(chunks[2].end, 8);
    EXPECT_EQ(chunks[2].thread, 2);
    EXPECT_EQ(chunks[3].begin, 8);
    EXPECT_EQ(chunks[3].end, 10);
    EXPECT_EQ(chunks[3].thread, 3);
}

TEST(ScheduleLayoutTest, StaticChunkRoundRobin) {
    ThreadTeam team(2);
    const auto chunks = run_and_record(team, 8, ForOptions{Schedule::StaticChunk, 2, false});
    ASSERT_EQ(chunks.size(), 4u);
    EXPECT_EQ(chunks[0].thread, 0);  // [0,2)
    EXPECT_EQ(chunks[1].thread, 1);  // [2,4)
    EXPECT_EQ(chunks[2].thread, 0);  // [4,6)
    EXPECT_EQ(chunks[3].thread, 1);  // [6,8)
    expect_partition(chunks, 8);
}

TEST(ScheduleLayoutTest, DynamicOneIsSelfScheduling) {
    ThreadTeam team(4);
    const auto chunks = run_and_record(team, 100, ForOptions{Schedule::Dynamic, 1, false});
    EXPECT_EQ(chunks.size(), 100u);
    for (const auto& c : chunks) {
        EXPECT_EQ(c.end - c.begin, 1);
    }
    expect_partition(chunks, 100);
}

TEST(ScheduleLayoutTest, GuidedMatchesGssSequenceExactly) {
    // The guided cursor rule makes the (begin, size) sequence a
    // deterministic function of the shared cursor, independent of which
    // thread wins each update — so it must equal the GSS master sequence.
    ThreadTeam team(4);
    const auto chunks = run_and_record(team, 1000, ForOptions{Schedule::Guided, 1, false});
    hdls::dls::LoopParams p;
    p.total_iterations = 1000;
    p.workers = 4;
    const auto gss = hdls::dls::enumerate_chunks(Technique::GSS, p);
    ASSERT_EQ(chunks.size(), gss.size());
    for (std::size_t i = 0; i < gss.size(); ++i) {
        EXPECT_EQ(chunks[i].begin, gss[i].start) << i;
        EXPECT_EQ(chunks[i].end - chunks[i].begin, gss[i].size) << i;
    }
    expect_partition(chunks, 1000);
}

TEST(ScheduleLayoutTest, GuidedHonorsMinChunk) {
    ThreadTeam team(4);
    const auto chunks = run_and_record(team, 1000, ForOptions{Schedule::Guided, 32, false});
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // tail may clamp
        EXPECT_GE(chunks[i].end - chunks[i].begin, 32);
    }
    expect_partition(chunks, 1000);
}

TEST(ScheduleLayoutTest, TssSingleThreadMatchesFormulas) {
    ThreadTeam team(1);
    const auto chunks = run_and_record(team, 1000, ForOptions{Schedule::Tss, 0, false});
    hdls::dls::LoopParams p;
    p.total_iterations = 1000;
    p.workers = 1;
    std::int64_t step = 0;
    std::int64_t scheduled = 0;
    for (const auto& c : chunks) {
        const auto hint = hdls::dls::chunk_size_for_step(Technique::TSS, p, step++);
        EXPECT_EQ(c.begin, scheduled);
        EXPECT_EQ(c.end - c.begin, std::min(hint, 1000 - scheduled));
        scheduled += c.end - c.begin;
    }
    EXPECT_EQ(scheduled, 1000);
}

TEST(ScheduleLayoutTest, Fac2BatchesHalve) {
    ThreadTeam team(4);
    const auto chunks = run_and_record(team, 1024, ForOptions{Schedule::Fac2, 0, false});
    expect_partition(chunks, 1024);
    // First batch chunk must be ceil(N/2P) = 128.
    std::int64_t max_size = 0;
    for (const auto& c : chunks) {
        max_size = std::max(max_size, c.end - c.begin);
    }
    EXPECT_EQ(max_size, 128);
}

// ------------------------------------------------------- barrier semantics

TEST(BarrierSemanticsTest, ImplicitBarrierHoldsBackFastThreads) {
    // Thread 1 finishes its chunk instantly but must not observe loop-2
    // state before thread 0 completes loop 1 (the Figure-2 behaviour).
    ThreadTeam team(2);
    std::atomic<bool> slow_done{false};
    std::atomic<bool> fast_entered_second_loop_early{false};
    team.parallel([&](int) {
        team.for_chunks(0, 2, ForOptions{Schedule::Static, 0, false},
                        [&](std::int64_t b, std::int64_t, int tid) {
                            if (tid == 0 && b == 0) {
                                std::this_thread::sleep_for(std::chrono::milliseconds(30));
                                slow_done.store(true);
                            }
                        });
        // Implicit barrier: both threads arrive here only after thread 0
        // finished.
        if (!slow_done.load()) {
            fast_entered_second_loop_early.store(true);
        }
    });
    EXPECT_FALSE(fast_entered_second_loop_early.load());
}

TEST(BarrierSemanticsTest, NowaitLetsFastThreadsProceed) {
    // With nowait, thread 1 races ahead into the second loop and drains it
    // while thread 0 is still stuck in loop 1. Thread 0's chunk waits on a
    // flag only loop 2 can set: deadlock unless nowait really skips the
    // barrier.
    ThreadTeam team(2);
    std::atomic<bool> loop2_drained{false};
    std::atomic<std::int64_t> loop2_iters{0};
    team.parallel([&](int) {
        team.for_chunks(0, 2, ForOptions{Schedule::Static, 0, true},  // nowait
                        [&](std::int64_t b, std::int64_t, int) {
                            if (b == 0) {  // thread 0's chunk
                                while (!loop2_drained.load()) {
                                    std::this_thread::yield();
                                }
                            }
                        });
        team.for_chunks(0, 100, ForOptions{Schedule::Dynamic, 1, true},  // nowait
                        [&](std::int64_t b, std::int64_t e, int) {
                            loop2_iters.fetch_add(e - b);
                        });
        loop2_drained.store(true);
        team.barrier();  // explicit sync at the very end
    });
    EXPECT_EQ(loop2_iters.load(), 100);
    EXPECT_TRUE(loop2_drained.load());
}

// ---------------------------------------------------------------- Table 1

TEST(Table1Test, OpenMpEquivalents) {
    const auto s = openmp_equivalent(Technique::Static);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->schedule, Schedule::Static);
    const auto ss = openmp_equivalent(Technique::SS);
    ASSERT_TRUE(ss);
    EXPECT_EQ(ss->schedule, Schedule::Dynamic);
    EXPECT_EQ(ss->chunk, 1);
    const auto gss = openmp_equivalent(Technique::GSS);
    ASSERT_TRUE(gss);
    EXPECT_EQ(gss->schedule, Schedule::Guided);
    EXPECT_EQ(gss->chunk, 1);
    EXPECT_FALSE(openmp_equivalent(Technique::TSS));
    EXPECT_FALSE(openmp_equivalent(Technique::FAC2));
    EXPECT_FALSE(openmp_equivalent(Technique::WF));
}

TEST(Table1Test, ExtendedEquivalentsCoverPaperIntraTechniques) {
    for (const Technique t : hdls::dls::paper_intranode_techniques()) {
        EXPECT_TRUE(extended_equivalent(t).has_value())
            << hdls::dls::technique_name(t);
    }
}

TEST(Table1Test, ScheduleNameRoundTrip) {
    for (const Schedule s : {Schedule::Static, Schedule::StaticChunk, Schedule::Dynamic,
                             Schedule::Guided, Schedule::Tss, Schedule::Fac2}) {
        EXPECT_EQ(schedule_from_string(schedule_name(s)), s);
    }
    EXPECT_EQ(schedule_from_string("bogus"), std::nullopt);
}

// ----------------------------------------------------- workshare recycling

TEST(WorkshareTest, ManySequentialConstructsRecycleSlots) {
    ThreadTeam team(4);
    std::atomic<std::int64_t> total{0};
    team.parallel([&](int) {
        for (int i = 0; i < 200; ++i) {  // > kWorkshareSlots
            team.for_chunks(0, 8, ForOptions{Schedule::Dynamic, 1, false},
                            [&](std::int64_t b, std::int64_t e, int) {
                                total.fetch_add(e - b);
                            });
        }
    });
    EXPECT_EQ(total.load(), 200 * 8);
}

TEST(WorkshareTest, MixedNowaitSequencesStayConsistent) {
    ThreadTeam team(4);
    std::atomic<std::int64_t> total{0};
    team.parallel([&](int) {
        for (int i = 0; i < 50; ++i) {
            team.for_chunks(0, 16, ForOptions{Schedule::Guided, 1, i % 2 == 0},
                            [&](std::int64_t b, std::int64_t e, int) {
                                total.fetch_add(e - b);
                            });
        }
        team.barrier();
    });
    EXPECT_EQ(total.load(), 50 * 16);
}

}  // namespace
