/// \file test_transport.cpp
/// The transport seam: HDLS_TRANSPORT selection and strict env errors,
/// shm mailbox semantics (non-overtaking order, chained large payloads,
/// backpressure, the 1 MB Resource cap), shm window atomics, the absolute
/// 64-byte segment-alignment guarantee on both transports, replay parity
/// of the hierarchical scheduler across transports, and the peer-failure
/// regressions: abort-polled epoch acquisition (every LockPolicy), epoch
/// release on local unwind, all-or-nothing lock_all, and abort-safe
/// Window::free.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/hdls.hpp"
#include "minimpi/minimpi.hpp"
#include "minimpi/transport_shm.hpp"

namespace {

using hdls::core::Approach;
using hdls::core::ClusterShape;
using hdls::core::HierConfig;
using hdls::core::LevelConfig;
using hdls::dls::InterBackend;
using hdls::dls::Technique;
using minimpi::Comm;
using minimpi::Context;
using minimpi::Error;
using minimpi::ErrorCode;
using minimpi::LockPolicy;
using minimpi::LockType;
using minimpi::ReduceOp;
using minimpi::Runtime;
using minimpi::Topology;
using minimpi::TopologyLevel;
using minimpi::TransportKind;
using minimpi::Window;

constexpr TransportKind kBothTransports[] = {TransportKind::Threads, TransportKind::Shm};

/// Restores the previous lock policy even when a test assertion throws.
class ScopedLockPolicy {
public:
    explicit ScopedLockPolicy(LockPolicy policy) : previous_(minimpi::lock_policy()) {
        minimpi::set_lock_policy(policy);
    }
    ~ScopedLockPolicy() { minimpi::set_lock_policy(previous_); }
    ScopedLockPolicy(const ScopedLockPolicy&) = delete;
    ScopedLockPolicy& operator=(const ScopedLockPolicy&) = delete;

private:
    LockPolicy previous_;
};

// ------------------------------------------------------------ selection ----

TEST(TransportEnvTest, ParsesBothNamesCaseInsensitively) {
    ::setenv("HDLS_TRANSPORT", "threads", 1);
    EXPECT_EQ(minimpi::transport_from_env(), TransportKind::Threads);
    ::setenv("HDLS_TRANSPORT", "SHM", 1);
    EXPECT_EQ(minimpi::transport_from_env(), TransportKind::Shm);
    ::unsetenv("HDLS_TRANSPORT");
}

TEST(TransportEnvTest, UnsetAndEmptyFallBack) {
    ::unsetenv("HDLS_TRANSPORT");
    EXPECT_EQ(minimpi::transport_from_env(), TransportKind::Threads);
    EXPECT_EQ(minimpi::transport_from_env(TransportKind::Shm), TransportKind::Shm);
    ::setenv("HDLS_TRANSPORT", "", 1);
    EXPECT_EQ(minimpi::transport_from_env(), TransportKind::Threads);
    ::unsetenv("HDLS_TRANSPORT");
}

TEST(TransportEnvTest, GarbageThrowsOneLineInvalidArgument) {
    ::setenv("HDLS_TRANSPORT", "tcp", 1);
    try {
        (void)minimpi::transport_from_env();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("HDLS_TRANSPORT"), std::string::npos);
        EXPECT_NE(what.find("tcp"), std::string::npos);
        EXPECT_EQ(what.find('\n'), std::string::npos) << "error must be one line";
    }
    // The default Runtime::run overload resolves the env var, so a bad
    // value must also fail a run before any rank thread starts.
    EXPECT_THROW(Runtime::run(2, [](Context&) {}), std::invalid_argument);
    ::unsetenv("HDLS_TRANSPORT");
}

TEST(TransportEnvTest, EnvSelectsTheRunSubstrate) {
    ::setenv("HDLS_TRANSPORT", "shm", 1);
    Runtime::run(2, [](Context& ctx) { EXPECT_EQ(ctx.transport(), TransportKind::Shm); });
    ::unsetenv("HDLS_TRANSPORT");
    Runtime::run(2, [](Context& ctx) { EXPECT_EQ(ctx.transport(), TransportKind::Threads); });
}

TEST(TransportEnvTest, ExplicitOverloadBeatsTheEnvironment) {
    ::setenv("HDLS_TRANSPORT", "threads", 1);
    Runtime::run(2, TransportKind::Shm,
                 [](Context& ctx) { EXPECT_EQ(ctx.transport(), TransportKind::Shm); });
    ::unsetenv("HDLS_TRANSPORT");
}

TEST(TransportEnvTest, NamesRoundTrip) {
    EXPECT_STREQ(minimpi::transport_name(TransportKind::Threads), "threads");
    EXPECT_STREQ(minimpi::transport_name(TransportKind::Shm), "shm");
}

// ------------------------------------------------------------ shm smoke ----

TEST(ShmTransportTest, PointToPointIsNonOvertaking) {
    Runtime::run(2, TransportKind::Shm, [](Context& ctx) {
        const Comm& w = ctx.world();
        constexpr int kMessages = 200;
        if (ctx.rank() == 0) {
            for (int i = 0; i < kMessages; ++i) {
                w.send(i, 1, /*tag=*/7);
            }
        } else {
            for (int i = 0; i < kMessages; ++i) {
                int got = -1;
                const auto st = w.recv(got, 0, 7);
                EXPECT_EQ(got, i) << "messages overtook each other";
                EXPECT_EQ(st.source, 0);
            }
        }
    });
}

TEST(ShmTransportTest, LargePayloadsChainContinuationSlots) {
    Runtime::run(2, TransportKind::Shm, [](Context& ctx) {
        const Comm& w = ctx.world();
        // Several slots worth of payload, deliberately not a multiple of
        // the slot size.
        const std::size_t n = (3 * minimpi::detail::kShmMaxPayload + 123) / sizeof(std::int64_t);
        if (ctx.rank() == 0) {
            std::vector<std::int64_t> out(n);
            std::iota(out.begin(), out.end(), std::int64_t{1});
            w.send(std::span<const std::int64_t>(out), 1);
        } else {
            std::vector<std::int64_t> in(n, 0);
            (void)w.recv(std::span<std::int64_t>(in), 0);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(in[i], static_cast<std::int64_t>(i + 1));
            }
        }
    });
}

TEST(ShmTransportTest, OversizedMessageThrowsResource) {
    const std::size_t cap = minimpi::detail::kShmMailboxSlots * minimpi::detail::kShmMaxPayload;
    try {
        Runtime::run(2, TransportKind::Shm, [cap](Context& ctx) {
            if (ctx.rank() == 0) {
                const std::vector<std::byte> huge(cap + 1);
                ctx.world().send_bytes(huge.data(), huge.size(), 1, 0);
            }
            // rank 1 returns immediately; it must not be required to post a
            // receive for the send to fail.
        });
        FAIL() << "expected ErrorCode::Resource";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::Resource);
    }
}

TEST(ShmTransportTest, BackpressureBlocksAndDrains) {
    // Far more in-flight messages than slots: the sender must block on the
    // full mailbox and resume as the receiver drains, without deadlock.
    Runtime::run(2, TransportKind::Shm, [](Context& ctx) {
        const Comm& w = ctx.world();
        const int kMessages = static_cast<int>(minimpi::detail::kShmMailboxSlots) * 4;
        if (ctx.rank() == 0) {
            for (int i = 0; i < kMessages; ++i) {
                w.send(i, 1);
            }
        } else {
            // Let the sender hit the slot limit before draining.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            std::int64_t sum = 0;
            for (int i = 0; i < kMessages; ++i) {
                int got = -1;
                (void)w.recv(got, 0);
                sum += got;
            }
            EXPECT_EQ(sum, static_cast<std::int64_t>(kMessages) * (kMessages - 1) / 2);
        }
    });
}

TEST(ShmTransportTest, CollectivesAndWindowAtomicsAgree) {
    Topology topo;
    topo.ranks_per_node = 2;
    Runtime::run(4, topo, TransportKind::Shm, [](Context& ctx) {
        const Comm& w = ctx.world();
        EXPECT_EQ(w.allreduce<std::int64_t>(ctx.rank() + 1, ReduceOp::Sum), 10);

        Window win =
            Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 0;
        }
        w.barrier();
        constexpr int kUpdates = 500;
        for (int i = 0; i < kUpdates; ++i) {
            (void)win.fetch_and_op<std::int64_t>(1, 0, 0, minimpi::AccumulateOp::Sum);
        }
        for (int i = 0; i < kUpdates; ++i) {
            (void)win.atomic_update<std::int64_t>(0, 0, [](std::int64_t v) { return v + 1; });
        }
        w.barrier();
        EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0), 4 * 2 * kUpdates);
        w.barrier();
        win.free();
    });
}

// ------------------------------------------------------------- alignment ----

TEST(WindowAlignmentTest, EverySegmentIs64ByteAlignedOnBothTransports) {
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        Runtime::run(4, kind, [](Context& ctx) {
            const Comm& w = ctx.world();
            // Deliberately odd per-rank sizes: alignment must come from the
            // window layout, not from lucky size rounding.
            Window win = Window::allocate_shared(
                w, static_cast<std::size_t>(ctx.rank()) * 17 + 1);
            for (int r = 0; r < w.size(); ++r) {
                const auto [ptr, bytes] = win.shared_query(r);
                EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % 64, 0u)
                    << "segment of rank " << r << " is not 64-byte aligned";
                EXPECT_EQ(bytes, static_cast<std::size_t>(r) * 17 + 1);
            }
            w.barrier();
            win.free();
        });
    }
}

// ----------------------------------------------------------- peer failure ----

/// Rank 1 fails while *keeping* an exclusive epoch open (the handle that
/// owns the epoch outlives the unwind, as when a handle is stored outside
/// the failing scope). Every other rank is contending for that epoch and
/// must unwind with ErrorCode::Aborted in bounded time — under spinning
/// and blocking lock policies alike — while the primary error surfaces.
void peer_failure_while_holding_epoch(TransportKind kind, LockPolicy policy) {
    const ScopedLockPolicy scoped(policy);
    // Keeps rank 1's locked handle alive past its unwind; reset after the
    // run releases the epoch against still-valid storage.
    std::optional<Window> survivor;
    std::atomic<int> ready{0};
    std::atomic<bool> locked{false};
    std::atomic<int> aborted{0};
    try {
        Runtime::run(4, kind, [&](Context& ctx) {
            const Comm& w = ctx.world();
            Window win = Window::allocate_shared(w, 8);
            if (ctx.rank() == 1) {
                survivor = win;  // the copy starts with no epochs of its own
                survivor->lock(LockType::Exclusive, 0);
                // Fail only once every contender is out of the collective
                // allocation — the regression under test is the *epoch*
                // wait, not a collective interrupted mid-allocate.
                while (ready.load(std::memory_order_acquire) < 3) {
                    std::this_thread::yield();
                }
                locked.store(true, std::memory_order_release);
                throw std::runtime_error("boom");
            }
            ready.fetch_add(1, std::memory_order_acq_rel);
            while (!locked.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            try {
                win.lock(LockType::Exclusive, 0);
                ADD_FAILURE() << "acquired an epoch a failed peer still holds";
                win.unlock(0);
            } catch (const Error& e) {
                EXPECT_EQ(e.code(), ErrorCode::Aborted);
                aborted.fetch_add(1);
                throw;
            }
        });
        FAIL() << "the primary exception must propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_EQ(aborted.load(), 3);
    survivor.reset();
}

TEST(PeerFailureTest, ContendedExclusiveEpochUnwindsWithAborted) {
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        peer_failure_while_holding_epoch(kind, LockPolicy::Backoff);
    }
}

TEST(PeerFailureTest, BlockPolicyWaitsAreBoundedByAbort) {
    // The regression that motivated bounded waits: under LockPolicy::Block
    // the waiter used to park in the OS with nothing to wake it.
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        peer_failure_while_holding_epoch(kind, LockPolicy::Block);
    }
}

TEST(PeerFailureTest, SpinPolicyObservesAbort) {
    peer_failure_while_holding_epoch(TransportKind::Threads, LockPolicy::Spin);
}

TEST(PeerFailureTest, PendingAtomicUpdateRequestObservesAbort) {
    try {
        Runtime::run(2, TransportKind::Threads, [](Context& ctx) {
            const Comm& w = ctx.world();
            Window win = Window::allocate_shared(w, sizeof(std::int64_t));
            w.barrier();
            if (ctx.rank() == 1) {
                throw std::runtime_error("boom");
            }
            // Wait for the failure, then drive a fresh request: its next
            // completion attempt must observe the abort, not spin.
            int dummy = 0;
            EXPECT_THROW((void)w.recv(dummy, 1), Error);
            auto req = win.start_atomic_update<std::int64_t>(
                0, 0, [](std::int64_t v) { return v + 1; });
            try {
                (void)req.wait();
                ADD_FAILURE() << "request completed past a peer failure";
            } catch (const Error& e) {
                EXPECT_EQ(e.code(), ErrorCode::Aborted);
            }
        });
        FAIL() << "the primary exception must propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

// --------------------------------------------------------- epoch hygiene ----

TEST(EpochOwnershipTest, LocalUnwindReleasesHeldEpochs) {
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        Runtime::run(2, kind, [](Context& ctx) {
            const Comm& w = ctx.world();
            Window win = Window::allocate_shared(w, 8);
            if (ctx.rank() == 0) {
                try {
                    Window scoped = win;
                    scoped.lock(LockType::Exclusive, 1);
                    throw std::runtime_error("local failure");
                } catch (const std::runtime_error&) {
                    // recovered locally; `scoped` released its epoch
                }
            }
            w.barrier();
            if (ctx.rank() == 1) {
                // Would hang before the fix: rank 0's dead handle kept the
                // exclusive epoch on this target forever.
                win.lock(LockType::Exclusive, 1);
                win.unlock(1);
            }
            w.barrier();
            win.free();
        });
    }
}

TEST(EpochOwnershipTest, CopiesDoNotInheritEpochsMovesDo) {
    Runtime::run(1, TransportKind::Threads, [](Context& ctx) {
        Window win = Window::allocate_shared(ctx.world(), 8);
        win.lock(LockType::Exclusive, 0);

        Window copy = win;
        EXPECT_THROW(copy.unlock(0), Error);  // the copy holds nothing

        Window moved = std::move(win);
        moved.unlock(0);  // the epoch travelled with the move

        moved.free();
    });
}

TEST(EpochOwnershipTest, LockAllRollsBackOnFailure) {
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        Runtime::run(4, kind, [](Context& ctx) {
            const Comm& w = ctx.world();
            Window win = Window::allocate_shared(w, 8);
            if (ctx.rank() == 0) {
                // A pre-held epoch on target 2 makes lock_all fail midway
                // (nested epoch on the same target from one handle).
                win.lock(LockType::Shared, 2);
                EXPECT_THROW(win.lock_all(), Error);
                // All-or-nothing: the epochs lock_all opened on targets 0
                // and 1 must have been rolled back, so a fresh handle can
                // take them exclusively without contention.
                Window probe = win;
                probe.lock(LockType::Exclusive, 0);
                probe.lock(LockType::Exclusive, 1);
                probe.unlock(0);
                probe.unlock(1);
                win.unlock(2);
                // ...and this handle's own epoch table is consistent: a
                // full lock_all now succeeds.
                win.lock_all();
                win.unlock_all();
            }
            w.barrier();
            win.free();
        });
    }
}

TEST(EpochOwnershipTest, FreeIsAbortSafe) {
    for (const TransportKind kind : kBothTransports) {
        SCOPED_TRACE(minimpi::transport_name(kind));
        std::atomic<int> ready{0};
        std::atomic<int> aborted{0};
        try {
            Runtime::run(4, kind, [&](Context& ctx) {
                const Comm& w = ctx.world();
                Window win = Window::allocate_shared(w, 8);
                w.barrier();
                if (ctx.rank() == 1) {
                    // Fail only once every survivor is out of the explicit
                    // barrier above — the behavior under test is free()'s
                    // closing barrier observing the abort.
                    while (ready.load(std::memory_order_acquire) < 3) {
                        std::this_thread::yield();
                    }
                    throw std::runtime_error("boom");  // never reaches free
                }
                ready.fetch_add(1, std::memory_order_acq_rel);
                try {
                    win.free();
                    ADD_FAILURE() << "free's closing barrier must observe the abort";
                } catch (const Error& e) {
                    EXPECT_EQ(e.code(), ErrorCode::Aborted);
                    EXPECT_FALSE(win.valid()) << "the handle must be dead after free";
                    aborted.fetch_add(1);
                    throw;
                }
            });
            FAIL() << "the primary exception must propagate";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom");
        }
        EXPECT_EQ(aborted.load(), 3);
    }
}

// ---------------------------------------------------------- replay parity ----

/// Executes the hierarchical loop and returns the sorted multiset of leaf
/// sub-chunks (mirrors test_prefetch.cpp's helper, plus transport pinning).
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> executed_chunks(
    const ClusterShape& shape, HierConfig cfg, TransportKind kind, std::int64_t n) {
    cfg.transport = kind;
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    const auto report = hdls::parallel_for(shape, Approach::MpiMpi, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               const std::lock_guard<std::mutex> lock(mu);
                                               chunks.emplace_back(b, e);
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    EXPECT_EQ(report.transport, kind);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(TransportParityTest, ChunkMultisetsMatchAcrossTransports) {
    // Centralized backends serialize chunk-size decisions through the step
    // counter, so the executed multiset is a pure function of the config —
    // the transport must not change it (replay parity).
    struct Case {
        ClusterShape shape;
        std::vector<TopologyLevel> tree;
        std::vector<LevelConfig> levels;
        bool prefetch;
    };
    const std::vector<Case> cases = {
        {{4, 4}, {}, {}, false},  // classic two-level defaults (GSS+GSS)
        {{3, 2},
         {{"nodes", 3}, {"cores", 2}},
         {{Technique::TSS, std::nullopt}, {Technique::SS, std::nullopt}},
         false},
        {{4, 2},
         {{"nodes", 4}, {"cores", 2}},
         {{Technique::WF, std::nullopt}, {Technique::GSS, std::nullopt}},
         true},  // prefetch rides the same seam; parity must survive it
        {{6, 2},
         {{"racks", 2}, {"nodes", 3}, {"cores", 2}},
         {{Technique::FAC2, std::nullopt},
          {Technique::GSS, std::nullopt},
          {Technique::SS, std::nullopt}},
         false},
    };
    for (const Case& c : cases) {
        for (const std::int64_t n : {std::int64_t{103}, std::int64_t{3000}}) {
            HierConfig cfg;
            cfg.topology = c.tree;
            cfg.levels = c.levels;
            cfg.prefetch = c.prefetch;
            SCOPED_TRACE("depth=" + std::to_string(std::max<std::size_t>(c.tree.size(), 2)) +
                         " n=" + std::to_string(n) + " prefetch=" + std::to_string(c.prefetch));
            EXPECT_EQ(executed_chunks(c.shape, cfg, TransportKind::Threads, n),
                      executed_chunks(c.shape, cfg, TransportKind::Shm, n));
        }
    }
}

TEST(TransportParityTest, ShardedBackendTilesExactlyOnShm) {
    // Sharded backends steal nondeterministically (no multiset parity);
    // the invariant on the shm substrate is exact tiling.
    HierConfig cfg;
    cfg.topology = {{"nodes", 4}, {"cores", 2}};
    cfg.levels = {{Technique::GSS, InterBackend::Sharded}, {Technique::SS, std::nullopt}};
    cfg.transport = TransportKind::Shm;
    const std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    const auto report = hdls::parallel_for(ClusterShape{4, 2}, Approach::MpiMpi, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               for (std::int64_t i = b; i < e; ++i) {
                                                   hits[static_cast<std::size_t>(i)]
                                                       .fetch_add(1, std::memory_order_relaxed);
                                               }
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    EXPECT_EQ(report.transport, TransportKind::Shm);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
    }
}

TEST(TransportParityTest, MpiOpenMpRunsOnShm) {
    // The MPI+OpenMP baseline also goes through Runtime::run; it must run
    // on either substrate even though it ignores windows.
    HierConfig cfg;
    cfg.transport = TransportKind::Shm;
    const std::int64_t n = 500;
    std::atomic<std::int64_t> executed{0};
    const auto report = hdls::parallel_for(ClusterShape{2, 3}, Approach::MpiOpenMp, cfg, n,
                                           [&](std::int64_t b, std::int64_t e) {
                                               executed.fetch_add(e - b,
                                                                  std::memory_order_relaxed);
                                           });
    EXPECT_EQ(report.executed_iterations(), n);
    EXPECT_EQ(executed.load(), n);
    EXPECT_EQ(report.transport, TransportKind::Shm);
}

}  // namespace
