/// \file test_util.cpp
/// Unit tests for the utility layer: RNG, statistics, tables, CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hdls::util;

// ---------------------------------------------------------------- SplitMix64

TEST(SplitMix64Test, MatchesPublishedTestVector) {
    // First outputs for seed 0, as published with the reference
    // implementation (Vigna).
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
    EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
}

TEST(SplitMix64Test, DistinctSeedsDistinctStreams) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64Test, Mix64IsStatelessAndConsistent) {
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    SplitMix64 sm(42);
    EXPECT_EQ(sm.next(), mix64(42));
}

// ---------------------------------------------------------------- Xoshiro256

TEST(Xoshiro256Test, DeterministicForSeed) {
    Xoshiro256 a(123);
    Xoshiro256 b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Xoshiro256Test, Uniform01InRange) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro256Test, Uniform01MeanIsHalf) {
    Xoshiro256 rng(11);
    OnlineStats s;
    for (int i = 0; i < 100000; ++i) {
        s.add(rng.uniform01());
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformIntRespectsBounds) {
    Xoshiro256 rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.uniform_int(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
        saw_lo |= (v == -3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256Test, UniformIntDegenerateRange) {
    Xoshiro256 rng(17);
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
    EXPECT_EQ(rng.uniform_int(9, 2), 9);  // hi < lo clamps to lo
}

TEST(Xoshiro256Test, NormalMomentsApproximatelyCorrect) {
    Xoshiro256 rng(19);
    OnlineStats s;
    for (int i = 0; i < 200000; ++i) {
        s.add(rng.normal(10.0, 3.0));
    }
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Xoshiro256Test, ExponentialMeanApproximatelyCorrect) {
    Xoshiro256 rng(23);
    OnlineStats s;
    for (int i = 0; i < 200000; ++i) {
        s.add(rng.exponential(0.25));
    }
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Xoshiro256Test, JumpDecorrelatesStreams) {
    Xoshiro256 a(31);
    Xoshiro256 b(31);
    b.jump();
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        equal += (a.next() == b.next()) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0);
}

// --------------------------------------------------------------- OnlineStats

TEST(OnlineStatsTest, KnownSmallSample) {
    OnlineStats s;
    for (const double v : {1.0, 2.0, 3.0, 4.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(OnlineStatsTest, EmptyIsSafe) {
    const OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.cov(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
    Xoshiro256 rng(37);
    OnlineStats all;
    OnlineStats a;
    OnlineStats b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(5, 2);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, CovIsStddevOverMean) {
    OnlineStats s;
    s.add(2.0);
    s.add(4.0);
    EXPECT_NEAR(s.cov(), s.stddev() / 3.0, 1e-12);
}

TEST(OnlineStatsTest, CovOfNegativeMeanSeriesIsPositive) {
    // Regression: cov() divided by the signed mean, so a negative-mean
    // series reported a negative coefficient of variation. Dispersion must
    // be sign-invariant: cov({-x}) == cov({x}).
    OnlineStats neg;
    OnlineStats pos;
    for (const double v : {2.0, 4.0, 9.0}) {
        neg.add(-v);
        pos.add(v);
    }
    EXPECT_GT(neg.cov(), 0.0);
    EXPECT_NEAR(neg.cov(), pos.cov(), 1e-12);
    EXPECT_NEAR(neg.cov(), neg.stddev() / 5.0, 1e-12);  // |mean| = 5
}

// ------------------------------------------------------------------ Summary

TEST(SummaryTest, PercentilesOfKnownSample) {
    const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.median, 5.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
    EXPECT_NEAR(s.p25, 3.25, 1e-12);
    EXPECT_NEAR(s.p75, 7.75, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum, 55.0);
}

TEST(SummaryTest, EmptyInput) {
    const Summary s = summarize(std::span<const double>{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, PercentileSortedEdges) {
    const std::vector<double> v = {10, 20, 30};
    EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 20.0);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BinningAndOverflow) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (hi is exclusive)
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(1), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, InvalidConstructionThrows) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
    Histogram h(0, 1, 2);
    EXPECT_THROW((void)h.bin_count(2), std::out_of_range);
}

// ---------------------------------------------------------------- TextTable

TEST(TextTableTest, AlignedRendering) {
    TextTable t({"a", "bbb"});
    t.add_row({"12", "3"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find(" a  bbb\n"), std::string::npos);
    EXPECT_NE(s.find("12    3\n"), std::string::npos);
}

TEST(TextTableTest, ArityMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, CsvQuoting) {
    TextTable t({"name", "value"});
    t.add_row({"with,comma", "with\"quote"});
    std::ostringstream oss;
    t.print_csv(oss);
    EXPECT_EQ(oss.str(), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(FormatTest, FormatDoubleTrimsZeros) {
    EXPECT_EQ(format_double(12.300, 3), "12.3");
    EXPECT_EQ(format_double(4.0, 2), "4");
    EXPECT_EQ(format_double(0.125, 3), "0.125");
    EXPECT_EQ(format_double(-0.0, 2), "0");
}

TEST(FormatTest, FormatSecondsPicksUnits) {
    EXPECT_EQ(format_seconds(2.5), "2.5 s");
    EXPECT_EQ(format_seconds(0.012), "12 ms");
    EXPECT_EQ(format_seconds(3.4e-6), "3.4 us");
}

// ---------------------------------------------------------------- ArgParser

TEST(ArgParserTest, DefaultsAndOverrides) {
    ArgParser cli("prog", "test");
    cli.add_int("nodes", 16, "node count");
    cli.add_double("scale", 1.0, "scale");
    cli.add_string("name", "abc", "name");
    cli.add_flag("csv", "emit csv");
    EXPECT_TRUE(cli.parse({"--nodes", "8", "--scale=0.5"}));
    EXPECT_EQ(cli.get_int("nodes"), 8);
    EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
    EXPECT_EQ(cli.get_string("name"), "abc");
    EXPECT_FALSE(cli.get_flag("csv"));
    EXPECT_TRUE(cli.provided("nodes"));
    EXPECT_FALSE(cli.provided("name"));
}

TEST(ArgParserTest, FlagForm) {
    ArgParser cli("prog", "test");
    cli.add_flag("csv", "emit csv");
    EXPECT_TRUE(cli.parse({"--csv"}));
    EXPECT_TRUE(cli.get_flag("csv"));
}

TEST(ArgParserTest, Errors) {
    ArgParser cli("prog", "test");
    cli.add_int("n", 1, "n");
    cli.add_flag("f", "f");
    EXPECT_THROW(cli.parse({"--unknown", "1"}), std::invalid_argument);
    EXPECT_THROW(cli.parse({"--n", "abc"}), std::invalid_argument);
    EXPECT_THROW(cli.parse({"--n"}), std::invalid_argument);
    EXPECT_THROW(cli.parse({"positional"}), std::invalid_argument);
    EXPECT_THROW(cli.parse({"--f=1"}), std::invalid_argument);
    EXPECT_THROW((void)cli.get_int("missing"), std::invalid_argument);
}

TEST(ArgParserTest, HelpReturnsFalse) {
    ArgParser cli("prog", "test");
    cli.add_int("n", 1, "the n value");
    testing::internal::CaptureStdout();
    EXPECT_FALSE(cli.parse({"--help"}));
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("the n value"), std::string::npos);
}

}  // namespace
