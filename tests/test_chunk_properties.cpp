/// \file test_chunk_properties.cpp
/// Property-based chunk-sequence tests over a (technique x N x P x
/// min_chunk) grid:
///  * centralized schedulers tile [0, N) exactly — no gap, no overlap,
///    all sizes positive;
///  * the step-indexed replay (shared step + scheduled counters with
///    clamping) tiles [0, N) exactly for every supports_step_indexed
///    technique, and reproduces the centralized scheduler bit-for-bit for
///    the techniques whose two forms are exact (STATIC, SS, FSC, TSS,
///    RND); GSS/FAC2/TFSS use documented closed-form approximations whose
///    divergence is bounded here;
///  * the remaining-count-based replay (the adaptive queue's CAS
///    protocol) tiles [0, N) exactly for FAC, WF and AWF-B/C/D/E across a
///    grid of weights.

#include <gtest/gtest.h>

#include <vector>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"
#include "dls/scheduler.hpp"

namespace {

using namespace hdls::dls;

LoopParams make_params(std::int64_t n, int p, std::int64_t min_chunk) {
    LoopParams lp;
    lp.total_iterations = n;
    lp.workers = p;
    lp.min_chunk = min_chunk;
    return lp;
}

struct GridCase {
    Technique technique;
    std::int64_t n;
    int p;
    std::int64_t min_chunk;
};

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
    std::string name(technique_name(info.param.technique));
    for (char& c : name) {
        if (c == '-') {
            c = '_';
        }
    }
    return name + "_N" + std::to_string(info.param.n) + "_P" + std::to_string(info.param.p) +
           "_m" + std::to_string(info.param.min_chunk);
}

constexpr std::int64_t kNs[] = {1, 7, 100, 4096, 54321};
constexpr int kPs[] = {1, 2, 4, 16};
constexpr std::int64_t kMinChunks[] = {1, 3, 8};

void expect_exact_tiling(const std::vector<Assignment>& chunks, std::int64_t n,
                         const char* what) {
    std::int64_t expected_start = 0;
    for (const auto& c : chunks) {
        ASSERT_EQ(c.start, expected_start) << what << ": gap or overlap at step " << c.step;
        ASSERT_GE(c.size, 1) << what << ": non-positive chunk at step " << c.step;
        expected_start += c.size;
    }
    ASSERT_EQ(expected_start, n) << what << ": iteration space not fully covered";
}

// ----------------------------------------------- centralized schedulers

class CentralizedTiling : public ::testing::TestWithParam<GridCase> {};

TEST_P(CentralizedTiling, ChunksTileTheIterationSpaceExactly) {
    const auto& [tech, n, p, min_chunk] = GetParam();
    const auto chunks = enumerate_chunks(tech, make_params(n, p, min_chunk));
    expect_exact_tiling(chunks, n, "centralized");
}

std::vector<GridCase> centralized_cases() {
    std::vector<GridCase> cases;
    for (const Technique t : all_techniques()) {
        for (const std::int64_t n : kNs) {
            for (const int p : kPs) {
                for (const std::int64_t m : kMinChunks) {
                    cases.push_back({t, n, p, m});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, CentralizedTiling,
                         ::testing::ValuesIn(centralized_cases()), grid_name);

// ------------------------------------------------- step-indexed replay

/// Serial model of the distributed protocol: shared step + scheduled
/// counters, hint clamped against the remaining count.
std::vector<Assignment> drain_step_indexed(Technique t, const LoopParams& p) {
    std::vector<Assignment> out;
    std::int64_t step_counter = 0;
    std::int64_t scheduled = 0;
    while (scheduled < p.total_iterations) {
        const std::int64_t step = step_counter++;
        const std::int64_t hint = chunk_size_for_step(t, p, step);
        if (hint <= 0) {
            break;  // would spin forever: caught by the coverage assert
        }
        const std::int64_t size = std::min(hint, p.total_iterations - scheduled);
        out.push_back({scheduled, size, step});
        scheduled += size;
    }
    return out;
}

class StepIndexedReplay : public ::testing::TestWithParam<GridCase> {};

TEST_P(StepIndexedReplay, ReplayTilesTheIterationSpaceExactly) {
    const auto& [tech, n, p, min_chunk] = GetParam();
    const auto chunks = drain_step_indexed(tech, make_params(n, p, min_chunk));
    expect_exact_tiling(chunks, n, "step-indexed");
}

TEST_P(StepIndexedReplay, ReplayMatchesCentralizedScheduler) {
    const auto& [tech, n, p, min_chunk] = GetParam();
    const LoopParams lp = make_params(n, p, min_chunk);
    const auto replay = drain_step_indexed(tech, lp);
    const auto central = enumerate_chunks(tech, lp);
    switch (tech) {
        case Technique::Static:
        case Technique::SS:
        case Technique::FSC:
        case Technique::TSS:
        case Technique::RND:
            // Both forms compute from the step index alone: bit-for-bit.
            ASSERT_EQ(replay.size(), central.size());
            for (std::size_t i = 0; i < replay.size(); ++i) {
                EXPECT_EQ(replay[i].start, central[i].start) << "chunk " << i;
                EXPECT_EQ(replay[i].size, central[i].size) << "chunk " << i;
            }
            break;
        default:
            // GSS/FAC2/TFSS replace the exact remaining count with a
            // closed-form estimate; the replay may split tail iterations
            // differently but must stay within one extra batch of chunks.
            EXPECT_GE(replay.size(), central.size() / 2);
            EXPECT_LE(replay.size(),
                      2 * central.size() + 2 * static_cast<std::size_t>(p));
            break;
    }
}

std::vector<GridCase> step_indexed_grid() {
    std::vector<GridCase> cases;
    for (const Technique t : all_techniques()) {
        if (!supports_step_indexed(t)) {
            continue;
        }
        for (const std::int64_t n : kNs) {
            for (const int p : kPs) {
                for (const std::int64_t m : kMinChunks) {
                    cases.push_back({t, n, p, m});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(StepIndexed, StepIndexedReplay,
                         ::testing::ValuesIn(step_indexed_grid()), grid_name);

// -------------------------------------------- remaining-based replay

/// Serial model of the adaptive queue's CAS protocol: a single remaining
/// cell, each take recomputing its share from the current count. `weight`
/// plays the requester's (fixed) weight.
std::vector<Assignment> drain_remaining_based(Technique t, const LoopParams& p,
                                              double weight) {
    std::vector<Assignment> out;
    std::int64_t remaining = p.total_iterations;
    std::int64_t step = 0;
    while (remaining > 0) {
        const std::int64_t size = remaining_based_chunk(t, p, remaining, weight);
        EXPECT_GT(size, 0) << "protocol stalled with " << remaining << " remaining";
        if (size <= 0) {
            break;
        }
        out.push_back({p.total_iterations - remaining, size, step++});
        remaining -= size;
    }
    return out;
}

class RemainingBasedReplay : public ::testing::TestWithParam<GridCase> {};

TEST_P(RemainingBasedReplay, ReplayTilesTheIterationSpaceExactly) {
    const auto& [tech, n, p, min_chunk] = GetParam();
    const LoopParams lp = make_params(n, p, min_chunk);
    for (const double weight : {0.01, 0.5, 1.0, 2.5}) {
        const auto chunks = drain_remaining_based(tech, lp, weight);
        expect_exact_tiling(chunks, n, "remaining-based");
    }
}

TEST_P(RemainingBasedReplay, ChunkNeverExceedsRemainingNorUndershootsMinChunk) {
    const auto& [tech, n, p, min_chunk] = GetParam();
    const LoopParams lp = make_params(n, p, min_chunk);
    for (std::int64_t r : {n, n / 2 + 1, min_chunk + 1, min_chunk, std::int64_t{1}}) {
        if (r <= 0) {
            continue;
        }
        const auto size = remaining_based_chunk(tech, lp, r, 1.0);
        EXPECT_LE(size, r);
        EXPECT_GE(size, std::min(r, min_chunk));
    }
    EXPECT_EQ(remaining_based_chunk(tech, lp, 0, 1.0), 0);
    EXPECT_EQ(remaining_based_chunk(tech, lp, -5, 1.0), 0);
}

std::vector<GridCase> remaining_based_grid() {
    std::vector<GridCase> cases;
    for (const Technique t : all_techniques()) {
        if (!supports_remaining_based(t)) {
            continue;
        }
        for (const std::int64_t n : kNs) {
            for (const int p : kPs) {
                for (const std::int64_t m : kMinChunks) {
                    cases.push_back({t, n, p, m});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RemainingBased, RemainingBasedReplay,
                         ::testing::ValuesIn(remaining_based_grid()), grid_name);

// ------------------------------------------------- predicate coherence

TEST(TechniquePredicates, EveryTechniqueHasExactlyOneDistributedForm) {
    for (const Technique t : all_techniques()) {
        EXPECT_TRUE(supports_internode(t)) << technique_name(t);
        EXPECT_NE(supports_step_indexed(t), supports_remaining_based(t))
            << technique_name(t) << ": the two distributed forms must not overlap";
    }
}

TEST(TechniquePredicates, AdaptiveTechniquesAreRemainingBased) {
    for (const Technique t : all_techniques()) {
        if (is_adaptive(t)) {
            EXPECT_TRUE(supports_remaining_based(t)) << technique_name(t);
        }
    }
}

}  // namespace
