/// \file test_minimpi.cpp
/// Tests for the thread-backed MPI-3-like runtime: point-to-point matching
/// rules, request lifecycle, collectives against serial references,
/// communicator management and RMA windows (shared allocation, passive-
/// target locks, atomic accumulates under contention).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "minimpi/minimpi.hpp"

namespace {

using namespace minimpi;

/// Runs `fn` over `world` ranks on a single simulated node.
void run(int world, const std::function<void(Context&)>& fn) { Runtime::run(world, fn); }

/// Runs `fn` over `nodes * rpn` ranks with `rpn` ranks per simulated node.
void run_cluster(int nodes, int rpn, const std::function<void(Context&)>& fn) {
    Runtime::run(nodes * rpn, Topology{rpn}, fn);
}

// ------------------------------------------------------------------ runtime

TEST(RuntimeTest, EveryRankRunsExactlyOnce) {
    std::atomic<int> count{0};
    std::array<std::atomic<int>, 8> per_rank{};
    run(8, [&](Context& ctx) {
        count.fetch_add(1);
        per_rank[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
        EXPECT_EQ(ctx.size(), 8);
    });
    EXPECT_EQ(count.load(), 8);
    for (const auto& c : per_rank) {
        EXPECT_EQ(c.load(), 1);
    }
}

TEST(RuntimeTest, TopologyAssignsNodesBlockwise) {
    run_cluster(3, 4, [&](Context& ctx) {
        EXPECT_EQ(ctx.node(), ctx.rank() / 4);
        EXPECT_EQ(ctx.nodes(), 3);
        EXPECT_EQ(ctx.topology().ranks_per_node, 4);
    });
}

TEST(RuntimeTest, InvalidLaunchArgsThrow) {
    EXPECT_THROW(run(0, [](Context&) {}), Error);
    EXPECT_THROW(Runtime::run(2, Topology{0}, [](Context&) {}), std::invalid_argument);
    EXPECT_THROW(Runtime::run(2, std::function<void(Context&)>{}), Error);
}

TEST(RuntimeTest, ExceptionInOneRankAbortsTheTeam) {
    // Rank 1 throws while rank 0 blocks in recv; the runtime must unwind
    // both and rethrow rank 1's primary exception, not the Aborted echo.
    try {
        run(2, [](Context& ctx) {
            if (ctx.rank() == 1) {
                throw std::logic_error("rank 1 exploded");
            }
            int v = 0;
            (void)ctx.world().recv(v, 1, 7);  // never satisfied
        });
        FAIL() << "expected an exception";
    } catch (const std::logic_error& e) {
        EXPECT_STREQ(e.what(), "rank 1 exploded");
    }
}

TEST(RuntimeTest, SingleRankWorldWorks) {
    run(1, [](Context& ctx) {
        EXPECT_EQ(ctx.rank(), 0);
        ctx.world().barrier();
        int v = 41;
        ctx.world().bcast(v, 0);
        EXPECT_EQ(ctx.world().allreduce(v, ReduceOp::Sum), 41);
    });
}

// -------------------------------------------------------------------- p2p

TEST(P2PTest, BlockingSendRecvScalar) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            w.send(1234, 1, 9);
        } else {
            int v = 0;
            const Status st = w.recv(v, 0, 9);
            EXPECT_EQ(v, 1234);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 9);
            EXPECT_EQ(st.bytes, sizeof(int));
        }
    });
}

TEST(P2PTest, SpanPayloadRoundTrip) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        std::vector<double> data(1000);
        if (ctx.rank() == 0) {
            std::iota(data.begin(), data.end(), 0.0);
            w.send(std::span<const double>(data), 1, 0);
        } else {
            std::vector<double> got(1000, -1.0);
            const Status st = w.recv(std::span<double>(got), 0, 0);
            EXPECT_EQ(st.count<double>(), 1000u);
            EXPECT_EQ(got[0], 0.0);
            EXPECT_EQ(got[999], 999.0);
        }
    });
}

TEST(P2PTest, NonOvertakingSameSourceSameTag) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            for (int i = 0; i < 100; ++i) {
                w.send(i, 1, 5);
            }
        } else {
            for (int i = 0; i < 100; ++i) {
                int v = -1;
                (void)w.recv(v, 0, 5);
                EXPECT_EQ(v, i);  // send order preserved
            }
        }
    });
}

TEST(P2PTest, TagSelectsAmongPendingMessages) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            w.send(111, 1, 1);
            w.send(222, 1, 2);
            w.send(333, 1, 3);
        } else {
            int v = 0;
            (void)w.recv(v, 0, 2);
            EXPECT_EQ(v, 222);
            (void)w.recv(v, 0, 3);
            EXPECT_EQ(v, 333);
            (void)w.recv(v, 0, 1);
            EXPECT_EQ(v, 111);
        }
    });
}

TEST(P2PTest, AnySourceAndAnyTagWildcards) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() != 0) {
            w.send(ctx.rank() * 10, 0, ctx.rank());
        } else {
            int sum = 0;
            for (int i = 0; i < 3; ++i) {
                int v = 0;
                const Status st = w.recv(v, kAnySource, kAnyTag);
                EXPECT_EQ(v, st.source * 10);
                EXPECT_EQ(st.tag, st.source);
                sum += v;
            }
            EXPECT_EQ(sum, 10 + 20 + 30);
        }
    });
}

TEST(P2PTest, SendToSelf) {
    run(1, [](Context& ctx) {
        ctx.world().send(7, 0, 0);
        int v = 0;
        (void)ctx.world().recv(v, 0, 0);
        EXPECT_EQ(v, 7);
    });
}

TEST(P2PTest, EmptyMessage) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            w.send_bytes(nullptr, 0, 1, 0);
        } else {
            const Status st = w.recv_bytes(nullptr, 0, 0, 0);
            EXPECT_EQ(st.bytes, 0u);
        }
    });
}

TEST(P2PTest, TruncationThrows) {
    EXPECT_THROW(run(2,
                     [](Context& ctx) {
                         const Comm& w = ctx.world();
                         if (ctx.rank() == 0) {
                             const std::array<int, 4> big{1, 2, 3, 4};
                             w.send(std::span<const int>(big), 1, 0);
                         } else {
                             int small = 0;
                             (void)w.recv(small, 0, 0);  // 4-byte buffer, 16-byte message
                         }
                     }),
                 Error);
}

TEST(P2PTest, InvalidRankAndTagThrow) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        int v = 0;
        EXPECT_THROW(w.send(v, 2, 0), Error);
        EXPECT_THROW(w.send(v, -1, 0), Error);
        EXPECT_THROW(w.send(v, 1, -3), Error);  // negative tag on send
        EXPECT_THROW((void)w.recv(v, 5, 0), Error);
        w.barrier();
    });
}

TEST(P2PTest, ProbeReportsPendingMessage) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            w.send(77, 1, 3);
            w.barrier();
        } else {
            const Status st = w.probe(kAnySource, kAnyTag);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 3);
            EXPECT_EQ(st.bytes, sizeof(int));
            int v = 0;
            (void)w.recv(v, st.source, st.tag);
            EXPECT_EQ(v, 77);
            EXPECT_EQ(w.iprobe(), std::nullopt);  // queue drained
            w.barrier();
        }
    });
}

// ---------------------------------------------------------------- requests

TEST(RequestTest, IrecvCompletesViaWait) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            w.send(55, 0, 0);
        } else {
            int v = 0;
            Request r = w.irecv(std::span<int>(&v, 1), 1, 0);
            EXPECT_FALSE(r.done());
            r.wait();
            EXPECT_TRUE(r.done());
            EXPECT_EQ(v, 55);
            EXPECT_EQ(r.status().source, 1);
        }
    });
}

TEST(RequestTest, TestPollsWithoutBlocking) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 1) {
            int go = 0;
            (void)w.recv(go, 0, 1);  // wait for the probe phase to finish
            w.send(66, 0, 0);
        } else {
            int v = 0;
            Request r = w.irecv(std::span<int>(&v, 1), 1, 0);
            EXPECT_FALSE(r.test());  // nothing sent yet
            w.send(1, 1, 1);         // release the sender
            while (!r.test()) {
                std::this_thread::yield();
            }
            EXPECT_EQ(v, 66);
        }
    });
}

TEST(RequestTest, IsendIsImmediatelyComplete) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() == 0) {
            const int v = 9;
            Request r = w.isend(std::span<const int>(&v, 1), 1, 0);
            EXPECT_TRUE(r.done());
            r.wait();  // idempotent
        } else {
            int v = 0;
            (void)w.recv(v, 0, 0);
            EXPECT_EQ(v, 9);
        }
    });
}

TEST(RequestTest, WaitAllCompletesMixedBatch) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        if (ctx.rank() != 0) {
            w.send(ctx.rank(), 0, 0);
        } else {
            std::array<int, 3> vals{};
            std::vector<Request> reqs;
            for (int i = 1; i <= 3; ++i) {
                reqs.push_back(w.irecv(std::span<int>(&vals[static_cast<std::size_t>(i - 1)], 1),
                                       i, 0));
            }
            Request::wait_all(reqs);
            EXPECT_EQ(vals[0] + vals[1] + vals[2], 6);
        }
    });
}

// -------------------------------------------------------------- collectives

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierCompletes) {
    run(GetParam(), [](Context& ctx) {
        for (int i = 0; i < 5; ++i) {
            ctx.world().barrier();
        }
    });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        for (int root = 0; root < p; ++root) {
            std::int64_t v = ctx.rank() == root ? 1000 + root : -1;
            ctx.world().bcast(v, root);
            EXPECT_EQ(v, 1000 + root);
        }
    });
}

TEST_P(CollectiveSizes, BcastSpanPayload) {
    run(GetParam(), [](Context& ctx) {
        std::vector<int> data(257, ctx.rank() == 0 ? 42 : 0);
        ctx.world().bcast(std::span<int>(data), 0);
        for (const int v : data) {
            EXPECT_EQ(v, 42);
        }
    });
}

TEST_P(CollectiveSizes, ReduceSumToEveryRoot) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        const std::int64_t expected = static_cast<std::int64_t>(p) * (p - 1) / 2;
        for (int root = 0; root < p; ++root) {
            const auto r =
                ctx.world().reduce(static_cast<std::int64_t>(ctx.rank()), ReduceOp::Sum, root);
            if (ctx.rank() == root) {
                EXPECT_EQ(r, expected);
            }
        }
    });
}

TEST_P(CollectiveSizes, AllreduceMinMaxProd) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        const int me = ctx.rank() + 1;  // 1..P
        EXPECT_EQ(ctx.world().allreduce(me, ReduceOp::Min), 1);
        EXPECT_EQ(ctx.world().allreduce(me, ReduceOp::Max), p);
        if (p <= 8) {  // factorial fits easily
            std::int64_t fact = 1;
            for (int i = 1; i <= p; ++i) {
                fact *= i;
            }
            EXPECT_EQ(ctx.world().allreduce(static_cast<std::int64_t>(me), ReduceOp::Prod), fact);
        }
    });
}

TEST_P(CollectiveSizes, ReduceElementwiseVectors) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        std::vector<int> mine(16);
        for (std::size_t i = 0; i < mine.size(); ++i) {
            mine[i] = ctx.rank() + static_cast<int>(i);
        }
        std::vector<int> out(16, -1);
        ctx.world().reduce(std::span<const int>(mine), std::span<int>(out), ReduceOp::Sum, 0);
        if (ctx.rank() == 0) {
            const int ranksum = p * (p - 1) / 2;
            for (std::size_t i = 0; i < out.size(); ++i) {
                EXPECT_EQ(out[i], ranksum + static_cast<int>(i) * p);
            }
        }
    });
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrder) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        const auto all = ctx.world().gather(ctx.rank() * 2, 0);
        if (ctx.rank() == 0) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) {
                EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 2);
            }
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(CollectiveSizes, AllgatherGivesEveryoneEverything) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        const auto all = ctx.world().allgather(100 + ctx.rank());
        ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            EXPECT_EQ(all[static_cast<std::size_t>(r)], 100 + r);
        }
    });
}

TEST_P(CollectiveSizes, ScatterDistributesSlices) {
    const int p = GetParam();
    run(p, [p](Context& ctx) {
        std::vector<int> src;
        if (ctx.rank() == 0) {
            src.resize(static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) {
                src[static_cast<std::size_t>(r)] = r * r;
            }
        }
        const int mine = ctx.world().scatter(std::span<const int>(src), 0);
        EXPECT_EQ(mine, ctx.rank() * ctx.rank());
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(1, 2, 3, 5, 8, 16, 17));

TEST(CollectiveTest, ConcurrentCollectivesOnDistinctCommsDoNotCross) {
    // Split world into two halves; each half does its own reductions while
    // the other is mid-flight. Sequence numbers must keep them apart.
    run(8, [](Context& ctx) {
        const Comm& w = ctx.world();
        const Comm half = w.split(ctx.rank() % 2, ctx.rank());
        for (int i = 0; i < 20; ++i) {
            const int sum = half.allreduce(1, ReduceOp::Sum);
            EXPECT_EQ(sum, 4);
        }
        w.barrier();
    });
}

TEST(CollectiveTest, FloatingPointAllreduceSum) {
    run(7, [](Context& ctx) {
        const double r = ctx.world().allreduce(0.5, ReduceOp::Sum);
        EXPECT_NEAR(r, 3.5, 1e-12);
    });
}

// ------------------------------------------------------- comm management

TEST(CommTest, SplitGroupsByColorOrderedByKey) {
    run(6, [](Context& ctx) {
        const Comm& w = ctx.world();
        // colors: even ranks -> 0, odd -> 1; key reverses the order.
        const Comm sub = w.split(ctx.rank() % 2, -ctx.rank());
        EXPECT_TRUE(sub.valid());
        EXPECT_EQ(sub.size(), 3);
        // Reversed key: highest old rank becomes rank 0 of the child.
        const int expected_rank = (5 - ctx.rank()) / 2;
        EXPECT_EQ(sub.rank(), expected_rank);
        // The new comm must be functional.
        const int sum = sub.allreduce(ctx.rank(), ReduceOp::Sum);
        EXPECT_EQ(sum, ctx.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    });
}

TEST(CommTest, SplitWithNegativeColorYieldsNullComm) {
    run(4, [](Context& ctx) {
        const Comm sub = ctx.world().split(ctx.rank() == 0 ? -1 : 7, 0);
        if (ctx.rank() == 0) {
            EXPECT_FALSE(sub.valid());
        } else {
            EXPECT_TRUE(sub.valid());
            EXPECT_EQ(sub.size(), 3);
        }
    });
}

TEST(CommTest, SplitTypeSharedGroupsByNode) {
    run_cluster(3, 4, [](Context& ctx) {
        const Comm node = ctx.world().split_type(SplitType::Shared, ctx.world().rank());
        EXPECT_EQ(node.size(), 4);
        EXPECT_EQ(node.rank(), ctx.rank() % 4);
        // All members must really share my node.
        for (int r = 0; r < node.size(); ++r) {
            EXPECT_EQ(node.node_of(r), ctx.node());
        }
        const int sum = node.allreduce(1, ReduceOp::Sum);
        EXPECT_EQ(sum, 4);
    });
}

TEST(CommTest, DupIsIndependentMatchingContext) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        const Comm d = w.dup();
        EXPECT_NE(d.id(), w.id());
        EXPECT_EQ(d.size(), w.size());
        if (ctx.rank() == 0) {
            w.send(1, 1, 0);
            d.send(2, 1, 0);
        } else {
            // Receive from the dup first: tags/sources equal, only the
            // communicator distinguishes them.
            int v = 0;
            (void)d.recv(v, 0, 0);
            EXPECT_EQ(v, 2);
            (void)w.recv(v, 0, 0);
            EXPECT_EQ(v, 1);
        }
    });
}

TEST(CommTest, WorldRankMapping) {
    run(4, [](Context& ctx) {
        const Comm sub = ctx.world().split(ctx.rank() / 2, ctx.rank());
        EXPECT_EQ(sub.world_rank_of(sub.rank()), ctx.rank());
        EXPECT_THROW((void)sub.world_rank_of(99), Error);
    });
}

TEST(CommTest, OperationsOnInvalidCommThrow) {
    const Comm invalid;
    EXPECT_FALSE(invalid.valid());
    int v = 0;
    EXPECT_THROW(invalid.send(v, 0, 0), Error);
    EXPECT_THROW(invalid.barrier(), Error);
    EXPECT_THROW((void)invalid.dup(), Error);
}

// ------------------------------------------------------------------ windows

TEST(WindowTest, AllocateSharedLayoutAndQuery) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        // Heterogeneous segment sizes, like MPI allows.
        const std::size_t mine = sizeof(std::int64_t) * static_cast<std::size_t>(ctx.rank() + 1);
        Window win = Window::allocate_shared(w, mine);
        EXPECT_EQ(win.size(), 4);
        EXPECT_EQ(win.rank(), ctx.rank());
        EXPECT_EQ(win.local_span().size(), mine);
        for (int r = 0; r < 4; ++r) {
            const auto [ptr, bytes] = win.shared_query(r);
            EXPECT_NE(ptr, nullptr);
            EXPECT_EQ(bytes, sizeof(std::int64_t) * static_cast<std::size_t>(r + 1));
        }
        win.free();
        EXPECT_FALSE(win.valid());
    });
}

TEST(WindowTest, DirectStoresVisibleAfterBarrier) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, sizeof(std::int64_t));
        auto mine = win.shared_span<std::int64_t>(ctx.rank());
        mine[0] = 100 + ctx.rank();
        win.sync();
        w.barrier();
        for (int r = 0; r < 4; ++r) {
            EXPECT_EQ(win.shared_span<std::int64_t>(r)[0], 100 + r);
        }
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, PutGetRoundTrip) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, 8 * sizeof(double));
        if (ctx.rank() == 0) {
            const std::array<double, 8> vals{1, 2, 3, 4, 5, 6, 7, 8};
            win.lock(LockType::Exclusive, 1);
            win.put(std::span<const double>(vals), 1, 0);
            win.unlock(1);
            win.flush(1);
        }
        w.barrier();
        std::array<double, 8> got{};
        win.lock(LockType::Shared, 1);
        win.get(std::span<double>(got), 1, 0);
        win.unlock(1);
        EXPECT_EQ(got[0], 1.0);
        EXPECT_EQ(got[7], 8.0);
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, FetchAndOpSumIsAtomicUnderContention) {
    constexpr int kRanks = 8;
    constexpr int kIncrements = 2000;
    run(kRanks, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 0;
        }
        w.barrier();
        std::int64_t sum_of_previous = 0;
        for (int i = 0; i < kIncrements; ++i) {
            sum_of_previous +=
                win.fetch_and_op<std::int64_t>(1, 0, 0, AccumulateOp::Sum);
        }
        w.barrier();
        if (ctx.rank() == 0) {
            // Every increment observed a unique previous value: the final
            // count is exact iff no update was lost.
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0),
                      static_cast<std::int64_t>(kRanks) * kIncrements);
        }
        w.barrier();
        win.free();
        (void)sum_of_previous;
    });
}

TEST(WindowTest, FetchAndOpVariants) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? 4 * sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            auto s = win.shared_span<std::int64_t>(0);
            s[0] = 10;
            s[1] = 10;
            s[2] = 10;
            s[3] = 10;
        }
        w.barrier();
        if (ctx.rank() == 1) {
            EXPECT_EQ(win.fetch_and_op<std::int64_t>(5, 0, 0, AccumulateOp::Sum), 10);
            EXPECT_EQ(win.fetch_and_op<std::int64_t>(77, 0, 1, AccumulateOp::Replace), 10);
            EXPECT_EQ(win.fetch_and_op<std::int64_t>(3, 0, 2, AccumulateOp::Min), 10);
            EXPECT_EQ(win.fetch_and_op<std::int64_t>(99, 0, 3, AccumulateOp::Max), 10);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0), 15);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 1), 77);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 2), 3);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 3), 99);
        }
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, FetchAndOpOnDoubles) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(double) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<double>(0)[0] = 0.0;
        }
        w.barrier();
        for (int i = 0; i < 500; ++i) {
            (void)win.fetch_and_op<double>(0.5, 0, 0, AccumulateOp::Sum);
        }
        w.barrier();
        if (ctx.rank() == 0) {
            EXPECT_DOUBLE_EQ(win.atomic_read<double>(0, 0), 4 * 500 * 0.5);
        }
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, CompareAndSwap) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 5;
        }
        w.barrier();
        if (ctx.rank() == 1) {
            // Successful swap returns the old value and stores the new one.
            EXPECT_EQ(win.compare_and_swap<std::int64_t>(5, 9, 0, 0), 5);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0), 9);
            // Failed swap leaves the value alone.
            EXPECT_EQ(win.compare_and_swap<std::int64_t>(5, 1, 0, 0), 9);
            EXPECT_EQ(win.atomic_read<std::int64_t>(0, 0), 9);
        }
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, ExclusiveLockProvidesMutualExclusion) {
    // Classic read-modify-write race: without the lock the final counter
    // would (with overwhelming probability) be smaller than the target.
    constexpr int kRanks = 8;
    constexpr int kRounds = 500;
    run(kRanks, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        auto cell = win.shared_span<std::int64_t>(0);
        if (ctx.rank() == 0) {
            cell[0] = 0;
        }
        w.barrier();
        for (int i = 0; i < kRounds; ++i) {
            win.lock(LockType::Exclusive, 0);
            const std::int64_t v = cell[0];  // non-atomic RMW under the lock
            cell[0] = v + 1;
            win.unlock(0);
        }
        w.barrier();
        if (ctx.rank() == 0) {
            EXPECT_EQ(cell[0], static_cast<std::int64_t>(kRanks) * kRounds);
        }
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, LockDisciplineViolationsThrow) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, sizeof(std::int64_t));
        EXPECT_THROW(win.unlock(0), Error);  // unlock without lock
        win.lock(LockType::Shared, 0);
        EXPECT_THROW(win.lock(LockType::Shared, 0), Error);  // overlapping epoch
        win.unlock(0);
        EXPECT_THROW(win.lock(LockType::Exclusive, 9), Error);  // bad target
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, LockAllUnlockAll) {
    run(4, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, sizeof(std::int64_t));
        win.lock_all();
        for (int r = 0; r < 4; ++r) {
            std::int64_t v = 0;
            win.get(std::span<std::int64_t>(&v, 1), r, 0);
        }
        win.unlock_all();
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, OutOfRangeAndMisalignedAccessThrow) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, 3 * sizeof(std::int64_t));
        EXPECT_THROW((void)win.atomic_read<std::int64_t>(0, 3), Error);   // past the end
        EXPECT_THROW((void)win.atomic_read<std::int64_t>(0, 100), Error);
        std::array<std::int64_t, 4> buf{};
        EXPECT_THROW(win.put(std::span<const std::int64_t>(buf), 0, 0), Error);  // 4 > 3
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, FreeWithOpenEpochThrows) {
    run(2, [](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, sizeof(std::int64_t));
        win.lock(LockType::Shared, 0);
        EXPECT_THROW(win.free(), Error);
        win.unlock(0);
        w.barrier();
        win.free();
    });
}

TEST(WindowTest, WindowsOnSubCommunicators) {
    // The paper's layout: one global window on world, one shared window per
    // node communicator.
    run_cluster(2, 4, [](Context& ctx) {
        const Comm& world = ctx.world();
        const Comm node = world.split_type(SplitType::Shared, world.rank());
        Window global = Window::allocate_shared(world, world.rank() == 0 ? 16 : 0);
        Window local = Window::allocate_shared(node, node.rank() == 0 ? 16 : 0);
        // Node-local counter increments stay within the node.
        (void)local.fetch_and_op<std::int64_t>(1, 0, 0, AccumulateOp::Sum);
        world.barrier();
        if (node.rank() == 0) {
            EXPECT_EQ(local.atomic_read<std::int64_t>(0, 0), 4);
        }
        // Global counter sees everyone.
        (void)global.fetch_and_op<std::int64_t>(1, 0, 0, AccumulateOp::Sum);
        world.barrier();
        if (world.rank() == 0) {
            EXPECT_EQ(global.atomic_read<std::int64_t>(0, 0), 8);
        }
        world.barrier();
        local.free();
        global.free();
    });
}

// ----------------------------------------------------------- stress tests

TEST(StressTest, ManyToOneTraffic) {
    run(16, [](Context& ctx) {
        const Comm& w = ctx.world();
        constexpr int kMsgs = 50;
        if (ctx.rank() == 0) {
            std::int64_t total = 0;
            for (int i = 0; i < kMsgs * 15; ++i) {
                std::int64_t v = 0;
                (void)w.recv(v, kAnySource, 0);
                total += v;
            }
            EXPECT_EQ(total, 15LL * 16 / 2 * kMsgs);  // sum of ranks 1..15, kMsgs each
        } else {
            for (int i = 0; i < kMsgs; ++i) {
                w.send(static_cast<std::int64_t>(ctx.rank()), 0, 0);
            }
        }
    });
}

TEST(StressTest, StepCounterProtocolMatchesSsSemantics) {
    // The distributed chunk-calculation idiom end-to-end on minimpi: every
    // rank fetch-adds the step counter until N is exhausted; the union of
    // claimed steps must be exactly [0, N).
    constexpr std::int64_t kN = 5000;
    constexpr int kRanks = 8;
    std::array<std::atomic<int>, kN> claimed{};
    run(kRanks, [&](Context& ctx) {
        const Comm& w = ctx.world();
        Window win = Window::allocate_shared(w, ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
        if (ctx.rank() == 0) {
            win.shared_span<std::int64_t>(0)[0] = 0;
        }
        w.barrier();
        for (;;) {
            const std::int64_t step =
                win.fetch_and_op<std::int64_t>(1, 0, 0, AccumulateOp::Sum);
            if (step >= kN) {
                break;
            }
            claimed[static_cast<std::size_t>(step)].fetch_add(1);
        }
        w.barrier();
        win.free();
    });
    for (std::int64_t i = 0; i < kN; ++i) {
        EXPECT_EQ(claimed[static_cast<std::size_t>(i)].load(), 1) << "step " << i;
    }
}

}  // namespace
