/// \file test_mpi_compat.cpp
/// Tests for the MPI C-API compatibility layer: classic MPI code shapes
/// running unchanged on the thread-backed runtime, ending with the paper's
/// full two-level protocol written in pure MPI style.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "minimpi/mpi_compat.hpp"

namespace {

using namespace minimpi::compat;

TEST(CompatBasicsTest, RankSizeAndInitialized) {
    run(4, [] {
        int flag = 0;
        ASSERT_EQ(MPI_Initialized(&flag), MPI_SUCCESS);
        EXPECT_EQ(flag, 1);
        int rank = -1;
        int size = -1;
        ASSERT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_SUCCESS);
        ASSERT_EQ(MPI_Comm_size(MPI_COMM_WORLD, &size), MPI_SUCCESS);
        EXPECT_GE(rank, 0);
        EXPECT_LT(rank, 4);
        EXPECT_EQ(size, 4);
    });
}

TEST(CompatBasicsTest, CallsOutsideRunFail) {
    int rank = 0;
    EXPECT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_ERR_OTHER);
    int flag = -1;
    EXPECT_EQ(MPI_Initialized(&flag), MPI_SUCCESS);
    EXPECT_EQ(flag, 0);
}

TEST(CompatP2PTest, SendRecvWithStatusAndGetCount) {
    run(2, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank == 0) {
            const std::array<double, 3> data{1.5, 2.5, 3.5};
            ASSERT_EQ(MPI_Send(data.data(), 3, MPI_DOUBLE, 1, 42, MPI_COMM_WORLD),
                      MPI_SUCCESS);
        } else {
            std::array<double, 3> got{};
            MPI_Status status;
            ASSERT_EQ(MPI_Recv(got.data(), 3, MPI_DOUBLE, 0, 42, MPI_COMM_WORLD, &status),
                      MPI_SUCCESS);
            EXPECT_EQ(status.MPI_SOURCE, 0);
            EXPECT_EQ(status.MPI_TAG, 42);
            int count = 0;
            ASSERT_EQ(MPI_Get_count(&status, MPI_DOUBLE, &count), MPI_SUCCESS);
            EXPECT_EQ(count, 3);
            EXPECT_EQ(got[2], 3.5);
        }
    });
}

TEST(CompatP2PTest, WildcardsAndStatusIgnore) {
    run(3, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank != 0) {
            MPI_Send(&rank, 1, MPI_INT, 0, rank, MPI_COMM_WORLD);
        } else {
            int sum = 0;
            for (int i = 0; i < 2; ++i) {
                int v = 0;
                ASSERT_EQ(MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG,
                                   MPI_COMM_WORLD, MPI_STATUS_IGNORE),
                          MPI_SUCCESS);
                sum += v;
            }
            EXPECT_EQ(sum, 3);
        }
    });
}

TEST(CompatP2PTest, ErrorCodesMatchMpiConventions) {
    run(2, [] {
        int v = 0;
        EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 7, 0, MPI_COMM_WORLD), MPI_ERR_RANK);
        EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 1, -5, MPI_COMM_WORLD), MPI_ERR_TAG);
        EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 1, 0, MPI_COMM_NULL), MPI_ERR_COMM);
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank == 0) {
            const std::array<int, 4> big{1, 2, 3, 4};
            MPI_Send(big.data(), 4, MPI_INT, 1, 1, MPI_COMM_WORLD);
        } else {
            int small = 0;
            EXPECT_EQ(MPI_Recv(&small, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE),
                      MPI_ERR_TRUNCATE);
        }
        MPI_Barrier(MPI_COMM_WORLD);
    });
}

TEST(CompatP2PTest, NonblockingLifecycle) {
    run(2, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank == 0) {
            std::array<std::int64_t, 2> data{7, 9};
            MPI_Request req = MPI_REQUEST_NULL;
            ASSERT_EQ(MPI_Isend(data.data(), 2, MPI_INT64_T, 1, 0, MPI_COMM_WORLD, &req),
                      MPI_SUCCESS);
            ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
            EXPECT_EQ(req, MPI_REQUEST_NULL);
        } else {
            std::array<std::int64_t, 2> got{};
            MPI_Request req = MPI_REQUEST_NULL;
            ASSERT_EQ(MPI_Irecv(got.data(), 2, MPI_INT64_T, 0, 0, MPI_COMM_WORLD, &req),
                      MPI_SUCCESS);
            MPI_Status status;
            ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
            EXPECT_EQ(got[0] + got[1], 16);
            EXPECT_EQ(status.MPI_SOURCE, 0);
        }
    });
}

TEST(CompatP2PTest, WaitallAndTest) {
    run(4, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank != 0) {
            MPI_Send(&rank, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
        } else {
            std::array<int, 3> vals{};
            std::array<MPI_Request, 3> reqs{};
            for (int i = 0; i < 3; ++i) {
                MPI_Irecv(&vals[static_cast<std::size_t>(i)], 1, MPI_INT, i + 1, 0,
                          MPI_COMM_WORLD, &reqs[static_cast<std::size_t>(i)]);
            }
            ASSERT_EQ(MPI_Waitall(3, reqs.data(), MPI_STATUSES_IGNORE), MPI_SUCCESS);
            EXPECT_EQ(vals[0] + vals[1] + vals[2], 6);
            // Test on a null request completes immediately.
            MPI_Request null_req = MPI_REQUEST_NULL;
            int flag = 0;
            ASSERT_EQ(MPI_Test(&null_req, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
            EXPECT_EQ(flag, 1);
        }
    });
}

TEST(CompatP2PTest, SendrecvExchange) {
    run(2, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        const int mine = rank * 10 + 5;
        int theirs = -1;
        const int partner = 1 - rank;
        ASSERT_EQ(MPI_Sendrecv(&mine, 1, MPI_INT, partner, 0, &theirs, 1, MPI_INT, partner, 0,
                               MPI_COMM_WORLD, MPI_STATUS_IGNORE),
                  MPI_SUCCESS);
        EXPECT_EQ(theirs, partner * 10 + 5);
    });
}

TEST(CompatP2PTest, ProbeAndIprobe) {
    run(2, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        if (rank == 0) {
            const int v = 5;
            MPI_Send(&v, 1, MPI_INT, 1, 3, MPI_COMM_WORLD);
            MPI_Barrier(MPI_COMM_WORLD);
        } else {
            MPI_Status status;
            ASSERT_EQ(MPI_Probe(MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &status),
                      MPI_SUCCESS);
            EXPECT_EQ(status.MPI_TAG, 3);
            int v = 0;
            MPI_Recv(&v, 1, MPI_INT, status.MPI_SOURCE, status.MPI_TAG, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
            int flag = 1;
            ASSERT_EQ(MPI_Iprobe(MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &flag,
                                 MPI_STATUS_IGNORE),
                      MPI_SUCCESS);
            EXPECT_EQ(flag, 0);
            MPI_Barrier(MPI_COMM_WORLD);
        }
    });
}

TEST(CompatCollectiveTest, BcastReduceAllreduce) {
    run(5, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        int v = rank == 2 ? 99 : 0;
        ASSERT_EQ(MPI_Bcast(&v, 1, MPI_INT, 2, MPI_COMM_WORLD), MPI_SUCCESS);
        EXPECT_EQ(v, 99);

        const std::int64_t mine = rank + 1;
        std::int64_t total = 0;
        ASSERT_EQ(MPI_Reduce(&mine, &total, 1, MPI_INT64_T, MPI_SUM, 0, MPI_COMM_WORLD),
                  MPI_SUCCESS);
        if (rank == 0) {
            EXPECT_EQ(total, 15);
        }

        double maxv = 0;
        const double dmine = rank * 1.5;
        ASSERT_EQ(MPI_Allreduce(&dmine, &maxv, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD),
                  MPI_SUCCESS);
        EXPECT_DOUBLE_EQ(maxv, 6.0);

        // Reduce on a non-arithmetic datatype must fail cleanly.
        char c = 'a';
        char out = 0;
        EXPECT_EQ(MPI_Allreduce(&c, &out, 1, MPI_CHAR, MPI_SUM, MPI_COMM_WORLD), MPI_ERR_TYPE);
        MPI_Barrier(MPI_COMM_WORLD);
    });
}

TEST(CompatCollectiveTest, GatherScatterAllgather) {
    run(4, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        const int mine = rank * rank;
        std::array<int, 4> all{};
        ASSERT_EQ(MPI_Gather(&mine, 1, MPI_INT, all.data(), 1, MPI_INT, 0, MPI_COMM_WORLD),
                  MPI_SUCCESS);
        if (rank == 0) {
            EXPECT_EQ(all, (std::array<int, 4>{0, 1, 4, 9}));
        }

        std::array<int, 4> everywhere{};
        ASSERT_EQ(MPI_Allgather(&mine, 1, MPI_INT, everywhere.data(), 1, MPI_INT,
                                MPI_COMM_WORLD),
                  MPI_SUCCESS);
        EXPECT_EQ(everywhere, (std::array<int, 4>{0, 1, 4, 9}));

        std::array<int, 4> src{10, 20, 30, 40};
        int piece = -1;
        ASSERT_EQ(MPI_Scatter(src.data(), 1, MPI_INT, &piece, 1, MPI_INT, 0, MPI_COMM_WORLD),
                  MPI_SUCCESS);
        EXPECT_EQ(piece, (rank + 1) * 10);
    });
}

TEST(CompatCommTest, SplitDupAndFree) {
    run(6, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm half = MPI_COMM_NULL;
        ASSERT_EQ(MPI_Comm_split(MPI_COMM_WORLD, rank % 2, rank, &half), MPI_SUCCESS);
        int half_size = 0;
        MPI_Comm_size(half, &half_size);
        EXPECT_EQ(half_size, 3);

        MPI_Comm duped = MPI_COMM_NULL;
        ASSERT_EQ(MPI_Comm_dup(half, &duped), MPI_SUCCESS);
        int sum = 0;
        const int one = 1;
        MPI_Allreduce(&one, &sum, 1, MPI_INT, MPI_SUM, duped);
        EXPECT_EQ(sum, 3);

        ASSERT_EQ(MPI_Comm_free(&duped), MPI_SUCCESS);
        EXPECT_EQ(duped, MPI_COMM_NULL);
        ASSERT_EQ(MPI_Comm_free(&half), MPI_SUCCESS);
        // Freeing MPI_COMM_WORLD is an error.
        MPI_Comm world = MPI_COMM_WORLD;
        EXPECT_EQ(MPI_Comm_free(&world), MPI_ERR_COMM);

        // MPI_UNDEFINED color yields MPI_COMM_NULL.
        MPI_Comm none = MPI_COMM_WORLD;
        ASSERT_EQ(MPI_Comm_split(MPI_COMM_WORLD, rank == 0 ? MPI_UNDEFINED : 7, 0, &none),
                  MPI_SUCCESS);
        if (rank == 0) {
            EXPECT_EQ(none, MPI_COMM_NULL);
        } else {
            EXPECT_NE(none, MPI_COMM_NULL);
        }
        MPI_Barrier(MPI_COMM_WORLD);
    });
}

TEST(CompatCommTest, SplitTypeSharedFollowsTopology) {
    run(8, minimpi::Topology{4}, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm node = MPI_COMM_NULL;
        ASSERT_EQ(MPI_Comm_split_type(MPI_COMM_WORLD, MPI_COMM_TYPE_SHARED, rank,
                                      MPI_INFO_NULL, &node),
                  MPI_SUCCESS);
        int node_size = 0;
        int node_rank = -1;
        MPI_Comm_size(node, &node_size);
        MPI_Comm_rank(node, &node_rank);
        EXPECT_EQ(node_size, 4);
        EXPECT_EQ(node_rank, rank % 4);
    });
}

TEST(CompatRmaTest, SharedWindowLifecycle) {
    run(4, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        void* base = nullptr;
        MPI_Win win = MPI_WIN_NULL;
        const MPI_Aint bytes = rank == 0 ? 2 * sizeof(std::int64_t) : 0;
        ASSERT_EQ(MPI_Win_allocate_shared(bytes, sizeof(std::int64_t), MPI_INFO_NULL,
                                          MPI_COMM_WORLD, &base, &win),
                  MPI_SUCCESS);
        // Query rank 0's segment from everywhere.
        MPI_Aint qsize = 0;
        int disp = 0;
        void* qbase = nullptr;
        ASSERT_EQ(MPI_Win_shared_query(win, 0, &qsize, &disp, &qbase), MPI_SUCCESS);
        EXPECT_EQ(qsize, static_cast<MPI_Aint>(2 * sizeof(std::int64_t)));
        EXPECT_EQ(disp, static_cast<int>(sizeof(std::int64_t)));
        ASSERT_NE(qbase, nullptr);
        if (rank == 0) {
            EXPECT_EQ(qbase, base);
            static_cast<std::int64_t*>(qbase)[0] = 0;
            static_cast<std::int64_t*>(qbase)[1] = 0;
        }
        MPI_Win_sync(win);
        MPI_Barrier(MPI_COMM_WORLD);

        // Atomic increments from every rank.
        const std::int64_t one = 1;
        std::int64_t prev = -1;
        for (int i = 0; i < 100; ++i) {
            ASSERT_EQ(MPI_Fetch_and_op(&one, &prev, MPI_INT64_T, 0, 0, MPI_SUM, win),
                      MPI_SUCCESS);
        }
        MPI_Barrier(MPI_COMM_WORLD);
        std::int64_t total = 0;
        ASSERT_EQ(MPI_Fetch_and_op(nullptr, &total, MPI_INT64_T, 0, 0, MPI_NO_OP, win),
                  MPI_SUCCESS);
        EXPECT_EQ(total, 400);

        // Locked read-modify-write on the second cell.
        ASSERT_EQ(MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win), MPI_SUCCESS);
        static_cast<std::int64_t*>(qbase)[1] += rank;
        ASSERT_EQ(MPI_Win_unlock(0, win), MPI_SUCCESS);
        MPI_Win_flush(0, win);
        MPI_Barrier(MPI_COMM_WORLD);
        if (rank == 0) {
            EXPECT_EQ(static_cast<std::int64_t*>(qbase)[1], 0 + 1 + 2 + 3);
        }

        ASSERT_EQ(MPI_Win_free(&win), MPI_SUCCESS);
        EXPECT_EQ(win, MPI_WIN_NULL);
    });
}

TEST(CompatRmaTest, CompareAndSwap) {
    run(2, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        void* base = nullptr;
        MPI_Win win = MPI_WIN_NULL;
        MPI_Win_allocate_shared(rank == 0 ? sizeof(std::int64_t) : 0, 8, MPI_INFO_NULL,
                                MPI_COMM_WORLD, &base, &win);
        if (rank == 0) {
            *static_cast<std::int64_t*>(base) = 10;
        }
        MPI_Barrier(MPI_COMM_WORLD);
        if (rank == 1) {
            const std::int64_t desired = 20;
            const std::int64_t expected = 10;
            std::int64_t prev = 0;
            ASSERT_EQ(MPI_Compare_and_swap(&desired, &expected, &prev, MPI_INT64_T, 0, 0, win),
                      MPI_SUCCESS);
            EXPECT_EQ(prev, 10);
            // Failed swap: value already changed.
            ASSERT_EQ(MPI_Compare_and_swap(&desired, &expected, &prev, MPI_INT64_T, 0, 0, win),
                      MPI_SUCCESS);
            EXPECT_EQ(prev, 20);
        }
        MPI_Barrier(MPI_COMM_WORLD);
        MPI_Win_free(&win);
    });
}

/// The paper's complete two-level protocol in pure MPI style: a global
/// window holding {step, scheduled} on world rank 0 and a node-shared
/// window holding the local queue, SS at both levels for simplicity.
/// This is (modulo syntax) the code a real-MPI port of the paper runs.
TEST(CompatIntegrationTest, PaperProtocolInPureMpiStyle) {
    constexpr std::int64_t kN = 2000;
    constexpr int kRanks = 8;
    static std::array<std::atomic<int>, kN> executed;
    for (auto& e : executed) {
        e.store(0);
    }
    run(kRanks, minimpi::Topology{4}, [] {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);

        MPI_Comm node_comm = MPI_COMM_NULL;
        MPI_Comm_split_type(MPI_COMM_WORLD, MPI_COMM_TYPE_SHARED, rank, MPI_INFO_NULL,
                            &node_comm);
        int node_rank = 0;
        MPI_Comm_rank(node_comm, &node_rank);

        // Global queue: [0] = scheduled iterations (SS: step == start).
        void* gbase = nullptr;
        MPI_Win gwin = MPI_WIN_NULL;
        MPI_Win_allocate_shared(rank == 0 ? sizeof(std::int64_t) : 0, 8, MPI_INFO_NULL,
                                MPI_COMM_WORLD, &gbase, &gwin);
        if (rank == 0) {
            *static_cast<std::int64_t*>(gbase) = 0;
        }
        MPI_Win_sync(gwin);
        MPI_Barrier(MPI_COMM_WORLD);

        // Local queue: [0] = chunk start, [1] = chunk end, [2] = cursor.
        void* lbase = nullptr;
        MPI_Win lwin = MPI_WIN_NULL;
        MPI_Win_allocate_shared(node_rank == 0 ? 3 * sizeof(std::int64_t) : 0, 8,
                                MPI_INFO_NULL, node_comm, &lbase, &lwin);
        MPI_Aint lsize = 0;
        int ldisp = 0;
        void* lq = nullptr;
        MPI_Win_shared_query(lwin, 0, &lsize, &ldisp, &lq);
        auto* queue = static_cast<std::int64_t*>(lq);
        if (node_rank == 0) {
            queue[0] = queue[1] = queue[2] = 0;
        }
        MPI_Win_sync(lwin);
        MPI_Barrier(MPI_COMM_WORLD);

        constexpr std::int64_t kGlobalChunk = 16;  // level-1 chunk size
        for (;;) {
            // Stage 2: take a sub-chunk (1 iteration, SS) from the local
            // queue under an exclusive lock epoch.
            std::int64_t i = -1;
            MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, lwin);
            if (queue[2] < queue[1]) {
                i = queue[2]++;
            }
            MPI_Win_unlock(0, lwin);
            if (i >= 0) {
                executed[static_cast<std::size_t>(i)].fetch_add(1);
                continue;
            }
            // Stage 1: the fastest rank refills from the global queue. The
            // emptiness re-check and the overwrite happen inside ONE lock
            // epoch so a peer's fresh chunk can never be clobbered (this
            // single-slot variant is the simplest correct local queue; the
            // library's NodeWorkQueue uses a FIFO instead).
            bool global_exhausted = false;
            MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, lwin);
            if (queue[2] >= queue[1]) {  // still empty: this rank refills
                const std::int64_t hint = kGlobalChunk;
                std::int64_t start = 0;
                MPI_Fetch_and_op(&hint, &start, MPI_INT64_T, 0, 0, MPI_SUM, gwin);
                if (start >= kN) {
                    global_exhausted = true;
                } else {
                    queue[0] = start;
                    queue[1] = start + hint < kN ? start + hint : kN;
                    queue[2] = start;
                }
            }
            MPI_Win_unlock(0, lwin);
            if (global_exhausted) {
                break;  // peers may still drain the queue below
            }
        }
        // Drain leftovers published by late refillers.
        for (;;) {
            std::int64_t i = -1;
            MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, lwin);
            if (queue[2] < queue[1]) {
                i = queue[2]++;
            }
            MPI_Win_unlock(0, lwin);
            if (i < 0) {
                break;
            }
            executed[static_cast<std::size_t>(i)].fetch_add(1);
        }
        MPI_Barrier(MPI_COMM_WORLD);
        MPI_Win_free(&lwin);
        MPI_Win_free(&gwin);
        MPI_Comm_free(&node_comm);
    });
    // Every iteration executed exactly once across the whole "cluster".
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(executed[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
    }
}

}  // namespace
