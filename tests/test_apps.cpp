/// \file test_apps.cpp
/// Tests for the application kernels: Mandelbrot escape-time math, PSIA
/// spin-image invariants, synthetic clouds and workload generators.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "apps/mandelbrot.hpp"
#include "apps/psia.hpp"
#include "apps/synthetic.hpp"
#include "util/stats.hpp"

namespace {

using namespace hdls::apps;

// ---------------------------------------------------------------- Mandelbrot

MandelbrotConfig small_config() {
    MandelbrotConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.max_iter = 200;
    return cfg;
}

TEST(MandelbrotTest, InteriorPointHitsMaxIter) {
    // c = 0 and c = -1 are in the Mandelbrot set.
    MandelbrotConfig cfg = small_config();
    cfg.re_min = -0.001;
    cfg.re_max = 0.001;
    cfg.im_min = -0.001;
    cfg.im_max = 0.001;
    EXPECT_EQ(mandelbrot_iterations(cfg, cfg.width / 2, cfg.height / 2), cfg.max_iter);
}

TEST(MandelbrotTest, FarExteriorEscapesImmediately) {
    MandelbrotConfig cfg = small_config();
    cfg.re_min = 10.0;
    cfg.re_max = 11.0;  // |c| > 2: escapes on the first test
    const int it = mandelbrot_iterations(cfg, 0, 0);
    EXPECT_LE(it, 1);
}

TEST(MandelbrotTest, LinearIndexMatchesXY) {
    const MandelbrotConfig cfg = small_config();
    for (const std::int64_t pixel : {0LL, 63LL, 64LL, 4095LL}) {
        const int x = static_cast<int>(pixel % cfg.width);
        const int y = static_cast<int>(pixel / cfg.width);
        EXPECT_EQ(mandelbrot_iterations(cfg, pixel), mandelbrot_iterations(cfg, x, y));
    }
}

TEST(MandelbrotTest, VerticalSymmetryOfDefaultViewport) {
    // The default viewport is symmetric in Im(c), and pixel centers mirror
    // exactly, so row y and row height-1-y must be identical.
    MandelbrotConfig cfg = small_config();
    for (int x = 0; x < cfg.width; x += 7) {
        for (int y = 0; y < cfg.height / 2; y += 5) {
            EXPECT_EQ(mandelbrot_iterations(cfg, x, y),
                      mandelbrot_iterations(cfg, x, cfg.height - 1 - y));
        }
    }
}

TEST(MandelbrotTest, ImageTracksUncomputedPixels) {
    MandelbrotImage img(small_config());
    EXPECT_EQ(img.uncomputed(), 64 * 64);
    img.compute_range(0, 100);
    EXPECT_EQ(img.uncomputed(), 64 * 64 - 100);
    img.compute_range(100, img.config().pixels());
    EXPECT_EQ(img.uncomputed(), 0);
}

TEST(MandelbrotTest, DeferInitMatchesNormalConstruction) {
    const MandelbrotConfig cfg = small_config();
    MandelbrotImage eager(cfg);
    eager.compute_range(0, cfg.pixels());

    MandelbrotImage deferred(cfg, MandelbrotImage::DeferInit{});
    // First-touch style: initialize in two disjoint ranges, then compute.
    deferred.init_range(0, cfg.pixels() / 2);
    deferred.init_range(cfg.pixels() / 2, cfg.pixels());
    EXPECT_EQ(deferred.uncomputed(), cfg.pixels());
    deferred.compute_range(0, cfg.pixels());
    EXPECT_EQ(deferred.uncomputed(), 0);
    EXPECT_EQ(deferred.checksum(), eager.checksum());
}

TEST(MandelbrotTest, BatchMatchesPerPixelIterations) {
    const MandelbrotConfig cfg = small_config();
    std::vector<int> batch(static_cast<std::size_t>(cfg.pixels()));
    mandelbrot_iterations_batch(cfg, 0, cfg.pixels(), batch.data());
    for (std::int64_t p = 0; p < cfg.pixels(); p += 13) {
        EXPECT_EQ(batch[static_cast<std::size_t>(p)], mandelbrot_iterations(cfg, p));
    }
    const hdls::simd::MandelbrotGeom geom = mandelbrot_geometry(cfg);
    EXPECT_EQ(geom.width, cfg.width);
    EXPECT_EQ(geom.max_iter, cfg.max_iter);
}

TEST(MandelbrotTest, ChecksumIsOrderIndependentButContentSensitive) {
    const MandelbrotConfig cfg = small_config();
    MandelbrotImage forward(cfg);
    forward.compute_range(0, cfg.pixels());
    MandelbrotImage backward(cfg);
    for (std::int64_t i = cfg.pixels() - 1; i >= 0; --i) {
        backward.compute_pixel(i);
    }
    EXPECT_EQ(forward.checksum(), backward.checksum());
    MandelbrotImage partial(cfg);
    partial.compute_range(0, cfg.pixels() - 1);  // one pixel missing
    EXPECT_NE(forward.checksum(), partial.checksum());
}

TEST(MandelbrotTest, PpmOutputWellFormed) {
    MandelbrotConfig cfg = small_config();
    cfg.width = 8;
    cfg.height = 4;
    MandelbrotImage img(cfg);
    img.compute_range(0, cfg.pixels());
    std::ostringstream oss;
    img.write_ppm(oss);
    const std::string s = oss.str();
    EXPECT_EQ(s.rfind("P2\n8 4\n255\n", 0), 0u);
    // 4 header-ish lines + 4 pixel rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3 + 4);
}

TEST(MandelbrotTest, CostTraceReflectsIterations) {
    const MandelbrotConfig cfg = small_config();
    const auto trace = mandelbrot_cost_trace(cfg, 1e-6);
    ASSERT_EQ(trace.size(), static_cast<std::size_t>(cfg.pixels()));
    for (std::int64_t i = 0; i < cfg.pixels(); i += 97) {
        EXPECT_DOUBLE_EQ(trace[static_cast<std::size_t>(i)],
                         1e-6 * (mandelbrot_iterations(cfg, i) + 1));
    }
}

TEST(MandelbrotTest, DefaultViewportIsHighlyImbalanced) {
    // The property Figures 4-7 depend on: Mandelbrot's per-iteration costs
    // have a large coefficient of variation (paper: "high algorithmic load
    // imbalance").
    MandelbrotConfig cfg;
    cfg.width = 128;
    cfg.height = 128;
    cfg.max_iter = 256;
    const auto trace = mandelbrot_cost_trace(cfg, 1.0);
    const auto s = hdls::util::summarize(trace);
    EXPECT_GT(s.cov, 1.0);
    EXPECT_EQ(s.max, cfg.max_iter + 1);
}

// --------------------------------------------------------------------- Vec3

TEST(Vec3Test, BasicOperations) {
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const Vec3 c = a + b;
    EXPECT_DOUBLE_EQ(c.y, 7.0);
    const Vec3 d = b - a;
    EXPECT_DOUBLE_EQ(d.x, 3.0);
    EXPECT_DOUBLE_EQ((2.0 * a).z, 6.0);
    EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
    EXPECT_NEAR((Vec3{0, 0, 9}).normalized().z, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

// ---------------------------------------------------------------- SpinImage

PsiaConfig test_psia_config() {
    PsiaConfig cfg;
    cfg.image_width = 10;
    cfg.image_height = 10;
    cfg.bin_size = 0.1;  // alpha_max = 1.0, beta_max = 0.5
    return cfg;
}

TEST(SpinImageTest, InteriorDepositConservesUnitMass) {
    const PsiaConfig cfg = test_psia_config();
    SpinImage img(cfg.image_width, cfg.image_height);
    img.accumulate(0.42, 0.13, cfg);
    EXPECT_NEAR(img.mass(), 1.0, 1e-6);
}

TEST(SpinImageTest, ExactBinCenterHitsSingleBin) {
    const PsiaConfig cfg = test_psia_config();
    SpinImage img(cfg.image_width, cfg.image_height);
    // alpha = 0.25 -> col_f = 2.5? No: col 2 fraction .5 splits. Use values
    // landing exactly on a bin boundary-free point: alpha=0.20 -> col_f=2.0
    // (a=0), beta chosen so row_f integral: beta_max-beta = 0.3 -> row 3.
    img.accumulate(0.20, 0.20, cfg);
    EXPECT_NEAR(img.at(3, 2), 1.0, 1e-6);
    EXPECT_NEAR(img.mass(), 1.0, 1e-6);
}

TEST(SpinImageTest, BilinearSplitWeights) {
    const PsiaConfig cfg = test_psia_config();
    SpinImage img(cfg.image_width, cfg.image_height);
    // col_f = 2.5 (a = .5), row_f = 3.5 (b = .5): four bins, 0.25 each.
    img.accumulate(0.25, cfg.beta_max() - 0.35, cfg);
    EXPECT_NEAR(img.at(3, 2), 0.25, 1e-6);
    EXPECT_NEAR(img.at(3, 3), 0.25, 1e-6);
    EXPECT_NEAR(img.at(4, 2), 0.25, 1e-6);
    EXPECT_NEAR(img.at(4, 3), 0.25, 1e-6);
}

TEST(SpinImageTest, EdgeDepositsAreClipped) {
    const PsiaConfig cfg = test_psia_config();
    SpinImage img(cfg.image_width, cfg.image_height);
    img.accumulate(cfg.alpha_max() - 1e-9, -cfg.beta_max() + 1e-9, cfg);  // far corner
    EXPECT_LE(img.mass(), 1.0 + 1e-6);
    EXPECT_GT(img.mass(), 0.0);
}

TEST(SpinImageTest, InvalidAccessThrows) {
    SpinImage img(4, 4);
    EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
    EXPECT_THROW((void)img.at(0, -1), std::out_of_range);
    EXPECT_THROW(SpinImage(0, 4), std::invalid_argument);
}

// --------------------------------------------------------------------- PSIA

TEST(PsiaTest, TwoPointKnownGeometry) {
    // Center at origin with normal +z; neighbour at (0.3, 0, 0.2):
    // beta = 0.2, alpha = 0.3.
    PointCloud cloud;
    cloud.add({{0, 0, 0}, {0, 0, 1}});
    cloud.add({{0.3, 0, 0.2}, {0, 0, 1}});
    const PsiaConfig cfg = test_psia_config();
    ASSERT_TRUE(in_support(cloud[0], cloud[1], cfg));
    const SpinImage img = compute_spin_image(cloud, 0, cfg);
    // Two deposits: the center itself (alpha 0, beta 0) and the neighbour.
    EXPECT_NEAR(img.mass(), 2.0, 1e-6);
    // Neighbour lands at col_f = 3.0, row_f = (0.5-0.2)/0.1 = 3.0 exactly.
    EXPECT_NEAR(img.at(3, 3), 1.0, 1e-6);
}

TEST(PsiaTest, SupportExcludesDistantAndBackfacingPoints) {
    PsiaConfig cfg = test_psia_config();
    PointCloud cloud;
    cloud.add({{0, 0, 0}, {0, 0, 1}});
    cloud.add({{5, 0, 0}, {0, 0, 1}});    // alpha way out of range
    cloud.add({{0, 0, 0.9}, {0, 0, 1}});  // beta out of range
    cloud.add({{0.1, 0, 0}, {0, 0, -1}}); // backfacing
    EXPECT_EQ(support_count(cloud, 0, cfg), 2u);  // self + nothing else? self + backfacing
    cfg.support_angle_cos = 0.0;                  // now require cos >= 0
    EXPECT_EQ(support_count(cloud, 0, cfg), 1u);  // only the center itself
}

TEST(PsiaTest, SupportCountMatchesSpinImageMassForInteriorPoints) {
    const PointCloud cloud = PointCloud::synthetic(400, 7);
    PsiaConfig cfg = test_psia_config();
    cfg.bin_size = 0.04;
    for (const std::size_t center : {0UL, 57UL, 200UL, 399UL}) {
        const auto count = support_count(cloud, center, cfg);
        const SpinImage img = compute_spin_image(cloud, center, cfg);
        // Mass can only lose weight via edge clipping.
        EXPECT_LE(img.mass(), static_cast<double>(count) + 1e-6);
        EXPECT_GT(img.mass(), 0.25 * static_cast<double>(count));
    }
}

TEST(PsiaTest, SyntheticCloudIsDeterministicAndUnitNormals) {
    const PointCloud a = PointCloud::synthetic(500, 42);
    const PointCloud b = PointCloud::synthetic(500, 42);
    const PointCloud c = PointCloud::synthetic(500, 43);
    ASSERT_EQ(a.size(), 500u);
    EXPECT_EQ(a[123].position.x, b[123].position.x);
    EXPECT_NE(a[123].position.x, c[123].position.x);
    for (std::size_t i = 0; i < a.size(); i += 37) {
        EXPECT_NEAR(a[i].normal.norm(), 1.0, 1e-9);
    }
}

TEST(PsiaTest, SupportGridApproximatesBruteForceNeighbourhoods) {
    const PointCloud cloud = PointCloud::synthetic(1000, 11);
    const PsiaConfig cfg = test_psia_config();
    const double cell = std::max(cfg.alpha_max(), 2 * cfg.beta_max());
    const SupportGrid grid(cloud, cell);
    for (const std::size_t i : {0UL, 100UL, 500UL, 999UL}) {
        const auto approx = grid.neighbourhood_count(cloud[i].position);
        // Count of points within alpha_max of the center (beta/angle-free
        // lower bound on what the 27-cell neighbourhood must cover).
        std::size_t within = 0;
        for (const auto& p : cloud.points()) {
            if ((p.position - cloud[i].position).norm() <= cfg.alpha_max()) {
                ++within;
            }
        }
        EXPECT_GE(approx, within);
        EXPECT_LE(approx, cloud.size());
    }
}

TEST(PsiaTest, CostTraceIsSpatiallyImbalancedButModerate) {
    // PSIA's CoV must sit clearly below Mandelbrot's (the paper's "PSIA has
    // less load imbalance than Mandelbrot").
    const PointCloud cloud = PointCloud::synthetic(20000, 3);
    const PsiaConfig cfg = test_psia_config();
    const auto trace = psia_cost_trace(cloud, cfg, 50e-6, 1e-6);
    const auto s = hdls::util::summarize(trace);
    ASSERT_EQ(trace.size(), cloud.size());
    EXPECT_GT(s.cov, 0.05);  // not flat
    EXPECT_LT(s.cov, 1.0);   // .. but far below Mandelbrot's > 1
    EXPECT_GT(s.min, 0.0);
}

TEST(PsiaTest, InvalidInputsThrow) {
    const PointCloud cloud = PointCloud::synthetic(10, 1);
    EXPECT_THROW((void)compute_spin_image(cloud, 10, test_psia_config()), std::out_of_range);
    EXPECT_THROW(SupportGrid(cloud, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- synthetic

TEST(SyntheticWorkloadTest, MomentsApproximatelyMatchSpec) {
    WorkloadSpec spec;
    spec.iterations = 200000;
    spec.mean_seconds = 2e-3;
    spec.cov = 0.4;
    for (const WorkloadKind k : {WorkloadKind::Uniform, WorkloadKind::Gaussian}) {
        spec.kind = k;
        const auto trace = make_workload(spec);
        const auto s = hdls::util::summarize(trace);
        EXPECT_NEAR(s.mean, spec.mean_seconds, 0.05 * spec.mean_seconds) << workload_name(k);
        EXPECT_NEAR(s.cov, spec.cov, 0.05) << workload_name(k);
    }
}

TEST(SyntheticWorkloadTest, ConstantHasZeroCov) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Constant;
    spec.iterations = 1000;
    const auto s = hdls::util::summarize(make_workload(spec));
    EXPECT_DOUBLE_EQ(s.cov, 0.0);
    EXPECT_DOUBLE_EQ(s.min, s.max);
}

TEST(SyntheticWorkloadTest, ExponentialCovIsOne) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Exponential;
    spec.iterations = 300000;
    spec.mean_seconds = 1e-3;
    const auto s = hdls::util::summarize(make_workload(spec));
    EXPECT_NEAR(s.cov, 1.0, 0.05);
}

TEST(SyntheticWorkloadTest, RampsAreMonotone) {
    WorkloadSpec spec;
    spec.iterations = 1000;
    spec.kind = WorkloadKind::IncreasingRamp;
    auto inc = make_workload(spec);
    EXPECT_TRUE(std::is_sorted(inc.begin(), inc.end()));
    spec.kind = WorkloadKind::DecreasingRamp;
    auto dec = make_workload(spec);
    EXPECT_TRUE(std::is_sorted(dec.rbegin(), dec.rend()));
    // Same total work either way.
    EXPECT_NEAR(std::accumulate(inc.begin(), inc.end(), 0.0),
                std::accumulate(dec.begin(), dec.end(), 0.0), 1e-9);
}

TEST(SyntheticWorkloadTest, BimodalHasTwoLevels) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Bimodal;
    spec.iterations = 10000;
    spec.cov = 0.8;
    const auto trace = make_workload(spec);
    std::set<double> distinct(trace.begin(), trace.end());
    EXPECT_EQ(distinct.size(), 2u);
    EXPECT_NEAR(*distinct.rbegin() / *distinct.begin(), 10.0, 1e-9);
}

TEST(SyntheticWorkloadTest, DeterministicPerSeed) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Exponential;
    spec.iterations = 100;
    const auto a = make_workload(spec);
    const auto b = make_workload(spec);
    EXPECT_EQ(a, b);
    spec.seed ^= 1;
    EXPECT_NE(make_workload(spec), a);
}

TEST(SyntheticWorkloadTest, NameRoundTripAndValidation) {
    for (const WorkloadKind k :
         {WorkloadKind::Constant, WorkloadKind::Uniform, WorkloadKind::Gaussian,
          WorkloadKind::Exponential, WorkloadKind::Bimodal, WorkloadKind::IncreasingRamp,
          WorkloadKind::DecreasingRamp}) {
        EXPECT_EQ(workload_from_string(workload_name(k)), k);
    }
    EXPECT_EQ(workload_from_string("nope"), std::nullopt);
    WorkloadSpec bad;
    bad.mean_seconds = 0.0;
    EXPECT_THROW((void)make_workload(bad), std::invalid_argument);
    bad.mean_seconds = 1.0;
    bad.cov = -1.0;
    EXPECT_THROW((void)make_workload(bad), std::invalid_argument);
}

}  // namespace
