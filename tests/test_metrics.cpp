/// \file test_metrics.cpp
/// The always-on metrics subsystem: sharded counters/histograms under
/// contention, snapshot/delta semantics, Prometheus/JSON exposition, the
/// allocation-free increment path and the stall watchdog (deterministic
/// beat_at/check seams plus a real imbalanced run that must stay quiet).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "core/hdls.hpp"
#include "metrics/exposition.hpp"
#include "metrics/metrics.hpp"
#include "metrics/sampler.hpp"
#include "metrics/watchdog.hpp"
#include "sim/simulator.hpp"

// ------------------------------------------------- allocation instrumentation
// Global operator new/delete replacements for this test binary: when armed,
// every allocation on any thread is counted. The zero-allocation test arms
// the counter around hot-path calls running on the test thread only.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// gcc pairs its built-in operator-new knowledge with the free() below and
// warns at every inlined delete site; the replacement pair is consistent.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    if (g_count_allocations.load(std::memory_order_relaxed)) {
        g_allocations.fetch_add(1, std::memory_order_relaxed);
    }
    if (void* p = std::malloc(size ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hdls;
using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::Labels;
using metrics::MetricsRegistry;
using metrics::Snapshot;
using metrics::StallWatchdog;

// ------------------------------------------------------------- hot-path math

TEST(MetricsTest, CounterSumsConcurrentIncrementsExactly) {
    MetricsRegistry reg;
    Counter& c = reg.counter("t_ops_total", "ops");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 200'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
            }
        });
    }
    // Snapshots taken mid-flight must be internally consistent (no tearing
    // beyond the per-shard relaxed reads) and monotonically increasing.
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const Snapshot s = reg.snapshot();
        ASSERT_EQ(s.entries.size(), 1u);
        EXPECT_GE(s.entries[0].value, last);
        last = s.entries[0].value;
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(reg.snapshot().entries[0].value, kThreads * kPerThread);
}

TEST(MetricsTest, HistogramMergesConcurrentObservationsExactly) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("t_lat_ns", "latency");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) {
                h.observe(static_cast<std::uint64_t>(1) << (i % 12));  // buckets 1..12
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t expected_sum = 0;
    for (int i = 0; i < kPerThread; ++i) {
        expected_sum += static_cast<std::uint64_t>(1) << (i % 12);
    }
    EXPECT_EQ(h.sum(), expected_sum * kThreads);
    // 2^k has bit_width k+1: the observations land in buckets 1..12.
    const Snapshot s = reg.snapshot();
    std::uint64_t bucketed = 0;
    for (const std::uint64_t b : s.entries[0].buckets) {
        bucketed += b;
    }
    EXPECT_EQ(bucketed, h.count());
    EXPECT_EQ(s.entries[0].buckets[0], 0u);
    EXPECT_GT(s.entries[0].buckets[1], 0u);
    EXPECT_GT(s.entries[0].buckets[12], 0u);
}

TEST(MetricsTest, LogBucketsCoverTheFullRange) {
    EXPECT_EQ(Histogram::bucket_of(0), 0);
    EXPECT_EQ(Histogram::bucket_of(1), 1);
    EXPECT_EQ(Histogram::bucket_of(2), 2);
    EXPECT_EQ(Histogram::bucket_of(3), 2);
    EXPECT_EQ(Histogram::bucket_of(4), 3);
    EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucket_upper(0), 0);
    EXPECT_EQ(Histogram::bucket_upper(3), 7);
}

TEST(MetricsTest, RegistryIsIdempotentPerNameAndLabelSet) {
    MetricsRegistry reg;
    Counter& a = reg.counter("t_total", "t", {{"level", "0"}});
    Counter& b = reg.counter("t_total", "t", {{"level", "0"}});
    Counter& c = reg.counter("t_total", "t", {{"level", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.inc(5);
    c.inc(7);
    const Snapshot s = reg.snapshot();
    ASSERT_EQ(s.entries.size(), 2u);
    EXPECT_EQ(s.counter_total("t_total"), 12u);
    const auto* e0 = s.find("t_total", {{"level", "0"}});
    ASSERT_NE(e0, nullptr);
    EXPECT_EQ(e0->value, 5u);
}

TEST(MetricsTest, SnapshotDeltaSubtractsCountersAndKeepsGauges) {
    MetricsRegistry reg;
    Counter& c = reg.counter("t_total", "t");
    Gauge& g = reg.gauge("t_gauge", "g");
    Histogram& h = reg.histogram("t_ns", "h");
    c.inc(10);
    g.set(42);
    h.observe(100);
    const Snapshot base = reg.snapshot();
    c.inc(3);
    g.set(-7);
    h.observe(100);
    h.observe(200);
    const Snapshot delta = reg.snapshot().delta_since(base);
    EXPECT_EQ(delta.counter_total("t_total"), 3u);
    EXPECT_EQ(delta.find("t_gauge")->gauge, -7);
    EXPECT_EQ(delta.histogram_count("t_ns"), 2u);
    EXPECT_EQ(delta.histogram_sum("t_ns"), 300u);
}

TEST(MetricsTest, DisableSwitchTurnsIncrementsOff) {
    MetricsRegistry reg;
    Counter& c = reg.counter("t_total", "t");
    Histogram& h = reg.histogram("t_ns", "h");
    metrics::set_enabled(false);
    c.inc();
    h.observe(5);
    metrics::set_enabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

// ---------------------------------------------------------------- exposition

TEST(MetricsTest, PrometheusExpositionMatchesGoldenFormat) {
    MetricsRegistry reg;
    Counter& plain = reg.counter("t_requests_total", "requests served");
    Counter& l0 = reg.counter("t_acquires_total", "acquires", {{"level", "0"}});
    Counter& l1 = reg.counter("t_acquires_total", "acquires", {{"level", "1"}});
    Gauge& g = reg.gauge("t_workers", "active workers");
    Histogram& h = reg.histogram("t_lat_ns", "latency");
    plain.inc(3);
    l0.inc(2);
    l1.inc(4);
    g.set(-5);
    h.observe(0);    // bucket 0 (le 0)
    h.observe(1);    // bucket 1 (le 1)
    h.observe(300);  // bucket 9 (le 511)
    h.observe(300);

    const std::string expected =
        "# HELP t_requests_total requests served\n"
        "# TYPE t_requests_total counter\n"
        "t_requests_total 3\n"
        "# HELP t_acquires_total acquires\n"
        "# TYPE t_acquires_total counter\n"
        "t_acquires_total{level=\"0\"} 2\n"
        "t_acquires_total{level=\"1\"} 4\n"
        "# HELP t_workers active workers\n"
        "# TYPE t_workers gauge\n"
        "t_workers -5\n"
        "# HELP t_lat_ns latency\n"
        "# TYPE t_lat_ns histogram\n"
        "t_lat_ns_bucket{le=\"0\"} 1\n"
        "t_lat_ns_bucket{le=\"1\"} 2\n"
        "t_lat_ns_bucket{le=\"3\"} 2\n"
        "t_lat_ns_bucket{le=\"7\"} 2\n"
        "t_lat_ns_bucket{le=\"15\"} 2\n"
        "t_lat_ns_bucket{le=\"31\"} 2\n"
        "t_lat_ns_bucket{le=\"63\"} 2\n"
        "t_lat_ns_bucket{le=\"127\"} 2\n"
        "t_lat_ns_bucket{le=\"255\"} 2\n"
        "t_lat_ns_bucket{le=\"511\"} 4\n"
        "t_lat_ns_bucket{le=\"+Inf\"} 4\n"
        "t_lat_ns_sum 601\n"
        "t_lat_ns_count 4\n";
    EXPECT_EQ(metrics::to_prometheus(reg.snapshot()), expected);
}

TEST(MetricsTest, ExpositionGroupsInterleavedFamiliesUnderOneHeader) {
    // Label sets registered interleaved across families (the shape the
    // per-level runtime families used to have) must still come out as one
    // HELP/TYPE block per family — Prometheus parsers reject duplicates.
    MetricsRegistry reg;
    for (int lv = 0; lv < 3; ++lv) {
        const Labels labels{{"level", std::to_string(lv)}};
        reg.counter("t_a_total", "a", labels).inc(static_cast<std::uint64_t>(lv) + 1);
        reg.counter("t_b_total", "b", labels).inc(1);
    }
    const std::string text = metrics::to_prometheus(reg.snapshot());
    const auto count_of = [&text](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t pos = text.find(needle); pos != std::string::npos;
             pos = text.find(needle, pos + 1)) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(count_of("# HELP t_a_total"), 1u);
    EXPECT_EQ(count_of("# TYPE t_a_total"), 1u);
    EXPECT_EQ(count_of("# HELP t_b_total"), 1u);
    EXPECT_EQ(count_of("# TYPE t_b_total"), 1u);
    // All of a family's samples sit directly under its single header.
    EXPECT_LT(text.find("t_a_total{level=\"2\"} 3"), text.find("# HELP t_b_total"));
}

TEST(MetricsTest, OverflowBucketRendersOnlyUnderInf) {
    // The last bucket is unbounded: an observation beyond the largest
    // finite edge must not be attributed to any finite le bound.
    MetricsRegistry reg;
    Histogram& h = reg.histogram("t_ns", "h");
    h.observe(~std::uint64_t{0});
    const std::string text = metrics::to_prometheus(reg.snapshot());
    const std::string top_edge =
        std::to_string(Histogram::bucket_upper(Histogram::kBuckets - 1));
    EXPECT_EQ(text.find("le=\"" + top_edge + "\""), std::string::npos);
    EXPECT_NE(text.find("t_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("t_ns_count 1"), std::string::npos);
    const std::string json = metrics::to_json(reg.snapshot());
    EXPECT_EQ(json.find(top_edge), std::string::npos);
}

TEST(MetricsTest, PrometheusFileWriteIsAtomicAndReadable) {
    MetricsRegistry reg;
    reg.counter("t_total", "t").inc(9);
    const std::string path = ::testing::TempDir() + "hdls_metrics_test.prom";
    ASSERT_TRUE(metrics::write_prometheus_file(reg.snapshot(), path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("# TYPE t_total counter"), std::string::npos);
    EXPECT_NE(content.str().find("t_total 9"), std::string::npos);
    std::remove(path.c_str());
}

TEST(MetricsTest, JsonExportCarriesAllThreeFamilies) {
    MetricsRegistry reg;
    reg.counter("t_total", "t", {{"level", "0"}}).inc(2);
    reg.gauge("t_gauge", "g").set(11);
    reg.histogram("t_ns", "h").observe(5);
    const std::string json = metrics::to_json(reg.snapshot());
    EXPECT_NE(json.find("\"t_total{level=\\\"0\\\"}\":2"), std::string::npos);
    EXPECT_NE(json.find("\"t_gauge\":11"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, SamplerRetainsABoundedSeries) {
    MetricsRegistry reg;
    Counter& c = reg.counter("t_total", "t");
    metrics::MetricsSampler sampler(reg, std::chrono::milliseconds(1000),
                                    /*max_samples=*/4);
    for (int i = 0; i < 10; ++i) {
        c.inc();
        sampler.sample_now();
    }
    const auto series = sampler.series();
    ASSERT_EQ(series.size(), 4u);
    EXPECT_EQ(series.back().snapshot.counter_total("t_total"), 10u);
    EXPECT_EQ(series.front().snapshot.counter_total("t_total"), 7u);
}

TEST(MetricsTest, ConcurrentStopJoinsTheSamplerThreadExactlyOnce) {
    // Two racing stop() calls (e.g. explicit stop vs. destructor on
    // another thread) must not both join the worker — that is UB. Run the
    // race a few times; TSan in CI checks the interleavings.
    for (int round = 0; round < 20; ++round) {
        MetricsRegistry reg;
        metrics::MetricsSampler sampler(reg, std::chrono::milliseconds(1));
        sampler.start();
        std::thread a([&sampler] { sampler.stop(); });
        std::thread b([&sampler] { sampler.stop(); });
        a.join();
        b.join();
    }
}

TEST(WatchdogTest, ConcurrentStopJoinsTheCheckerThreadExactlyOnce) {
    for (int round = 0; round < 20; ++round) {
        StallWatchdog wd(1);
        wd.start(std::chrono::milliseconds(1));
        std::thread a([&wd] { wd.stop(); });
        std::thread b([&wd] { wd.stop(); });
        a.join();
        b.join();
    }
}

// ------------------------------------------------------- allocation freedom

TEST(MetricsTest, IncrementPathDoesNotAllocate) {
    MetricsRegistry reg;
    Counter& c = reg.counter("t_total", "t");
    Gauge& g = reg.gauge("t_gauge", "g");
    Histogram& h = reg.histogram("t_ns", "h");
    StallWatchdog wd(2);
    wd.enter(0);
    // Warm up thread-local shard indices outside the counted region.
    c.inc();
    h.observe(1);
    wd.beat(0, 1, 0, false, 1e-6);

    g_allocations.store(0);
    g_count_allocations.store(true);
    for (int i = 0; i < 10'000; ++i) {
        c.inc();
        g.add(1);
        h.observe(static_cast<std::uint64_t>(i));
        wd.beat(0, 1, i, false, 1e-6);
    }
    g_count_allocations.store(false);
    EXPECT_EQ(g_allocations.load(), 0u)
        << "hot-path increments (counter/gauge/histogram/beat) must not allocate";
}

// -------------------------------------------------------------- stall watchdog

TEST(WatchdogTest, FlagsInjectedStallNamingLevelAndShard) {
    StallWatchdog::Config cfg;
    cfg.k = 8.0;
    cfg.floor_ns = 1'000'000;  // 1ms
    cfg.min_beats = 2;
    StallWatchdog wd(2, cfg);
    wd.set_shard_probe([] { return std::vector<std::int64_t>{5, 0, 7}; });
    wd.enter(0);
    wd.enter(1);
    // Both workers beat twice with ~1us chunks.
    for (std::uint64_t t : {1'000ull, 2'000ull}) {
        wd.beat_at(t, 0, 2, 64, true, 1e-6);
        wd.beat_at(t, 1, 1, 128, false, 1e-6);
    }
    // Worker 1 keeps making progress; worker 0 goes silent past the floor.
    wd.beat_at(1'800'000, 1, 1, 256, false, 1e-6);
    const auto stalls = wd.check(2'000'000);
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_EQ(stalls[0].worker, 0);
    EXPECT_EQ(stalls[0].level, 2);
    EXPECT_EQ(stalls[0].last_chunk_start, 64);
    EXPECT_TRUE(stalls[0].prefetch_outstanding);
    EXPECT_EQ(stalls[0].shard_remaining, (std::vector<std::int64_t>{5, 0, 7}));
    EXPECT_EQ(wd.stalls_reported(), 1u);
    const std::string dump = wd.last_dump();
    EXPECT_NE(dump.find("worker 0 stalled"), std::string::npos);
    EXPECT_NE(dump.find("level=2"), std::string::npos);
    EXPECT_NE(dump.find("last_chunk_start=64"), std::string::npos);
    EXPECT_NE(dump.find("prefetch_outstanding=yes"), std::string::npos);
    EXPECT_NE(dump.find("shard_remaining=[5, 0, 7]"), std::string::npos);

    // One-shot per episode: the same silence does not re-report (worker 1
    // keeps beating so only the reported worker 0 is silent).
    wd.beat_at(2'400'000, 1, 1, 0, false, 1e-6);
    EXPECT_TRUE(wd.check(2'500'000).empty());
    EXPECT_EQ(wd.stalls_reported(), 1u);

    // Progress re-arms: a beat followed by a fresh stall fires again.
    wd.beat_at(3'500'000, 0, 2, 512, false, 1e-6);
    wd.beat_at(4'400'000, 1, 1, 0, false, 1e-6);
    EXPECT_TRUE(wd.check(3'600'000).empty());
    const auto again = wd.check(4'600'000);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].worker, 0);
    EXPECT_EQ(again[0].last_chunk_start, 512);
    EXPECT_EQ(wd.stalls_reported(), 2u);

    // A worker that left is exempt however long it stays silent.
    wd.leave(0);
    for (const auto& s : wd.check(900'000'000)) {
        EXPECT_NE(s.worker, 0);
    }
}

TEST(WatchdogTest, StaysSilentForSlowButProgressingWorkers) {
    StallWatchdog::Config cfg;
    cfg.k = 8.0;
    cfg.floor_ns = 1'000'000;
    cfg.min_beats = 2;
    StallWatchdog wd(1, cfg);
    wd.enter(0);
    // Two 100ms chunks: the EMA learns this worker is slow.
    wd.beat_at(100'000'000, 0, 1, 0, false, 0.1);
    wd.beat_at(200'000'000, 0, 1, 100, false, 0.1);
    // 500ms of silence is far past the floor but well inside 8x its EMA.
    EXPECT_TRUE(wd.check(700'000'000).empty());
    // Past the EMA-scaled threshold it does fire.
    EXPECT_EQ(wd.check(1'100'000'000).size(), 1u);
}

TEST(WatchdogTest, RequiresMinimumBeatsAndActiveWorkers) {
    StallWatchdog::Config cfg;
    cfg.floor_ns = 1'000;
    cfg.min_beats = 2;
    StallWatchdog wd(2, cfg);
    wd.enter(0);
    wd.beat_at(100, 0, 0, 0, false, 1e-6);  // one beat only
    EXPECT_TRUE(wd.check(1'000'000).empty());
    // Worker 1 never entered: silent forever, never flagged.
    EXPECT_TRUE(wd.check(10'000'000).empty());
}

TEST(WatchdogTest, NoFalsePositiveOnImbalancedRealRun) {
    // A deliberately imbalanced real run: the last node's chunks are ~20x
    // slower. The default EMA/floor config must not flag anyone.
    StallWatchdog wd(4);
    metrics::install_watchdog(&wd);
    wd.start(std::chrono::milliseconds(5));
    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 2;
    core::HierConfig cfg;
    cfg.inter = dls::Technique::SS;
    cfg.intra = dls::Technique::SS;
    const auto report = core::run_hierarchical(
        shape, core::Approach::MpiMpi, cfg, 200,
        [](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(i % 4 == 3 ? 2000 : 100));
            }
        });
    metrics::install_watchdog(nullptr);
    wd.stop();
    EXPECT_EQ(report.executed_iterations(), 200);
    EXPECT_EQ(wd.stalls_reported(), 0u);
}

// --------------------------------------------------------------- end-to-end

TEST(MetricsTest, RealRunPopulatesTheRuntimeRegistry) {
    const Snapshot before = metrics::registry().snapshot();
    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 2;
    core::HierConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::GSS;
    const auto report = core::run_hierarchical(shape, core::Approach::MpiMpi, cfg, 500,
                                               [](std::int64_t, std::int64_t) {});
    const Snapshot delta = metrics::registry().snapshot().delta_since(before);
    EXPECT_GT(delta.counter_total("hdls_exec_chunks_total"), 0u);
    EXPECT_EQ(delta.counter_total("hdls_exec_iterations_total"), 500u);
    EXPECT_GT(delta.counter_total("hdls_sched_acquires_total"), 0u);
    EXPECT_GT(delta.counter_total("hdls_window_locks_total"), 0u);
    EXPECT_GT(delta.histogram_count("hdls_sched_acquire_latency_ns"), 0u);
    // The report carries the same delta and prints a metrics line.
    EXPECT_FALSE(report.metrics.empty());
    EXPECT_EQ(report.metrics.counter_total("hdls_exec_iterations_total"), 500u);
    std::ostringstream oss;
    report.print(oss);
    EXPECT_NE(oss.str().find("metrics:"), std::string::npos);
    // End-of-run gauge reads zero: every worker left.
    EXPECT_EQ(report.metrics.find("hdls_workers_active")->gauge, 0);
}

TEST(MetricsTest, SimulatedRunsCarryAMetricsDelta) {
    const sim::WorkloadTrace trace(std::vector<double>(1000, 1e-6));
    sim::ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 2;
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::GSS;
    const auto report = sim::simulate(sim::ExecModel::MpiMpi, cluster, cfg, trace);
    EXPECT_FALSE(report.metrics.empty());
    EXPECT_EQ(report.metrics.counter_total("hdls_exec_iterations_total"), 1000u);
    EXPECT_GT(report.metrics.counter_total("hdls_sched_acquires_total"), 0u);
}

// ---------------------------------------------------------- overlapping runs

/// PR 6 installed the watchdog into a single global slot with save/restore
/// semantics, which assumed one run at a time: two overlapping runs could
/// restore a dangling pointer on staggered exits. The registry is now a
/// refcounted install stack with removal by identity. The install/uninstall
/// dance below interleaves lifetimes in the worst order (A installs, B
/// installs, A uninstalls) — under the old guard, A's exit would have
/// reinstated its saved nullptr over B's live watchdog.
TEST(WatchdogTest, InstallRegistrySurvivesInterleavedLifetimes) {
    StallWatchdog a(2);
    StallWatchdog b(2);
    metrics::install_watchdog(&a);
    EXPECT_EQ(metrics::active_watchdog(), &a);
    metrics::install_watchdog(&b);
    EXPECT_EQ(metrics::active_watchdog(), &b);
    metrics::uninstall_watchdog(&a);  // out-of-order exit
    EXPECT_EQ(metrics::active_watchdog(), &b);
    metrics::uninstall_watchdog(&b);
    EXPECT_EQ(metrics::active_watchdog(), nullptr);
    // Idempotent: a second uninstall (the runner's RAII + explicit path)
    // is a no-op, not corruption.
    metrics::uninstall_watchdog(&b);
    EXPECT_EQ(metrics::active_watchdog(), nullptr);
}

/// Two metrics-enabled runs overlapping in time, each with its own
/// watchdog, sampler and exposition file — the multi-tenant shape the
/// JobService produces. Runs in CI under TSan: any lost-update or
/// dangling-watchdog race in the registry or the beat path is caught
/// here. Staggered starts/finishes exercise both install orders.
TEST(WatchdogTest, OverlappingMetricsRunsStayIndependent) {
    const std::string file_a = "/tmp/hdls_overlap_a.prom";
    const std::string file_b = "/tmp/hdls_overlap_b.prom";
    const auto run = [](const std::string& file, std::int64_t n, int sleep_us) {
        core::ClusterShape shape;
        shape.nodes = 2;
        shape.workers_per_node = 2;
        core::HierConfig cfg;
        cfg.inter = dls::Technique::GSS;
        cfg.intra = dls::Technique::SS;
        core::RunOptions opts;
        opts.metrics = true;
        opts.metrics_file = file;
        return core::run_hierarchical(
            shape, core::Approach::MpiMpi, cfg, n,
            [sleep_us](std::int64_t, std::int64_t) {
                std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
            },
            opts);
    };
    core::ExecutionReport ra;
    core::ExecutionReport rb;
    std::thread ta([&] { ra = run(file_a, 300, 50); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::thread tb([&] { rb = run(file_b, 150, 200); });
    ta.join();
    tb.join();
    EXPECT_EQ(ra.executed_iterations(), 300);
    EXPECT_EQ(rb.executed_iterations(), 150);
    // Both watchdogs uninstalled by identity: the registry is empty.
    EXPECT_EQ(metrics::active_watchdog(), nullptr);
    // Each run wrote its own exposition file.
    for (const std::string& file : {file_a, file_b}) {
        std::ifstream in(file);
        ASSERT_TRUE(in.good()) << file;
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_NE(ss.str().find("hdls_exec_iterations_total"), std::string::npos);
        std::remove(file.c_str());
    }
}

}  // namespace
