/// \file test_integration.cpp
/// Cross-module integration tests: simulator-vs-library chunk-protocol
/// equivalence, end-to-end PSIA on the real runtime, and the
/// schedule(runtime)-style configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "apps/psia.hpp"
#include "apps/synthetic.hpp"
#include "core/env_config.hpp"
#include "core/hdls.hpp"
#include "sim/simulator.hpp"

namespace {

using hdls::dls::Technique;

// ------------------------------------------- simulator <-> library parity

/// With a single worker there is no concurrency, so the simulator and the
/// real thread-backed executor must follow the *identical* chunk protocol:
/// same number of global chunks and the same number of sub-chunks.
class SimCoreParity : public ::testing::TestWithParam<std::pair<Technique, Technique>> {};

TEST_P(SimCoreParity, SingleWorkerChunkCountsMatchExactly) {
    const auto& [inter, intra] = GetParam();
    constexpr std::int64_t kN = 3000;

    // Real executor.
    hdls::core::HierConfig cfg;
    cfg.inter = inter;
    cfg.intra = intra;
    const auto real = hdls::parallel_for(hdls::core::ClusterShape{1, 1},
                                         hdls::core::Approach::MpiMpi, cfg, kN,
                                         [](std::int64_t, std::int64_t) {});

    // Simulator on any constant trace of the same size.
    hdls::apps::WorkloadSpec spec;
    spec.kind = hdls::apps::WorkloadKind::Constant;
    spec.iterations = kN;
    spec.mean_seconds = 1e-6;
    const hdls::sim::WorkloadTrace trace(hdls::apps::make_workload(spec));
    hdls::sim::ClusterSpec cluster;
    cluster.nodes = 1;
    cluster.workers_per_node = 1;
    hdls::sim::SimConfig scfg;
    scfg.inter = inter;
    scfg.intra = intra;
    const auto simulated =
        simulate(hdls::sim::ExecModel::MpiMpi, cluster, scfg, trace);

    EXPECT_EQ(real.global_chunks(), simulated.global_chunks());
    EXPECT_EQ(real.executed_chunks(), simulated.sub_chunks());
    EXPECT_EQ(real.executed_iterations(), simulated.executed_iterations());
}

std::vector<std::pair<Technique, Technique>> parity_cases() {
    std::vector<std::pair<Technique, Technique>> cases;
    for (const Technique inter : hdls::dls::paper_internode_techniques()) {
        for (const Technique intra : hdls::dls::paper_intranode_techniques()) {
            cases.emplace_back(inter, intra);
        }
    }
    return cases;
}

std::string parity_name(
    const ::testing::TestParamInfo<std::pair<Technique, Technique>>& info) {
    return std::string(hdls::dls::technique_name(info.param.first)) + "_" +
           std::string(hdls::dls::technique_name(info.param.second));
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, SimCoreParity, ::testing::ValuesIn(parity_cases()),
                         parity_name);

// --------------------------------------------------- PSIA end-to-end run

TEST(PsiaEndToEndTest, HierarchicalEqualsSerialSpinImages) {
    const auto cloud = hdls::apps::PointCloud::synthetic(600, 77);
    hdls::apps::PsiaConfig pcfg;
    pcfg.bin_size = 0.05;

    std::vector<double> serial_mass(cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        serial_mass[i] = hdls::apps::compute_spin_image(cloud, i, pcfg).mass();
    }

    std::vector<double> parallel_mass(cloud.size(), -1.0);
    hdls::core::HierConfig cfg;
    cfg.inter = Technique::TSS;
    cfg.intra = Technique::FAC2;
    const auto report = hdls::parallel_for(
        hdls::core::ClusterShape{2, 3}, hdls::core::Approach::MpiMpi, cfg,
        static_cast<std::int64_t>(cloud.size()), [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                parallel_mass[static_cast<std::size_t>(i)] =
                    hdls::apps::compute_spin_image(cloud, static_cast<std::size_t>(i), pcfg)
                        .mass();
            }
        });
    EXPECT_EQ(report.executed_iterations(), static_cast<std::int64_t>(cloud.size()));
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        ASSERT_DOUBLE_EQ(parallel_mass[i], serial_mass[i]) << "point " << i;
    }
}

// ------------------------------------------------- schedule(runtime) API

TEST(EnvConfigTest, ParseScheduleCombinations) {
    const auto a = hdls::core::parse_schedule("GSS+STATIC");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->inter, Technique::GSS);
    EXPECT_EQ(a->intra, Technique::Static);
    EXPECT_EQ(a->min_chunk, 1);

    const auto b = hdls::core::parse_schedule(" fac2 + ss , min_chunk=8 ");
    ASSERT_TRUE(b);
    EXPECT_EQ(b->inter, Technique::FAC2);
    EXPECT_EQ(b->intra, Technique::SS);
    EXPECT_EQ(b->min_chunk, 8);

    const auto c = hdls::core::parse_schedule("tss+awf-c");
    ASSERT_TRUE(c);
    EXPECT_EQ(c->intra, Technique::AWFC);
}

TEST(EnvConfigTest, ParseRejectsMalformedInput) {
    EXPECT_FALSE(hdls::core::parse_schedule(""));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS"));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS+"));
    EXPECT_FALSE(hdls::core::parse_schedule("+GSS"));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS+NOPE"));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS+SS,min_chunk=0"));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS+SS,min_chunk=abc"));
    EXPECT_FALSE(hdls::core::parse_schedule("GSS+SS,chunk=3"));
}

TEST(EnvConfigTest, FormatRoundTrips) {
    hdls::core::HierConfig cfg;
    cfg.inter = Technique::TSS;
    cfg.intra = Technique::FAC2;
    cfg.min_chunk = 16;
    const std::string s = hdls::core::format_schedule(cfg);
    EXPECT_EQ(s, "TSS+FAC2,min_chunk=16");
    const auto parsed = hdls::core::parse_schedule(s);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->inter, cfg.inter);
    EXPECT_EQ(parsed->intra, cfg.intra);
    EXPECT_EQ(parsed->min_chunk, cfg.min_chunk);
    cfg.min_chunk = 1;
    EXPECT_EQ(hdls::core::format_schedule(cfg), "TSS+FAC2");
}

TEST(EnvConfigTest, ParseApproach) {
    EXPECT_EQ(hdls::core::parse_approach("MPI+MPI"), hdls::core::Approach::MpiMpi);
    EXPECT_EQ(hdls::core::parse_approach("mpi+openmp"), hdls::core::Approach::MpiOpenMp);
    EXPECT_EQ(hdls::core::parse_approach("hybrid"), hdls::core::Approach::MpiOpenMp);
    EXPECT_EQ(hdls::core::parse_approach("pvm"), std::nullopt);
}

TEST(EnvConfigTest, EnvironmentOverridesAndFallbacks) {
    hdls::core::HierConfig fallback;
    fallback.inter = Technique::Static;
    fallback.intra = Technique::Static;

    ::setenv("HDLS_SCHEDULE", "GSS+SS,min_chunk=2", 1);
    const auto cfg = hdls::core::schedule_from_env(fallback);
    EXPECT_EQ(cfg.inter, Technique::GSS);
    EXPECT_EQ(cfg.intra, Technique::SS);
    EXPECT_EQ(cfg.min_chunk, 2);

    // The env var overrides only the schedule: non-schedule configuration
    // (tracing, WF node weights, FAC inputs, ...) must survive the merge.
    fallback.trace = true;
    fallback.node_weights = {2.0, 1.0};
    fallback.fac_sigma = 0.5;
    ::setenv("HDLS_SCHEDULE", "WF+GSS", 1);
    const auto kept = hdls::core::schedule_from_env(fallback);
    EXPECT_EQ(kept.inter, Technique::WF);
    EXPECT_TRUE(kept.trace);
    EXPECT_EQ(kept.node_weights, (std::vector<double>{2.0, 1.0}));
    EXPECT_EQ(kept.fac_sigma, 0.5);
    fallback.trace = false;
    fallback.node_weights.clear();
    fallback.fac_sigma = 0.0;

    ::setenv("HDLS_SCHEDULE", "garbage", 1);
    const auto bad = hdls::core::schedule_from_env(fallback);
    EXPECT_EQ(bad.inter, Technique::Static);

    ::unsetenv("HDLS_SCHEDULE");
    const auto unset = hdls::core::schedule_from_env(fallback);
    EXPECT_EQ(unset.intra, Technique::Static);

    ::setenv("HDLS_APPROACH", "MPI+OpenMP", 1);
    EXPECT_EQ(hdls::core::approach_from_env(), hdls::core::Approach::MpiOpenMp);
    ::setenv("HDLS_APPROACH", "bogus", 1);
    EXPECT_EQ(hdls::core::approach_from_env(hdls::core::Approach::MpiMpi),
              hdls::core::Approach::MpiMpi);
    ::unsetenv("HDLS_APPROACH");
}

TEST(EnvConfigTest, EnvSelectedScheduleRunsEndToEnd) {
    ::setenv("HDLS_SCHEDULE", "FAC2+GSS", 1);
    const auto cfg = hdls::core::schedule_from_env();
    std::atomic<std::int64_t> count{0};
    const auto report = hdls::parallel_for(
        hdls::core::ClusterShape{2, 2}, hdls::core::approach_from_env(), cfg, 500,
        [&](std::int64_t b, std::int64_t e) { count.fetch_add(e - b); });
    EXPECT_EQ(count.load(), 500);
    EXPECT_EQ(report.inter, Technique::FAC2);
    EXPECT_EQ(report.intra, Technique::GSS);
    ::unsetenv("HDLS_SCHEDULE");
}

}  // namespace
