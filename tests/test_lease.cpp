/// \file test_lease.cpp
/// Lease-based fault tolerance: the LeaseBoard CAS protocol (completion
/// fence, single-winner reclamation, prefetch-slot coverage), heartbeat
/// failure detection on both transports, the HDLS_CHAOS fail-stop drill
/// proving every iteration commits exactly once despite a mid-loop kill,
/// SlotGovernor membership re-apportionment, and the simulator's
/// kill-node failure pricing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/hdls.hpp"
#include "core/lease_board.hpp"
#include "minimpi/liveness.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/simulator.hpp"

namespace {

using hdls::core::Approach;
using hdls::core::ChaosSpec;
using hdls::core::ClusterShape;
using hdls::core::HierConfig;
using hdls::core::LeaseBoard;
using hdls::dls::Technique;
using minimpi::Context;
using minimpi::Error;
using minimpi::ErrorCode;
using minimpi::FailureDetector;
using minimpi::ReduceOp;
using minimpi::Runtime;
using minimpi::TransportKind;

constexpr TransportKind kBothTransports[] = {TransportKind::Threads, TransportKind::Shm};

// ------------------------------------------------------- LeaseBoard unit

TEST(LeaseBoardTest, LeaseCompleteLifecycleOnBothTransports) {
    for (const TransportKind kind : kBothTransports) {
        Runtime::run(2, kind, [](Context& ctx) {
            const minimpi::Comm& world = ctx.world();
            LeaseBoard board(world, 8.0);
            if (world.rank() == 0) {
                board.lease(0, 10);
                EXPECT_EQ(board.outstanding(), 1);
            }
            world.barrier();
            EXPECT_FALSE(board.quiescent());  // rank 0's lease is ACTIVE
            world.barrier();
            if (world.rank() == 0) {
                EXPECT_TRUE(board.complete(0));
                EXPECT_EQ(board.outstanding(), 0);
                EXPECT_GT(board.ema_seconds(), 0.0);
            }
            world.barrier();
            EXPECT_TRUE(board.quiescent());
            board.free();
        });
    }
}

TEST(LeaseBoardTest, CompletingAnUnknownStartIsANoOpCommit) {
    Runtime::run(1, [](Context& ctx) {
        LeaseBoard board(ctx.world(), 8.0);
        EXPECT_TRUE(board.complete(12345));
        EXPECT_TRUE(board.quiescent());
        board.free();
    });
}

TEST(LeaseBoardTest, LeaseThrowsResourceWhenEverySlotIsTaken) {
    Runtime::run(1, [](Context& ctx) {
        LeaseBoard board(ctx.world(), 8.0, /*slots=*/2);
        board.lease(0, 1);
        board.lease(1, 1);
        EXPECT_THROW(board.lease(2, 1), Error);
        EXPECT_TRUE(board.complete(0));
        EXPECT_TRUE(board.complete(1));
        board.free();
    });
}

TEST(LeaseBoardTest, RejectsNonPositiveKAndZeroSlots) {
    Runtime::run(1, [](Context& ctx) {
        EXPECT_THROW(LeaseBoard(ctx.world(), 0.0), Error);
        EXPECT_THROW(LeaseBoard(ctx.world(), 8.0, 0), Error);
    });
}

/// A dead owner's expired lease is swept to RECLAIMED, claimed by a
/// survivor, and the late owner's completion fence then LOSES — the chunk
/// commits exactly once, on the claimer.
TEST(LeaseBoardTest, LateOwnerLosesTheFenceAfterReclamation) {
    Runtime::run(2, [](Context& ctx) {
        const minimpi::Comm& world = ctx.world();
        LeaseBoard board(world, 1.0);
        if (world.rank() == 0) {
            board.lease(0, 100);
        }
        world.barrier();
        if (world.rank() == 1) {
            world.mark_dead(0);
            // Past the 100 ms deadline floor (the EMA is still zero).
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            EXPECT_EQ(board.sweep(), 1);
            const auto rc = board.claim_one();
            ASSERT_TRUE(rc.has_value());
            EXPECT_EQ(rc->start, 0);
            EXPECT_EQ(rc->size, 100);
            EXPECT_FALSE(board.claim_one().has_value());
        }
        world.barrier();
        if (world.rank() == 0) {
            // The owner finished late: the execution must not commit.
            EXPECT_FALSE(board.complete(0));
        } else {
            // The claimer re-leases into its own board and commits.
            board.lease(0, 100);
            EXPECT_TRUE(board.complete(0));
        }
        world.barrier();
        EXPECT_TRUE(board.quiescent());
        board.free();
    });
}

/// Two survivors race to sweep and claim the two leases a dead rank left
/// behind (its in-flight chunk plus its prefetch-slot chunk): every CAS
/// has a single winner, so exactly two claims happen in total.
TEST(LeaseBoardTest, DoubleReclamationRaceHasSingleWinners) {
    Runtime::run(3, [](Context& ctx) {
        const minimpi::Comm& world = ctx.world();
        LeaseBoard board(world, 1.0);
        if (world.rank() == 0) {
            board.lease(0, 50);
            board.lease(50, 50);
            board.abandon_all();  // fail-stop: slots stay ACTIVE on the window
            EXPECT_EQ(board.outstanding(), 0);
        }
        world.barrier();
        std::int64_t swept = 0;
        std::int64_t claimed = 0;
        if (world.rank() != 0) {
            world.mark_dead(0);
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            // Both survivors sweep and claim concurrently.
            swept = board.sweep();
            while (const auto rc = board.claim_one()) {
                EXPECT_TRUE((rc->start == 0 || rc->start == 50) && rc->size == 50);
                board.lease(rc->start, rc->size);
                EXPECT_TRUE(board.complete(rc->start));
                ++claimed;
            }
        }
        EXPECT_EQ(world.allreduce(swept, ReduceOp::Sum), 2);
        EXPECT_EQ(world.allreduce(claimed, ReduceOp::Sum), 2);
        world.barrier();
        EXPECT_TRUE(board.quiescent());
        board.free();
    });
}

/// A live (beating, never marked dead) owner's leases are never swept, no
/// matter how stale the deadline is.
TEST(LeaseBoardTest, SweepNeverTouchesLiveOwners) {
    Runtime::run(2, [](Context& ctx) {
        const minimpi::Comm& world = ctx.world();
        LeaseBoard board(world, 1.0);
        if (world.rank() == 0) {
            board.lease(0, 10);
        }
        world.barrier();
        if (world.rank() == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            EXPECT_EQ(board.sweep(), 0);  // deadline passed, owner alive
            EXPECT_FALSE(board.claim_one().has_value());
        }
        world.barrier();
        if (world.rank() == 0) {
            EXPECT_TRUE(board.complete(0));
        }
        world.barrier();
        EXPECT_TRUE(board.quiescent());
        board.free();
    });
}

// -------------------------------------------------- heartbeat detection

TEST(FailureDetectorTest, SilentPeerIsDeclaredDeadOnBothTransports) {
    for (const TransportKind kind : kBothTransports) {
        std::atomic<bool> done{false};
        Runtime::run(2, kind, [&done](Context& ctx) {
            const minimpi::Comm& world = ctx.world();
            if (world.rank() == 1) {
                // Beats for a while, then goes silent (fail-stop).
                for (int i = 0; i < 20; ++i) {
                    world.beat();
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                }
                while (!done.load(std::memory_order_acquire)) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                }
                return;
            }
            FailureDetector detector(world, std::chrono::milliseconds(60));
            // While the peer beats, it must never be suspected.
            const auto beating_until =
                std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
            while (std::chrono::steady_clock::now() < beating_until) {
                EXPECT_EQ(detector.poll(), 0);
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            EXPECT_FALSE(world.is_dead(1));
            // Once it goes silent, detection must land within the timeout
            // (plus generous slack for CI).
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(10);
            while (!world.is_dead(1) && std::chrono::steady_clock::now() < deadline) {
                detector.poll();
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
            EXPECT_TRUE(world.is_dead(1));
            EXPECT_EQ(world.alive(), 1);
            done.store(true, std::memory_order_release);
        });
    }
}

// ------------------------------------------------------ chaos end-to-end

/// The PR's headline property: under HDLS_CHAOS a rank fail-stops mid-loop
/// (abandoning its in-flight and prefetched leases), survivors detect the
/// death, reclaim and re-execute the lost chunks — and every iteration of
/// the loop still executes exactly once.
void chaos_exactly_once(TransportKind kind, bool prefetch) {
    constexpr std::int64_t kN = 2000;
    auto hits = std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(kN));
    for (std::int64_t i = 0; i < kN; ++i) {
        hits[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }

    HierConfig cfg;
    cfg.inter = Technique::GSS;
    // Sharded root + one worker per node: the victim (rank 1) owns shard
    // [n/4, n/2) privately while alive, so its very first acquisition has
    // start >= at_fraction*n and the kill fires deterministically — no
    // dependence on which rank wins the scheduling race. Fine-grained leaf
    // sub-chunks (SS, 8 iterations) keep the abandoned lease small.
    cfg.inter_backend = hdls::dls::InterBackend::Sharded;
    cfg.intra = Technique::SS;
    cfg.min_chunk = 8;
    cfg.transport = kind;
    cfg.prefetch = prefetch;
    cfg.trace = true;
    cfg.lease = true;
    cfg.lease_k = 4.0;
    cfg.heartbeat_timeout = std::chrono::milliseconds(150);
    cfg.chaos = ChaosSpec{/*kill_rank=*/1, /*at_fraction=*/0.25};

    const auto report = hdls::parallel_for(
        ClusterShape{4, 1}, Approach::MpiMpi, cfg, kN,
        [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                // Sleep, don't spin: on a single-core host a spinning body
                // monopolizes the CPU and can park the victim rank past the
                // end of the loop. Sleeping keeps the core mostly idle (the
                // victim schedules within µs of becoming runnable) while
                // survivors still need ~25 ms of wall time to drain their
                // own shards before any steal of the victim's shard begins.
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
            }
        });

    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(std::memory_order_relaxed), 1)
            << "iteration " << i << " (transport "
            << minimpi::transport_name(kind) << ", prefetch " << prefetch << ")";
    }
    // Committed iterations account for the whole loop exactly once.
    EXPECT_EQ(report.executed_iterations(), kN);
    // The victim's abandoned lease(s) were reclaimed, and the run paid at
    // least one lease per executed chunk.
    EXPECT_GE(report.metrics.counter_total("hdls_lease_reclaims_total"), 1u);
    EXPECT_GE(report.metrics.counter_total("hdls_lease_acquires_total"),
              static_cast<std::uint64_t>(report.executed_chunks()));
    // The trace carries the reclamation story (Reclaim events).
    ASSERT_NE(report.trace, nullptr);
    const auto analysis = hdls::trace::analyze(*report.trace);
    EXPECT_FALSE(analysis.reclaimed.empty());
    EXPECT_GE(analysis.reclaimed_iterations, 1);
}

TEST(ChaosTest, EveryIterationExecutesExactlyOnceOnThreads) {
    chaos_exactly_once(TransportKind::Threads, /*prefetch=*/false);
}

TEST(ChaosTest, EveryIterationExecutesExactlyOnceOnShm) {
    chaos_exactly_once(TransportKind::Shm, /*prefetch=*/false);
}

/// A killed rank with an outstanding prefetch slot: the slot's chunk was
/// leased at fill time, so it is reclaimed like the in-flight one.
TEST(ChaosTest, ReclaimsThePrefetchSlotChunkToo) {
    chaos_exactly_once(TransportKind::Threads, /*prefetch=*/true);
}

TEST(ChaosTest, LeaseModeWithoutFailuresCommitsEverythingNormally) {
    constexpr std::int64_t kN = 2000;
    std::atomic<std::int64_t> count{0};
    HierConfig cfg;
    cfg.lease = true;
    const auto report = hdls::parallel_for(
        ClusterShape{2, 2}, Approach::MpiMpi, cfg, kN,
        [&](std::int64_t b, std::int64_t e) { count.fetch_add(e - b); });
    EXPECT_EQ(count.load(), kN);
    EXPECT_EQ(report.executed_iterations(), kN);
    EXPECT_EQ(report.metrics.counter_total("hdls_lease_reclaims_total"), 0u);
    EXPECT_EQ(report.metrics.counter_total("hdls_lease_fence_losses_total"), 0u);
    EXPECT_GE(report.metrics.counter_total("hdls_lease_acquires_total"),
              static_cast<std::uint64_t>(report.executed_chunks()));
}

// --------------------------------------------------- runner validation

TEST(ChaosConfigTest, ChaosRequiresLeaseMode) {
    HierConfig cfg;
    cfg.chaos = ChaosSpec{0, 0.5};
    EXPECT_THROW((void)hdls::parallel_for(ClusterShape{2, 2}, Approach::MpiMpi, cfg, 100,
                                          [](std::int64_t, std::int64_t) {}),
                 std::invalid_argument);
}

TEST(ChaosConfigTest, ChaosRequiresMpiMpi) {
    HierConfig cfg;
    cfg.lease = true;
    cfg.chaos = ChaosSpec{0, 0.5};
    EXPECT_THROW((void)hdls::parallel_for(ClusterShape{2, 2}, Approach::MpiOpenMp, cfg, 100,
                                          [](std::int64_t, std::int64_t) {}),
                 std::invalid_argument);
}

TEST(ChaosConfigTest, KillRankMustBeInsideTheWorld) {
    HierConfig cfg;
    cfg.lease = true;
    cfg.chaos = ChaosSpec{4, 0.5};  // world is 4 ranks: 0..3
    EXPECT_THROW((void)hdls::parallel_for(ClusterShape{2, 2}, Approach::MpiMpi, cfg, 100,
                                          [](std::int64_t, std::int64_t) {}),
                 std::invalid_argument);
}

TEST(ChaosConfigTest, LeaseUnderHybridIsDisabledWithAWarningNotAnError) {
    HierConfig cfg;
    cfg.lease = true;
    std::atomic<std::int64_t> count{0};
    const auto report = hdls::parallel_for(
        ClusterShape{2, 2}, Approach::MpiOpenMp, cfg, 500,
        [&](std::int64_t b, std::int64_t e) { count.fetch_add(e - b); });
    EXPECT_EQ(count.load(), 500);
    EXPECT_EQ(report.metrics.counter_total("hdls_lease_acquires_total"), 0u);
}

// ------------------------------------------------------------ env knobs

TEST(LeaseEnvTest, ParseChaosAcceptsTheDocumentedForms) {
    const ChaosSpec a = hdls::core::parse_chaos("kill:1@50%");
    EXPECT_EQ(a.kill_rank, 1);
    EXPECT_DOUBLE_EQ(a.at_fraction, 0.5);
    const ChaosSpec b = hdls::core::parse_chaos("  KILL: 3 @ 25  ");
    EXPECT_EQ(b.kill_rank, 3);
    EXPECT_DOUBLE_EQ(b.at_fraction, 0.25);
    const ChaosSpec c = hdls::core::parse_chaos("kill:0@100%");
    EXPECT_EQ(c.kill_rank, 0);
    EXPECT_DOUBLE_EQ(c.at_fraction, 1.0);
}

TEST(LeaseEnvTest, ParseChaosRejectsMalformedSpecs) {
    EXPECT_THROW((void)hdls::core::parse_chaos(""), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:1"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:@50%"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:x@50%"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:1@pct"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:1@150%"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("kill:-1@50%"), std::invalid_argument);
    EXPECT_THROW((void)hdls::core::parse_chaos("die:1@50%"), std::invalid_argument);
}

TEST(LeaseEnvTest, StrictKnobsThrowOnGarbageAndFallBackWhenUnset) {
    ::unsetenv("HDLS_LEASE");
    EXPECT_FALSE(hdls::core::lease_from_env());
    EXPECT_TRUE(hdls::core::lease_from_env(true));
    ::setenv("HDLS_LEASE", "on", 1);
    EXPECT_TRUE(hdls::core::lease_from_env());
    ::setenv("HDLS_LEASE", "0", 1);
    EXPECT_FALSE(hdls::core::lease_from_env(true));
    ::setenv("HDLS_LEASE", "maybe", 1);
    EXPECT_THROW((void)hdls::core::lease_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_LEASE");

    ::setenv("HDLS_LEASE_K", "2.5", 1);
    EXPECT_DOUBLE_EQ(hdls::core::lease_k_from_env(), 2.5);
    ::setenv("HDLS_LEASE_K", "-1", 1);
    EXPECT_THROW((void)hdls::core::lease_k_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_LEASE_K");
    EXPECT_DOUBLE_EQ(hdls::core::lease_k_from_env(8.0), 8.0);

    ::setenv("HDLS_HEARTBEAT_TIMEOUT_MS", "250", 1);
    EXPECT_EQ(hdls::core::heartbeat_timeout_from_env(), std::chrono::milliseconds(250));
    ::setenv("HDLS_HEARTBEAT_TIMEOUT_MS", "0", 1);
    EXPECT_THROW((void)hdls::core::heartbeat_timeout_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_HEARTBEAT_TIMEOUT_MS");

    ::setenv("HDLS_CHAOS", "kill:2@75%", 1);
    const ChaosSpec spec = hdls::core::chaos_from_env();
    EXPECT_EQ(spec.kill_rank, 2);
    EXPECT_DOUBLE_EQ(spec.at_fraction, 0.75);
    ::setenv("HDLS_CHAOS", "garbage", 1);
    EXPECT_THROW((void)hdls::core::chaos_from_env(), std::invalid_argument);
    ::unsetenv("HDLS_CHAOS");
    EXPECT_FALSE(hdls::core::chaos_from_env().enabled());
}

// --------------------------------------------- SlotGovernor membership

TEST(SlotGovernorCapacityTest, ShrinkingCapacityReapportionsEntitlements) {
    hdls::core::SlotGovernor gov(4);
    EXPECT_EQ(gov.capacity(), 4);
    const auto a = gov.add_job(1.0, 1000);
    const auto b = gov.add_job(1.0, 1000);
    EXPECT_EQ(gov.share(a).entitlement + gov.share(b).entitlement, 4);

    gov.set_capacity(2);  // two of four workers died
    EXPECT_EQ(gov.capacity(), 2);
    EXPECT_EQ(gov.share(a).entitlement + gov.share(b).entitlement, 2);
    EXPECT_GE(gov.share(a).entitlement, 1);  // the progress floor holds
    EXPECT_GE(gov.share(b).entitlement, 1);

    gov.set_capacity(4);  // recovery restores the full pool
    EXPECT_EQ(gov.share(a).entitlement + gov.share(b).entitlement, 4);

    EXPECT_THROW(gov.set_capacity(0), std::invalid_argument);
    EXPECT_THROW(gov.set_capacity(5), std::invalid_argument);
    gov.remove_job(a);
    gov.remove_job(b);
}

// ----------------------------------------------------- simulator pricing

hdls::sim::WorkloadTrace constant_trace(std::int64_t n) {
    hdls::apps::WorkloadSpec spec;
    spec.kind = hdls::apps::WorkloadKind::Constant;
    spec.iterations = n;
    spec.mean_seconds = 1e-6;
    return hdls::sim::WorkloadTrace(hdls::apps::make_workload(spec));
}

TEST(SimFailureTest, SharedQueueKillReclaimsAndStillExecutesEverything) {
    constexpr std::int64_t kN = 20000;
    const auto trace = constant_trace(kN);
    hdls::sim::ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    hdls::sim::SimConfig cfg;
    cfg.inter = Technique::GSS;
    cfg.intra = Technique::SS;  // fine sub-chunks: the dead node's queue
                                // holds a remainder at the kill instant
    const auto healthy = simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace);

    cfg.failure = hdls::sim::SimFailure{/*node=*/1, /*at_fraction=*/0.5,
                                        /*detect_delay_s=*/1e-4};
    const auto failed = simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace);

    EXPECT_EQ(failed.executed_iterations(), kN);  // nothing lost, nothing doubled
    EXPECT_GT(failed.reclaimed_iterations, 0);
    EXPECT_EQ(healthy.reclaimed_iterations, 0);
    // Losing a quarter of the cluster mid-loop cannot make the run faster.
    EXPECT_GE(failed.parallel_time, healthy.parallel_time);

    // Deterministic: the same failure prices identically on a re-run.
    const auto again = simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace);
    EXPECT_DOUBLE_EQ(again.parallel_time, failed.parallel_time);
    EXPECT_EQ(again.reclaimed_iterations, failed.reclaimed_iterations);
}

TEST(SimFailureTest, HybridKillDrainsThroughSurvivorsWithNothingToReclaim) {
    constexpr std::int64_t kN = 20000;
    const auto trace = constant_trace(kN);
    hdls::sim::ClusterSpec cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 4;
    hdls::sim::SimConfig cfg;
    const auto healthy = simulate(hdls::sim::ExecModel::MpiOpenMp, cluster, cfg, trace);

    cfg.failure = hdls::sim::SimFailure{/*node=*/1, /*at_fraction=*/0.5};
    const auto failed = simulate(hdls::sim::ExecModel::MpiOpenMp, cluster, cfg, trace);

    EXPECT_EQ(failed.executed_iterations(), kN);
    EXPECT_EQ(failed.reclaimed_iterations, 0);  // no node-local queue content
    EXPECT_GE(failed.parallel_time, healthy.parallel_time);
}

TEST(SimFailureTest, ValidatesTheFailureSpec) {
    const auto trace = constant_trace(100);
    hdls::sim::ClusterSpec cluster;
    cluster.nodes = 2;
    cluster.workers_per_node = 2;
    hdls::sim::SimConfig cfg;
    cfg.failure.node = 2;  // outside the 2-node cluster
    EXPECT_THROW((void)simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.failure.node = 0;
    cfg.failure.at_fraction = 1.5;
    EXPECT_THROW((void)simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.failure.at_fraction = 0.5;
    cfg.failure.detect_delay_s = -1.0;
    EXPECT_THROW((void)simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
    cfg.failure.detect_delay_s = 0.0;
    cluster.nodes = 1;
    cluster.workers_per_node = 4;
    cfg.failure.node = 0;
    EXPECT_THROW((void)simulate(hdls::sim::ExecModel::MpiMpi, cluster, cfg, trace),
                 std::invalid_argument);
}

}  // namespace
