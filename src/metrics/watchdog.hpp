#pragma once
/// \file watchdog.hpp
/// StallWatchdog: per-worker heartbeat tracking with an EMA-scaled stall
/// threshold. Every worker "beats" once per executed chunk (wait-free,
/// allocation-free); a background check — or a deterministic check(now)
/// call in tests — flags any worker that has been silent for more than
/// k× its recent chunk-time EMA (with an absolute floor so slow-but-real
/// chunks on imbalanced nodes never trip it) and emits a one-shot
/// diagnostic dump: stuck level, last chunk start, outstanding prefetch,
/// and per-shard remaining iterations when a shard probe is installed.
/// The dump fires once per stall episode; a new beat re-arms it.
///
/// This is the precursor to lease-based chunk reclamation (ROADMAP item
/// 5): the same heartbeat data decides when a worker's leased chunk is
/// forfeit.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace hdls::metrics {

class StallWatchdog {
public:
    struct Config {
        /// Stall threshold multiplier over the per-worker chunk-time EMA.
        double k = 8.0;
        /// Absolute threshold floor — a worker is never flagged sooner
        /// than this, however fast its chunks were.
        std::uint64_t floor_ns = 200'000'000;
        /// Beats a worker must have delivered before it can be flagged
        /// (a worker that never started is a scheduling gap, not a stall).
        std::uint64_t min_beats = 2;
    };

    /// One flagged worker, as returned by check().
    struct Stall {
        int worker = -1;
        int level = -1;                   ///< level the worker last acquired at
        std::int64_t last_chunk_start = -1;  ///< first iteration of its last chunk
        bool prefetch_outstanding = false;
        std::uint64_t silent_ns = 0;
        std::uint64_t ema_ns = 0;
        std::uint64_t beats = 0;
        std::vector<std::int64_t> shard_remaining;  ///< from the shard probe, if any
    };

    explicit StallWatchdog(int workers) : StallWatchdog(workers, Config{}) {}
    StallWatchdog(int workers, Config cfg);
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog&) = delete;
    StallWatchdog& operator=(const StallWatchdog&) = delete;

    /// Marks a worker running (heartbeat clock starts now).
    void enter(int worker) noexcept;
    /// Marks a worker finished — it is exempt from stall checks.
    void leave(int worker) noexcept;

    /// Heartbeat: one call per executed chunk. Wait-free, allocation-free.
    void beat(int worker, int level, std::int64_t chunk_start, bool prefetch_outstanding,
              double chunk_seconds) noexcept;

    /// Deterministic seam used by tests: like beat() but with an explicit
    /// timestamp on the now_ns() clock.
    void beat_at(std::uint64_t now, int worker, int level, std::int64_t chunk_start,
                 bool prefetch_outstanding, double chunk_seconds) noexcept;

    /// Scans all workers against `now` (same clock as now_ns()) and
    /// returns the stalls detected *this call* — one-shot per episode.
    /// Side effects per stall: hdls_watchdog_stalls_total is incremented
    /// and the formatted dump goes to util::log_error and last_dump().
    std::vector<Stall> check(std::uint64_t now);

    /// Monotonic nanoseconds since construction (the beat/check clock).
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    /// Installs a callback reporting per-shard remaining iterations of the
    /// root queue, included in stall dumps. Thread-safe.
    void set_shard_probe(std::function<std::vector<std::int64_t>()> probe);
    void clear_shard_probe();

    /// Starts/stops the background thread calling check() every `period`.
    void start(std::chrono::milliseconds period);
    void stop();

    [[nodiscard]] std::uint64_t stalls_reported() const noexcept {
        return stalls_reported_.load(std::memory_order_relaxed);
    }

    /// The most recent diagnostic dump ("" when none fired).
    [[nodiscard]] std::string last_dump() const;

    [[nodiscard]] static std::string format_stall(const Stall& s);

    [[nodiscard]] int workers() const noexcept { return static_cast<int>(slots_.size()); }

private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> beats{0};
        std::atomic<std::uint64_t> last_beat_ns{0};
        std::atomic<std::uint64_t> ema_ns{0};
        std::atomic<std::int32_t> level{-1};
        std::atomic<std::int64_t> last_chunk_start{-1};
        std::atomic<bool> prefetch_outstanding{false};
        std::atomic<bool> active{false};
        // Owned by the checking thread only.
        std::uint64_t beats_at_report = 0;
        bool reported = false;
    };

    Config cfg_;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> stalls_reported_{0};

    mutable std::mutex mutex_;  // probe, dump, thread lifecycle
    std::function<std::vector<std::int64_t>()> shard_probe_;
    std::string last_dump_;
    std::thread thread_;
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool running_ = false;
    bool stop_requested_ = false;
};

/// Global watchdog hook, now a *registry*: installations stack, and
/// active_watchdog() returns the most recent live one (a single relaxed
/// pointer load on the hot path). Overlapping runs each install their own
/// watchdog and remove exactly their own entry with uninstall_watchdog(),
/// so no interleaving of run lifetimes can leave the hook pointing at a
/// destroyed watchdog — the failure mode of the old save/restore guard.
/// install_watchdog(nullptr) keeps its legacy meaning: uninstall the most
/// recent installation.
void install_watchdog(StallWatchdog* wd) noexcept;
/// Removes this specific watchdog from the registry (idempotent; nullptr
/// is a no-op). The preferred uninstall for scoped installations.
void uninstall_watchdog(StallWatchdog* wd) noexcept;
[[nodiscard]] StallWatchdog* active_watchdog() noexcept;

/// RAII installation — the exception-safe way to scope a watchdog to a
/// run. Removal targets exactly this watchdog, so overlapping scopes may
/// unwind in any order.
class WatchdogInstallation {
public:
    explicit WatchdogInstallation(StallWatchdog* wd) noexcept : wd_(wd) {
        if (wd_ != nullptr) {
            install_watchdog(wd_);
        }
    }
    ~WatchdogInstallation() { uninstall_watchdog(wd_); }
    WatchdogInstallation(const WatchdogInstallation&) = delete;
    WatchdogInstallation& operator=(const WatchdogInstallation&) = delete;

private:
    StallWatchdog* wd_;
};

/// The explicit-watchdog entry points: executors thread the run's own
/// watchdog through these (see core::RankHooks) so concurrent runs beat
/// their own instance instead of whichever happens to top the global
/// registry. `wd == nullptr` keeps only the always-on gauge updates.
inline void worker_enter(int worker, StallWatchdog* wd) noexcept {
    rt().workers_active->add(1);  // gauge is always-on, watchdog opt-in
    if (wd != nullptr) {
        wd->enter(worker);
    }
}

inline void worker_leave(int worker, StallWatchdog* wd) noexcept {
    rt().workers_active->add(-1);
    if (wd != nullptr) {
        wd->leave(worker);
    }
}

inline void worker_beat(int worker, int level, std::int64_t chunk_start,
                        bool prefetch_outstanding, double chunk_seconds,
                        StallWatchdog* wd) noexcept {
    if (wd != nullptr) {
        wd->beat(worker, level, chunk_start, prefetch_outstanding, chunk_seconds);
    }
}

/// Registry-addressed conveniences (legacy callers, standalone tools).
inline void worker_enter(int worker) noexcept { worker_enter(worker, active_watchdog()); }
inline void worker_leave(int worker) noexcept { worker_leave(worker, active_watchdog()); }
inline void worker_beat(int worker, int level, std::int64_t chunk_start,
                        bool prefetch_outstanding, double chunk_seconds) noexcept {
    worker_beat(worker, level, chunk_start, prefetch_outstanding, chunk_seconds,
                active_watchdog());
}

}  // namespace hdls::metrics
