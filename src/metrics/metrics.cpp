#include "metrics/metrics.hpp"

#include <algorithm>

namespace hdls::metrics {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

unsigned shard_index() noexcept {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
}

bool metrics_on() noexcept { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace detail

std::string MetricsRegistry::key_of(MetricType type, const std::string& name,
                                    const Labels& labels) {
    std::string key;
    key.reserve(name.size() + 16);
    key += static_cast<char>('0' + static_cast<int>(type));
    key += name;
    for (const auto& [k, v] : labels) {
        key += '\x01';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
    const std::string key = key_of(MetricType::Counter, name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, loc] : index_) {
        if (k == key) {
            return counters_[loc.second].metric;
        }
    }
    counters_.emplace_back();  // in place: Counter is neither copyable nor movable
    counters_.back().desc = Desc{name, help, MetricType::Counter, labels};
    const std::size_t idx = counters_.size() - 1;
    index_.emplace_back(key, std::make_pair(MetricType::Counter, idx));
    order_.emplace_back(MetricType::Counter, idx);
    return counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
    const std::string key = key_of(MetricType::Gauge, name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, loc] : index_) {
        if (k == key) {
            return gauges_[loc.second].metric;
        }
    }
    gauges_.emplace_back();
    gauges_.back().desc = Desc{name, help, MetricType::Gauge, labels};
    const std::size_t idx = gauges_.size() - 1;
    index_.emplace_back(key, std::make_pair(MetricType::Gauge, idx));
    order_.emplace_back(MetricType::Gauge, idx);
    return gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      const Labels& labels) {
    const std::string key = key_of(MetricType::Histogram, name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, loc] : index_) {
        if (k == key) {
            return histograms_[loc.second].metric;
        }
    }
    histograms_.emplace_back();
    histograms_.back().desc = Desc{name, help, MetricType::Histogram, labels};
    const std::size_t idx = histograms_.size() - 1;
    index_.emplace_back(key, std::make_pair(MetricType::Histogram, idx));
    order_.emplace_back(MetricType::Histogram, idx);
    return histograms_.back().metric;
}

Snapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.entries.reserve(order_.size());
    for (const auto& [type, idx] : order_) {
        SnapshotEntry e;
        switch (type) {
            case MetricType::Counter: {
                const auto& reg = counters_[idx];
                e.name = reg.desc.name;
                e.help = reg.desc.help;
                e.type = MetricType::Counter;
                e.labels = reg.desc.labels;
                e.value = reg.metric.value();
                break;
            }
            case MetricType::Gauge: {
                const auto& reg = gauges_[idx];
                e.name = reg.desc.name;
                e.help = reg.desc.help;
                e.type = MetricType::Gauge;
                e.labels = reg.desc.labels;
                e.gauge = reg.metric.value();
                break;
            }
            case MetricType::Histogram: {
                const auto& reg = histograms_[idx];
                e.name = reg.desc.name;
                e.help = reg.desc.help;
                e.type = MetricType::Histogram;
                e.labels = reg.desc.labels;
                e.buckets.resize(Histogram::kBuckets);
                for (int b = 0; b < Histogram::kBuckets; ++b) {
                    e.buckets[static_cast<std::size_t>(b)] = reg.metric.bucket_count(b);
                }
                e.count = reg.metric.count();
                e.sum = reg.metric.sum();
                break;
            }
        }
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

Snapshot Snapshot::delta_since(const Snapshot& base) const {
    Snapshot out;
    out.entries.reserve(entries.size());
    for (const auto& e : entries) {
        SnapshotEntry d = e;
        const SnapshotEntry* b = base.find(e.name, e.labels);
        if (b != nullptr && b->type == e.type) {
            switch (e.type) {
                case MetricType::Counter:
                    d.value = e.value >= b->value ? e.value - b->value : 0;
                    break;
                case MetricType::Gauge:
                    break;  // gauges keep their current reading
                case MetricType::Histogram: {
                    const std::size_t n = std::min(d.buckets.size(), b->buckets.size());
                    for (std::size_t i = 0; i < n; ++i) {
                        d.buckets[i] =
                            d.buckets[i] >= b->buckets[i] ? d.buckets[i] - b->buckets[i] : 0;
                    }
                    d.count = e.count >= b->count ? e.count - b->count : 0;
                    d.sum = e.sum >= b->sum ? e.sum - b->sum : 0;
                    break;
                }
            }
        }
        out.entries.push_back(std::move(d));
    }
    return out;
}

const SnapshotEntry* Snapshot::find(std::string_view name,
                                    const Labels& labels) const noexcept {
    for (const auto& e : entries) {
        if (e.name == name && e.labels == labels) {
            return &e;
        }
    }
    return nullptr;
}

std::uint64_t Snapshot::counter_total(std::string_view name) const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : entries) {
        if (e.type == MetricType::Counter && e.name == name) {
            total += e.value;
        }
    }
    return total;
}

std::uint64_t Snapshot::histogram_count(std::string_view name) const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : entries) {
        if (e.type == MetricType::Histogram && e.name == name) {
            total += e.count;
        }
    }
    return total;
}

std::uint64_t Snapshot::histogram_sum(std::string_view name) const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : entries) {
        if (e.type == MetricType::Histogram && e.name == name) {
            total += e.sum;
        }
    }
    return total;
}

MetricsRegistry& registry() noexcept {
    static MetricsRegistry instance;
    return instance;
}

namespace {

RuntimeMetrics make_runtime_metrics() {
    MetricsRegistry& reg = registry();
    RuntimeMetrics m{};

    m.window_locks = &reg.counter("hdls_window_locks_total",
                                  "Passive-target RMA lock epochs opened");
    m.window_lock_retries = &reg.counter("hdls_window_lock_retries_total",
                                         "Failed window lock-attempt polls");
    m.window_cas_retries = &reg.counter("hdls_window_cas_retries_total",
                                        "Failed compare-and-swap attempts on windows");
    m.window_backoff_yields = &reg.counter("hdls_window_backoff_yields_total",
                                           "Scheduler yields taken by the backoff ladder");
    m.window_backoff_sleeps = &reg.counter("hdls_window_backoff_sleeps_total",
                                           "Timed sleeps taken by the backoff ladder");
    m.window_requests_completed =
        &reg.counter("hdls_window_requests_completed_total",
                     "Nonblocking atomic-update requests completed");

    // Family-major: all levels of one family before the next, so the
    // snapshot (and hence the exposition file) keeps each family's label
    // sets contiguous — the Prometheus text format allows exactly one
    // HELP/TYPE header per metric name.
    const auto level_labels = [](int lv) {
        return Labels{{"level", std::to_string(lv)}};
    };
    for (int lv = 0; lv < kMaxLevels; ++lv) {
        m.acquires[static_cast<std::size_t>(lv)] =
            &reg.counter("hdls_sched_acquires_total",
                         "Chunks acquired from the parent work source (own share)",
                         level_labels(lv));
    }
    for (int lv = 0; lv < kMaxLevels; ++lv) {
        m.steals[static_cast<std::size_t>(lv)] =
            &reg.counter("hdls_sched_steals_total",
                         "Chunks stolen from other nodes' shards", level_labels(lv));
    }
    for (int lv = 0; lv < kMaxLevels; ++lv) {
        m.refills[static_cast<std::size_t>(lv)] =
            &reg.counter("hdls_sched_refills_total",
                         "Refill transactions performed by a level", level_labels(lv));
    }
    for (int lv = 0; lv < kMaxLevels; ++lv) {
        m.pops[static_cast<std::size_t>(lv)] =
            &reg.counter("hdls_sched_pops_total",
                         "Sub-chunks popped from a level's local queue", level_labels(lv));
    }
    for (int lv = 0; lv < kMaxLevels; ++lv) {
        m.acquire_latency_ns[static_cast<std::size_t>(lv)] =
            &reg.histogram("hdls_sched_acquire_latency_ns",
                           "Latency of parent acquire attempts in nanoseconds",
                           level_labels(lv));
    }
    m.prefetch_hits = &reg.counter("hdls_sched_prefetch_hits_total",
                                   "Acquires served from the prefetch slot");
    m.prefetch_misses = &reg.counter("hdls_sched_prefetch_misses_total",
                                     "Acquires that found the prefetch slot empty");
    m.termination_spins = &reg.counter("hdls_sched_termination_spins_total",
                                       "Polling rounds in the termination protocol");

    m.exec_chunks = &reg.counter("hdls_exec_chunks_total", "Chunks executed by workers");
    m.exec_iterations =
        &reg.counter("hdls_exec_iterations_total", "Loop iterations executed by workers");
    m.feedback_flushes = &reg.counter("hdls_exec_feedback_flushes_total",
                                      "Adaptive feedback flushes to the root queue");
    m.chunk_exec_ns = &reg.histogram("hdls_exec_chunk_ns",
                                     "Chunk body execution time in nanoseconds");

    m.team_chunks =
        &reg.counter("hdls_team_chunks_total", "Chunks dispatched by ompsim thread teams");
    m.team_idle_ns = &reg.counter("hdls_team_idle_ns_total",
                                  "Nanoseconds ompsim threads spent waiting at barriers");

    m.trace_ring_dropped = &reg.counter("hdls_trace_ring_dropped_total",
                                        "Trace events dropped by full ring buffers");

    m.watchdog_stalls = &reg.counter("hdls_watchdog_stalls_total",
                                     "Stalls reported by the stall watchdog");
    m.workers_active =
        &reg.gauge("hdls_workers_active", "Workers currently registered as running");

    m.lease_acquires =
        &reg.counter("hdls_lease_acquires_total", "Chunks leased under lease mode");
    m.lease_reclaims = &reg.counter("hdls_lease_reclaims_total",
                                    "Leases reclaimed from dead owners");
    m.lease_fence_losses =
        &reg.counter("hdls_lease_fence_losses_total",
                     "Chunk completions that lost the lease fence (not committed)");
    m.ranks_dead =
        &reg.gauge("hdls_ranks_dead", "Ranks declared dead by the failure detector");

    m.jobs_submitted =
        &reg.counter("hdls_jobs_submitted_total", "Jobs accepted by JobService::submit");
    m.jobs_rejected = &reg.counter("hdls_jobs_rejected_total",
                                   "Jobs rejected by admission control (queue full)");
    m.jobs_completed =
        &reg.counter("hdls_jobs_completed_total", "Jobs that ran to completion");
    m.jobs_cancelled =
        &reg.counter("hdls_jobs_cancelled_total", "Jobs cancelled before completion");
    m.jobs_active = &reg.gauge("hdls_jobs_active", "Jobs currently executing");
    m.jobs_pending = &reg.gauge("hdls_jobs_pending", "Jobs waiting in the admission queue");
    m.job_latency_ns = &reg.histogram("hdls_job_latency_ns",
                                      "Job latency (submit to completion) in nanoseconds");
    m.job_queue_wait_ns =
        &reg.histogram("hdls_job_queue_wait_ns",
                       "Job admission wait (submit to run start) in nanoseconds");

    return m;
}

}  // namespace

const RuntimeMetrics& rt() noexcept {
    static const RuntimeMetrics instance = make_runtime_metrics();
    return instance;
}

}  // namespace hdls::metrics
