#include "metrics/sampler.hpp"

#include <utility>

#include "metrics/exposition.hpp"
#include "util/log.hpp"

namespace hdls::metrics {

MetricsSampler::MetricsSampler(MetricsRegistry& registry, std::chrono::milliseconds period,
                               std::size_t max_samples)
    : registry_(registry),
      period_(period),
      max_samples_(max_samples == 0 ? 1 : max_samples),
      start_time_(std::chrono::steady_clock::now()) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::set_exposition_file(std::string path) {
    std::lock_guard<std::mutex> lock(mutex_);
    exposition_file_ = std::move(path);
}

void MetricsSampler::start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
        return;
    }
    running_ = true;
    stop_requested_ = false;
    start_time_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { run(); });
}

void MetricsSampler::stop() {
    // running_ is cleared and the thread handle claimed under the mutex so
    // concurrent stop() calls cannot both join (UB); the loser returns
    // early and a concurrent start() sees a moved-from, assignable handle.
    std::thread worker;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_) {
            return;
        }
        running_ = false;
        stop_requested_ = true;
        worker = std::move(thread_);
    }
    cv_.notify_all();
    worker.join();
    take_sample();  // final sample so short runs always leave data behind
}

void MetricsSampler::sample_now() { take_sample(); }

std::vector<MetricsSampler::Sample> MetricsSampler::series() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {series_.begin(), series_.end()};
}

void MetricsSampler::run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
        if (cv_.wait_for(lock, period_, [this] { return stop_requested_; })) {
            break;
        }
        lock.unlock();
        take_sample();
        lock.lock();
    }
}

void MetricsSampler::take_sample() {
    // Snapshot outside mutex_: registry_.snapshot() has its own lock and
    // can be slow relative to the series bookkeeping.
    Sample s;
    s.t_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start_time_)
                      .count();
    s.snapshot = registry_.snapshot();

    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        series_.push_back(s);
        while (series_.size() > max_samples_) {
            series_.pop_front();
        }
        path = exposition_file_;
    }
    if (!path.empty() && !write_prometheus_file(s.snapshot, path)) {
        util::log_warn("metrics: failed to write exposition file '", path, "'");
    }
}

}  // namespace hdls::metrics
