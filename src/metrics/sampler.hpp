#pragma once
/// \file sampler.hpp
/// Background metrics sampler: snapshots a MetricsRegistry on a fixed
/// period into a bounded in-memory time series, optionally re-writing a
/// Prometheus exposition file on every tick so external scrapers (or
/// `examples/metrics_dashboard`) always see fresh data.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace hdls::metrics {

class MetricsSampler {
public:
    struct Sample {
        double t_seconds = 0.0;  ///< seconds since start()
        Snapshot snapshot;
    };

    /// \param registry   registry to sample (usually metrics::registry()).
    /// \param period     sampling period.
    /// \param max_samples bound on the retained series (oldest dropped).
    explicit MetricsSampler(MetricsRegistry& registry,
                            std::chrono::milliseconds period = std::chrono::milliseconds(100),
                            std::size_t max_samples = 512);
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    /// Re-write this Prometheus exposition file on every sample (and once
    /// more on stop()). Set before start().
    void set_exposition_file(std::string path);

    /// Starts the background thread. Idempotent.
    void start();

    /// Takes one final sample, writes the exposition file a last time and
    /// joins the thread. Idempotent; also called by the destructor.
    void stop();

    /// Takes a sample synchronously (usable without start(), e.g. tests).
    void sample_now();

    /// Copy of the retained series, oldest first.
    [[nodiscard]] std::vector<Sample> series() const;

    [[nodiscard]] std::chrono::milliseconds period() const noexcept { return period_; }

private:
    void run();
    void take_sample();

    MetricsRegistry& registry_;
    std::chrono::milliseconds period_;
    std::size_t max_samples_;
    std::string exposition_file_;
    std::chrono::steady_clock::time_point start_time_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Sample> series_;
    std::thread thread_;
    bool running_ = false;
    bool stop_requested_ = false;
};

}  // namespace hdls::metrics
