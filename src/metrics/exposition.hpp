#pragma once
/// \file exposition.hpp
/// Exporters for metrics::Snapshot: Prometheus text exposition format
/// (scrapeable file / on-demand dump) and JSON (embedded in
/// ExecutionReport / SimReport and every bench's --json output).

#include <string>

#include "metrics/metrics.hpp"

namespace hdls::metrics {

/// Renders the snapshot in Prometheus text exposition format v0.0.4:
/// one `# HELP` / `# TYPE` pair per metric family, `_bucket{le="..."}`
/// cumulative bucket series plus `_sum` / `_count` for histograms.
/// Trailing all-zero histogram buckets are elided (the `+Inf` bucket is
/// always present, so the series stays valid and cumulative).
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Renders the snapshot as a JSON object:
///   {"counters": {"name{label=\"v\"}": n, ...},
///    "gauges": {...},
///    "histograms": {"name": {"count": n, "sum": n, "buckets": [[le, cum], ...]}}}
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// Writes `to_prometheus(snap)` atomically-ish (tmp file + rename) so a
/// concurrent scraper never reads a torn file. Returns false on I/O error.
bool write_prometheus_file(const Snapshot& snap, const std::string& path);

}  // namespace hdls::metrics
