#include "metrics/watchdog.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "metrics/metrics.hpp"
#include "util/log.hpp"

namespace hdls::metrics {

StallWatchdog::StallWatchdog(int workers, Config cfg)
    : cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      slots_(static_cast<std::size_t>(std::max(workers, 1))) {}

StallWatchdog::~StallWatchdog() { stop(); }

std::uint64_t StallWatchdog::now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void StallWatchdog::enter(int worker) noexcept {
    if (worker < 0 || worker >= workers()) {
        return;
    }
    Slot& s = slots_[static_cast<std::size_t>(worker)];
    s.last_beat_ns.store(now_ns(), std::memory_order_relaxed);
    s.active.store(true, std::memory_order_relaxed);
}

void StallWatchdog::leave(int worker) noexcept {
    if (worker < 0 || worker >= workers()) {
        return;
    }
    slots_[static_cast<std::size_t>(worker)].active.store(false,
                                                          std::memory_order_relaxed);
}

void StallWatchdog::beat(int worker, int level, std::int64_t chunk_start,
                         bool prefetch_outstanding, double chunk_seconds) noexcept {
    beat_at(now_ns(), worker, level, chunk_start, prefetch_outstanding, chunk_seconds);
}

void StallWatchdog::beat_at(std::uint64_t now, int worker, int level,
                            std::int64_t chunk_start, bool prefetch_outstanding,
                            double chunk_seconds) noexcept {
    if (worker < 0 || worker >= workers()) {
        return;
    }
    Slot& s = slots_[static_cast<std::size_t>(worker)];
    const auto chunk_ns =
        chunk_seconds > 0.0 ? static_cast<std::uint64_t>(chunk_seconds * 1e9) : 0;
    if (chunk_ns > 0) {
        const std::uint64_t old = s.ema_ns.load(std::memory_order_relaxed);
        // EMA with alpha = 1/8; seeded with the first observation. Lossy
        // under concurrent beats to the same slot, but each slot has one
        // writer (its worker).
        s.ema_ns.store(old == 0 ? chunk_ns : (7 * old + chunk_ns) / 8,
                       std::memory_order_relaxed);
    }
    s.level.store(level, std::memory_order_relaxed);
    s.last_chunk_start.store(chunk_start, std::memory_order_relaxed);
    s.prefetch_outstanding.store(prefetch_outstanding, std::memory_order_relaxed);
    s.beats.fetch_add(1, std::memory_order_relaxed);
    s.last_beat_ns.store(now, std::memory_order_relaxed);
}

std::vector<StallWatchdog::Stall> StallWatchdog::check(std::uint64_t now) {
    std::vector<Stall> stalls;
    for (int w = 0; w < workers(); ++w) {
        Slot& s = slots_[static_cast<std::size_t>(w)];
        if (!s.active.load(std::memory_order_relaxed)) {
            s.reported = false;
            continue;
        }
        const std::uint64_t beats = s.beats.load(std::memory_order_relaxed);
        if (beats < cfg_.min_beats) {
            continue;
        }
        if (s.reported && beats != s.beats_at_report) {
            s.reported = false;  // progress since the last report re-arms
        }
        const std::uint64_t last = s.last_beat_ns.load(std::memory_order_relaxed);
        const std::uint64_t silent = now > last ? now - last : 0;
        const std::uint64_t ema = s.ema_ns.load(std::memory_order_relaxed);
        const std::uint64_t threshold = std::max(
            static_cast<std::uint64_t>(cfg_.k * static_cast<double>(ema)), cfg_.floor_ns);
        if (silent <= threshold || s.reported) {
            continue;
        }
        Stall st;
        st.worker = w;
        st.level = s.level.load(std::memory_order_relaxed);
        st.last_chunk_start = s.last_chunk_start.load(std::memory_order_relaxed);
        st.prefetch_outstanding = s.prefetch_outstanding.load(std::memory_order_relaxed);
        st.silent_ns = silent;
        st.ema_ns = ema;
        st.beats = beats;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (shard_probe_) {
                st.shard_remaining = shard_probe_();
            }
        }
        s.reported = true;
        s.beats_at_report = beats;
        stalls_reported_.fetch_add(1, std::memory_order_relaxed);
        rt().watchdog_stalls->inc();
        const std::string dump = format_stall(st);
        util::log_error(dump);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last_dump_ = dump;
        }
        stalls.push_back(std::move(st));
    }
    return stalls;
}

void StallWatchdog::set_shard_probe(std::function<std::vector<std::int64_t>()> probe) {
    std::lock_guard<std::mutex> lock(mutex_);
    shard_probe_ = std::move(probe);
}

void StallWatchdog::clear_shard_probe() {
    std::lock_guard<std::mutex> lock(mutex_);
    shard_probe_ = nullptr;
}

void StallWatchdog::start(std::chrono::milliseconds period) {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (running_) {
        return;
    }
    running_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this, period] {
        std::unique_lock<std::mutex> lk(stop_mutex_);
        while (!stop_requested_) {
            if (stop_cv_.wait_for(lk, period, [this] { return stop_requested_; })) {
                break;
            }
            lk.unlock();
            check(now_ns());
            lk.lock();
        }
    });
}

void StallWatchdog::stop() {
    // Same discipline as MetricsSampler::stop(): clear running_ and claim
    // the thread handle under the mutex so two concurrent stop() calls
    // cannot both join the same thread.
    std::thread checker;
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (!running_) {
            return;
        }
        running_ = false;
        stop_requested_ = true;
        checker = std::move(thread_);
    }
    stop_cv_.notify_all();
    checker.join();
}

std::string StallWatchdog::last_dump() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_dump_;
}

std::string StallWatchdog::format_stall(const Stall& s) {
    std::ostringstream oss;
    oss << "watchdog: worker " << s.worker << " stalled -- no progress for "
        << s.silent_ns / 1000000 << "ms (chunk-time ema " << s.ema_ns / 1000 << "us, "
        << s.beats << " beats); level=" << s.level
        << " last_chunk_start=" << s.last_chunk_start
        << " prefetch_outstanding=" << (s.prefetch_outstanding ? "yes" : "no");
    if (!s.shard_remaining.empty()) {
        oss << " shard_remaining=[";
        for (std::size_t i = 0; i < s.shard_remaining.size(); ++i) {
            oss << (i == 0 ? "" : ", ") << s.shard_remaining[i];
        }
        oss << ']';
    }
    return oss.str();
}

namespace {
// The install registry: a stack of live watchdogs plus an atomic cache of
// the top entry, so active_watchdog() stays one relaxed load on the hot
// path while install/uninstall from overlapping runs can interleave in any
// order without ever leaving the hook pointing at a destroyed watchdog
// (the PR 6 single-pointer guard restored its *saved* predecessor, which a
// concurrent run may have already torn down).
std::mutex g_watchdog_mutex;
std::vector<StallWatchdog*> g_watchdog_stack;
std::atomic<StallWatchdog*> g_watchdog{nullptr};

void refresh_top_locked() noexcept {
    g_watchdog.store(g_watchdog_stack.empty() ? nullptr : g_watchdog_stack.back(),
                     std::memory_order_release);
}
}  // namespace

void install_watchdog(StallWatchdog* wd) noexcept {
    const std::lock_guard<std::mutex> lock(g_watchdog_mutex);
    if (wd == nullptr) {
        // Legacy set-style uninstall: drop the most recent installation.
        if (!g_watchdog_stack.empty()) {
            g_watchdog_stack.pop_back();
        }
    } else {
        g_watchdog_stack.push_back(wd);
    }
    refresh_top_locked();
}

void uninstall_watchdog(StallWatchdog* wd) noexcept {
    if (wd == nullptr) {
        return;
    }
    const std::lock_guard<std::mutex> lock(g_watchdog_mutex);
    for (auto it = g_watchdog_stack.rbegin(); it != g_watchdog_stack.rend(); ++it) {
        if (*it == wd) {
            g_watchdog_stack.erase(std::next(it).base());
            break;
        }
    }
    refresh_top_locked();
}

StallWatchdog* active_watchdog() noexcept {
    return g_watchdog.load(std::memory_order_acquire);
}

}  // namespace hdls::metrics
