#include "metrics/exposition.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

namespace hdls::metrics {

namespace {

const char* type_name(MetricType t) {
    switch (t) {
        case MetricType::Counter:
            return "counter";
        case MetricType::Gauge:
            return "gauge";
        case MetricType::Histogram:
            return "histogram";
    }
    return "untyped";
}

/// Escapes a label value per the exposition format (backslash, quote, \n).
std::string escape_label(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
            case '\\':
                out += "\\\\";
                break;
            case '"':
                out += "\\\"";
                break;
            case '\n':
                out += "\\n";
                break;
            default:
                out += c;
        }
    }
    return out;
}

/// Renders `{k="v",...}` (empty string when there are no labels). `extra`
/// appends one more pair, used for histogram `le` edges.
std::string label_block(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
    if (labels.empty() && extra_key.empty()) {
        return {};
    }
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += k;
        out += "=\"";
        out += escape_label(v);
        out += '"';
    }
    if (!extra_key.empty()) {
        if (!first) {
            out += ',';
        }
        out += extra_key;
        out += "=\"";
        out += escape_label(extra_value);
        out += '"';
    }
    out += '}';
    return out;
}

int last_nonzero_bucket(const std::vector<std::uint64_t>& buckets) {
    int last = -1;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] != 0) {
            last = static_cast<int>(i);
        }
    }
    return last;
}

std::string json_escape(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
            case '\\':
                out += "\\\\";
                break;
            case '"':
                out += "\\\"";
                break;
            case '\n':
                out += "\\n";
                break;
            default:
                out += c;
        }
    }
    return out;
}

/// JSON map key for an entry: name alone, or `name{k="v",...}` with labels.
std::string json_key(const SnapshotEntry& e) {
    std::string key = e.name;
    if (!e.labels.empty()) {
        key += '{';
        bool first = true;
        for (const auto& [k, v] : e.labels) {
            if (!first) {
                key += ',';
            }
            first = false;
            key += k;
            key += "=\"";
            key += v;
            key += '"';
        }
        key += '}';
    }
    return key;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
    // Group entries by family (metric name), families in first-appearance
    // order: the text format allows exactly one HELP/TYPE header per name,
    // so label sets that were registered interleaved with other families
    // must still be emitted under a single header block.
    std::vector<std::pair<std::string_view, std::vector<const SnapshotEntry*>>> families;
    for (const auto& e : snap.entries) {
        const auto it = std::find_if(families.begin(), families.end(),
                                     [&](const auto& f) { return f.first == e.name; });
        if (it == families.end()) {
            families.emplace_back(e.name, std::vector<const SnapshotEntry*>{&e});
        } else {
            it->second.push_back(&e);
        }
    }
    std::ostringstream out;
    for (const auto& [name, entries] : families) {
        out << "# HELP " << name << ' ' << entries.front()->help << '\n';
        out << "# TYPE " << name << ' ' << type_name(entries.front()->type) << '\n';
        for (const SnapshotEntry* pe : entries) {
            const SnapshotEntry& e = *pe;
            switch (e.type) {
                case MetricType::Counter:
                    out << e.name << label_block(e.labels) << ' ' << e.value << '\n';
                    break;
                case MetricType::Gauge:
                    out << e.name << label_block(e.labels) << ' ' << e.gauge << '\n';
                    break;
                case MetricType::Histogram: {
                    // Finite le edges stop before the overflow bucket: it
                    // is unbounded, so its observations surface only under
                    // +Inf (and in _count/_sum).
                    const int last = std::min(last_nonzero_bucket(e.buckets),
                                              Histogram::kBuckets - 2);
                    std::uint64_t cumulative = 0;
                    for (int b = 0; b <= last; ++b) {
                        cumulative += e.buckets[static_cast<std::size_t>(b)];
                        out << e.name << "_bucket"
                            << label_block(e.labels, "le",
                                           std::to_string(Histogram::bucket_upper(b)))
                            << ' ' << cumulative << '\n';
                    }
                    out << e.name << "_bucket" << label_block(e.labels, "le", "+Inf")
                        << ' ' << e.count << '\n';
                    out << e.name << "_sum" << label_block(e.labels) << ' ' << e.sum
                        << '\n';
                    out << e.name << "_count" << label_block(e.labels) << ' ' << e.count
                        << '\n';
                    break;
                }
            }
        }
    }
    return out.str();
}

std::string to_json(const Snapshot& snap) {
    std::ostringstream counters;
    std::ostringstream gauges;
    std::ostringstream histograms;
    bool first_c = true;
    bool first_g = true;
    bool first_h = true;
    for (const auto& e : snap.entries) {
        switch (e.type) {
            case MetricType::Counter:
                counters << (first_c ? "" : ",") << "\"" << json_escape(json_key(e))
                         << "\":" << e.value;
                first_c = false;
                break;
            case MetricType::Gauge:
                gauges << (first_g ? "" : ",") << "\"" << json_escape(json_key(e))
                       << "\":" << e.gauge;
                first_g = false;
                break;
            case MetricType::Histogram: {
                histograms << (first_h ? "" : ",") << "\"" << json_escape(json_key(e))
                           << "\":{\"count\":" << e.count << ",\"sum\":" << e.sum
                           << ",\"buckets\":[";
                // Same finite-edge rule as the Prometheus form: overflow
                // observations are implied by count exceeding the last
                // cumulative pair, never attributed to a finite bound.
                const int last =
                    std::min(last_nonzero_bucket(e.buckets), Histogram::kBuckets - 2);
                std::uint64_t cumulative = 0;
                for (int b = 0; b <= last; ++b) {
                    cumulative += e.buckets[static_cast<std::size_t>(b)];
                    histograms << (b == 0 ? "" : ",") << "["
                               << Histogram::bucket_upper(b) << "," << cumulative << "]";
                }
                histograms << "]}";
                first_h = false;
                break;
            }
        }
    }
    std::ostringstream out;
    out << "{\"counters\":{" << counters.str() << "},\"gauges\":{" << gauges.str()
        << "},\"histograms\":{" << histograms.str() << "}}";
    return out.str();
}

bool write_prometheus_file(const Snapshot& snap, const std::string& path) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            return false;
        }
        out << to_prometheus(snap);
        if (!out) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace hdls::metrics
