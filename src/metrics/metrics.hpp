#pragma once
/// \file metrics.hpp
/// Always-on runtime metrics: sharded lock-free counters, gauges and
/// log2-bucketed latency histograms behind a process-wide registry.
///
/// Unlike the opt-in trace subsystem (src/trace/ — per-event ring buffers,
/// merged post-run), metrics are *always on*: every layer of the runtime
/// increments them unconditionally, at production traffic, and pays only a
/// relaxed fetch_add on a cache-line-padded per-thread shard. The hot-path
/// contract, enforced by tests/test_metrics.cpp:
///
///  * increments are wait-free — one relaxed atomic RMW, no loops, no
///    locks, no waiting on other threads;
///  * increments are allocation-free — every cell is preallocated at
///    registration time, so instrumenting an RMA fast path cannot malloc;
///  * counters are sharded kShards ways with 64-byte padding, so two
///    workers bumping the same metric never bounce a cache line.
///
/// Reads (snapshot(), value()) sum the shards; they are meant for the
/// background MetricsSampler, exporters and reports — not for hot paths.
/// Registration (counter()/gauge()/histogram()) takes a mutex and
/// allocates; do it once at startup (see RuntimeMetrics / rt()).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hdls::metrics {

/// Shards per metric. Power of two; threads are assigned round-robin, so
/// up to kShards concurrent writers proceed with zero line sharing.
inline constexpr unsigned kShards = 16;

/// Hierarchy levels the per-level metric families distinguish (deeper
/// levels fold into the last label — see RuntimeMetrics::level_index).
inline constexpr int kMaxLevels = 8;

/// Process-wide kill switch for A/B overhead measurements (benches flip it
/// to quantify the cost of the always-on instrumentation; production code
/// never touches it). Checked with one relaxed load on every increment.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

namespace detail {

struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> v{0};
};

/// This thread's shard slot, assigned round-robin on first use.
[[nodiscard]] unsigned shard_index() noexcept;

[[nodiscard]] bool metrics_on() noexcept;

}  // namespace detail

/// Monotonically increasing event count. Wait-free, allocation-free inc().
class Counter {
public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void inc(std::uint64_t n = 1) noexcept {
        if (!detail::metrics_on()) {
            return;
        }
        shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }

    /// Sum over shards (sampler/report side; not for hot paths).
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : shards_) {
            total += s.v.load(std::memory_order_relaxed);
        }
        return total;
    }

private:
    std::array<detail::PaddedCell, kShards> shards_;
};

/// Last-value metric (set/add; signed). A single cell: gauges are updated
/// from one place (the sampler, the watchdog, a run's setup), not from the
/// per-chunk hot path.
class Gauge {
public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-allocation log2-bucketed histogram (HDR-style): bucket b counts
/// observations v with std::bit_width(v) == b, i.e. v in [2^(b-1), 2^b),
/// bucket 0 counting v == 0. Values are dimensionless 64-bit integers —
/// the runtime records nanoseconds. observe() is wait-free and
/// allocation-free: one relaxed fetch_add on the bucket cell plus one on
/// the shard's sum cell, both preallocated and padded per shard.
class Histogram {
public:
    /// 40 buckets cover 1ns .. ~9min (2^39 ns) before the overflow bucket.
    static constexpr int kBuckets = 40;

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept {
        const int w = std::bit_width(v);
        return w < kBuckets ? w : kBuckets - 1;
    }

    /// Inclusive upper bound of bucket b (the Prometheus `le` edge); the
    /// last bucket is unbounded (+Inf).
    [[nodiscard]] static std::uint64_t bucket_upper(int b) noexcept {
        return (std::uint64_t{1} << b) - 1;
    }

    void observe(std::uint64_t v) noexcept {
        if (!detail::metrics_on()) {
            return;
        }
        Shard& s = shards_[detail::shard_index()];
        s.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
            1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : shards_) {
            for (const auto& b : s.buckets) {
                total += b.load(std::memory_order_relaxed);
            }
        }
        return total;
    }

    [[nodiscard]] std::uint64_t sum() const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : shards_) {
            total += s.sum.load(std::memory_order_relaxed);
        }
        return total;
    }

    [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : shards_) {
            total += s.buckets[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
        }
        return total;
    }

private:
    /// One shard's row: the bucket array plus its sum cell, padded so
    /// different shards never share a line (the cells *within* a shard are
    /// only ever touched by threads mapped to that shard).
    struct alignas(64) Shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> sum{0};
    };

    std::array<Shard, kShards> shards_;
};

enum class MetricType { Counter, Gauge, Histogram };

/// Prometheus-style labels, e.g. {{"level", "0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One metric's state at snapshot time.
struct SnapshotEntry {
    std::string name;
    std::string help;
    MetricType type = MetricType::Counter;
    Labels labels;
    std::uint64_t value = 0;             ///< counter total
    std::int64_t gauge = 0;              ///< gauge value
    std::vector<std::uint64_t> buckets;  ///< histogram per-bucket counts
    std::uint64_t count = 0;             ///< histogram observation count
    std::uint64_t sum = 0;               ///< histogram value sum
};

/// Point-in-time copy of a registry — what the sampler stores, the
/// exporters render and the reports carry.
struct Snapshot {
    std::vector<SnapshotEntry> entries;

    [[nodiscard]] bool empty() const noexcept { return entries.empty(); }

    /// The run-scoped view: counters and histograms as increments since
    /// `base` (entries absent from `base` keep their full value; gauges
    /// keep their current reading). Negative deltas cannot occur —
    /// counters never decrease.
    [[nodiscard]] Snapshot delta_since(const Snapshot& base) const;

    /// Exact (name, labels) lookup; nullptr when absent.
    [[nodiscard]] const SnapshotEntry* find(std::string_view name,
                                            const Labels& labels = {}) const noexcept;

    /// Sum of a counter family over all label sets (0 when absent).
    [[nodiscard]] std::uint64_t counter_total(std::string_view name) const noexcept;

    /// Histogram family totals over all label sets.
    [[nodiscard]] std::uint64_t histogram_count(std::string_view name) const noexcept;
    [[nodiscard]] std::uint64_t histogram_sum(std::string_view name) const noexcept;
};

/// Owns metrics and hands out stable references. Registration is
/// mutex-protected and idempotent per (name, labels); increments through
/// the returned references never touch the registry again.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] Counter& counter(const std::string& name, const std::string& help,
                                   const Labels& labels = {});
    [[nodiscard]] Gauge& gauge(const std::string& name, const std::string& help,
                               const Labels& labels = {});
    [[nodiscard]] Histogram& histogram(const std::string& name, const std::string& help,
                                       const Labels& labels = {});

    /// Copies every metric's current state, in registration order.
    [[nodiscard]] Snapshot snapshot() const;

private:
    struct Desc {
        std::string name;
        std::string help;
        MetricType type = MetricType::Counter;
        Labels labels;
    };

    template <typename T>
    struct Registered {
        Desc desc;
        T metric;
    };

    [[nodiscard]] static std::string key_of(MetricType type, const std::string& name,
                                            const Labels& labels);

    mutable std::mutex mutex_;
    // deques: stable addresses across registrations.
    std::deque<Registered<Counter>> counters_;
    std::deque<Registered<Gauge>> gauges_;
    std::deque<Registered<Histogram>> histograms_;
    std::vector<std::pair<std::string, std::pair<MetricType, std::size_t>>> index_;
    /// Registration order across the three kinds, as (type, idx) pairs —
    /// snapshots preserve it so exposition output is stable.
    std::vector<std::pair<MetricType, std::size_t>> order_;
};

/// The process-wide registry every runtime layer instruments into.
[[nodiscard]] MetricsRegistry& registry() noexcept;

/// The well-known runtime metrics, pre-registered against registry() on
/// first use. Layers hold the returned references; see README
/// ("Observability") for the full name/label schema.
struct RuntimeMetrics {
    // minimpi::Window — passive-target RMA synchronization.
    Counter* window_locks;               ///< lock epochs opened
    Counter* window_lock_retries;        ///< failed lock-attempt polls
    Counter* window_cas_retries;         ///< failed compare-and-swap attempts
    Counter* window_backoff_yields;      ///< Backoff ladder scheduler yields
    Counter* window_backoff_sleeps;      ///< Backoff ladder timed sleeps
    Counter* window_requests_completed;  ///< nonblocking request completions

    // core — the WorkSource hierarchy, one family entry per level.
    std::array<Counter*, kMaxLevels> acquires;   ///< parent chunks pulled (owned)
    std::array<Counter*, kMaxLevels> steals;     ///< parent chunks stolen
    std::array<Counter*, kMaxLevels> refills;    ///< level refill transactions
    std::array<Counter*, kMaxLevels> pops;       ///< local sub-chunk pops
    std::array<Histogram*, kMaxLevels> acquire_latency_ns;  ///< parent acquire latency
    Counter* prefetch_hits;
    Counter* prefetch_misses;
    Counter* termination_spins;  ///< termination-protocol polling rounds

    // executors.
    Counter* exec_chunks;
    Counter* exec_iterations;
    Counter* feedback_flushes;
    Histogram* chunk_exec_ns;

    // ompsim::ThreadTeam.
    Counter* team_chunks;
    Counter* team_idle_ns;

    // trace — ring-buffer overflow (previously only visible via analyze()).
    Counter* trace_ring_dropped;

    // watchdog.
    Counter* watchdog_stalls;
    Gauge* workers_active;

    // core::LeaseBoard — lease-based fault tolerance (docs/fault-tolerance.md).
    Counter* lease_acquires;      ///< chunks leased (acquired under lease mode)
    Counter* lease_reclaims;      ///< leases reclaimed from dead owners
    Counter* lease_fence_losses;  ///< completions that lost the fence (lease
                                  ///< already reclaimed; iterations not committed)
    Gauge* ranks_dead;            ///< ranks declared dead by the failure detector

    // core::JobService — the multi-tenant job stream.
    Counter* jobs_submitted;      ///< jobs accepted by submit()
    Counter* jobs_rejected;       ///< submit() overflows (ErrorCode::Resource)
    Counter* jobs_completed;      ///< jobs that ran to completion
    Counter* jobs_cancelled;      ///< jobs cancelled before completion
    Gauge* jobs_active;           ///< jobs currently executing
    Gauge* jobs_pending;          ///< jobs waiting in the admission queue
    Histogram* job_latency_ns;    ///< submit -> completion latency
    Histogram* job_queue_wait_ns; ///< submit -> run start (admission wait)

    /// Label slot for a hierarchy level (deeper levels fold into the last).
    [[nodiscard]] static int level_index(int level) noexcept {
        return level < 0 ? 0 : (level >= kMaxLevels ? kMaxLevels - 1 : level);
    }
};

/// The singleton handle set (thread-safe first-use initialization).
[[nodiscard]] const RuntimeMetrics& rt() noexcept;

}  // namespace hdls::metrics
