#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hdls::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::Trace:
            return "TRACE";
        case LogLevel::Debug:
            return "DEBUG";
        case LogLevel::Info:
            return "INFO";
        case LogLevel::Warn:
            return "WARN";
        case LogLevel::Error:
            return "ERROR";
        case LogLevel::Off:
            return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::cerr << "[hdls." << level_name(level) << "] " << msg << '\n';
}

}  // namespace hdls::util
