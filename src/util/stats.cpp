#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdls::util {

void OnlineStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cov() const noexcept {
    // |mean| in the denominator: a dispersion measure must not flip sign
    // for negative-mean series.
    const double m = mean();
    return m != 0.0 ? stddev() / std::abs(m) : 0.0;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double percentile_sorted(std::span<const double> sorted, double q) noexcept {
    if (sorted.empty()) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) {
        return s;
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    OnlineStats acc;
    for (const double v : sorted) {
        acc.add(v);
    }
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.cov = acc.cov();
    s.min = sorted.front();
    s.max = sorted.back();
    s.sum = acc.sum();
    s.p25 = percentile_sorted(sorted, 0.25);
    s.median = percentile_sorted(sorted, 0.50);
    s.p75 = percentile_sorted(sorted, 0.75);
    s.p99 = percentile_sorted(sorted, 0.99);
    return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    if (!(hi > lo) || bins == 0) {
        throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
    }
    counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto bin = static_cast<std::size_t>((x - lo_) / w);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
    if (bin >= counts_.size()) {
        throw std::out_of_range("Histogram::bin_count");
    }
    return counts_[bin];
}

}  // namespace hdls::util
