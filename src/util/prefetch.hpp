#pragma once
/// \file prefetch.hpp
/// Software-prefetch helpers for intra-chunk latency hiding.
///
/// PR 5 hid *scheduling* latency by double-buffering the next chunk
/// acquisition behind the current chunk's compute. This header is the
/// intra-chunk analog: hide *memory* latency by issuing a prefetch for the
/// data a loop will touch a fixed distance ahead of where it is computing
/// (arbor's util/prefetch.hpp pairs the same idea with a deferred-work
/// ring). Two tools:
///
///  * prefetch_read / prefetch_write — thin, always-safe wrappers over
///    __builtin_prefetch. Prefetching never faults, so callers may form
///    addresses past the end of an array without touching them.
///  * PrefetchRing — a small fixed-capacity ring that pairs each prefetch
///    with the work that will consume the prefetched line. push() issues
///    the prefetch and defers the payload; once the ring is full, every
///    push pops (executes) the oldest entry, by which time its line has
///    had `Depth` iterations of other work to arrive in cache.
///
/// When does this help? Gather-style loops whose next addresses are known
/// early but whose stride defeats the hardware prefetcher (the PSIA
/// point-cloud gather at 48-byte stride with a filter between loads), and
/// linked/indexed structures. Contiguous unit-stride streams gain little —
/// the hardware prefetcher already runs ahead of those.

#include <array>
#include <cstddef>
#include <utility>

namespace hdls::util {

/// Locality hints mirroring __builtin_prefetch's third argument.
enum class PrefetchLocality : int {
    None = 0,  ///< streamed once, evict early (NTA)
    Low = 1,
    Moderate = 2,
    High = 3,  ///< keep in all cache levels
};

/// Prefetches the line containing `p` for a future read. `p` may point
/// anywhere (including past the end of an allocation): the address is
/// never dereferenced.
template <typename T>
inline void prefetch_read(const T* p,
                          PrefetchLocality locality = PrefetchLocality::High) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    switch (locality) {
        case PrefetchLocality::None:
            __builtin_prefetch(static_cast<const void*>(p), 0, 0);
            break;
        case PrefetchLocality::Low:
            __builtin_prefetch(static_cast<const void*>(p), 0, 1);
            break;
        case PrefetchLocality::Moderate:
            __builtin_prefetch(static_cast<const void*>(p), 0, 2);
            break;
        case PrefetchLocality::High:
            __builtin_prefetch(static_cast<const void*>(p), 0, 3);
            break;
    }
#else
    (void)p;
    (void)locality;
#endif
}

/// Prefetches the line containing `p` for a future write (read-for-
/// ownership on coherent systems).
template <typename T>
inline void prefetch_write(T* p,
                           PrefetchLocality locality = PrefetchLocality::High) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(static_cast<const void*>(p), 1, static_cast<int>(locality));
#else
    (void)p;
    (void)locality;
#endif
}

/// Deferred-work ring of depth `Depth`: each push(ptr, payload) prefetches
/// `ptr` and queues `payload`; the payload is handed to the consumer only
/// after `Depth - 1` further pushes (or at drain()), by which time the
/// prefetched line should be resident. `Payload` is typically the index or
/// pointer the consumer needs to process the element.
///
/// Usage:
///     PrefetchRing<8, std::size_t> ring;
///     for (i ...) ring.push(&cloud[i], i, consume);
///     ring.drain(consume);
template <std::size_t Depth, typename Payload>
class PrefetchRing {
    static_assert(Depth >= 1, "PrefetchRing needs a positive depth");

public:
    /// Issues the prefetch for `addr`, defers `payload`; runs the oldest
    /// deferred payload through `consume` once the ring is full.
    template <typename T, typename Consume>
    void push(const T* addr, Payload payload, Consume&& consume) {
        prefetch_read(addr);
        if (size_ == Depth) {
            consume(std::move(slots_[head_]));
        } else {
            ++size_;
        }
        slots_[head_] = std::move(payload);
        head_ = (head_ + 1) % Depth;
    }

    /// Runs every still-deferred payload, oldest first.
    template <typename Consume>
    void drain(Consume&& consume) {
        std::size_t at = (head_ + Depth - size_) % Depth;
        while (size_ > 0) {
            consume(std::move(slots_[at]));
            at = (at + 1) % Depth;
            --size_;
        }
    }

    [[nodiscard]] std::size_t pending() const noexcept { return size_; }

private:
    std::array<Payload, Depth> slots_{};
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace hdls::util
