#pragma once
/// \file table.hpp
/// Aligned text tables and CSV emission for benchmark/report output.
///
/// Every bench binary prints its series both as a human-readable aligned
/// table (paper-figure style) and, with --csv, as machine-readable CSV so
/// results can be replotted.

#include <ostream>
#include <string>
#include <vector>

namespace hdls::util {

/// Column alignment for text rendering.
enum class Align { Left, Right };

/// A simple row/column table builder.
///
/// Usage:
///   TextTable t({"nodes", "MPI+OpenMP (s)", "MPI+MPI (s)"});
///   t.add_row({"2", "61.5", "19.6"});
///   t.print(std::cout);
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Appends a row; must have the same arity as the header.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows currently held.
    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

    /// Renders as an aligned text table with a header rule.
    void print(std::ostream& os, Align align = Align::Right) const;

    /// Renders as RFC-4180-ish CSV (fields with commas/quotes get quoted).
    void print_csv(std::ostream& os) const;

    /// Renders to a string (text form), mainly for tests.
    [[nodiscard]] std::string to_string(Align align = Align::Right) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("12.30" -> "12.3", "4.00" -> "4").
[[nodiscard]] std::string format_double(double v, int digits = 3);

/// Formats seconds adaptively: "950 us", "12.3 ms", "4.56 s".
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace hdls::util
