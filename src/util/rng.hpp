#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation for reproducible
/// experiments.
///
/// Everything in this repository that needs randomness (synthetic workloads,
/// point clouds, stress tests) goes through these generators so that a given
/// seed always produces bit-identical streams across runs and platforms.

#include <cstdint>
#include <limits>

namespace hdls::util {

/// SplitMix64 — tiny, fast generator used to seed larger-state generators
/// and for cheap hashing of integers into well-mixed 64-bit values.
class SplitMix64 {
public:
    constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64-bit value in the stream.
    [[nodiscard]] constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Stateless mixing of a 64-bit key (one SplitMix64 round). Useful to derive
/// independent per-index values without maintaining generator state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — the repository's workhorse PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions as well, although the bundled
/// distribution helpers below are preferred for cross-platform determinism.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
    /// as recommended by the xoshiro authors.
    explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next(); }

    /// Next raw 64-bit output.
    result_type next() noexcept;

    /// Uniform double in [0, 1) with 53 random bits of mantissa.
    [[nodiscard]] double uniform01() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] (inclusive), Lemire-style rejection-free
    /// wide-multiply bounded generation with a bias-elimination retry.
    [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) noexcept;
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal via Box–Muller (deterministic, no <random> reliance).
    [[nodiscard]] double normal() noexcept;
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Exponential with the given mean (= 1/lambda).
    [[nodiscard]] double exponential(double mean) noexcept;

    /// Lognormal parameterized by the *underlying* normal's mu/sigma.
    [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

    /// Jump function: advances the stream by 2^128 steps; used to derive
    /// independent sub-streams for parallel entities.
    void jump() noexcept;

private:
    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace hdls::util
