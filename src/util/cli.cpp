#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace hdls::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
    options_[name] = Option{Kind::Flag, help, "0", "0", false};
    order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t def, const std::string& help) {
    options_[name] = Option{Kind::Int, help, std::to_string(def), std::to_string(def), false};
    order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double def, const std::string& help) {
    std::ostringstream oss;
    oss << def;
    options_[name] = Option{Kind::Double, help, oss.str(), oss.str(), false};
    order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, std::string def, const std::string& help) {
    options_[name] = Option{Kind::String, help, def, def, false};
    order_.push_back(name);
}

ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) {
    auto it = options_.find(name);
    if (it == options_.end() || it->second.kind != kind) {
        throw std::invalid_argument("ArgParser: no such option --" + name);
    }
    return it->second;
}

const ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) const {
    auto it = options_.find(name);
    if (it == options_.end() || it->second.kind != kind) {
        throw std::invalid_argument("ArgParser: no such option --" + name);
    }
    return it->second;
}

void ArgParser::set_value(const std::string& name, const std::string& value) {
    auto it = options_.find(name);
    if (it == options_.end()) {
        throw std::invalid_argument("ArgParser: unknown option --" + name);
    }
    Option& opt = it->second;
    switch (opt.kind) {
        case Kind::Int: {
            std::size_t pos = 0;
            try {
                (void)std::stoll(value, &pos);
            } catch (const std::exception&) {
                throw std::invalid_argument("ArgParser: --" + name + " expects an integer, got '" +
                                            value + "'");
            }
            if (pos != value.size()) {
                throw std::invalid_argument("ArgParser: --" + name + " expects an integer, got '" +
                                            value + "'");
            }
            break;
        }
        case Kind::Double: {
            std::size_t pos = 0;
            try {
                (void)std::stod(value, &pos);
            } catch (const std::exception&) {
                throw std::invalid_argument("ArgParser: --" + name + " expects a number, got '" +
                                            value + "'");
            }
            if (pos != value.size()) {
                throw std::invalid_argument("ArgParser: --" + name + " expects a number, got '" +
                                            value + "'");
            }
            break;
        }
        case Kind::Flag:
        case Kind::String:
            break;
    }
    opt.value = value;
    opt.provided = true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    return parse(args);
}

bool ArgParser::parse(const std::vector<std::string>& args) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--help" || a == "-h") {
            std::cout << help_text();
            return false;
        }
        if (a.rfind("--", 0) != 0) {
            throw std::invalid_argument("ArgParser: unexpected positional argument '" + a + "'");
        }
        std::string name = a.substr(2);
        std::string value;
        bool has_value = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
            throw std::invalid_argument("ArgParser: unknown option --" + name);
        }
        if (it->second.kind == Kind::Flag) {
            if (has_value) {
                throw std::invalid_argument("ArgParser: flag --" + name + " takes no value");
            }
            it->second.value = "1";
            it->second.provided = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= args.size()) {
                throw std::invalid_argument("ArgParser: option --" + name + " needs a value");
            }
            value = args[++i];
        }
        set_value(name, value);
    }
    return true;
}

bool ArgParser::get_flag(const std::string& name) const {
    return find(name, Kind::Flag).value == "1";
}

std::int64_t ArgParser::get_int(const std::string& name) const {
    return std::stoll(find(name, Kind::Int).value);
}

double ArgParser::get_double(const std::string& name) const {
    return std::stod(find(name, Kind::Double).value);
}

std::string ArgParser::get_string(const std::string& name) const {
    return find(name, Kind::String).value;
}

bool ArgParser::provided(const std::string& name) const {
    auto it = options_.find(name);
    if (it == options_.end()) {
        throw std::invalid_argument("ArgParser: no such option --" + name);
    }
    return it->second.provided;
}

std::string ArgParser::help_text() const {
    std::ostringstream oss;
    oss << program_ << " - " << description_ << "\n\nOptions:\n";
    for (const auto& name : order_) {
        const Option& opt = options_.at(name);
        oss << "  --" << name;
        switch (opt.kind) {
            case Kind::Flag:
                break;
            case Kind::Int:
                oss << " <int>";
                break;
            case Kind::Double:
                oss << " <num>";
                break;
            case Kind::String:
                oss << " <str>";
                break;
        }
        oss << "\n      " << opt.help;
        if (opt.kind != Kind::Flag) {
            oss << " (default: " << opt.def << ")";
        }
        oss << "\n";
    }
    oss << "  --help\n      print this help\n";
    return oss.str();
}

}  // namespace hdls::util
