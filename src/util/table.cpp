#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hdls::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) {
        throw std::invalid_argument("TextTable: header must not be empty");
    }
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw std::invalid_argument("TextTable: row arity mismatch");
    }
    rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os, Align align) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) {
                os << "  ";
            }
            const auto pad = width[c] - row[c].size();
            if (align == Align::Right) {
                os << std::string(pad, ' ') << row[c];
            } else {
                os << row[c] << std::string(pad, ' ');
            }
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (const auto w : width) {
        total += w;
    }
    total += 2 * (width.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit(row);
    }
}

namespace {
void csv_field(std::ostream& os, const std::string& f) {
    if (f.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : f) {
            if (ch == '"') {
                os << "\"\"";
            } else {
                os << ch;
            }
        }
        os << '"';
    } else {
        os << f;
    }
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) {
                os << ',';
            }
            csv_field(os, row[c]);
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) {
        emit(row);
    }
}

std::string TextTable::to_string(Align align) const {
    std::ostringstream oss;
    print(oss, align);
    return oss.str();
}

std::string format_double(double v, int digits) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << v;
    std::string s = oss.str();
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') {
            s.pop_back();
        }
        if (!s.empty() && s.back() == '.') {
            s.pop_back();
        }
    }
    if (s == "-0") {
        s = "0";
    }
    return s;
}

std::string format_seconds(double seconds) {
    const double a = std::abs(seconds);
    if (a < 1e-3) {
        return format_double(seconds * 1e6, 3) + " us";
    }
    if (a < 1.0) {
        return format_double(seconds * 1e3, 3) + " ms";
    }
    return format_double(seconds, 3) + " s";
}

}  // namespace hdls::util
