#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hdls::util {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) {
        s = sm.next();
    }
    // A zero state would be absorbing; SplitMix64 cannot produce four zero
    // outputs in a row, but guard anyway for robustness against crafted seeds.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
        s_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Xoshiro256::uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::uniform_u64(std::uint64_t bound) noexcept {
    if (bound == 0) {
        return 0;
    }
    // Lemire's multiply-shift with rejection of the biased low range.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t t = (0 - bound) % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) {
        return lo;
    }
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Xoshiro256::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 is bounded away from 0 so std::log is finite.
    double u1 = uniform01();
    if (u1 < 1e-300) {
        u1 = 1e-300;
    }
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Xoshiro256::exponential(double mean) noexcept {
    double u = uniform01();
    if (u < 1e-300) {
        u = 1e-300;
    }
    return -mean * std::log(u);
}

double Xoshiro256::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

void Xoshiro256::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    std::uint64_t s3 = 0;
    for (const std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if ((jump & (1ULL << b)) != 0) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (void)next();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

}  // namespace hdls::util
