#pragma once
/// \file log.hpp
/// Tiny leveled logger. Off by default above Warn so tests and benches stay
/// quiet; the simulator and examples raise verbosity via set_level().

#include <sstream>
#include <string>

namespace hdls::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits a message (thread-safe, single write to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) {
        return;
    }
    std::ostringstream oss;
    (oss << ... << args);
    log_message(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
    detail::log_fmt(LogLevel::Trace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
    detail::log_fmt(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
    detail::log_fmt(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
    detail::log_fmt(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
    detail::log_fmt(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace hdls::util
