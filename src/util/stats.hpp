#pragma once
/// \file stats.hpp
/// Descriptive statistics used by the simulator reports, the benchmark
/// harness and the test suite.

#include <cstddef>
#include <span>
#include <vector>

namespace hdls::util {

/// Numerically-stable streaming accumulator (Welford's algorithm).
class OnlineStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
    [[nodiscard]] double cov() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Merge another accumulator into this one (parallel reduction support).
    void merge(const OnlineStats& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double cov = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    double sum = 0.0;
};

/// Computes a Summary of `values` (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile of a *sorted* sample, q in [0,1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q) noexcept;

/// Fixed-width histogram helper (used by workload characterization tests).
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
};

}  // namespace hdls::util
