#pragma once
/// \file env_config.hpp
/// Runtime selection of the scheduling combination — the flexibility the
/// paper's Section 3 calls for ("one input parameter specifies the
/// selected DLS technique", like OpenMP's schedule(runtime) clause) and
/// plans as future work for its library form.
///
/// Combination syntax:  "<INTER>+<INTRA>[,min_chunk=<k>]"
/// e.g. "GSS+STATIC", "FAC2+SS,min_chunk=4", "tss+fac2".
/// Approach syntax:     "MPI+MPI" | "MPI+OpenMP".
///
/// The environment variables (the schedule(runtime) analogue):
///     HDLS_SCHEDULE       — combination string as above
///     HDLS_APPROACH       — approach string as above
///     HDLS_TRACE          — "1"/"on"/"true" enables chunk-event tracing
///     HDLS_INTER_BACKEND  — "centralized" | "sharded" level-1 queue backend

#include <optional>
#include <string>
#include <string_view>

#include "core/types.hpp"

namespace hdls::core {

/// Parses "INTER+INTRA[,min_chunk=k]" (case-insensitive, spaces allowed).
/// Returns std::nullopt with no side effects on malformed input.
[[nodiscard]] std::optional<HierConfig> parse_schedule(std::string_view text);

/// Renders a config back to its canonical string ("GSS+STATIC,min_chunk=4";
/// the suffix is omitted when min_chunk == 1). parse(format(x)) == x.
[[nodiscard]] std::string format_schedule(const HierConfig& cfg);

/// Parses "MPI+MPI" / "MPI+OpenMP" (several common spellings accepted).
[[nodiscard]] std::optional<Approach> parse_approach(std::string_view text);

/// Reads HDLS_SCHEDULE; falls back to `fallback` when unset or malformed
/// (malformed values are reported via util::log_warn, mirroring how OpenMP
/// runtimes treat bad OMP_SCHEDULE values).
[[nodiscard]] HierConfig schedule_from_env(const HierConfig& fallback = HierConfig{});

/// Reads HDLS_APPROACH; same fallback contract.
[[nodiscard]] Approach approach_from_env(Approach fallback = Approach::MpiMpi);

/// Reads HDLS_TRACE ("1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/"no"
/// disable, case-insensitive); same fallback contract.
[[nodiscard]] bool trace_from_env(bool fallback = false);

/// Reads HDLS_INTER_BACKEND ("centralized" | "sharded", case-insensitive);
/// same fallback contract.
[[nodiscard]] dls::InterBackend inter_backend_from_env(
    dls::InterBackend fallback = dls::InterBackend::Centralized);

}  // namespace hdls::core
