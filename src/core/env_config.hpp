#pragma once
/// \file env_config.hpp
/// Runtime selection of the scheduling combination — the flexibility the
/// paper's Section 3 calls for ("one input parameter specifies the
/// selected DLS technique", like OpenMP's schedule(runtime) clause) and
/// plans as future work for its library form.
///
/// Combination syntax:  "<L0>+<L1>[+<L2>...][,min_chunk=<k>]"
/// e.g. "GSS+STATIC", "FAC2+SS,min_chunk=4", "FAC2+GSS+SS" (one technique
/// per topology level, outermost first; two techniques are the classic
/// inter+intra pair).
/// Approach syntax:     "MPI+MPI" | "MPI+OpenMP".
/// Topology syntax:     "<name>=<fanout>,<name>=<fanout>,..." outermost
/// level first, e.g. "racks=2,nodes=4,cores=8" (the fan-outs must
/// multiply to the world size; the innermost level is the shared-memory
/// leaf).
///
/// The environment variables (the schedule(runtime) analogue):
///     HDLS_SCHEDULE       — combination string as above
///     HDLS_APPROACH       — approach string as above
///     HDLS_TRACE          — "1"/"on"/"true" enables chunk-event tracing
///     HDLS_INTER_BACKEND  — "centralized" | "sharded" inter-level backend
///     HDLS_TOPOLOGY       — machine tree as above
///     HDLS_PREFETCH       — "1"/"on"/"true" enables async chunk prefetching
///     HDLS_METRICS        — "1"/"on"/"true" starts the metrics sampler and
///                           stall watchdog for run_hierarchical calls
///     HDLS_METRICS_PERIOD_MS — sampler/watchdog period in ms (default 100)
///     HDLS_METRICS_FILE   — Prometheus exposition file path (default
///                           "hdls-metrics.prom")
///     HDLS_TRANSPORT      — "threads" | "shm" minimpi substrate of MPI+MPI
///                           runs (thread mailboxes vs one POSIX shm segment)
///     HDLS_SIMD           — "auto" | "scalar" | "native" SIMD backend
///                           policy for the batch kernels (src/simd/)
///     HDLS_PIN            — "none" | "compact" | "scatter" thread/rank
///                           placement over the host's sockets
///     HDLS_MAX_JOBS       — JobService: max jobs running concurrently
///                           (default 4)
///     HDLS_JOB_QUEUE_DEPTH — JobService: bounded pending-job queue depth;
///                           submit() beyond it throws ErrorCode::Resource
///                           (default 16)
///     HDLS_LEASE          — "1"/"on"/"true" enables lease-based fault
///                           tolerance under MPI+MPI (docs/fault-tolerance.md)
///     HDLS_LEASE_K        — lease-deadline multiplier over the chunk-time
///                           EMA (a positive number, default 8)
///     HDLS_HEARTBEAT_TIMEOUT_MS — failure-detector staleness timeout in ms
///                           (default 1000)
///     HDLS_CHAOS          — fault injection: "kill:<rank>@<pct>%" fail-stops
///                           a rank at a loop-progress fraction (chaos tests)
///
/// Malformed HDLS_SCHEDULE / HDLS_APPROACH / HDLS_TRACE fall back with a
/// warning (mirroring how OpenMP runtimes treat bad OMP_SCHEDULE values);
/// every other malformed knob — HDLS_TOPOLOGY / HDLS_INTER_BACKEND /
/// HDLS_PREFETCH / HDLS_METRICS / HDLS_METRICS_PERIOD_MS / HDLS_TRANSPORT /
/// HDLS_SIMD / HDLS_PIN / HDLS_LEASE / HDLS_LEASE_K /
/// HDLS_HEARTBEAT_TIMEOUT_MS / HDLS_CHAOS — *throws* a one-line
/// std::invalid_argument instead — a mis-shaped machine tree, an unknown
/// backend or a typo'd toggle silently reverting to defaults would change
/// what the run measures (or silently disable the observability or fault
/// tolerance the user asked for).

#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace hdls::core {

/// Parses "L0+L1[+L2...][,min_chunk=k]" (case-insensitive, spaces
/// allowed). Two techniques set inter/intra; more additionally fill
/// HierConfig::levels (backends unset — they inherit inter_backend).
/// Returns std::nullopt with no side effects on malformed input.
[[nodiscard]] std::optional<HierConfig> parse_schedule(std::string_view text);

/// Renders a config back to its canonical string ("GSS+STATIC,min_chunk=4";
/// the suffix is omitted when min_chunk == 1; deeper configs render every
/// level's technique). parse(format(x)) == x.
[[nodiscard]] std::string format_schedule(const HierConfig& cfg);

/// Parses "MPI+MPI" / "MPI+OpenMP" (several common spellings accepted).
[[nodiscard]] std::optional<Approach> parse_approach(std::string_view text);

/// Parses "name=fanout,name=fanout,..." (case-preserving names, spaces
/// allowed, outermost level first). Throws std::invalid_argument with a
/// one-line message for empty input, empty level entries, missing '=',
/// empty names or fan-outs < 1. The fan-out product is validated against
/// the world size where the topology is used (resolve_hierarchy /
/// minimpi::Runtime).
[[nodiscard]] std::vector<minimpi::TopologyLevel> parse_topology(std::string_view text);

/// Renders a tree back to its canonical string ("racks=2,nodes=4,cores=8").
[[nodiscard]] std::string format_topology(const std::vector<minimpi::TopologyLevel>& tree);

/// Reads HDLS_SCHEDULE; falls back to `fallback` when unset or malformed
/// (malformed values are reported via util::log_warn).
[[nodiscard]] HierConfig schedule_from_env(const HierConfig& fallback = HierConfig{});

/// Reads HDLS_APPROACH; same fallback contract.
[[nodiscard]] Approach approach_from_env(Approach fallback = Approach::MpiMpi);

/// Reads HDLS_TRACE ("1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/"no"
/// disable, case-insensitive); same fallback contract.
[[nodiscard]] bool trace_from_env(bool fallback = false);

/// Reads HDLS_PREFETCH ("1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/
/// "no" disable, case-insensitive). Returns `fallback` when unset; throws
/// std::invalid_argument when set to anything else (no silent fallback).
[[nodiscard]] bool prefetch_from_env(bool fallback = false);

/// Reads HDLS_INTER_BACKEND ("centralized" | "sharded", case-insensitive).
/// Returns `fallback` when unset; throws std::invalid_argument when set to
/// anything else (no silent fallback — see the file comment).
[[nodiscard]] dls::InterBackend inter_backend_from_env(
    dls::InterBackend fallback = dls::InterBackend::Centralized);

/// Reads HDLS_TOPOLOGY. Returns `fallback` when unset; throws
/// std::invalid_argument when set but malformed (no silent fallback).
[[nodiscard]] std::vector<minimpi::TopologyLevel> topology_from_env(
    std::vector<minimpi::TopologyLevel> fallback = {});

/// Reads HDLS_METRICS ("1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/
/// "no" disable, case-insensitive): run_hierarchical starts the background
/// MetricsSampler (exposition file included) and the StallWatchdog when
/// enabled. Returns `fallback` when unset; throws std::invalid_argument
/// when set to anything else (no silent fallback).
[[nodiscard]] bool metrics_from_env(bool fallback = false);

/// Reads HDLS_METRICS_PERIOD_MS (a positive integer, milliseconds).
/// Returns `fallback` when unset; throws std::invalid_argument when set
/// but not a positive integer (no silent fallback).
[[nodiscard]] std::chrono::milliseconds metrics_period_from_env(
    std::chrono::milliseconds fallback = std::chrono::milliseconds(100));

/// Reads HDLS_METRICS_FILE (the Prometheus exposition file path). Returns
/// `fallback` when unset; throws std::invalid_argument when set but empty.
[[nodiscard]] std::string metrics_file_from_env(
    std::string fallback = "hdls-metrics.prom");

/// Reads HDLS_TRANSPORT ("threads" | "shm", case-insensitive): the minimpi
/// substrate carrying MPI+MPI runs. Returns `fallback` when unset; throws
/// std::invalid_argument when set to anything else (no silent fallback —
/// a typo'd transport silently reverting to threads would change what the
/// run exercises). Thin wrapper over minimpi::transport_from_env so the
/// knob is documented with its HDLS_* siblings.
[[nodiscard]] minimpi::TransportKind transport_from_env(
    minimpi::TransportKind fallback = minimpi::TransportKind::Threads);

/// Reads HDLS_SIMD ("auto" | "scalar" | "native", case-insensitive): the
/// SIMD backend policy of the batch kernels. Returns `fallback` when unset;
/// throws std::invalid_argument when set to anything else (no silent
/// fallback — a typo'd "avx" silently measuring scalar would invalidate
/// every throughput number the run produces).
[[nodiscard]] simd::SimdMode simd_mode_from_env(
    simd::SimdMode fallback = simd::SimdMode::Auto);

/// Reads HDLS_MAX_JOBS (a positive integer): the JobService's default
/// concurrent-job limit. Returns `fallback` when unset; throws
/// std::invalid_argument when set but not a positive integer (no silent
/// fallback — a typo'd limit would change the service's whole admission
/// behaviour).
[[nodiscard]] int max_jobs_from_env(int fallback = 4);

/// Reads HDLS_JOB_QUEUE_DEPTH (an integer >= 0): the JobService's bounded
/// pending-job queue depth (0 = reject any job that cannot start at
/// once). Returns `fallback` when unset; throws std::invalid_argument
/// when set but not a non-negative integer.
[[nodiscard]] int job_queue_depth_from_env(int fallback = 16);

/// Reads HDLS_LEASE ("1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/"no"
/// disable, case-insensitive): lease-based fault tolerance for MPI+MPI
/// runs. Returns `fallback` when unset; throws std::invalid_argument when
/// set to anything else (no silent fallback — a typo'd toggle silently
/// running without leases would change what a failure drill exercises).
[[nodiscard]] bool lease_from_env(bool fallback = false);

/// Reads HDLS_LEASE_K (a positive number): the lease-deadline multiplier
/// over the worker's chunk-time EMA. Returns `fallback` when unset; throws
/// std::invalid_argument when set but not a positive number.
[[nodiscard]] double lease_k_from_env(double fallback = 8.0);

/// Reads HDLS_HEARTBEAT_TIMEOUT_MS (a positive integer, milliseconds): how
/// long a rank's heartbeat word may stay unchanged before the failure
/// detector declares it dead. Returns `fallback` when unset; throws
/// std::invalid_argument when set but not a positive integer.
[[nodiscard]] std::chrono::milliseconds heartbeat_timeout_from_env(
    std::chrono::milliseconds fallback = std::chrono::milliseconds(1000));

/// Parses a chaos spec "kill:<rank>@<pct>%" (spaces allowed; the trailing
/// '%' optional), e.g. "kill:1@50%": world rank 1 fail-stops once loop
/// progress passes 50% of the iteration space. Throws
/// std::invalid_argument with a one-line message on anything else.
[[nodiscard]] ChaosSpec parse_chaos(std::string_view text);

/// Reads HDLS_CHAOS. Returns `fallback` (default: no injection) when
/// unset; throws std::invalid_argument when set but malformed (no silent
/// fallback — a typo'd chaos spec silently running a healthy cluster would
/// invalidate the whole drill).
[[nodiscard]] ChaosSpec chaos_from_env(ChaosSpec fallback = ChaosSpec{});

/// Reads HDLS_PIN ("none" | "compact" | "scatter", case-insensitive): the
/// placement of leaf workers over the host's sockets. Returns `fallback`
/// when unset; throws std::invalid_argument when set to anything else (no
/// silent fallback — a typo'd pin policy silently running unpinned would
/// change what a NUMA experiment measures).
[[nodiscard]] minimpi::PinPolicy pin_from_env(
    minimpi::PinPolicy fallback = minimpi::PinPolicy::None);

}  // namespace hdls::core
