#include "core/runner.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/env_config.hpp"
#include "core/hierarchy.hpp"
#include "core/hybrid_executor.hpp"
#include "core/inter_queue.hpp"
#include "core/mpi_mpi_executor.hpp"
#include "metrics/metrics.hpp"
#include "metrics/sampler.hpp"
#include "metrics/watchdog.hpp"
#include "minimpi/minimpi.hpp"
#include "ompsim/schedule.hpp"
#include "trace/recorder.hpp"
#include "util/log.hpp"

namespace hdls::core {

namespace {

/// The checks that need the resolved per-level plan; shared between
/// validate_combination and run_hierarchical so a run resolves (and logs
/// any per-level fallback) exactly once.
void validate_resolved(Approach approach, const HierConfig& cfg, const ResolvedHierarchy& rh) {
    if (!cfg.node_weights.empty() &&
        cfg.node_weights.size() != static_cast<std::size_t>(rh.tree.front().fan_out)) {
        throw std::invalid_argument(
            "run_hierarchical: node_weights size must equal the number of level-0 entities (" +
            std::to_string(rh.tree.front().fan_out) + ")");
    }
    for (const double w : cfg.node_weights) {
        if (w < 0.0) {
            throw std::invalid_argument("run_hierarchical: node_weights must be >= 0");
        }
    }
    if (cfg.fac_sigma < 0.0) {
        throw std::invalid_argument("run_hierarchical: fac_sigma must be >= 0");
    }
    if (cfg.fac_mu <= 0.0) {
        throw std::invalid_argument("run_hierarchical: fac_mu must be > 0");
    }
    const dls::Technique leaf = rh.levels.back().technique;
    switch (approach) {
        case Approach::MpiMpi:
            if (!dls::supports_step_indexed(leaf)) {
                throw std::invalid_argument(
                    std::string("run_hierarchical: intra-node technique ") +
                    std::string(dls::technique_name(leaf)) +
                    " lacks a step-indexed form (required by the MPI+MPI local queue)");
            }
            break;
        case Approach::MpiOpenMp: {
            const bool expressible =
                ompsim::openmp_equivalent(leaf).has_value() ||
                (cfg.allow_extended_openmp_schedules &&
                 ompsim::extended_equivalent(leaf).has_value());
            if (!expressible) {
                throw UnsupportedCombination(
                    std::string("run_hierarchical: MPI+OpenMP cannot schedule ") +
                    std::string(dls::technique_name(leaf)) + " at the intra-node level");
            }
            break;
        }
    }
}

/// Shape/scalar checks plus the topology resolution, returning the plan.
[[nodiscard]] ResolvedHierarchy validate_and_resolve(const ClusterShape& shape,
                                                     Approach approach,
                                                     const HierConfig& cfg) {
    if (shape.nodes < 1 || shape.workers_per_node < 1) {
        throw std::invalid_argument("run_hierarchical: cluster shape must be positive");
    }
    if (cfg.min_chunk < 1) {
        throw std::invalid_argument("run_hierarchical: min_chunk must be >= 1");
    }
    // Topology tree + per-level plan: fan-outs, products, level count and
    // interior technique capabilities (throws its own one-line errors).
    ResolvedHierarchy rh;
    try {
        rh = resolve_hierarchy(shape, cfg);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("run_hierarchical: ") + e.what());
    }
    validate_resolved(approach, cfg, rh);
    return rh;
}

/// The honesty loop: per-node WF weights measured on the CPUs the workers
/// will actually occupy. The caller thread is pinned to each planned CPU
/// in turn, the active backend's mandelbrot throughput is probed there
/// (cached per (backend, cpu) — see simd::probe_mandelbrot_rate), and the
/// per-CPU rates are summed per level-0 group. Only ratios matter to WF,
/// so the raw pixel/s sums are returned as-is.
[[nodiscard]] std::vector<double> probed_node_weights(const ClusterShape& shape,
                                                      int level0_groups,
                                                      minimpi::PinPolicy pin) {
    const minimpi::HostTopology host = minimpi::HostTopology::detect();
    const std::vector<int> plan = host.plan(pin, 0, shape.total_workers());
    const std::vector<int> saved = minimpi::current_thread_affinity();
    const int group_size = shape.total_workers() / std::max(level0_groups, 1);
    std::vector<double> weights(static_cast<std::size_t>(level0_groups), 0.0);
    for (int w = 0; w < shape.total_workers(); ++w) {
        minimpi::pin_current_thread(plan[static_cast<std::size_t>(w)]);
        weights[static_cast<std::size_t>(w / std::max(group_size, 1))] +=
            simd::probe_mandelbrot_rate(simd::active_backend());
    }
    minimpi::set_current_thread_affinity(saved);
    return weights;
}

}  // namespace

void validate_combination(const ClusterShape& shape, Approach approach, const HierConfig& cfg) {
    (void)validate_and_resolve(shape, approach, cfg);
}

ExecutionReport run_hierarchical(const ClusterShape& shape, Approach approach,
                                 const HierConfig& cfg, std::int64_t n, const ChunkBody& body) {
    return run_hierarchical(shape, approach, cfg, n, body, RunOptions{});
}

ExecutionReport run_hierarchical(const ClusterShape& shape, Approach approach,
                                 const HierConfig& cfg, std::int64_t n, const ChunkBody& body,
                                 const RunOptions& opts) {
    const ResolvedHierarchy rh = validate_and_resolve(shape, approach, cfg);
    if (n < 0) {
        throw std::invalid_argument("run_hierarchical: n must be >= 0");
    }
    if (!body) {
        throw std::invalid_argument("run_hierarchical: body must not be empty");
    }

    // The minimpi substrate: an explicit HierConfig choice wins, otherwise
    // HDLS_TRANSPORT (strict parse — resolved before any thread launches).
    const minimpi::TransportKind transport =
        cfg.transport ? *cfg.transport : transport_from_env();

    // SIMD backend policy and thread placement, same precedence. set_mode
    // throws here (before any thread launches) when Native is demanded on
    // a scalar-only host.
    const simd::SimdMode simd_mode = cfg.simd ? *cfg.simd : simd_mode_from_env();
    simd::set_mode(simd_mode);
    const minimpi::PinPolicy pin = cfg.pin ? *cfg.pin : pin_from_env();

    // Executors see the resolved knobs (and, below, any probed weights).
    HierConfig effective = cfg;
    effective.simd = simd_mode;
    effective.pin = pin;
    // Lease-based fault tolerance + fault injection (strict parses, all
    // resolved before any rank launches): an explicit HierConfig choice
    // wins, otherwise the HDLS_LEASE / HDLS_LEASE_K /
    // HDLS_HEARTBEAT_TIMEOUT_MS / HDLS_CHAOS environment.
    effective.lease = cfg.lease || lease_from_env();
    effective.lease_k = lease_k_from_env(cfg.lease_k);
    effective.heartbeat_timeout = heartbeat_timeout_from_env(cfg.heartbeat_timeout);
    effective.chaos = cfg.chaos.enabled() ? cfg.chaos : chaos_from_env();
    if (effective.lease && approach != Approach::MpiMpi) {
        util::log_warn(
            "run_hierarchical: lease-based fault tolerance is MPI+MPI only; "
            "ignoring HDLS_LEASE under MPI+OpenMP");
        effective.lease = false;
    }
    if (effective.chaos.enabled()) {
        if (approach != Approach::MpiMpi) {
            throw std::invalid_argument(
                "run_hierarchical: HDLS_CHAOS fault injection requires the MPI+MPI "
                "approach (the MPI+OpenMP baseline has no failure handling to drill)");
        }
        if (!effective.lease) {
            throw std::invalid_argument(
                "run_hierarchical: HDLS_CHAOS requires HDLS_LEASE=1 — killing a rank "
                "without lease reclamation would silently lose iterations");
        }
        if (effective.chaos.kill_rank >= shape.total_workers()) {
            throw std::invalid_argument(
                "run_hierarchical: HDLS_CHAOS kill rank " +
                std::to_string(effective.chaos.kill_rank) + " is outside the world (" +
                std::to_string(shape.total_workers()) + " ranks)");
        }
    }
    // A pinned WF run with no explicit weights gets measured ones: pinning
    // fixes which CPU each worker occupies, so per-CPU throughput probes
    // are meaningful per-node speeds. Unpinned runs keep WF's equal-weights
    // default (every probe would measure the same roaming thread).
    if (pin != minimpi::PinPolicy::None && cfg.node_weights.empty() &&
        rh.levels.front().technique == dls::Technique::WF) {
        effective.node_weights =
            probed_node_weights(shape, rh.tree.front().fan_out, pin);
    }

    // Rank placement of MPI+MPI runs: one CPU per rank from the same plan
    // a leaf ThreadTeam would use (ranks are threads or forked processes
    // depending on the transport; pinning works for both).
    std::vector<int> rank_pin_plan;
    if (pin != minimpi::PinPolicy::None && approach == Approach::MpiMpi) {
        rank_pin_plan =
            minimpi::HostTopology::detect().plan(pin, 0, shape.total_workers());
    }

    ExecutionReport report;
    report.approach = approach;
    report.shape = shape;
    report.inter = rh.levels.front().technique;
    report.intra = rh.levels.back().technique;
    report.inter_backend =
        rh.levels.front().backend.value_or(dls::InterBackend::Centralized);
    report.transport = transport;
    // Report what actually ran: the depth-2 MPI+OpenMP chain is root-only
    // (no composed source to buffer in), so the knob is a no-op there.
    report.prefetch =
        cfg.prefetch && (approach == Approach::MpiMpi || rh.depth() > 2);
    report.simd_mode = simd_mode;
    report.simd_backend = simd::active_backend();
    report.pin = pin;
    report.topology = rh.tree;
    report.levels = rh.levels;
    report.total_iterations = n;
    report.workers.assign(static_cast<std::size_t>(shape.total_workers()), WorkerStats{});

    std::mutex merge_mutex;

    // Opt-in event tracing: one ring buffer per worker, merged after the
    // run. A null session means every executor carries a disabled recorder.
    // Service runs pass a job id so every event is born job-stamped.
    std::unique_ptr<trace::TraceSession> session;
    if (cfg.trace) {
        session = std::make_unique<trace::TraceSession>(shape.total_workers(),
                                                        cfg.trace_capacity, opts.job);
    }

    // Always-on metrics: the run's delta over the process-wide registry is
    // attached to the report below. HDLS_METRICS=1 (or the RunOptions
    // override) additionally runs the background sampler (Prometheus
    // exposition file, HDLS_METRICS_FILE) and the stall watchdog for the
    // duration of the run, both on the HDLS_METRICS_PERIOD_MS cadence.
    // Concurrent runs are safe: each run owns its watchdog instance, beats
    // it explicitly through RankHooks, and its registry installation is
    // removed by identity (never by restoring a stale snapshot), so no
    // interleaving of run lifetimes can dangle the global hook. The
    // snapshot delta below remains process-wide — overlapping runs see
    // each other's counts; per-job attribution lives in the JobService's
    // job metrics and per-job traces.
    const metrics::Snapshot metrics_before = metrics::registry().snapshot();
    std::unique_ptr<metrics::MetricsSampler> sampler;
    std::unique_ptr<metrics::StallWatchdog> watchdog;
    if (opts.metrics.value_or(metrics_from_env())) {
        const std::chrono::milliseconds period = metrics_period_from_env();
        sampler = std::make_unique<metrics::MetricsSampler>(metrics::registry(), period);
        sampler->set_exposition_file(opts.metrics_file ? *opts.metrics_file
                                                       : metrics_file_from_env());
        sampler->start();
        watchdog = std::make_unique<metrics::StallWatchdog>(shape.total_workers());
        watchdog->start(period);
    }
    const metrics::WatchdogInstallation watchdog_installation(watchdog.get());
    // A run without its own watchdog still beats an externally installed
    // one (tools install theirs via install_watchdog and expect runs to
    // report into it). Captured once, before threads launch: the pointer
    // stays stable for the whole run even if the registry top changes.
    RankHooks hooks;
    hooks.gate = opts.gate;
    hooks.watchdog = watchdog ? watchdog.get() : metrics::active_watchdog();

    switch (approach) {
        case Approach::MpiMpi: {
            const minimpi::Topology topo = rh.topology();
            minimpi::Runtime::run(shape.total_workers(), topo, transport,
                                  [&](minimpi::Context& ctx) {
                if (!rank_pin_plan.empty()) {
                    minimpi::pin_current_thread(
                        rank_pin_plan[static_cast<std::size_t>(ctx.rank())]);
                }
                const trace::WorkerTracer tracer =
                    session ? session->tracer(ctx.rank(), ctx.node()) : trace::WorkerTracer{};
                const WorkerStats stats =
                    run_mpi_mpi_rank(ctx, n, effective, rh, body, tracer, hooks);
                const std::lock_guard<std::mutex> lock(merge_mutex);
                report.workers[static_cast<std::size_t>(ctx.rank())] = stats;
            });
            break;
        }
        case Approach::MpiOpenMp: {
            minimpi::Topology topo;  // one master rank per leaf group
            topo.ranks_per_node = 1;
            minimpi::Runtime::run(shape.nodes, topo, transport, [&](minimpi::Context& ctx) {
                const auto stats = run_hybrid_rank(ctx, shape.workers_per_node, n, effective,
                                                   rh, body, session.get(), hooks);
                const std::lock_guard<std::mutex> lock(merge_mutex);
                for (int t = 0; t < shape.workers_per_node; ++t) {
                    report.workers[static_cast<std::size_t>(
                        ctx.rank() * shape.workers_per_node + t)] =
                        stats[static_cast<std::size_t>(t)];
                }
            });
            break;
        }
    }

    if (watchdog) {
        metrics::uninstall_watchdog(watchdog.get());
        watchdog->stop();
    }
    if (sampler) {
        sampler->stop();  // final sample + exposition-file write
    }
    report.metrics = metrics::registry().snapshot().delta_since(metrics_before);

    if (session) {
        report.trace = session->finish({.approach = std::string(approach_name(approach)),
                                        .inter = std::string(dls::technique_name(report.inter)),
                                        .intra = std::string(dls::technique_name(report.intra)),
                                        .nodes = shape.nodes,
                                        .workers_per_node = shape.workers_per_node,
                                        .total_iterations = n,
                                        .job = opts.job,
                                        .job_name = {},
                                        .jobs = {}});
    }

    double max_finish = 0.0;
    for (const auto& w : report.workers) {
        max_finish = std::max(max_finish, w.finish_seconds);
    }
    report.parallel_seconds = max_finish;
    return report;
}

void run_serial(std::int64_t n, const ChunkBody& body) {
    if (n > 0) {
        body(0, n);
    }
}

}  // namespace hdls::core
