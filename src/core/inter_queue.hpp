#pragma once
/// \file inter_queue.hpp
/// Interface of the inter-node (level-1) work queue and its factory.
///
/// Two implementations exist, both masterless and both hosted on rank 0 of
/// the communicator as a passive-target RMA window:
///  * GlobalWorkQueue — the paper's step-indexed distributed chunk
///    calculation (STATIC, SS, FSC, GSS, TSS, FAC2, TFSS, RND);
///  * AdaptiveGlobalQueue — the remaining-count/feedback form serving FAC,
///    WF and AWF-B/C/D/E (adaptive_queue.hpp).
/// The factory picks by dls::supports_step_indexed /
/// dls::supports_remaining_based, so executors schedule any inter-node
/// technique through one interface.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/types.hpp"
#include "dls/technique.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class InterQueue {
public:
    /// One level-1 chunk.
    struct Chunk {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
    };

    virtual ~InterQueue() = default;

    /// Acquires the next chunk, or std::nullopt once the loop is exhausted.
    [[nodiscard]] virtual std::optional<Chunk> try_acquire() = 0;

    /// Runtime feedback for the adaptive techniques: executed iterations
    /// with their compute and scheduling-overhead time, accumulated into
    /// the caller's node rate. No-op for non-adaptive queues.
    virtual void report(std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// True when report() calls influence future chunk sizes (AWF-*); lets
    /// executors skip the feedback timing entirely otherwise.
    [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }

    /// Chunks acquired through *this* handle (per-rank statistic).
    [[nodiscard]] virtual std::int64_t acquired() const noexcept = 0;

    [[nodiscard]] virtual dls::Technique technique() const noexcept = 0;

    /// Collective teardown.
    virtual void free() = 0;
};

/// Creates the level-1 queue for `cfg.inter`. Collective over `comm`.
/// `level_workers` is P in the chunk formulas (the paper uses the node
/// count) and `node` the caller's level-1 entity id in [0, level_workers)
/// — the feedback slot adaptive techniques accumulate into.
/// Throws minimpi::Error for techniques with no distributed form.
[[nodiscard]] std::unique_ptr<InterQueue> make_inter_queue(const minimpi::Comm& comm,
                                                           std::int64_t total_iterations,
                                                           const HierConfig& cfg,
                                                           int level_workers, int node);

}  // namespace hdls::core
