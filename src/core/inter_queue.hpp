#pragma once
/// \file inter_queue.hpp
/// The inter-node (level-1) work source and its factory.
///
/// Three implementations exist, all masterless:
///  * GlobalWorkQueue — the paper's step-indexed distributed chunk
///    calculation (STATIC, SS, FSC, GSS, TSS, FAC2, TFSS, RND) on a single
///    rank-0-hosted passive-target RMA window;
///  * AdaptiveGlobalQueue — the remaining-count/feedback form serving FAC,
///    WF and AWF-B/C/D/E (adaptive_queue.hpp), also rank-0-hosted;
///  * ShardedInterQueue — one window per node holding a weight-partitioned
///    shard of the iteration space, with CAS work stealing between nodes
///    (sharded_queue.hpp); removes the rank-0 serialization point.
/// The factory picks by HierConfig::inter_backend and the technique's
/// distributed forms (dls::supports_step_indexed / supports_remaining_based
/// / supports_sharded), so executors schedule any inter-node technique
/// through the one WorkSource interface.

#include <cstdint>
#include <memory>

#include "core/types.hpp"
#include "core/work_source.hpp"
#include "dls/technique.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

/// Historical name of the level-1 source; every inter-node backend
/// implements the WorkSource interface directly.
using InterQueue = WorkSource;

/// The backend make_inter_queue will actually construct for `cfg`: a
/// sharded request for a technique without a sharded form (FAC, AWF-*)
/// falls back to the centralized queue. The single source of truth for
/// the fallback rule — the factory decides with it and reports quote it.
[[nodiscard]] inline dls::InterBackend effective_inter_backend(const HierConfig& cfg) noexcept {
    return cfg.inter_backend == dls::InterBackend::Sharded && dls::supports_sharded(cfg.inter)
               ? dls::InterBackend::Sharded
               : dls::InterBackend::Centralized;
}

/// Creates the level-1 queue for `cfg.inter` under `cfg.inter_backend`.
/// Collective over `comm`. `level_workers` is P in the chunk formulas (the
/// paper uses the node count) and `node` the caller's level-1 entity id in
/// [0, level_workers) — the feedback slot adaptive techniques accumulate
/// into, and the shard the sharded backend assigns the caller. A sharded
/// request for a technique without a sharded form (FAC, AWF-*) falls back
/// to the centralized queue with a warning. Throws minimpi::Error for
/// techniques with no distributed form at all.
[[nodiscard]] std::unique_ptr<InterQueue> make_inter_queue(const minimpi::Comm& comm,
                                                           std::int64_t total_iterations,
                                                           const HierConfig& cfg,
                                                           int level_workers, int node);

}  // namespace hdls::core
