#include "core/mpi_mpi_executor.hpp"

#include <chrono>
#include <thread>

#include "core/global_queue.hpp"
#include "core/local_queue.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n, const HierConfig& cfg,
                             const ChunkBody& body) {
    const minimpi::Comm& world = ctx.world();
    // MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): the ranks of my node.
    const minimpi::Comm node = world.split_type(minimpi::SplitType::Shared, world.rank());

    GlobalWorkQueue global(world, n, cfg.inter, ctx.nodes(), cfg.min_chunk);
    NodeWorkQueue local(node, cfg.intra, cfg.min_chunk);

    WorkerStats stats;
    stats.node = ctx.node();
    stats.worker_in_node = node.rank();

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();

    const auto execute = [&](const NodeWorkQueue::SubChunk& sc) {
        const Clock::time_point b0 = Clock::now();
        body(sc.begin, sc.end);
        stats.busy_seconds += seconds_since(b0);
        stats.iterations += sc.end - sc.begin;
        ++stats.chunks;
    };

    for (;;) {
        // Stage 2 first: the node queue may already hold sub-chunks.
        if (const auto sub = local.try_pop()) {
            execute(*sub);
            continue;
        }
        // Queue drained: this rank happens to be the fastest — refill.
        local.begin_refill();
        if (const auto chunk = global.try_acquire()) {
            ++stats.global_refills;
            if (const auto sub = local.push_and_pop(chunk->start, chunk->size)) {
                execute(*sub);
            }
            continue;
        }
        local.end_refill();
        // Global queue exhausted. Terminate only when no peer is mid-refill
        // and nothing is left to pop, otherwise work could still appear.
        if (!local.refills_in_flight() && !local.has_pending()) {
            break;
        }
        std::this_thread::yield();
    }

    stats.finish_seconds = seconds_since(t0);

    local.free();
    global.free();
    return stats;
}

}  // namespace hdls::core
