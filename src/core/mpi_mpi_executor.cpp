#include "core/mpi_mpi_executor.hpp"

#include <chrono>

#include "core/inter_queue.hpp"
#include "core/local_queue.hpp"
#include "core/work_source.hpp"
#include "dls/adaptive.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n, const HierConfig& cfg,
                             const ChunkBody& body, trace::WorkerTracer tracer) {
    const minimpi::Comm& world = ctx.world();
    // MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): the ranks of my node.
    const minimpi::Comm node = world.split_type(minimpi::SplitType::Shared, world.rank());

    const auto global = make_inter_queue(world, n, cfg, ctx.nodes(), ctx.node());
    NodeWorkQueue local(node, cfg.intra, cfg.min_chunk);

    WorkerStats stats;
    stats.node = ctx.node();
    stats.worker_in_node = node.rank();

    const bool tracing = tracer.enabled();
    const bool feedback = global->wants_feedback();

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();

    // Adaptive feedback is accumulated locally per executed sub-chunk and
    // flushed (three fetch-and-op sums) only when it can influence a
    // scheduling decision — right before a global acquire, and once at
    // termination. Reporting per sub-chunk would put per-iteration RMA
    // traffic on the rank-0 window under fine-grained intra techniques.
    // `sched_mark` is where the current scheduling span began (loop start
    // or the previous body's end), so the span up to the body's start is
    // the chunk's attributable overhead — the quantity AWF-D/E fold into
    // their rates.
    Clock::time_point sched_mark = t0;
    std::int64_t pending_iters = 0;
    double pending_busy = 0.0;
    double pending_overhead = 0.0;

    const auto flush_feedback = [&] {
        if (!feedback || pending_iters == 0) {
            return;
        }
        global->report(pending_iters, pending_busy, pending_overhead);
        if (tracing) {
            tracer.instant(trace::EventKind::FeedbackReport, tracer.now(), pending_iters,
                           dls::feedback_ns(pending_busy));
        }
        pending_iters = 0;
        pending_busy = 0.0;
        pending_overhead = 0.0;
    };

    // The rank's view of the scheduling hierarchy: the node queue stacked
    // on the level-1 source, every acquisition protocol (pop, refill,
    // steal-aware tracing, termination) inside LocalWorkSource.
    LocalWorkSource source(local, *global, tracer, flush_feedback);

    while (const auto sub = source.try_acquire()) {
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecBegin, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        const Clock::time_point b0 = Clock::now();
        body(sub->start, sub->start + sub->size);
        const Clock::time_point b1 = Clock::now();
        const double busy = std::chrono::duration<double>(b1 - b0).count();
        stats.busy_seconds += busy;
        stats.iterations += sub->size;
        ++stats.chunks;
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecEnd, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        if (feedback) {
            pending_iters += sub->size;
            pending_busy += busy;
            pending_overhead += std::chrono::duration<double>(b0 - sched_mark).count();
            sched_mark = b1;
        }
    }
    flush_feedback();  // final accounting for chunks executed since the last refill
    source.finish();

    stats.global_refills = source.refills();
    stats.finish_seconds = seconds_since(t0);

    source.free();  // the node queue, then the level-1 source
    return stats;
}

}  // namespace hdls::core
