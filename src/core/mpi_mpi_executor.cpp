#include "core/mpi_mpi_executor.hpp"

#include <chrono>

#include "core/hierarchy.hpp"
#include "core/work_source.hpp"
#include "dls/adaptive.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n, const HierConfig& cfg,
                             const ResolvedHierarchy& rh, const ChunkBody& body,
                             trace::WorkerTracer tracer) {
    const minimpi::Comm& world = ctx.world();

    // The rank's view of the scheduling hierarchy: the root backend plus
    // one relay queue per deeper tree level (the leaf being the paper's
    // node-local shared queue), every acquisition protocol (pop, refill,
    // steal-aware tracing, termination) inside the ComposedWorkSource
    // chain.
    Hierarchy hier = build_hierarchy(world, n, rh, cfg, tracer, /*include_leaf=*/true);
    ComposedWorkSource& source = *hier.top_composed();

    WorkerStats stats;
    stats.node = ctx.node();
    stats.worker_in_node = world.rank() % ctx.topology().ranks_per_node;

    const bool tracing = tracer.enabled();
    const bool feedback = hier.root().wants_feedback();

    // Adaptive feedback is accumulated locally per executed sub-chunk and
    // flushed (three fetch-and-op sums) only when it can influence a
    // scheduling decision — right before a root acquire, and once at
    // termination. Reporting per sub-chunk would put per-iteration RMA
    // traffic on the root window under fine-grained leaf techniques.
    // `sched_mark` is where the current scheduling span began (loop start
    // or the previous body's end), so the span up to the body's start is
    // the chunk's attributable overhead — the quantity AWF-D/E fold into
    // their rates.
    Clock::time_point sched_mark{};
    std::int64_t pending_iters = 0;
    double pending_busy = 0.0;
    double pending_overhead = 0.0;

    const auto flush_feedback = [&] {
        if (!feedback || pending_iters == 0) {
            return;
        }
        hier.root().report(pending_iters, pending_busy, pending_overhead);
        if (tracing) {
            tracer.instant(trace::EventKind::FeedbackReport, tracer.now(), pending_iters,
                           dls::feedback_ns(pending_busy));
        }
        pending_iters = 0;
        pending_busy = 0.0;
        pending_overhead = 0.0;
    };
    hier.set_feedback_flush(flush_feedback);

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();
    sched_mark = t0;

    while (const auto sub = source.try_acquire()) {
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecBegin, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        const Clock::time_point b0 = Clock::now();
        body(sub->start, sub->start + sub->size);
        const Clock::time_point b1 = Clock::now();
        const double busy = std::chrono::duration<double>(b1 - b0).count();
        stats.busy_seconds += busy;
        stats.iterations += sub->size;
        ++stats.chunks;
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecEnd, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        if (feedback) {
            pending_iters += sub->size;
            pending_busy += busy;
            pending_overhead += std::chrono::duration<double>(b0 - sched_mark).count();
            sched_mark = b1;
        }
    }
    flush_feedback();  // final accounting for chunks executed since the last refill
    hier.finish();

    stats.global_refills = source.refills();
    stats.finish_seconds = seconds_since(t0);

    hier.free();  // every level's queue, then the root
    return stats;
}

}  // namespace hdls::core
