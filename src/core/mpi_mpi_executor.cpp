#include "core/mpi_mpi_executor.hpp"

#include <chrono>
#include <memory>
#include <thread>

#include "core/hierarchy.hpp"
#include "core/lease_board.hpp"
#include "core/sharded_queue.hpp"
#include "core/work_source.hpp"
#include "dls/adaptive.hpp"
#include "metrics/metrics.hpp"
#include "metrics/watchdog.hpp"
#include "minimpi/liveness.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n, const HierConfig& cfg,
                             const ResolvedHierarchy& rh, const ChunkBody& body,
                             trace::WorkerTracer tracer, const RankHooks& hooks) {
    const minimpi::Comm& world = ctx.world();

    // The rank's view of the scheduling hierarchy: the root backend plus
    // one relay queue per deeper tree level (the leaf being the paper's
    // node-local shared queue), every acquisition protocol (pop, refill,
    // steal-aware tracing, termination) inside the ComposedWorkSource
    // chain.
    Hierarchy hier = build_hierarchy(world, n, rh, cfg, tracer, /*include_leaf=*/true);
    ComposedWorkSource& source = *hier.top_composed();

    // Lease-based fault tolerance (HierConfig::lease): every chunk this
    // rank acquires is leased on the shared board before execution and
    // fenced at completion; the failure detector watches peer heartbeats
    // so a dead rank's leases can be reclaimed and re-executed in the
    // drain loop below. Both constructions are collective.
    std::unique_ptr<LeaseBoard> board;
    std::unique_ptr<minimpi::FailureDetector> detector;
    if (cfg.lease) {
        board = std::make_unique<LeaseBoard>(world, cfg.lease_k);
        detector = std::make_unique<minimpi::FailureDetector>(
            world, std::chrono::duration_cast<std::chrono::nanoseconds>(
                       cfg.heartbeat_timeout));
        source.set_lease_board(board.get());
    }
    // Fault injection (HDLS_CHAOS="kill:<rank>@<pct>%"): this rank
    // fail-stops at the first chunk boundary past the progress trigger —
    // leases abandoned, heartbeat silenced, loop left. Boundary placement
    // means no refill announcement is ever left dangling.
    const bool chaos_me =
        cfg.chaos.enabled() && cfg.chaos.kill_rank == world.rank();
    const auto kill_at = static_cast<std::int64_t>(
        cfg.chaos.at_fraction * static_cast<double>(n));
    bool killed = false;

    WorkerStats stats;
    stats.node = ctx.node();
    stats.worker_in_node = world.rank() % ctx.topology().ranks_per_node;

    const bool tracing = tracer.enabled();
    const bool feedback = hier.root().wants_feedback();

    // Adaptive feedback is accumulated locally per executed sub-chunk and
    // flushed (three fetch-and-op sums) only when it can influence a
    // scheduling decision — right before a root acquire, and once at
    // termination. Reporting per sub-chunk would put per-iteration RMA
    // traffic on the root window under fine-grained leaf techniques.
    // `sched_mark` is where the current scheduling span began (loop start
    // or the previous body's end), so the span up to the body's start is
    // the chunk's attributable overhead — the quantity AWF-D/E fold into
    // their rates.
    Clock::time_point sched_mark{};
    std::int64_t pending_iters = 0;
    double pending_busy = 0.0;
    double pending_overhead = 0.0;

    const auto flush_feedback = [&] {
        if (!feedback || pending_iters == 0) {
            return;
        }
        metrics::rt().feedback_flushes->inc();
        hier.root().report(pending_iters, pending_busy, pending_overhead);
        if (tracing) {
            tracer.instant(trace::EventKind::FeedbackReport, tracer.now(), pending_iters,
                           dls::feedback_ns(pending_busy));
        }
        pending_iters = 0;
        pending_busy = 0.0;
        pending_overhead = 0.0;
    };
    hier.set_feedback_flush(flush_feedback);

    const metrics::RuntimeMetrics& m = metrics::rt();
    metrics::worker_enter(world.rank(), hooks.watchdog);

    // Rank 0 lends the watchdog a view into the sharded root: per-shard
    // remaining counts (atomic reads on the RMA window) so a stall dump
    // can name the starved shard. The probe must not outlive the window it
    // reads, so the guard below clears it on *every* exit path — a chunk
    // body that throws unwinds through hier's destructor (freeing the
    // window) while the watchdog thread may be mid-check. The watchdog is
    // the run's own (threaded through hooks), never the global registry's:
    // with concurrent runs, the registry top may belong to another run and
    // a probe into *this* run's window must die with this run.
    metrics::StallWatchdog* const wd = world.rank() == 0 ? hooks.watchdog : nullptr;
    struct ProbeGuard {
        metrics::StallWatchdog* wd;
        ~ProbeGuard() {
            if (wd != nullptr) {
                wd->clear_shard_probe();
            }
        }
    } probe_guard{wd};
    if (wd != nullptr) {
        if (const auto* sharded = dynamic_cast<const ShardedInterQueue*>(&hier.root())) {
            const int shards = rh.tree.front().fan_out;
            wd->set_shard_probe([sharded, shards] {
                std::vector<std::int64_t> remaining(static_cast<std::size_t>(shards));
                for (int s = 0; s < shards; ++s) {
                    remaining[static_cast<std::size_t>(s)] = sharded->remaining_of(s);
                }
                return remaining;
            });
        }
    }

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();
    sched_mark = t0;

    bool cancelled = false;
    while (const auto sub = source.try_acquire()) {
        // Chaos seam: fail-stop at the first own chunk whose start crosses
        // the progress trigger. The chunk just acquired (and anything in
        // the prefetch slot) stays leased-but-ACTIVE — exactly the state a
        // machine death leaves behind — and survivors reclaim it. The
        // victim stops beating here and only rejoins for the collective
        // teardown barriers (the in-process fail-stop approximation).
        if (chaos_me && !killed && sub->start >= kill_at) {
            killed = true;
            // A machine death also takes down whatever sits undispatched in
            // the victim's node-local leaf queue; if this rank is the
            // node's only worker nobody can pop it afterwards. Convert that
            // pending into leases first so the abandonment below puts every
            // last iteration under the board's exactly-once reclamation.
            source.abandon_pending();
            board->abandon_all();
            break;
        }
        if (board != nullptr) {
            // Liveness: one heartbeat tick per chunk boundary, plus a
            // detection round so a mid-run death switches the sharded
            // root's steal policy (whole-remainder from dead hosts)
            // without waiting for the drain.
            world.beat();
            detector->poll();
        }
        // Multi-tenant gate: the chunk is acquired (the chain's refill /
        // termination protocol is done), now wait for a fair-share slot
        // before burning CPU on it. A refusal means the job was cancelled:
        // drop the chunk and leave; peers drain the same way.
        if (hooks.gate != nullptr && !hooks.gate->begin_chunk(world.rank())) {
            cancelled = true;
            break;
        }
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecBegin, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        const Clock::time_point b0 = Clock::now();
        body(sub->start, sub->start + sub->size);
        const Clock::time_point b1 = Clock::now();
        const double busy = std::chrono::duration<double>(b1 - b0).count();
        // The completion fence: under lease mode the execution counts only
        // if this rank still owns the lease. A loss means a sweeper
        // reclaimed the chunk (this rank was suspected dead mid-body) and
        // a survivor owns it now — the work above is discarded rather than
        // double-committed.
        const bool committed = board == nullptr || board->complete(sub->start);
        if (committed) {
            stats.busy_seconds += busy;
            stats.iterations += sub->size;
            ++stats.chunks;
            m.exec_chunks->inc();
            m.exec_iterations->inc(static_cast<std::uint64_t>(sub->size));
            m.chunk_exec_ns->observe(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0).count()));
        }
        // Heartbeat for the stall watchdog (a relaxed pointer load when
        // none is installed). Reading the prefetch slot is safe here: this
        // thread is the only one that touches it.
        metrics::worker_beat(world.rank(), source.level(), sub->start,
                             source.has_prefetched(), busy, hooks.watchdog);
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecEnd, tracer.now(), sub->start,
                           sub->start + sub->size);
        }
        if (hooks.gate != nullptr) {
            hooks.gate->end_chunk(world.rank(), sub->size);
        }
        if (feedback && committed) {
            pending_iters += sub->size;
            pending_busy += busy;
            pending_overhead += std::chrono::duration<double>(b0 - sched_mark).count();
            sched_mark = b1;
        }
    }
    (void)cancelled;  // the partial WorkerStats already tell the story

    // Reclamation drain: a survivor's own leases are all committed by now
    // (each chunk is fenced right after its body), but peers may still
    // hold ACTIVE leases — live ones finish on their own; dead ones go
    // stale, get swept to RECLAIMED and are re-executed here under a fresh
    // lease, exactly once (the claim CAS has a single winner). The loop
    // ends when every slot board-wide is FREE: every acquired chunk of the
    // run is then committed. Survivors keep beating so they never suspect
    // each other while waiting.
    if (board != nullptr && !killed && !cancelled) {
        while (!board->quiescent()) {
            world.beat();
            world.poll_abort();
            detector->poll();
            m.ranks_dead->set(world.size() - world.alive());
            board->sweep();
            while (const auto rc = board->claim_one()) {
                board->lease(rc->start, rc->size);
                if (tracing) {
                    tracer.instant(trace::EventKind::Reclaim, tracer.now(), rc->start,
                                   rc->size);
                    tracer.instant(trace::EventKind::ChunkExecBegin, tracer.now(),
                                   rc->start, rc->start + rc->size);
                }
                const Clock::time_point b0 = Clock::now();
                body(rc->start, rc->start + rc->size);
                const Clock::time_point b1 = Clock::now();
                if (tracing) {
                    tracer.instant(trace::EventKind::ChunkExecEnd, tracer.now(), rc->start,
                                   rc->start + rc->size);
                }
                if (board->complete(rc->start)) {
                    stats.busy_seconds += std::chrono::duration<double>(b1 - b0).count();
                    stats.iterations += rc->size;
                    ++stats.chunks;
                    m.exec_chunks->inc();
                    m.exec_iterations->inc(static_cast<std::uint64_t>(rc->size));
                }
            }
            metrics::worker_beat(world.rank(), source.level(), -1,
                                 source.has_prefetched(), 0.0, hooks.watchdog);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }

    flush_feedback();  // final accounting for chunks executed since the last refill
    metrics::worker_leave(world.rank(), hooks.watchdog);
    hier.finish();

    stats.global_refills = source.refills();
    stats.finish_seconds = seconds_since(t0);

    // probe_guard only fires after this explicit free, so clear the probe
    // by hand first; the guard's second clear is an idempotent no-op.
    if (wd != nullptr) {
        wd->clear_shard_probe();
    }
    if (board != nullptr) {
        board->free();  // collective; a chaos victim rejoins here
    }
    hier.free();  // every level's queue, then the root
    return stats;
}

}  // namespace hdls::core
