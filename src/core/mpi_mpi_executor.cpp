#include "core/mpi_mpi_executor.hpp"

#include <chrono>
#include <thread>

#include "core/adaptive_queue.hpp"
#include "core/global_queue.hpp"
#include "core/local_queue.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n, const HierConfig& cfg,
                             const ChunkBody& body, trace::WorkerTracer tracer) {
    const minimpi::Comm& world = ctx.world();
    // MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): the ranks of my node.
    const minimpi::Comm node = world.split_type(minimpi::SplitType::Shared, world.rank());

    const auto global = make_inter_queue(world, n, cfg, ctx.nodes(), ctx.node());
    NodeWorkQueue local(node, cfg.intra, cfg.min_chunk);

    WorkerStats stats;
    stats.node = ctx.node();
    stats.worker_in_node = node.rank();

    const bool tracing = tracer.enabled();
    const bool feedback = global->wants_feedback();

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();

    // Adaptive feedback is accumulated locally per executed sub-chunk and
    // flushed (three fetch-and-op sums) only when it can influence a
    // scheduling decision — right before a global acquire, and once at
    // termination. Reporting per sub-chunk would put per-iteration RMA
    // traffic on the rank-0 window under fine-grained intra techniques.
    // `sched_mark` is where the current scheduling span began (loop start
    // or the previous body's end), so the span up to the body's start is
    // the chunk's attributable overhead — the quantity AWF-D/E fold into
    // their rates.
    Clock::time_point sched_mark = t0;
    std::int64_t pending_iters = 0;
    double pending_busy = 0.0;
    double pending_overhead = 0.0;

    const auto flush_feedback = [&] {
        if (!feedback || pending_iters == 0) {
            return;
        }
        global->report(pending_iters, pending_busy, pending_overhead);
        if (tracing) {
            tracer.instant(trace::EventKind::FeedbackReport, tracer.now(), pending_iters,
                           dls::feedback_ns(pending_busy));
        }
        pending_iters = 0;
        pending_busy = 0.0;
        pending_overhead = 0.0;
    };

    const auto execute = [&](const NodeWorkQueue::SubChunk& sc) {
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecBegin, tracer.now(), sc.begin, sc.end);
        }
        const Clock::time_point b0 = Clock::now();
        body(sc.begin, sc.end);
        const Clock::time_point b1 = Clock::now();
        const double busy = std::chrono::duration<double>(b1 - b0).count();
        stats.busy_seconds += busy;
        stats.iterations += sc.end - sc.begin;
        ++stats.chunks;
        if (tracing) {
            tracer.instant(trace::EventKind::ChunkExecEnd, tracer.now(), sc.begin, sc.end);
        }
        if (feedback) {
            pending_iters += sc.end - sc.begin;
            pending_busy += busy;
            pending_overhead += std::chrono::duration<double>(b0 - sched_mark).count();
            sched_mark = b1;
        }
    };

    // Termination-spin coalescing: while the global queue is exhausted but
    // peers are mid-refill, the rank polls; recording every poll would
    // flood the ring buffer, so the whole wait becomes one BarrierWait
    // event — and the per-poll LocalPop/GlobalAcquire probes are muted.
    // `end` is the start of the transaction that found work, so the wait
    // span never overlaps the recorded LocalPop/GlobalAcquire epoch.
    double wait_start = -1.0;
    const auto close_wait = [&](double end) {
        if (tracing && wait_start >= 0.0) {
            tracer.record(trace::EventKind::BarrierWait, wait_start, end);
            wait_start = -1.0;
        }
    };

    for (;;) {
        const bool record_probe = tracing && wait_start < 0.0;
        // Stage 2 first: the node queue may already hold sub-chunks.
        double pop_t0 = 0.0;
        double lock_wait = 0.0;
        if (tracing) {
            pop_t0 = tracer.now();
        }
        if (const auto sub = local.try_pop(tracing ? &lock_wait : nullptr)) {
            if (tracing) {
                close_wait(pop_t0);
                tracer.record(trace::EventKind::LocalPop, pop_t0, tracer.now(), sub->begin,
                              sub->end, lock_wait);
            }
            execute(*sub);
            continue;
        }
        if (record_probe) {
            tracer.record(trace::EventKind::LocalPop, pop_t0, tracer.now(), -1, -1, lock_wait);
        }
        // Queue drained: this rank happens to be the fastest — refill.
        local.begin_refill();
        if (record_probe) {
            tracer.instant(trace::EventKind::RefillBegin, tracer.now());
        }
        flush_feedback();  // publish rates before the next level-1 decision
        const double acq_t0 = tracing ? tracer.now() : 0.0;
        if (const auto chunk = global->try_acquire()) {
            if (tracing) {
                close_wait(acq_t0);
                tracer.record(trace::EventKind::GlobalAcquire, acq_t0, tracer.now(),
                              chunk->start, chunk->size);
            }
            ++stats.global_refills;
            double push_t0 = 0.0;
            double push_wait = 0.0;
            if (tracing) {
                push_t0 = tracer.now();
            }
            const auto sub = local.push_and_pop(chunk->start, chunk->size,
                                                tracing ? &push_wait : nullptr);
            if (tracing) {
                tracer.record(trace::EventKind::LocalPop, push_t0, tracer.now(),
                              sub ? sub->begin : -1, sub ? sub->end : -1, push_wait);
                tracer.instant(trace::EventKind::RefillEnd, tracer.now(), chunk->start,
                               chunk->size);
            }
            if (sub) {
                execute(*sub);
            }
            continue;
        }
        if (record_probe) {
            tracer.record(trace::EventKind::GlobalAcquire, acq_t0, tracer.now(), 0, 0);
        }
        local.end_refill();
        if (record_probe) {
            tracer.instant(trace::EventKind::RefillEnd, tracer.now(), 0, 0);
        }
        // Global queue exhausted. Terminate only when no peer is mid-refill
        // and nothing is left to pop, otherwise work could still appear.
        if (!local.refills_in_flight() && !local.has_pending()) {
            break;
        }
        if (tracing && wait_start < 0.0) {
            wait_start = tracer.now();
        }
        std::this_thread::yield();
    }
    flush_feedback();  // final accounting for chunks executed since the last refill
    close_wait(tracer.now());
    if (tracing) {
        tracer.instant(trace::EventKind::Terminate, tracer.now());
    }

    stats.finish_seconds = seconds_since(t0);

    local.free();
    global->free();
    return stats;
}

}  // namespace hdls::core
