#pragma once
/// \file sharded_relay.hpp
/// The *sharded* relay queue: the work-stealing backend for interior
/// levels of a topology tree.
///
/// ShardedInterQueue shards a range known at construction ([0, N) at the
/// root); an interior level instead receives chunks dynamically from its
/// parent. The sharded relay reconciles the two: every arriving parent
/// chunk is immediately partitioned among the level's `fan_out` children
/// (dls::shard_partition, the same largest-remainder apportionment the
/// root backend uses), each child self-schedules its own shard segments
/// with the step-indexed formulas (dls::shard_chunk_hint, P = fan_out),
/// and a child whose shards are dry steals half the remainder of the most
/// loaded sibling's front segment (dls::steal_amount). Owners and thieves
/// both carve from the front of a segment's remainder, so each segment —
/// and therefore each parent chunk — tiles exactly no matter how the two
/// interleave.
///
/// The queue state lives in one group-hosted shared window accessed under
/// the same exclusive-lock epochs as NodeWorkQueue (a relay is touched
/// once per refill, not per iteration, so the lock is not the hotspot the
/// leaf-level discussion of the paper revolves around); what the sharded
/// policy changes is *ownership*: children drain their own share first and
/// cross-child transfers are explicit steals, visible as level-tagged
/// Steal events in the trace.

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/local_queue.hpp"
#include "dls/sharding.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class ShardedRelayQueue final : public LevelQueue {
public:
    using SubChunk = LevelQueue::SubChunk;

    /// Collective over the level communicator. `fan_out` is the number of
    /// children (shards) of this level and `child` the caller's child
    /// index in [0, fan_out). Requires dls::supports_sharded(technique).
    ShardedRelayQueue(const minimpi::Comm& comm, dls::Technique technique,
                      std::int64_t min_chunk, int fan_out, int child)
        : comm_(comm),
          fan_out_(fan_out),
          child_(child),
          min_chunk_(min_chunk),
          ring_(comm.size() + 4) {
        if (!dls::supports_sharded(technique)) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "ShardedRelayQueue: technique has no sharded form");
        }
        if (child < 0 || child >= fan_out) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "ShardedRelayQueue: child index out of range");
        }
        technique_ = technique;
        formula_ = dls::shard_formula(technique);
        const std::size_t cells =
            kChildBase + static_cast<std::size_t>(fan_out_) *
                             (2 + static_cast<std::size_t>(ring_) * kSegFields);
        window_ = minimpi::Window::allocate_shared(
            comm, comm.rank() == 0 ? cells * sizeof(std::int64_t) : 0);
        if (comm.rank() == 0) {
            auto mem = window_.shared_span<std::int64_t>(0);
            for (auto& v : mem) {
                v = 0;
            }
        }
        window_.sync();
        comm_.barrier();
    }

    [[nodiscard]] std::optional<SubChunk> try_pop(double* lock_wait_s = nullptr) override {
        lock_timed(lock_wait_s);
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    void begin_refill() override {
        (void)window_.fetch_and_op<std::int64_t>(1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    /// The announcement as a nonblocking window op (the prefetch issue
    /// path): +1 on the in-flight counter, completed via the request.
    [[nodiscard]] minimpi::AtomicUpdateRequest<std::int64_t> begin_refill_async() override {
        return window_.start_atomic_update<std::int64_t>(
            kHost, kInflight, [](std::int64_t v) { return v + 1; });
    }

    void end_refill() override {
        (void)window_.fetch_and_op<std::int64_t>(-1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    [[nodiscard]] std::optional<SubChunk> push_and_pop(std::int64_t start, std::int64_t size,
                                                       double* lock_wait_s = nullptr) override {
        const Release release(*this);
        lock_timed(lock_wait_s);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        const std::vector<std::int64_t> parts = dls::shard_partition(size, {}, fan_out_);
        std::int64_t off = 0;
        for (int c = 0; c < fan_out_; ++c) {
            const std::int64_t part = parts[static_cast<std::size_t>(c)];
            if (part > 0) {
                const std::int64_t head = mem[head_cell(c)];
                const std::int64_t tail = mem[tail_cell(c)];
                if (tail - head >= ring_) {
                    window_.unlock(kHost);
                    throw minimpi::Error(minimpi::ErrorCode::Internal,
                                         "ShardedRelayQueue: ring capacity exceeded");
                }
                std::int64_t* seg = seg_of(mem, c, tail);
                seg[kSegStart] = start + off;
                seg[kSegSize] = part;
                seg[kSegTaken] = 0;
                seg[kSegStep] = 0;
                mem[tail_cell(c)] = tail + 1;
            }
            off += part;
        }
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    [[nodiscard]] bool has_pending() override {
        window_.lock(minimpi::LockType::Shared, kHost);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        bool pending = false;
        for (int c = 0; c < fan_out_ && !pending; ++c) {
            for (std::int64_t i = mem[head_cell(c)]; i < mem[tail_cell(c)]; ++i) {
                const std::int64_t* seg = seg_of(mem, c, i);
                if (seg[kSegTaken] < seg[kSegSize]) {
                    pending = true;
                    break;
                }
            }
        }
        window_.unlock(kHost);
        return pending;
    }

    [[nodiscard]] bool refills_in_flight() override {
        return window_.atomic_read<std::int64_t>(kHost, kInflight) > 0;
    }

    [[nodiscard]] std::int64_t popped() const noexcept override { return popped_; }

    /// Sub-chunks this handle carved from a sibling's shard.
    [[nodiscard]] std::int64_t stolen() const noexcept { return stolen_; }

    [[nodiscard]] dls::Technique technique() const noexcept override { return technique_; }

    void free() override {
        comm_.barrier();
        window_.free();
    }

private:
    class Release {
    public:
        explicit Release(ShardedRelayQueue& queue) noexcept : queue_(queue) {}
        ~Release() { queue_.end_refill(); }
        Release(const Release&) = delete;
        Release& operator=(const Release&) = delete;

    private:
        ShardedRelayQueue& queue_;
    };

    void lock_timed(double* lock_wait_s) {
        if (lock_wait_s == nullptr) {
            window_.lock(minimpi::LockType::Exclusive, kHost);
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        window_.lock(minimpi::LockType::Exclusive, kHost);
        *lock_wait_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    static constexpr int kHost = 0;
    static constexpr std::size_t kInflight = 0;
    static constexpr std::size_t kChildBase = 2;  // spare cell keeps layout aligned
    static constexpr std::size_t kSegFields = 4;
    static constexpr std::size_t kSegStart = 0;
    static constexpr std::size_t kSegSize = 1;
    static constexpr std::size_t kSegTaken = 2;
    static constexpr std::size_t kSegStep = 3;

    [[nodiscard]] std::size_t head_cell(int child) const noexcept {
        return kChildBase + 2 * static_cast<std::size_t>(child);
    }
    [[nodiscard]] std::size_t tail_cell(int child) const noexcept {
        return head_cell(child) + 1;
    }
    [[nodiscard]] std::int64_t* seg_of(std::span<std::int64_t> mem, int child,
                                       std::int64_t index) const noexcept {
        const std::size_t rings = kChildBase + 2 * static_cast<std::size_t>(fan_out_);
        const auto s = static_cast<std::size_t>(index % ring_);
        return mem.data() + rings +
               (static_cast<std::size_t>(child) * static_cast<std::size_t>(ring_) + s) *
                   kSegFields;
    }

    /// First segment of `child` still holding unassigned work (retiring
    /// fully-taken front segments); nullptr when the child's shard is dry.
    [[nodiscard]] std::int64_t* front_seg(std::span<std::int64_t> mem, int child) noexcept {
        std::int64_t& head = mem[head_cell(child)];
        const std::int64_t tail = mem[tail_cell(child)];
        while (head < tail) {
            std::int64_t* seg = seg_of(mem, child, head);
            if (seg[kSegTaken] < seg[kSegSize]) {
                return seg;
            }
            ++head;
        }
        return nullptr;
    }

    /// Owner pop from the own shard, then steal from the most loaded
    /// sibling; caller holds the exclusive lock.
    [[nodiscard]] std::optional<SubChunk> pop_locked() {
        auto mem = window_.shared_span<std::int64_t>(kHost);
        if (std::int64_t* seg = front_seg(mem, child_)) {
            const std::int64_t taken = seg[kSegTaken];
            const std::int64_t hint = dls::shard_chunk_hint(formula_, seg[kSegSize], fan_out_,
                                                            min_chunk_, seg[kSegStep]);
            const std::int64_t take =
                hint > 0 ? std::min(hint, seg[kSegSize] - taken) : seg[kSegSize] - taken;
            seg[kSegTaken] = taken + take;
            ++seg[kSegStep];
            ++popped_;
            const std::int64_t begin = seg[kSegStart] + taken;
            return SubChunk{begin, begin + take, false};
        }
        // Own shard dry: steal from the sibling with the largest remainder.
        int victim = -1;
        std::int64_t best = 0;
        for (int c = 0; c < fan_out_; ++c) {
            if (c == child_) {
                continue;
            }
            std::int64_t remaining = 0;
            for (std::int64_t i = mem[head_cell(c)]; i < mem[tail_cell(c)]; ++i) {
                const std::int64_t* seg = seg_of(mem, c, i);
                remaining += seg[kSegSize] - seg[kSegTaken];
            }
            if (remaining > best) {
                best = remaining;
                victim = c;
            }
        }
        if (victim < 0) {
            return std::nullopt;
        }
        std::int64_t* seg = front_seg(mem, victim);
        const std::int64_t taken = seg[kSegTaken];
        const std::int64_t take = dls::steal_amount(seg[kSegSize] - taken, min_chunk_);
        seg[kSegTaken] = taken + take;
        ++popped_;
        ++stolen_;
        const std::int64_t begin = seg[kSegStart] + taken;
        return SubChunk{begin, begin + take, true};
    }

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::Technique technique_{};
    dls::Technique formula_{};
    int fan_out_ = 0;
    int child_ = 0;
    std::int64_t min_chunk_ = 1;
    std::int64_t ring_ = 0;
    std::int64_t popped_ = 0;
    std::int64_t stolen_ = 0;
};

}  // namespace hdls::core
