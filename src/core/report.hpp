#pragma once
/// \file report.hpp
/// Execution reports: what a hierarchical run did and how balanced it was.

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "core/types.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace hdls::core {

/// Per-worker accounting (a worker is an MPI rank under MPI+MPI, a thread
/// under MPI+OpenMP).
struct WorkerStats {
    int node = 0;
    int worker_in_node = 0;
    std::int64_t iterations = 0;     ///< loop iterations executed
    std::int64_t chunks = 0;         ///< chunks/sub-chunks executed
    std::int64_t global_refills = 0; ///< level-1 chunks this worker fetched
    double busy_seconds = 0.0;       ///< time inside the loop body
    double finish_seconds = 0.0;     ///< time from loop start to this worker's end
};

/// Result of one hierarchical loop execution.
struct ExecutionReport {
    Approach approach{};
    ClusterShape shape{};
    /// Level-0 and leaf techniques (the paper's "X + Y" shorthand; equal
    /// to levels.front()/levels.back()).
    dls::Technique inter{};
    dls::Technique intra{};
    dls::InterBackend inter_backend{};
    /// Which minimpi substrate carried the run (threads unless the config
    /// or HDLS_TRANSPORT selected shm).
    minimpi::TransportKind transport = minimpi::TransportKind::Threads;
    /// Whether asynchronous chunk prefetching was enabled for the run.
    bool prefetch = false;
    /// The SIMD policy the run requested (HDLS_SIMD / HierConfig::simd)
    /// and the backend it resolved to on this host.
    simd::SimdMode simd_mode = simd::SimdMode::Auto;
    simd::Backend simd_backend = simd::Backend::Scalar;
    /// Thread/rank placement policy (HDLS_PIN / HierConfig::pin).
    minimpi::PinPolicy pin = minimpi::PinPolicy::None;
    /// The machine tree the run scheduled over (outermost level first) and
    /// the effective per-level plan — what resolve_hierarchy produced,
    /// sharded fallbacks already applied.
    std::vector<minimpi::TopologyLevel> topology;
    std::vector<LevelConfig> levels;
    std::int64_t total_iterations = 0;
    double parallel_seconds = 0.0;  ///< max worker finish time (the paper's metric)
    std::vector<WorkerStats> workers;
    /// Merged chunk-lifecycle event trace; null unless HierConfig::trace
    /// was set for the run.
    std::shared_ptr<const trace::Trace> trace;
    /// Always-on runtime metrics, as the run's delta over the process-wide
    /// registry (counters/histograms count only this run's events; gauges
    /// are end-of-run readings). Export with metrics::to_json /
    /// metrics::to_prometheus.
    metrics::Snapshot metrics;

    /// Sum of per-worker iteration counts (must equal total_iterations).
    [[nodiscard]] std::int64_t executed_iterations() const noexcept;

    /// Total level-1 chunks fetched from the global queue.
    [[nodiscard]] std::int64_t global_chunks() const noexcept;

    /// Total chunks/sub-chunks executed.
    [[nodiscard]] std::int64_t executed_chunks() const noexcept;

    /// Coefficient of variation of worker finish times — the load-imbalance
    /// metric of the DLS literature (0 = perfectly balanced).
    [[nodiscard]] double finish_cov() const noexcept;

    /// Number of distinct workers that performed at least one global refill
    /// (> 1 demonstrates the paper's "fastest worker refills" property).
    [[nodiscard]] int distinct_refillers() const noexcept;

    /// Human-readable one-run summary.
    void print(std::ostream& os) const;
};

}  // namespace hdls::core
