#include "core/adaptive_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/global_queue.hpp"
#include "core/sharded_queue.hpp"
#include "util/log.hpp"

namespace hdls::core {


AdaptiveGlobalQueue::AdaptiveGlobalQueue(const minimpi::Comm& comm,
                                         std::int64_t total_iterations,
                                         dls::Technique technique, int level_workers, int node,
                                         std::int64_t min_chunk,
                                         std::vector<double> node_weights, double fac_sigma,
                                         double fac_mu)
    : comm_(comm), total_(total_iterations), level_workers_(level_workers), node_(node) {
    params_.total_iterations = total_iterations;
    params_.workers = level_workers;
    params_.min_chunk = min_chunk;
    params_.sigma = fac_sigma;
    params_.mu = fac_mu;
    params_.validate();
    if (!dls::supports_remaining_based(technique)) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "AdaptiveGlobalQueue: technique lacks a remaining-count-based "
                             "form (use GlobalWorkQueue for step-indexed techniques)");
    }
    if (node < 0 || node >= level_workers) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "AdaptiveGlobalQueue: node id out of range");
    }
    technique_ = technique;
    try {
        static_weights_ = dls::normalize_static_weights(std::move(node_weights), level_workers);
    } catch (const std::invalid_argument& e) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             std::string("AdaptiveGlobalQueue: ") + e.what());
    }

    const std::size_t cells =
        kFeedbackBase + kFeedbackFields * static_cast<std::size_t>(level_workers);
    window_ = minimpi::Window::allocate_shared(
        comm, comm.rank() == 0 ? cells * sizeof(std::int64_t) : 0);
    if (comm.rank() == 0) {
        auto mem = window_.shared_span<std::int64_t>(kHost);
        for (auto& v : mem) {
            v = 0;
        }
        mem[kRemaining] = total_iterations;
    }
    window_.sync();
    comm_.barrier();
}

double AdaptiveGlobalQueue::current_weight(std::int64_t remaining_now) {
    if (!dls::is_adaptive(technique_)) {
        // WF (FAC ignores the weight entirely; 1.0 is harmless).
        return static_weights_[static_cast<std::size_t>(node_)];
    }
    return weight_cache_.weight(technique_, node_, total_, remaining_now, [&] {
        std::vector<dls::NodeFeedback> feedback(static_cast<std::size_t>(level_workers_));
        for (int i = 0; i < level_workers_; ++i) {
            feedback[static_cast<std::size_t>(i)] = feedback_of(i);
        }
        return feedback;
    });
}

std::optional<AdaptiveGlobalQueue::Chunk> AdaptiveGlobalQueue::try_acquire() {
    const std::int64_t glance = window_.atomic_read<std::int64_t>(kHost, kRemaining);
    if (glance <= 0) {
        return std::nullopt;
    }
    const double weight = current_weight(glance);
    const std::int64_t before =
        window_.atomic_update<std::int64_t>(kHost, kRemaining, [&](std::int64_t r) {
            return r - dls::remaining_based_chunk(technique_, params_, r, weight);
        });
    if (before <= 0) {
        return std::nullopt;
    }
    // The chunk formula is a pure function of (remaining, weight), so
    // re-evaluating it at the value the update was applied to reproduces
    // exactly the size subtracted inside the CAS loop.
    const std::int64_t size = dls::remaining_based_chunk(technique_, params_, before, weight);
    if (size <= 0) {
        return std::nullopt;
    }
    const std::int64_t step =
        window_.fetch_and_op<std::int64_t>(1, kHost, kStep, minimpi::AccumulateOp::Sum);
    ++acquired_;
    return Chunk{total_ - before, size, step};
}

void AdaptiveGlobalQueue::report(std::int64_t iterations, double compute_seconds,
                                 double overhead_seconds) {
    if (iterations <= 0 && compute_seconds <= 0.0 && overhead_seconds <= 0.0) {
        return;
    }
    // Times first, iterations last (and feedback_of reads in the opposite
    // order): a concurrent snapshot torn across the three updates can then
    // only pair old iterations with new time — underestimating the node's
    // rate, which is conservative. The reverse tearing would hand a slow
    // node an oversized chunk.
    (void)window_.fetch_and_op<std::int64_t>(dls::feedback_ns(compute_seconds), kHost,
                                             cell_of(node_, 1), minimpi::AccumulateOp::Sum);
    (void)window_.fetch_and_op<std::int64_t>(dls::feedback_ns(overhead_seconds), kHost,
                                             cell_of(node_, 2), minimpi::AccumulateOp::Sum);
    (void)window_.fetch_and_op<std::int64_t>(std::max<std::int64_t>(iterations, 0), kHost,
                                             cell_of(node_, 0), minimpi::AccumulateOp::Sum);
}

std::int64_t AdaptiveGlobalQueue::remaining() const {
    return window_.atomic_read<std::int64_t>(kHost, kRemaining);
}

dls::NodeFeedback AdaptiveGlobalQueue::feedback_of(int node) const {
    dls::NodeFeedback f;
    // Iterations before times — the mirror of report()'s update order, so
    // a torn snapshot can only under-read the rate (see report()).
    f.iterations = window_.atomic_read<std::int64_t>(kHost, cell_of(node, 0));
    f.compute_seconds =
        static_cast<double>(window_.atomic_read<std::int64_t>(kHost, cell_of(node, 1))) * 1e-9;
    f.overhead_seconds =
        static_cast<double>(window_.atomic_read<std::int64_t>(kHost, cell_of(node, 2))) * 1e-9;
    return f;
}

void AdaptiveGlobalQueue::free() {
    comm_.barrier();
    window_.free();
}

std::unique_ptr<InterQueue> make_inter_queue(const minimpi::Comm& comm,
                                             std::int64_t total_iterations,
                                             const HierConfig& cfg, int level_workers,
                                             int node) {
    if (effective_inter_backend(cfg) == dls::InterBackend::Sharded) {
        return std::make_unique<ShardedInterQueue>(comm, total_iterations, cfg.inter,
                                                   level_workers, node, cfg.min_chunk,
                                                   cfg.node_weights);
    }
    if (cfg.inter_backend == dls::InterBackend::Sharded) {
        // FAC and the AWF family need the exact global remaining count (and
        // the feedback region), which a shard cannot provide. Every rank
        // takes this branch identically, so the fallback stays collective.
        if (comm.rank() == 0) {
            util::log_warn("sharded inter-node backend cannot serve ",
                           dls::technique_name(cfg.inter),
                           "; falling back to the centralized queue");
        }
    }
    if (dls::supports_step_indexed(cfg.inter)) {
        return std::make_unique<GlobalWorkQueue>(comm, total_iterations, cfg.inter,
                                                 level_workers, cfg.min_chunk);
    }
    if (dls::supports_remaining_based(cfg.inter)) {
        return std::make_unique<AdaptiveGlobalQueue>(
            comm, total_iterations, cfg.inter, level_workers, node, cfg.min_chunk,
            cfg.node_weights, cfg.fac_sigma, cfg.fac_mu);
    }
    throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                         "make_inter_queue: technique has no distributed form");
}

}  // namespace hdls::core
