#include "core/lease_board.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"

namespace hdls::core {

LeaseBoard::LeaseBoard(const minimpi::Comm& comm, double k, int slots)
    : comm_(comm), k_(k), slots_(slots) {
    if (slots < 1) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "LeaseBoard: slots must be >= 1");
    }
    if (!(k > 0.0)) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "LeaseBoard: deadline multiplier k must be > 0");
    }
    in_use_.assign(static_cast<std::size_t>(slots_), 0);
    window_ = minimpi::Window::allocate_shared(
        comm_, static_cast<std::size_t>(slots_) * kSlotCells * sizeof(std::int64_t));
    // Every slot starts FREE at generation 0; written explicitly (the
    // thread transport's arena is not guaranteed zeroed) and published by
    // the barrier below.
    for (int s = 0; s < slots_; ++s) {
        for (std::size_t c = 0; c < kSlotCells; ++c) {
            window_.atomic_write<std::int64_t>(0, comm_.rank(), cell(s, c));
        }
    }
    window_.sync();
    comm_.barrier();
}

std::int64_t LeaseBoard::deadline_ns() const noexcept {
    constexpr std::int64_t kFloorNs = 100'000'000;  // 100 ms
    const auto scaled = static_cast<std::int64_t>(k_ * ema_seconds_ * 1e9);
    return now_ns() + std::max(scaled, kFloorNs);
}

void LeaseBoard::lease(std::int64_t start, std::int64_t size) {
    const int me = comm_.rank();
    for (int s = 0; s < slots_; ++s) {
        if (in_use_[static_cast<std::size_t>(s)] != 0) {
            continue;
        }
        const std::int64_t word = window_.atomic_read<std::int64_t>(me, cell(s, kState));
        if (state_of(word) != kFree) {
            // A fenced-out lease the claimer has not released yet; the
            // slot returns once the claimer's CAS lands.
            continue;
        }
        // Bounds and deadline first, then the publishing CAS: any rank
        // that observes ACTIVE observes them too (acq_rel ordering).
        window_.atomic_write<std::int64_t>(start, me, cell(s, kStart));
        window_.atomic_write<std::int64_t>(size, me, cell(s, kSize));
        window_.atomic_write<std::int64_t>(deadline_ns(), me, cell(s, kDeadline));
        const std::int64_t next = pack(kActive, gen_of(word) + 1);
        if (window_.compare_and_swap<std::int64_t>(word, next, me, cell(s, kState)) != word) {
            continue;  // claimer released a sibling state concurrently; rescan
        }
        in_use_[static_cast<std::size_t>(s)] = 1;
        records_[start] =
            Record{s, gen_of(word) + 1, std::chrono::steady_clock::now()};
        metrics::rt().lease_acquires->inc();
        return;
    }
    throw minimpi::Error(minimpi::ErrorCode::Resource,
                         "LeaseBoard: no free lease slot (more outstanding chunks than "
                         "slots — executor bug)");
}

bool LeaseBoard::complete(std::int64_t start) {
    const auto it = records_.find(start);
    if (it == records_.end()) {
        return true;  // not leased through this handle
    }
    const Record rec = it->second;
    records_.erase(it);
    in_use_[static_cast<std::size_t>(rec.slot)] = 0;
    const std::int64_t expected = pack(kActive, rec.gen);
    const std::int64_t freed = pack(kFree, rec.gen);
    const std::int64_t prev = window_.compare_and_swap<std::int64_t>(
        expected, freed, comm_.rank(), cell(rec.slot, kState));
    if (prev != expected) {
        // A sweeper moved the lease to RECLAIMED(g) first: the fence is
        // lost, the execution must not be committed. The claimer's
        // RECLAIMED -> FREE CAS will release the slot.
        metrics::rt().lease_fence_losses->inc();
        return false;
    }
    const double took = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - rec.acquired)
                            .count();
    ema_seconds_ = ema_seconds_ == 0.0 ? took : 0.7 * ema_seconds_ + 0.3 * took;
    return true;
}

int LeaseBoard::sweep() {
    int reclaimed = 0;
    const std::int64_t now = now_ns();
    for (int r = 0; r < comm_.size(); ++r) {
        if (r == comm_.rank() || !comm_.is_dead(r)) {
            continue;
        }
        for (int s = 0; s < slots_; ++s) {
            const std::int64_t word = window_.atomic_read<std::int64_t>(r, cell(s, kState));
            if (state_of(word) != kActive) {
                continue;
            }
            if (now <= window_.atomic_read<std::int64_t>(r, cell(s, kDeadline))) {
                continue;  // a live claimer may still be executing it
            }
            const std::int64_t next = pack(kReclaimed, gen_of(word));
            if (window_.compare_and_swap<std::int64_t>(word, next, r, cell(s, kState)) ==
                word) {
                ++reclaimed;
                metrics::rt().lease_reclaims->inc();
            }
        }
    }
    return reclaimed;
}

std::optional<LeaseBoard::Reclaimed> LeaseBoard::claim_one() {
    for (int r = 0; r < comm_.size(); ++r) {
        for (int s = 0; s < slots_; ++s) {
            const std::int64_t word = window_.atomic_read<std::int64_t>(r, cell(s, kState));
            if (state_of(word) != kReclaimed) {
                continue;
            }
            const std::int64_t start = window_.atomic_read<std::int64_t>(r, cell(s, kStart));
            const std::int64_t size = window_.atomic_read<std::int64_t>(r, cell(s, kSize));
            const std::int64_t freed = pack(kFree, gen_of(word));
            if (window_.compare_and_swap<std::int64_t>(word, freed, r, cell(s, kState)) ==
                word) {
                return Reclaimed{start, size};  // single winner across survivors
            }
        }
    }
    return std::nullopt;
}

bool LeaseBoard::quiescent() const {
    for (int r = 0; r < comm_.size(); ++r) {
        for (int s = 0; s < slots_; ++s) {
            if (state_of(window_.atomic_read<std::int64_t>(r, cell(s, kState))) != kFree) {
                return false;
            }
        }
    }
    return true;
}

void LeaseBoard::abandon_all() noexcept {
    records_.clear();
    std::fill(in_use_.begin(), in_use_.end(), 0);
}

void LeaseBoard::free() {
    comm_.barrier();
    window_.free();
}

}  // namespace hdls::core
