#pragma once
/// \file types.hpp
/// Public configuration types of the hierarchical DLS library.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dls/sharding.hpp"
#include "dls/technique.hpp"
#include "minimpi/host_topology.hpp"
#include "minimpi/topology.hpp"
#include "minimpi/transport.hpp"
#include "simd/dispatch.hpp"

namespace hdls::core {

/// Per-level scheduling choice of a topology tree (see HierConfig::levels).
using LevelConfig = dls::LevelScheme;

/// Which hierarchical implementation executes the loop.
enum class Approach {
    MpiMpi,     ///< the paper's proposal: MPI ranks + shared-memory windows
    MpiOpenMp,  ///< the baseline: one rank per node + OpenMP-style threads
};

[[nodiscard]] constexpr std::string_view approach_name(Approach a) noexcept {
    switch (a) {
        case Approach::MpiMpi:
            return "MPI+MPI";
        case Approach::MpiOpenMp:
            return "MPI+OpenMP";
    }
    return "?";
}

/// Simulated cluster shape: `nodes` compute nodes with `workers_per_node`
/// processing elements each (MPI ranks for MPI+MPI, threads for
/// MPI+OpenMP). The paper's evaluation uses 2..16 nodes x 16.
struct ClusterShape {
    int nodes = 2;
    int workers_per_node = 16;

    [[nodiscard]] int total_workers() const noexcept { return nodes * workers_per_node; }
};

/// Fault-injection spec (HDLS_CHAOS="kill:<rank>@<pct>%"): rank
/// `kill_rank` fail-stops — abandons its leases, stops heartbeating and
/// leaves the scheduling loop — once loop progress passes `at_fraction`
/// of the iteration space. The in-process approximation of a machine
/// death: the rank still joins the final collective teardown (a truly
/// absent process is item 1's multi-process launch), but contributes
/// nothing to the loop from the kill point on. MPI+MPI only; see
/// docs/fault-tolerance.md.
struct ChaosSpec {
    int kill_rank = -1;        ///< world rank to kill (-1 = no injection)
    double at_fraction = 0.5;  ///< loop-progress trigger in [0, 1]

    [[nodiscard]] bool enabled() const noexcept { return kill_rank >= 0; }
};

/// The scheduling combination "X + Y" of the paper: X at the inter-node
/// level (over nodes), Y at the intra-node level (over a node's workers).
struct HierConfig {
    dls::Technique inter = dls::Technique::GSS;
    dls::Technique intra = dls::Technique::GSS;
    /// Which level-1 implementation serves `inter`: the centralized rank-0
    /// window, or per-node shards with CAS work stealing (removes the
    /// rank-0 hotspot; techniques without a sharded form — FAC, AWF-* —
    /// fall back to centralized with a warning). Env: HDLS_INTER_BACKEND.
    dls::InterBackend inter_backend = dls::InterBackend::Centralized;
    /// Smallest chunk either level may produce.
    std::int64_t min_chunk = 1;
    /// Allow TSS/FAC2 at the intra level of the MPI+OpenMP baseline via the
    /// extension schedules (LaPeSD-libGOMP-style). The paper's Intel stack
    /// cannot do this — benches reproducing the paper disable it and report
    /// "n/a" for those combinations.
    bool allow_extended_openmp_schedules = true;
    /// Asynchronous chunk prefetching: while a worker executes its current
    /// chunk, the next acquisition is already in flight (a double-buffered
    /// slot on the worker's top WorkSource, filled through the nonblocking
    /// window ops). Exact tiling is preserved — a prefetched run hands out
    /// the same chunk multiset as a synchronous one — and the adaptive
    /// techniques keep their feedback-flush ordering (acquisitions that
    /// would cross a refill whose flush must see the in-flight chunk's
    /// feedback are not prefetched). Env: HDLS_PREFETCH.
    bool prefetch = false;
    /// Record the chunk-lifecycle event trace of the run (see src/trace/).
    /// When false (the default) the executors carry a disabled recorder and
    /// the run pays nothing; when true ExecutionReport::trace holds the
    /// merged events.
    bool trace = false;
    /// Per-worker trace ring-buffer capacity in events (rounded up to a
    /// power of two). Overflow drops events and counts the drops.
    std::size_t trace_capacity = 1 << 14;
    /// Static per-node speeds for WF at the inter-node level (empty = all
    /// equal). When non-empty the size must equal the node count; only
    /// ratios matter. Ignored by every other technique.
    std::vector<double> node_weights;
    /// FAC probabilistic inputs: stddev and mean of the per-iteration
    /// execution time (seconds). The defaults degenerate FAC to a single
    /// bootstrap batch, matching the theory for variance-free loops.
    double fac_sigma = 0.0;
    double fac_mu = 1.0;
    /// Machine tree the scheduling hierarchy follows, outermost level
    /// first (e.g. racks=2, nodes=4, cores=8). Empty means the classic
    /// two-level {nodes, cores} tree derived from the ClusterShape. When
    /// set, the fan-outs must multiply to the shape's total worker count
    /// and the innermost fan-out must equal shape.workers_per_node.
    /// Env: HDLS_TOPOLOGY ("name=fanout,name=fanout,...").
    std::vector<minimpi::TopologyLevel> topology;
    /// Per-level technique/backend choices, one per topology level: level
    /// 0 schedules the root (whole loop) among the outermost groups, the
    /// last level slices within the innermost (shared-memory) group.
    /// Empty derives {inter + inter_backend, [inter + inter_backend ...,]
    /// intra} for the tree's depth; when set, the size must equal the
    /// depth, and `inter`/`intra` are ignored. A level with an unset
    /// backend inherits `inter_backend` (interior levels only; the leaf
    /// level is always the shared local queue).
    std::vector<LevelConfig> levels;
    /// Communication substrate of the MPI+MPI runtime: in-process thread
    /// mailboxes (Threads) or one POSIX shared-memory segment (Shm). Unset
    /// defers to HDLS_TRANSPORT (default: threads). The chunk multiset a
    /// HierConfig produces is transport-invariant. Ignored by MPI+OpenMP.
    std::optional<minimpi::TransportKind> transport;
    /// SIMD backend policy of the batch kernels the loop body may dispatch
    /// through (simd::run_mandelbrot_batch & co): Auto picks the widest
    /// usable backend, ForceScalar pins the scalar reference kernels,
    /// Native demands a vector backend (set_mode throws otherwise). Every
    /// backend is bit-identical, so this knob changes speed, never results.
    /// Unset defers to HDLS_SIMD (default: auto).
    std::optional<simd::SimdMode> simd;
    /// Lease-based fault tolerance (MPI+MPI): every chunk handed to a
    /// worker is leased on a shared lease board (owner + deadline = k x
    /// the worker's chunk-time EMA); a rank whose heartbeat word goes
    /// stale is declared dead and its unfinished leases are reclaimed and
    /// re-executed by survivors, with a completion fence guaranteeing
    /// exactly-once commitment. Env: HDLS_LEASE. Off by default — the
    /// lease write/CAS per chunk is only worth paying when ranks can die.
    bool lease = false;
    /// Lease-deadline multiplier: deadline = now + max(k x chunk-time EMA,
    /// a 100 ms floor). Env: HDLS_LEASE_K.
    double lease_k = 8.0;
    /// Failure-detector timeout: a rank whose heartbeat word has not moved
    /// for this long is declared dead. Env: HDLS_HEARTBEAT_TIMEOUT_MS.
    std::chrono::milliseconds heartbeat_timeout{1000};
    /// Fault injection for chaos testing (HDLS_CHAOS); disabled unless
    /// kill_rank >= 0. Requires lease mode to keep the run exactly-once.
    ChaosSpec chaos;
    /// Thread/rank placement over the host's sockets (minimpi::PinPolicy):
    /// Compact fills a socket before spilling, Scatter round-robins across
    /// sockets, None leaves placement to the OS. Under MPI+OpenMP the leaf
    /// ThreadTeams pin their members; under MPI+MPI (threads transport) the
    /// rank threads are pinned. When a WF run with empty node_weights is
    /// pinned, per-node weights are filled from measured per-CPU kernel
    /// throughput (the honesty loop). Unset defers to HDLS_PIN (none).
    std::optional<minimpi::PinPolicy> pin;
};

/// Loop body executed chunk-wise. MUST be thread-safe across disjoint
/// ranges: chunks run concurrently on all workers of the cluster.
using ChunkBody = std::function<void(std::int64_t begin, std::int64_t end)>;

}  // namespace hdls::core
