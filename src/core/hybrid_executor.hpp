#pragma once
/// \file hybrid_executor.hpp
/// The baseline the paper compares against: hierarchical DLS implemented
/// with the hybrid MPI+OpenMP model.
///
/// One MPI rank per compute node plays the node master. The rank's OpenMP-
/// style thread team executes each level-1 chunk under a worksharing
/// schedule; only thread 0 performs MPI calls (the funneled model the
/// paper describes), and every chunk ends with the implicit barrier of the
/// worksharing construct — the idle time illustrated by the paper's
/// Figure 2.

#include <vector>

#include "core/exec_hooks.hpp"
#include "core/hierarchy.hpp"
#include "core/report.hpp"
#include "core/types.hpp"
#include "minimpi/minimpi.hpp"
#include "trace/recorder.hpp"

namespace hdls::core {

/// Thrown when a scheduling combination is not expressible in the chosen
/// model (e.g. TSS at the intra level of MPI+OpenMP with extensions
/// disabled — the paper's Intel-stack limitation).
class UnsupportedCombination : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Executes the calling node-master rank's share of the hierarchical loop
/// [0, n) with a team of `threads_per_node` threads. Collective over
/// ctx.world() (which must contain one rank per leaf group, i.e. topology
/// ranks_per_node == 1). The masters pull chunks through the scheduling
/// chain of `rh` truncated above its leaf (for the classic depth-2 tree
/// that is just the root backend; deeper trees add relay levels between
/// the masters), and the thread team workshares each chunk under the leaf
/// technique. Returns one WorkerStats per thread of this node. When
/// `session` is non-null every thread records its chunk-lifecycle events
/// under global worker id rank * threads_per_node + tid. `hooks.watchdog`
/// receives the team's heartbeats; the chunk gate, when set, is consulted
/// by the master around each team chunk (the whole team counts as one
/// slot — the funneled model admits no finer grain).
[[nodiscard]] std::vector<WorkerStats> run_hybrid_rank(minimpi::Context& ctx,
                                                       int threads_per_node, std::int64_t n,
                                                       const HierConfig& cfg,
                                                       const ResolvedHierarchy& rh,
                                                       const ChunkBody& body,
                                                       trace::TraceSession* session = nullptr,
                                                       const RankHooks& hooks = {});

}  // namespace hdls::core
