#include "core/env_config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/log.hpp"

namespace hdls::core {

namespace {

[[nodiscard]] std::string normalized(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch))) {
            out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(ch))));
        }
    }
    return out;
}

}  // namespace

std::optional<HierConfig> parse_schedule(std::string_view text) {
    const std::string s = normalized(text);
    if (s.empty()) {
        return std::nullopt;
    }
    std::string combo = s;
    HierConfig cfg;
    if (const auto comma = s.find(','); comma != std::string::npos) {
        combo = s.substr(0, comma);
        const std::string option = s.substr(comma + 1);
        constexpr std::string_view kKey = "MIN_CHUNK=";
        if (option.rfind(kKey, 0) != 0) {
            return std::nullopt;
        }
        const std::string value = option.substr(kKey.size());
        std::int64_t k = 0;
        const auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), k);
        if (ec != std::errc{} || ptr != value.data() + value.size() || k < 1) {
            return std::nullopt;
        }
        cfg.min_chunk = k;
    }
    const auto plus = combo.find('+');
    if (plus == std::string::npos || plus == 0 || plus + 1 >= combo.size()) {
        return std::nullopt;
    }
    const auto inter = dls::technique_from_string(combo.substr(0, plus));
    const auto intra = dls::technique_from_string(combo.substr(plus + 1));
    if (!inter || !intra) {
        return std::nullopt;
    }
    cfg.inter = *inter;
    cfg.intra = *intra;
    return cfg;
}

std::string format_schedule(const HierConfig& cfg) {
    std::string out = std::string(dls::technique_name(cfg.inter)) + "+" +
                      std::string(dls::technique_name(cfg.intra));
    if (cfg.min_chunk != 1) {
        out += ",min_chunk=" + std::to_string(cfg.min_chunk);
    }
    return out;
}

std::optional<Approach> parse_approach(std::string_view text) {
    const std::string s = normalized(text);
    if (s == "MPI+MPI" || s == "MPIMPI") {
        return Approach::MpiMpi;
    }
    if (s == "MPI+OPENMP" || s == "MPIOPENMP" || s == "HYBRID") {
        return Approach::MpiOpenMp;
    }
    return std::nullopt;
}

HierConfig schedule_from_env(const HierConfig& fallback) {
    const char* value = std::getenv("HDLS_SCHEDULE");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto cfg = parse_schedule(value)) {
        // The env var expresses the *schedule* (inter, intra, min_chunk);
        // every other field — tracing, extension schedules, WF node
        // weights, FAC inputs, whatever is added next — keeps the
        // program's configuration.
        HierConfig merged = fallback;
        merged.inter = cfg->inter;
        merged.intra = cfg->intra;
        merged.min_chunk = cfg->min_chunk;
        return merged;
    }
    util::log_warn("HDLS_SCHEDULE='", value, "' is malformed; using ",
                   format_schedule(fallback));
    return fallback;
}

Approach approach_from_env(Approach fallback) {
    const char* value = std::getenv("HDLS_APPROACH");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto a = parse_approach(value)) {
        return *a;
    }
    util::log_warn("HDLS_APPROACH='", value, "' is malformed; using ",
                   approach_name(fallback));
    return fallback;
}

bool trace_from_env(bool fallback) {
    const char* value = std::getenv("HDLS_TRACE");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "1" || s == "ON" || s == "TRUE" || s == "YES") {
        return true;
    }
    if (s == "0" || s == "OFF" || s == "FALSE" || s == "NO") {
        return false;
    }
    util::log_warn("HDLS_TRACE='", value, "' is malformed; using ",
                   fallback ? "on" : "off");
    return fallback;
}

dls::InterBackend inter_backend_from_env(dls::InterBackend fallback) {
    const char* value = std::getenv("HDLS_INTER_BACKEND");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto b = dls::inter_backend_from_string(value)) {
        return *b;
    }
    util::log_warn("HDLS_INTER_BACKEND='", value, "' is malformed; using ",
                   dls::inter_backend_name(fallback));
    return fallback;
}

}  // namespace hdls::core
