#include "core/env_config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "util/log.hpp"

namespace hdls::core {

namespace {

[[nodiscard]] std::string normalized(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch))) {
            out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(ch))));
        }
    }
    return out;
}

[[nodiscard]] std::string stripped(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch))) {
            out.push_back(ch);
        }
    }
    return out;
}

[[nodiscard]] std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::size_t from = 0;
    for (;;) {
        const std::size_t at = text.find(sep, from);
        if (at == std::string::npos) {
            parts.push_back(text.substr(from));
            return parts;
        }
        parts.push_back(text.substr(from, at - from));
        from = at + 1;
    }
}

}  // namespace

std::optional<HierConfig> parse_schedule(std::string_view text) {
    const std::string s = normalized(text);
    if (s.empty()) {
        return std::nullopt;
    }
    std::string combo = s;
    HierConfig cfg;
    if (const auto comma = s.find(','); comma != std::string::npos) {
        combo = s.substr(0, comma);
        const std::string option = s.substr(comma + 1);
        constexpr std::string_view kKey = "MIN_CHUNK=";
        if (option.rfind(kKey, 0) != 0) {
            return std::nullopt;
        }
        const std::string value = option.substr(kKey.size());
        std::int64_t k = 0;
        const auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), k);
        if (ec != std::errc{} || ptr != value.data() + value.size() || k < 1) {
            return std::nullopt;
        }
        cfg.min_chunk = k;
    }
    const std::vector<std::string> parts = split(combo, '+');
    if (parts.size() < 2) {
        return std::nullopt;
    }
    std::vector<dls::Technique> techniques;
    techniques.reserve(parts.size());
    for (const std::string& part : parts) {
        const auto t = dls::technique_from_string(part);
        if (!t) {
            return std::nullopt;
        }
        techniques.push_back(*t);
    }
    cfg.inter = techniques.front();
    cfg.intra = techniques.back();
    if (techniques.size() > 2) {
        // One technique per topology level; backends stay unset so each
        // interior level inherits the run's inter_backend.
        cfg.levels.reserve(techniques.size());
        for (const dls::Technique t : techniques) {
            cfg.levels.push_back(LevelConfig{t, std::nullopt});
        }
    }
    return cfg;
}

std::string format_schedule(const HierConfig& cfg) {
    std::string out;
    if (cfg.levels.size() > 2) {
        for (std::size_t d = 0; d < cfg.levels.size(); ++d) {
            if (d > 0) {
                out += "+";
            }
            out += std::string(dls::technique_name(cfg.levels[d].technique));
        }
    } else {
        out = std::string(dls::technique_name(cfg.inter)) + "+" +
              std::string(dls::technique_name(cfg.intra));
    }
    if (cfg.min_chunk != 1) {
        out += ",min_chunk=" + std::to_string(cfg.min_chunk);
    }
    return out;
}

std::optional<Approach> parse_approach(std::string_view text) {
    const std::string s = normalized(text);
    if (s == "MPI+MPI" || s == "MPIMPI") {
        return Approach::MpiMpi;
    }
    if (s == "MPI+OPENMP" || s == "MPIOPENMP" || s == "HYBRID") {
        return Approach::MpiOpenMp;
    }
    return std::nullopt;
}

std::vector<minimpi::TopologyLevel> parse_topology(std::string_view text) {
    const std::string s = stripped(text);
    if (s.empty()) {
        throw std::invalid_argument("topology: empty spec (expected name=fanout,...)");
    }
    std::vector<minimpi::TopologyLevel> tree;
    for (const std::string& entry : split(s, ',')) {
        if (entry.empty()) {
            throw std::invalid_argument("topology: empty level in '" + s + "'");
        }
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("topology: level '" + entry +
                                        "' is not of the form name=fanout");
        }
        const std::string name = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        if (name.empty()) {
            throw std::invalid_argument("topology: level '" + entry + "' has an empty name");
        }
        int fan_out = 0;
        const auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), fan_out);
        if (ec != std::errc{} || ptr != value.data() + value.size()) {
            throw std::invalid_argument("topology: level '" + name + "' fan-out '" + value +
                                        "' is not a number");
        }
        if (fan_out < 1) {
            throw std::invalid_argument("topology: level '" + name +
                                        "' fan-out must be >= 1 (got " + value + ")");
        }
        tree.push_back({name, fan_out});
    }
    return tree;
}

std::string format_topology(const std::vector<minimpi::TopologyLevel>& tree) {
    std::string out;
    for (std::size_t d = 0; d < tree.size(); ++d) {
        if (d > 0) {
            out += ",";
        }
        out += tree[d].name + "=" + std::to_string(tree[d].fan_out);
    }
    return out;
}

HierConfig schedule_from_env(const HierConfig& fallback) {
    const char* value = std::getenv("HDLS_SCHEDULE");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto cfg = parse_schedule(value)) {
        // The env var expresses the *schedule* (per-level techniques,
        // min_chunk); every other field — tracing, topology, extension
        // schedules, WF node weights, FAC inputs, whatever is added next —
        // keeps the program's configuration.
        HierConfig merged = fallback;
        merged.inter = cfg->inter;
        merged.intra = cfg->intra;
        merged.min_chunk = cfg->min_chunk;
        merged.levels = cfg->levels;
        return merged;
    }
    util::log_warn("HDLS_SCHEDULE='", value, "' is malformed; using ",
                   format_schedule(fallback));
    return fallback;
}

Approach approach_from_env(Approach fallback) {
    const char* value = std::getenv("HDLS_APPROACH");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto a = parse_approach(value)) {
        return *a;
    }
    util::log_warn("HDLS_APPROACH='", value, "' is malformed; using ",
                   approach_name(fallback));
    return fallback;
}

bool trace_from_env(bool fallback) {
    const char* value = std::getenv("HDLS_TRACE");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "1" || s == "ON" || s == "TRUE" || s == "YES") {
        return true;
    }
    if (s == "0" || s == "OFF" || s == "FALSE" || s == "NO") {
        return false;
    }
    util::log_warn("HDLS_TRACE='", value, "' is malformed; using ",
                   fallback ? "on" : "off");
    return fallback;
}

bool prefetch_from_env(bool fallback) {
    const char* value = std::getenv("HDLS_PREFETCH");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "1" || s == "ON" || s == "TRUE" || s == "YES") {
        return true;
    }
    if (s == "0" || s == "OFF" || s == "FALSE" || s == "NO") {
        return false;
    }
    throw std::invalid_argument(std::string("HDLS_PREFETCH='") + value +
                                "' is not a boolean (expected 1/on/true/yes or 0/off/false/no)");
}

dls::InterBackend inter_backend_from_env(dls::InterBackend fallback) {
    const char* value = std::getenv("HDLS_INTER_BACKEND");
    if (value == nullptr) {
        return fallback;
    }
    if (const auto b = dls::inter_backend_from_string(value)) {
        return *b;
    }
    throw std::invalid_argument(std::string("HDLS_INTER_BACKEND='") + value +
                                "' is not a backend (expected 'centralized' or 'sharded')");
}

std::vector<minimpi::TopologyLevel> topology_from_env(
    std::vector<minimpi::TopologyLevel> fallback) {
    const char* value = std::getenv("HDLS_TOPOLOGY");
    if (value == nullptr) {
        return fallback;
    }
    try {
        return parse_topology(value);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("HDLS_TOPOLOGY: ") + e.what());
    }
}

bool metrics_from_env(bool fallback) {
    const char* value = std::getenv("HDLS_METRICS");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "1" || s == "ON" || s == "TRUE" || s == "YES") {
        return true;
    }
    if (s == "0" || s == "OFF" || s == "FALSE" || s == "NO") {
        return false;
    }
    throw std::invalid_argument(std::string("HDLS_METRICS='") + value +
                                "' is not a boolean (expected 1/on/true/yes or 0/off/false/no)");
}

std::chrono::milliseconds metrics_period_from_env(std::chrono::milliseconds fallback) {
    const char* value = std::getenv("HDLS_METRICS_PERIOD_MS");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = stripped(value);
    std::int64_t ms = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), ms);
    if (ec != std::errc{} || ptr != s.data() + s.size() || ms < 1) {
        throw std::invalid_argument(std::string("HDLS_METRICS_PERIOD_MS='") + value +
                                    "' is not a positive integer (milliseconds)");
    }
    return std::chrono::milliseconds(ms);
}

minimpi::TransportKind transport_from_env(minimpi::TransportKind fallback) {
    return minimpi::transport_from_env(fallback);
}

int max_jobs_from_env(int fallback) {
    const char* value = std::getenv("HDLS_MAX_JOBS");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = stripped(value);
    int jobs = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), jobs);
    if (ec != std::errc{} || ptr != s.data() + s.size() || jobs < 1) {
        throw std::invalid_argument(std::string("HDLS_MAX_JOBS='") + value +
                                    "' is not a positive integer");
    }
    return jobs;
}

int job_queue_depth_from_env(int fallback) {
    const char* value = std::getenv("HDLS_JOB_QUEUE_DEPTH");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = stripped(value);
    int depth = -1;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), depth);
    if (ec != std::errc{} || ptr != s.data() + s.size() || depth < 0) {
        throw std::invalid_argument(std::string("HDLS_JOB_QUEUE_DEPTH='") + value +
                                    "' is not a non-negative integer");
    }
    return depth;
}

simd::SimdMode simd_mode_from_env(simd::SimdMode fallback) {
    const char* value = std::getenv("HDLS_SIMD");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "AUTO") {
        return simd::SimdMode::Auto;
    }
    if (s == "SCALAR") {
        return simd::SimdMode::ForceScalar;
    }
    if (s == "NATIVE") {
        return simd::SimdMode::Native;
    }
    throw std::invalid_argument(std::string("HDLS_SIMD='") + value +
                                "' is not a SIMD policy (expected 'auto', 'scalar' or "
                                "'native')");
}

bool lease_from_env(bool fallback) {
    const char* value = std::getenv("HDLS_LEASE");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = normalized(value);
    if (s == "1" || s == "ON" || s == "TRUE" || s == "YES") {
        return true;
    }
    if (s == "0" || s == "OFF" || s == "FALSE" || s == "NO") {
        return false;
    }
    throw std::invalid_argument(std::string("HDLS_LEASE='") + value +
                                "' is not a boolean (expected 1/on/true/yes or 0/off/false/no)");
}

double lease_k_from_env(double fallback) {
    const char* value = std::getenv("HDLS_LEASE_K");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = stripped(value);
    char* end = nullptr;
    const double k = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || s.empty() || !(k > 0.0)) {
        throw std::invalid_argument(std::string("HDLS_LEASE_K='") + value +
                                    "' is not a positive number");
    }
    return k;
}

std::chrono::milliseconds heartbeat_timeout_from_env(std::chrono::milliseconds fallback) {
    const char* value = std::getenv("HDLS_HEARTBEAT_TIMEOUT_MS");
    if (value == nullptr) {
        return fallback;
    }
    const std::string s = stripped(value);
    std::int64_t ms = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), ms);
    if (ec != std::errc{} || ptr != s.data() + s.size() || ms < 1) {
        throw std::invalid_argument(std::string("HDLS_HEARTBEAT_TIMEOUT_MS='") + value +
                                    "' is not a positive integer (milliseconds)");
    }
    return std::chrono::milliseconds(ms);
}

ChaosSpec parse_chaos(std::string_view text) {
    const std::string s = stripped(std::string(text));
    const auto fail = [&text]() -> ChaosSpec {
        throw std::invalid_argument(std::string("chaos spec '") + std::string(text) +
                                    "' is malformed (expected \"kill:<rank>@<pct>%\", e.g. "
                                    "\"kill:1@50%\")");
    };
    constexpr std::string_view kVerb = "kill:";
    if (s.size() <= kVerb.size() || normalized(s.substr(0, kVerb.size())) != "KILL:") {
        return fail();
    }
    const std::string rest = stripped(s.substr(kVerb.size()));
    const std::size_t at = rest.find('@');
    if (at == std::string::npos) {
        return fail();
    }
    const std::string rank_s = stripped(rest.substr(0, at));
    std::string pct_s = stripped(rest.substr(at + 1));
    if (!pct_s.empty() && pct_s.back() == '%') {
        pct_s = stripped(pct_s.substr(0, pct_s.size() - 1));
    }
    ChaosSpec spec;
    {
        const auto [ptr, ec] =
            std::from_chars(rank_s.data(), rank_s.data() + rank_s.size(), spec.kill_rank);
        if (ec != std::errc{} || ptr != rank_s.data() + rank_s.size() || spec.kill_rank < 0) {
            return fail();
        }
    }
    double pct = -1.0;
    {
        char* end = nullptr;
        pct = std::strtod(pct_s.c_str(), &end);
        if (pct_s.empty() || end != pct_s.c_str() + pct_s.size() || pct < 0.0 || pct > 100.0) {
            return fail();
        }
    }
    spec.at_fraction = pct / 100.0;
    return spec;
}

ChaosSpec chaos_from_env(ChaosSpec fallback) {
    const char* value = std::getenv("HDLS_CHAOS");
    if (value == nullptr) {
        return fallback;
    }
    try {
        return parse_chaos(value);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("HDLS_CHAOS: ") + e.what());
    }
}

minimpi::PinPolicy pin_from_env(minimpi::PinPolicy fallback) {
    const char* value = std::getenv("HDLS_PIN");
    if (value == nullptr) {
        return fallback;
    }
    std::string s = stripped(value);
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (const auto p = minimpi::pin_policy_from_string(s)) {
        return *p;
    }
    throw std::invalid_argument(std::string("HDLS_PIN='") + value +
                                "' is not a pin policy (expected 'none', 'compact' or "
                                "'scatter')");
}

std::string metrics_file_from_env(std::string fallback) {
    const char* value = std::getenv("HDLS_METRICS_FILE");
    if (value == nullptr) {
        return fallback;
    }
    if (*value == '\0') {
        throw std::invalid_argument(
            "HDLS_METRICS_FILE='' is not a path (unset the variable to use the default)");
    }
    return value;
}

}  // namespace hdls::core
