#pragma once
/// \file lease_board.hpp
/// Lease-based chunk ownership with exactly-once reclamation — the fault
/// tolerance layer of the MPI+MPI executor (docs/fault-tolerance.md).
///
/// Every chunk a rank acquires is *leased* on a shared RMA window before
/// execution: a lease record (chunk bounds + a wall-clock deadline derived
/// from the owner's chunk-time EMA) written into one of the owner's board
/// slots. A rank whose transport heartbeat word goes stale past the
/// failure-detector timeout (minimpi::FailureDetector) is declared dead;
/// survivors then *reclaim* its expired leases and re-execute the chunks,
/// with a CAS protocol guaranteeing each lost chunk is re-executed by
/// exactly one survivor and each chunk's results are *committed* exactly
/// once even if a falsely-suspected owner finishes late.
///
/// Per-rank board layout (the rank's window segment): `slots` slots of
/// four std::int64_t cells each —
///
///   cell 0  state word: state in the low 2 bits, generation above
///   cell 1  chunk start
///   cell 2  chunk size
///   cell 3  lease deadline (steady-clock nanoseconds)
///
/// The slot state machine (gen = g throughout one occupancy; the
/// generation bumps only on FREE -> ACTIVE, so a recycled slot can never
/// satisfy a stale CAS — the ABA guard):
///
///   FREE(g)      --owner writes start/size/deadline, CAS-->  ACTIVE(g+1)
///   ACTIVE(g)    --owner completion fence, CAS-->            FREE(g)
///   ACTIVE(g)    --sweeper: owner dead && now > deadline-->  RECLAIMED(g)
///   RECLAIMED(g) --claimer (single CAS winner)-->            FREE(g)
///
/// Exactly-once rests on two CAS races with single winners:
///  * the *completion fence*: an owner commits its chunk only if
///    CAS ACTIVE(g) -> FREE(g) succeeds. A sweeper that already moved the
///    slot to RECLAIMED(g) wins the race instead, the owner observes the
///    loss and discards the execution (uncommitted) — a slow-but-alive
///    owner can therefore double-*execute* but never double-*commit*;
///  * the *claim*: survivors race CAS RECLAIMED(g) -> FREE(g); the single
///    winner re-leases the chunk into its own board and executes it.
///
/// Only the owner transitions its own FREE slots, so lease() needs no
/// cross-rank coordination; start/size/deadline are written before the
/// FREE -> ACTIVE CAS publishes them (acq_rel on every window atomic), so
/// any rank that observes ACTIVE or RECLAIMED observes the bounds too.
///
/// The board is transport-agnostic: it speaks only Window atomics, so the
/// same protocol runs over the threads and shm substrates.

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace hdls::core {

class LeaseBoard {
public:
    /// A chunk reclaimed from a dead owner, ready for re-execution.
    struct Reclaimed {
        std::int64_t start = 0;
        std::int64_t size = 0;
    };

    /// Collective over `comm` (one board segment per rank). `k` is the
    /// deadline multiplier: deadline = now + max(k x chunk-time EMA, a
    /// 100 ms floor). `slots` bounds the rank's concurrently outstanding
    /// leases (current chunk + prefetch slot use two; 8 leaves headroom).
    LeaseBoard(const minimpi::Comm& comm, double k, int slots = 8);

    LeaseBoard(const LeaseBoard&) = delete;
    LeaseBoard& operator=(const LeaseBoard&) = delete;

    /// Leases [start, start + size) into one of the calling rank's free
    /// slots before execution. Throws minimpi::Error(Resource) if every
    /// slot is occupied (more outstanding chunks than `slots` — an
    /// executor bug, not a runtime condition).
    void lease(std::int64_t start, std::int64_t size);

    /// The completion fence: commits the lease acquired for `start`.
    /// Returns true when the CAS ACTIVE(g) -> FREE(g) won — the execution
    /// counts. Returns false when a sweeper reclaimed the lease first (the
    /// owner was suspected dead): the caller must treat the execution as
    /// uncommitted; the reclaiming survivor owns the chunk now. Unknown
    /// `start` (never leased through this handle) returns true.
    [[nodiscard]] bool complete(std::int64_t start);

    /// One detection round over *dead* ranks' boards: moves every ACTIVE
    /// lease of a dead owner whose deadline has passed to RECLAIMED.
    /// Returns the number of leases newly reclaimed by this call.
    int sweep();

    /// Claims one RECLAIMED lease anywhere on the board (single CAS
    /// winner across all survivors). The caller re-leases and re-executes
    /// the returned chunk. std::nullopt when nothing is claimable.
    [[nodiscard]] std::optional<Reclaimed> claim_one();

    /// True when every slot of every rank is FREE — no lease outstanding
    /// anywhere, i.e. every acquired chunk was committed exactly once.
    /// The executor's drain loop spins on this (sweeping and claiming)
    /// until the board settles.
    [[nodiscard]] bool quiescent() const;

    /// Fail-stop: forgets every outstanding local lease WITHOUT touching
    /// the window — the slots stay ACTIVE for survivors to reclaim. The
    /// chaos seam (HDLS_CHAOS) calls this when killing a rank.
    void abandon_all() noexcept;

    /// Outstanding leases of this handle (telemetry/tests).
    [[nodiscard]] int outstanding() const noexcept {
        return static_cast<int>(records_.size());
    }

    /// The chunk-time EMA feeding the deadline (0 before the first
    /// completion).
    [[nodiscard]] double ema_seconds() const noexcept { return ema_seconds_; }

    /// Slots per rank (layout introspection for tests).
    [[nodiscard]] int slots() const noexcept { return slots_; }

    /// Collective teardown.
    void free();

private:
    static constexpr std::size_t kState = 0;
    static constexpr std::size_t kStart = 1;
    static constexpr std::size_t kSize = 2;
    static constexpr std::size_t kDeadline = 3;
    static constexpr std::size_t kSlotCells = 4;

    static constexpr std::int64_t kFree = 0;
    static constexpr std::int64_t kActive = 1;
    static constexpr std::int64_t kReclaimed = 2;

    [[nodiscard]] static constexpr std::int64_t pack(std::int64_t state,
                                                     std::int64_t gen) noexcept {
        return state | (gen << 2);
    }
    [[nodiscard]] static constexpr std::int64_t state_of(std::int64_t word) noexcept {
        return word & 3;
    }
    [[nodiscard]] static constexpr std::int64_t gen_of(std::int64_t word) noexcept {
        return word >> 2;
    }

    [[nodiscard]] std::size_t cell(int slot, std::size_t c) const noexcept {
        return static_cast<std::size_t>(slot) * kSlotCells + c;
    }

    [[nodiscard]] static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /// deadline = now + max(k x EMA, the 100 ms floor). The floor keeps
    /// deadlines meaningful before the first completion seeds the EMA and
    /// under microsecond chunk bodies; reclamation additionally requires
    /// the owner to be *declared dead*, so a short deadline alone never
    /// reclaims a live owner's lease.
    [[nodiscard]] std::int64_t deadline_ns() const noexcept;

    struct Record {
        int slot = -1;
        std::int64_t gen = 0;
        std::chrono::steady_clock::time_point acquired{};
    };

    minimpi::Comm comm_;
    minimpi::Window window_;
    double k_ = 8.0;
    int slots_ = 8;
    double ema_seconds_ = 0.0;
    /// Outstanding local leases, keyed by chunk start (starts are unique
    /// within a run: the hierarchy tiles [0, N) exactly).
    std::unordered_map<std::int64_t, Record> records_;
    /// Own-slot occupancy as *this handle* sees it; a slot is reusable
    /// only once its window state returns to FREE (a reclaimed slot stays
    /// unavailable until the claimer's CAS releases it).
    std::vector<char> in_use_;
};

}  // namespace hdls::core
