#pragma once
/// \file hdls.hpp
/// Umbrella header and the primary public entry point of the hierarchical
/// DLS library.
///
/// Quickstart:
///
///   #include "core/hdls.hpp"
///
///   hdls::core::ClusterShape shape{.nodes = 4, .workers_per_node = 8};
///   hdls::core::HierConfig cfg{.inter = hdls::dls::Technique::GSS,
///                              .intra = hdls::dls::Technique::Static};
///   auto report = hdls::parallel_for(shape, hdls::core::Approach::MpiMpi,
///                                    cfg, n_iterations,
///                                    [&](std::int64_t b, std::int64_t e) {
///                                        for (auto i = b; i < e; ++i) work(i);
///                                    });
///   report.print(std::cout);

#include "core/adaptive_queue.hpp"    // IWYU pragma: export
#include "core/env_config.hpp"        // IWYU pragma: export
#include "core/global_queue.hpp"      // IWYU pragma: export
#include "core/hierarchy.hpp"         // IWYU pragma: export
#include "core/inter_queue.hpp"       // IWYU pragma: export
#include "core/hybrid_executor.hpp"   // IWYU pragma: export
#include "core/job_service.hpp"       // IWYU pragma: export
#include "core/local_queue.hpp"       // IWYU pragma: export
#include "core/mpi_mpi_executor.hpp"  // IWYU pragma: export
#include "core/report.hpp"            // IWYU pragma: export
#include "core/runner.hpp"            // IWYU pragma: export
#include "core/sharded_queue.hpp"     // IWYU pragma: export
#include "core/sharded_relay.hpp"     // IWYU pragma: export
#include "core/slot_governor.hpp"     // IWYU pragma: export
#include "core/types.hpp"             // IWYU pragma: export
#include "core/work_source.hpp"       // IWYU pragma: export
#include "trace/analysis.hpp"         // IWYU pragma: export
#include "trace/export.hpp"           // IWYU pragma: export
#include "trace/recorder.hpp"         // IWYU pragma: export
#include "trace/trace.hpp"            // IWYU pragma: export

namespace hdls {

/// Executes the loop [0, n) hierarchically — see core::run_hierarchical.
[[nodiscard]] inline core::ExecutionReport parallel_for(const core::ClusterShape& shape,
                                                        core::Approach approach,
                                                        const core::HierConfig& cfg,
                                                        std::int64_t n,
                                                        const core::ChunkBody& body) {
    return core::run_hierarchical(shape, approach, cfg, n, body);
}

}  // namespace hdls
