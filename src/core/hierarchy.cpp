#include "core/hierarchy.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/sharded_relay.hpp"
#include "util/log.hpp"

namespace hdls::core {

namespace {

[[nodiscard]] std::string level_label(const ResolvedHierarchy& rh, int d) {
    return "level " + std::to_string(d) + " ('" +
           rh.tree[static_cast<std::size_t>(d)].name + "')";
}

}  // namespace

ClusterShape shape_from_topology(const std::vector<minimpi::TopologyLevel>& tree) {
    if (tree.size() < 2) {
        throw std::invalid_argument(
            "topology: at least two levels are required (an inter level and the leaf)");
    }
    ClusterShape shape;
    shape.workers_per_node = tree.back().fan_out;
    shape.nodes = 1;
    for (std::size_t d = 0; d + 1 < tree.size(); ++d) {
        shape.nodes *= tree[d].fan_out;
    }
    return shape;
}

ResolvedHierarchy resolve_hierarchy(const ClusterShape& shape, const HierConfig& cfg) {
    ResolvedHierarchy rh;
    rh.tree = cfg.topology;
    if (rh.tree.empty()) {
        rh.tree = {{"nodes", shape.nodes}, {"cores", shape.workers_per_node}};
    }
    if (rh.tree.size() < 2) {
        throw std::invalid_argument(
            "topology: at least two levels are required (an inter level and the leaf)");
    }
    try {
        rh.topology().validate();
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("topology: ") + e.what());
    }
    if (rh.tree.back().fan_out != shape.workers_per_node) {
        throw std::invalid_argument(
            "topology: innermost fan-out (" + std::to_string(rh.tree.back().fan_out) +
            ") must equal workers_per_node (" + std::to_string(shape.workers_per_node) + ")");
    }
    const std::int64_t product = rh.topology().tree_ranks();
    if (product != shape.total_workers()) {
        throw std::invalid_argument("topology: level fan-outs multiply to " +
                                    std::to_string(product) + " but the cluster has " +
                                    std::to_string(shape.total_workers()) + " workers");
    }

    const int depth = rh.depth();
    if (cfg.levels.empty()) {
        rh.levels.assign(static_cast<std::size_t>(depth),
                         LevelConfig{cfg.inter, cfg.inter_backend});
        rh.levels.back() = LevelConfig{cfg.intra, std::nullopt};
    } else {
        if (static_cast<int>(cfg.levels.size()) != depth) {
            throw std::invalid_argument(
                "levels: got " + std::to_string(cfg.levels.size()) +
                " level configs for a depth-" + std::to_string(depth) + " topology");
        }
        rh.levels = cfg.levels;
        for (int d = 0; d < depth - 1; ++d) {
            auto& lc = rh.levels[static_cast<std::size_t>(d)];
            if (!lc.backend) {
                lc.backend = cfg.inter_backend;
            }
        }
        rh.levels.back().backend.reset();
    }

    // Per-level capability checks + sharded fallback resolution, so the
    // plan (and every report quoting it) states what actually runs.
    {
        auto& root = rh.levels.front();
        if (!dls::supports_internode(root.technique)) {
            throw std::invalid_argument(
                std::string("level 0 technique ") +
                std::string(dls::technique_name(root.technique)) +
                " has neither a step-indexed nor a remaining-count-based distributed form");
        }
        if (root.backend == dls::InterBackend::Sharded &&
            !dls::supports_sharded(root.technique)) {
            util::log_warn("sharded backend cannot serve ",
                           dls::technique_name(root.technique),
                           " at level 0; falling back to the centralized queue");
            root.backend = dls::InterBackend::Centralized;
        }
    }
    for (int d = 1; d < depth - 1; ++d) {
        auto& lc = rh.levels[static_cast<std::size_t>(d)];
        if (lc.backend == dls::InterBackend::Sharded && !dls::supports_sharded(lc.technique)) {
            util::log_warn("sharded backend cannot serve ",
                           dls::technique_name(lc.technique), " at ", level_label(rh, d),
                           "; falling back to the centralized relay");
            lc.backend = dls::InterBackend::Centralized;
        }
        if (lc.backend == dls::InterBackend::Centralized &&
            !dls::supports_step_indexed(lc.technique)) {
            throw std::invalid_argument(
                level_label(rh, d) + " technique " +
                std::string(dls::technique_name(lc.technique)) +
                " cannot relay parent chunks (needs a step-indexed or sharded form)");
        }
    }
    return rh;
}

Hierarchy build_hierarchy(const minimpi::Comm& world, std::int64_t total_iterations,
                          const ResolvedHierarchy& rh, const HierConfig& cfg,
                          trace::WorkerTracer& tracer, bool include_leaf) {
    // Coordinate math over the levels the ranks of `world` actually span:
    // the full tree for MPI+MPI, the tree minus its thread-team leaf for
    // the MPI+OpenMP masters.
    std::vector<minimpi::TopologyLevel> span = rh.tree;
    if (!include_leaf) {
        span.pop_back();
    }
    const minimpi::Topology coords = minimpi::Topology::tree(span);
    if (coords.tree_ranks() != world.size()) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "build_hierarchy: topology does not match the world size");
    }
    const int rank = world.rank();
    const int last = static_cast<int>(span.size()) - 1;

    Hierarchy h;
    {
        // The root backend schedules [0, N) among the level-0 groups; the
        // factory keys off HierConfig, so hand it the resolved level plan.
        HierConfig root_cfg = cfg;
        root_cfg.inter = rh.levels.front().technique;
        root_cfg.inter_backend =
            rh.levels.front().backend.value_or(dls::InterBackend::Centralized);
        h.root_ = make_inter_queue(world, total_iterations, root_cfg, rh.tree.front().fan_out,
                                   coords.coord_of(rank, 0));
    }

    WorkSource* parent = h.root_.get();
    for (int d = 1; d <= last; ++d) {
        const LevelConfig& lc = rh.levels[static_cast<std::size_t>(d)];
        const int fan_out = rh.tree[static_cast<std::size_t>(d)].fan_out;
        minimpi::Comm gcomm = world.split(coords.group_of(rank, d), rank);
        std::unique_ptr<LevelQueue> queue;
        if (lc.backend == dls::InterBackend::Sharded) {
            queue = std::make_unique<ShardedRelayQueue>(gcomm, lc.technique, cfg.min_chunk,
                                                        fan_out, coords.coord_of(rank, d));
        } else {
            queue = std::make_unique<NodeWorkQueue>(gcomm, lc.technique, cfg.min_chunk,
                                                    fan_out);
        }
        auto composed = std::make_unique<ComposedWorkSource>(*queue, *parent, tracer, d);
        parent = composed.get();
        h.queues_.push_back(std::move(queue));
        h.composed_.push_back(std::move(composed));
    }
    // Asynchronous prefetching lives on the chain's top: that is the
    // handle whose acquisitions sit between the caller's chunk executions
    // (deeper levels are only reached through it). Root-only chains (the
    // depth-2 MPI+OpenMP master) have no slot to buffer in — the funneled
    // master cannot overlap its own worksharing — so prefetch is a no-op
    // there.
    if (cfg.prefetch && !h.composed_.empty()) {
        h.composed_.back()->set_prefetch(true);
    }
    return h;
}

}  // namespace hdls::core
