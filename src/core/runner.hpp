#pragma once
/// \file runner.hpp
/// One-call entry point: execute a loop hierarchically on a simulated
/// cluster and collect the execution report.

#include <optional>
#include <string>

#include "core/exec_hooks.hpp"
#include "core/report.hpp"
#include "core/types.hpp"

namespace hdls::core {

/// Validates a (shape, approach, config) combination; throws
/// std::invalid_argument / UnsupportedCombination with a actionable
/// message if the combination cannot run.
void validate_combination(const ClusterShape& shape, Approach approach, const HierConfig& cfg);

/// Per-run options beyond the scheduling config — the seams the
/// JobService (and tests) thread into a run without touching HierConfig:
/// the multi-tenant chunk gate, a job id for trace stamping, and explicit
/// metrics-sampler overrides (so concurrent runs get separate watchdogs /
/// exposition files regardless of process-wide env state).
struct RunOptions {
    /// Consulted between chunk acquisition and execution (see ChunkGate).
    /// Must outlive the call. Null = ungated (classic single-tenant run).
    ChunkGate* gate = nullptr;
    /// Job id stamped on every trace event of this run (-1 = untagged);
    /// lets merge_job_traces build a multi-job timeline without rewriting.
    int job = -1;
    /// Override HDLS_METRICS for this run (sampler + stall watchdog).
    std::optional<bool> metrics;
    /// Override HDLS_METRICS_FILE (only read when the sampler runs).
    std::optional<std::string> metrics_file;
};

/// Runs the loop [0, n) under the given approach on a thread-backed
/// cluster of shape.nodes x shape.workers_per_node and returns the merged
/// report. `body` must be thread-safe across disjoint ranges.
[[nodiscard]] ExecutionReport run_hierarchical(const ClusterShape& shape, Approach approach,
                                               const HierConfig& cfg, std::int64_t n,
                                               const ChunkBody& body);

/// As above, with per-run execution options. Safe to call concurrently
/// from several threads of one process: each run installs its own
/// watchdog (refcounted registry) and beats it explicitly, and the
/// metrics delta attached to the report is the *process-wide* delta over
/// the run's span — concurrent runs therefore see each other's counts in
/// their deltas (the registry is process-global by design; per-job
/// attribution comes from the JobService's labeled job metrics and
/// per-job traces instead).
[[nodiscard]] ExecutionReport run_hierarchical(const ClusterShape& shape, Approach approach,
                                               const HierConfig& cfg, std::int64_t n,
                                               const ChunkBody& body, const RunOptions& opts);

/// Serial reference execution (for correctness comparisons).
void run_serial(std::int64_t n, const ChunkBody& body);

}  // namespace hdls::core
