#pragma once
/// \file runner.hpp
/// One-call entry point: execute a loop hierarchically on a simulated
/// cluster and collect the execution report.

#include "core/report.hpp"
#include "core/types.hpp"

namespace hdls::core {

/// Validates a (shape, approach, config) combination; throws
/// std::invalid_argument / UnsupportedCombination with a actionable
/// message if the combination cannot run.
void validate_combination(const ClusterShape& shape, Approach approach, const HierConfig& cfg);

/// Runs the loop [0, n) under the given approach on a thread-backed
/// cluster of shape.nodes x shape.workers_per_node and returns the merged
/// report. `body` must be thread-safe across disjoint ranges.
[[nodiscard]] ExecutionReport run_hierarchical(const ClusterShape& shape, Approach approach,
                                               const HierConfig& cfg, std::int64_t n,
                                               const ChunkBody& body);

/// Serial reference execution (for correctness comparisons).
void run_serial(std::int64_t n, const ChunkBody& body);

}  // namespace hdls::core
