#pragma once
/// \file hierarchy.hpp
/// Building the recursive scheduling hierarchy from a topology tree.
///
/// resolve_hierarchy turns a HierConfig (+ ClusterShape) into the concrete
/// per-level plan — the machine tree and one effective LevelConfig per
/// level — validating everything up front with one-line errors.
/// build_hierarchy then assembles, per rank, the WorkSource chain that
/// plan describes: the root inter-backend over the whole loop, one relay
/// queue + ComposedWorkSource per deeper level (each over the rank's
/// group communicator at that depth), the leaf being the paper's
/// node-local shared queue. The classic two-level {nodes, cores} run is
/// exactly the depth-2 instance of this construction — same queues, same
/// chunk sequences — and the MPI+OpenMP baseline uses the same chain
/// truncated above its thread-team leaf.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/inter_queue.hpp"
#include "core/types.hpp"
#include "core/work_source.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

/// The validated per-level plan of one run.
struct ResolvedHierarchy {
    /// Machine tree, outermost level first; depth >= 2.
    std::vector<minimpi::TopologyLevel> tree;
    /// One entry per tree level. Interior backends are resolved (engaged):
    /// a sharded request for a technique without a sharded form has
    /// already fallen back to Centralized. The leaf entry's backend is
    /// disengaged — the leaf is always the level's shared local queue.
    std::vector<LevelConfig> levels;

    [[nodiscard]] int depth() const noexcept { return static_cast<int>(tree.size()); }

    /// The minimpi topology of the full tree (MPI+MPI rank layout).
    [[nodiscard]] minimpi::Topology topology() const { return minimpi::Topology::tree(tree); }
};

/// The ClusterShape a topology tree implies: workers_per_node = the
/// innermost fan-out, nodes = the product of the outer fan-outs (the
/// leaf-group count). Lets callers that take the tree as primary input
/// (HDLS_TOPOLOGY) derive the matching shape instead of hand-rolling the
/// products.
[[nodiscard]] ClusterShape shape_from_topology(
    const std::vector<minimpi::TopologyLevel>& tree);

/// Resolves cfg.topology / cfg.levels against the cluster shape, deriving
/// the classic defaults where unset, and validates: tree fan-outs >= 1
/// with non-empty names, fan-out product == shape.total_workers(),
/// innermost fan-out == shape.workers_per_node, cfg.levels size == depth
/// when set, and per-level technique capabilities (root: a distributed
/// form; interior: a step-indexed or sharded form). Throws
/// std::invalid_argument with a one-line message otherwise. Leaf-level
/// requirements are approach-specific and stay in validate_combination.
[[nodiscard]] ResolvedHierarchy resolve_hierarchy(const ClusterShape& shape,
                                                  const HierConfig& cfg);

/// One rank's view of the assembled chain. Movable; collective teardown
/// via free() (which releases the whole chain root-last).
class Hierarchy {
public:
    /// The source executors acquire from (the deepest level built).
    [[nodiscard]] WorkSource& top() noexcept {
        return composed_.empty() ? *root_ : *composed_.back();
    }

    /// The top as a composed source, or nullptr when the chain is only the
    /// root (the depth-2 MPI+OpenMP case — the executor then records its
    /// own acquire events, as the chain has no recorder of its own).
    [[nodiscard]] ComposedWorkSource* top_composed() noexcept {
        return composed_.empty() ? nullptr : composed_.back().get();
    }

    /// The root backend (level 0).
    [[nodiscard]] WorkSource& root() noexcept { return *root_; }

    /// Attaches the adaptive-feedback flush to the level-1 source, so
    /// accumulated rates are published right before every root acquisition
    /// (the only level whose decisions read them). No-op for root-only
    /// chains, whose callers flush around their own acquires.
    void set_feedback_flush(std::function<void()> flush) {
        if (!composed_.empty()) {
            composed_.front()->set_before_refill(std::move(flush));
        }
    }

    /// Closes open trace spans chain-wide; when `terminate_top` is set the
    /// top source also records the worker's Terminate event (executors
    /// that emit their own Terminate — the hybrid's per-thread ones —
    /// pass false).
    void finish(bool terminate_top = true) {
        for (auto& c : composed_) {
            c->finish(/*terminate=*/terminate_top && c.get() == composed_.back().get());
        }
    }

    /// Collective teardown of every level's queue and the root.
    void free() { top().free(); }

private:
    friend Hierarchy build_hierarchy(const minimpi::Comm&, std::int64_t,
                                     const ResolvedHierarchy&, const HierConfig&,
                                     trace::WorkerTracer&, bool);

    std::unique_ptr<InterQueue> root_;
    std::vector<std::unique_ptr<LevelQueue>> queues_;
    std::vector<std::unique_ptr<ComposedWorkSource>> composed_;
};

/// Collectively builds the rank's chain over `world`. With `include_leaf`
/// the chain spans every tree level (MPI+MPI: the caller executes leaf
/// sub-chunks directly); without it the chain stops one level short
/// (MPI+OpenMP: `world` holds one master rank per leaf group and the
/// thread team workshares the chain's chunks). `tracer` must outlive the
/// returned Hierarchy.
[[nodiscard]] Hierarchy build_hierarchy(const minimpi::Comm& world,
                                        std::int64_t total_iterations,
                                        const ResolvedHierarchy& rh, const HierConfig& cfg,
                                        trace::WorkerTracer& tracer, bool include_leaf);

}  // namespace hdls::core
