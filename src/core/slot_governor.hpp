#pragma once
/// \file slot_governor.hpp
/// Weighted-fair multiplexing of concurrent jobs over a fixed pool of
/// execution slots — the arbitration core of the JobService.
///
/// The governor owns W slots (one per physical worker of the shared
/// cluster shape). Every active job holds an *entitlement*: an integer
/// number of slots apportioned by the same largest-remainder arithmetic
/// the sharded queue uses across nodes (dls::shard_partition), here
/// applied across jobs with weight = priority × remaining iterations.
/// Entitlements are re-apportioned at every job arrival/departure and at
/// every chunk completion (the service's refill boundary), so a short job
/// submitted behind a long one is entitled to slots immediately instead
/// of starving until the long job drains — with the floor that every
/// active job keeps at least one slot whenever jobs <= slots, so progress
/// (and hence termination) is guaranteed.
///
/// Ranks interact through the per-job ChunkGate: begin_chunk blocks while
/// the job is at its entitlement (slots currently in use >= entitled);
/// end_chunk releases the slot, records progress and triggers the
/// re-apportionment. Gating happens strictly *after* chunk acquisition
/// (see exec_hooks.hpp), so the scheduling chain's refill/termination
/// protocol never waits on another job's slots.
///
/// Fairness is measured, not assumed: the governor integrates each job's
/// occupancy (slot-seconds actually held) and entitlement (slot-seconds
/// it was entitled to) over time, so tests and the multitenancy bench can
/// assert measured share ≈ priority-weighted entitlement directly.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/exec_hooks.hpp"

namespace hdls::core {

class SlotGovernor {
public:
    explicit SlotGovernor(int slots);

    SlotGovernor(const SlotGovernor&) = delete;
    SlotGovernor& operator=(const SlotGovernor&) = delete;

    /// Registers a job with the given scheduling weight inputs and
    /// returns its id. `remaining_iterations` seeds the work-remaining
    /// half of the weight (clamped to >= 1 so zero-length jobs still get
    /// apportioned); `priority` must be > 0.
    [[nodiscard]] std::uint64_t add_job(double priority, std::int64_t remaining_iterations);

    /// Deregisters a job (typically after its run returned) and
    /// re-apportions its slots across the survivors.
    void remove_job(std::uint64_t job);

    /// Marks a job cancelled: its gate's begin_chunk returns false from
    /// now on (in-flight chunks complete and release normally).
    void cancel_job(std::uint64_t job);

    /// The gate the job's ranks go through. Valid until remove_job.
    [[nodiscard]] ChunkGate& gate(std::uint64_t job);

    /// Point-in-time and integrated fairness accounting for one job.
    struct JobShare {
        int entitlement = 0;            ///< slots currently apportioned
        int running = 0;                ///< slots currently held
        double occupancy_seconds = 0;   ///< ∫ running dt (slot-seconds used)
        double entitled_seconds = 0;    ///< ∫ entitlement dt (slot-seconds entitled)
        std::int64_t remaining = 0;     ///< iterations not yet completed
        std::int64_t completed = 0;     ///< iterations completed through the gate
    };
    [[nodiscard]] JobShare share(std::uint64_t job) const;

    /// Membership loss/recovery: caps the apportionable pool at
    /// `live_slots` (1..slots()) and re-apportions every job's entitlement
    /// over the survivors immediately — the JobService analogue of
    /// shard_partition re-running over surviving ranks when the failure
    /// detector removes a worker. Jobs over their shrunk entitlement
    /// release slots at their next chunk boundary (begin_chunk blocks);
    /// in-flight chunks are never interrupted.
    void set_capacity(int live_slots);
    [[nodiscard]] int capacity() const;

    [[nodiscard]] int slots() const noexcept { return slots_; }
    [[nodiscard]] int active_jobs() const;

private:
    struct Job;

    /// The ChunkGate face of one job (a thin forwarder; the governor's
    /// mutex serializes everything).
    class Gate final : public ChunkGate {
    public:
        Gate(SlotGovernor* owner, std::uint64_t job) : owner_(owner), job_(job) {}
        [[nodiscard]] bool begin_chunk(int rank) override {
            return owner_->begin_chunk(job_, rank);
        }
        void end_chunk(int rank, std::int64_t iterations) override {
            owner_->end_chunk(job_, rank, iterations);
        }

    private:
        SlotGovernor* owner_;
        std::uint64_t job_;
    };

    struct Job {
        double priority = 1.0;
        std::int64_t remaining = 1;
        std::int64_t completed = 0;
        int entitlement = 0;
        int running = 0;
        bool cancelled = false;
        double occupancy_seconds = 0.0;
        double entitled_seconds = 0.0;
        std::unique_ptr<Gate> gate;
    };

    [[nodiscard]] bool begin_chunk(std::uint64_t job, int rank);
    void end_chunk(std::uint64_t job, int rank, std::int64_t iterations);

    /// Advances the occupancy/entitlement integrals to `now` (locked).
    void advance_locked(std::chrono::steady_clock::time_point now);
    /// Largest-remainder apportionment of the slots across the live jobs
    /// by priority × remaining, with the ≥1-slot progress floor (locked).
    void apportion_locked();

    const int slots_;
    /// Apportionable slots right now (<= slots_; shrunk by set_capacity
    /// on membership loss).
    int capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Job> jobs_;
    std::uint64_t next_id_ = 0;
    std::chrono::steady_clock::time_point last_advance_;
};

}  // namespace hdls::core
