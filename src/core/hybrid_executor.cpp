#include "core/hybrid_executor.hpp"

#include <chrono>
#include <optional>
#include <string>

#include "core/hierarchy.hpp"
#include "dls/adaptive.hpp"
#include "metrics/metrics.hpp"
#include "metrics/watchdog.hpp"
#include "ompsim/team.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] ompsim::ForOptions intra_schedule_or_throw(const HierConfig& cfg,
                                                         dls::Technique intra) {
    if (const auto std_opt = ompsim::openmp_equivalent(intra)) {
        return *std_opt;
    }
    if (cfg.allow_extended_openmp_schedules) {
        if (const auto ext = ompsim::extended_equivalent(intra)) {
            return *ext;
        }
    }
    throw UnsupportedCombination(
        std::string("MPI+OpenMP cannot schedule ") + std::string(dls::technique_name(intra)) +
        " at the intra-node level (the OpenMP schedule clause offers only static, dynamic and "
        "guided; enable allow_extended_openmp_schedules for the libGOMP-style extensions)");
}
}  // namespace

std::vector<WorkerStats> run_hybrid_rank(minimpi::Context& ctx, int threads_per_node,
                                         std::int64_t n, const HierConfig& cfg,
                                         const ResolvedHierarchy& rh, const ChunkBody& body,
                                         trace::TraceSession* session, const RankHooks& hooks) {
    if (ctx.topology().ranks_per_node != 1) {
        throw UnsupportedCombination(
            "run_hybrid_rank: the MPI+OpenMP model maps exactly one rank per leaf group");
    }
    const dls::Technique intra = rh.levels.back().technique;
    const ompsim::ForOptions schedule = intra_schedule_or_throw(cfg, intra);
    const minimpi::Comm& world = ctx.world();

    std::vector<WorkerStats> stats(static_cast<std::size_t>(threads_per_node));
    std::vector<trace::WorkerTracer> tracers(static_cast<std::size_t>(threads_per_node));
    for (int t = 0; t < threads_per_node; ++t) {
        stats[static_cast<std::size_t>(t)].node = ctx.node();
        stats[static_cast<std::size_t>(t)].worker_in_node = t;
        if (session != nullptr) {
            tracers[static_cast<std::size_t>(t)] =
                session->tracer(ctx.rank() * threads_per_node + t, ctx.node());
        }
    }

    // The masters' chain: the tree truncated above the thread-team leaf.
    // Depth 2 leaves just the root backend; deeper trees add relay levels
    // whose ComposedWorkSources record the master's pop/refill events,
    // level-tagged, on top of the acquire events the master records below.
    Hierarchy hier =
        build_hierarchy(world, n, rh, cfg, tracers[0], /*include_leaf=*/false);
    WorkSource& chain = hier.top();
    // The master plays the leaf's puller role: it records the acquire-side
    // event for every chunk it pulls off the chain, tagged with the level
    // it pulled from (the chain top's own level, or the root at depth 2) —
    // exactly what a leaf ComposedWorkSource records under MPI+MPI.
    const int pull_level = hier.top_composed() != nullptr ? hier.top_composed()->level() : 0;
    const bool feedback = chain.wants_feedback();
    // Leaf placement: this rank's team occupies worker slots
    // [rank*T, rank*T + T) of the host-wide plan, so co-located ranks
    // interleave over the sockets instead of stacking onto core 0.
    ompsim::ThreadTeam::Placement placement;
    placement.policy = cfg.pin.value_or(minimpi::PinPolicy::None);
    placement.first_worker = ctx.rank() * threads_per_node;
    ompsim::ThreadTeam team(threads_per_node, placement);

    const metrics::RuntimeMetrics& m = metrics::rt();
    // At depth 2 the chain is the bare root backend, so nothing below has
    // counted the master's acquisitions; deeper chains count their own
    // pops/refills inside the ComposedWorkSources.
    const bool count_master_acquire = hier.top_composed() == nullptr;
    const auto midx =
        static_cast<std::size_t>(metrics::RuntimeMetrics::level_index(pull_level));

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();

    // Shared between the team's threads within the region below.
    std::optional<WorkSource::Chunk> current;
    // Feedback bookkeeping (master thread only): the previous chunk's
    // bounds, when its execution started, and the acquire time that
    // obtained it (the overhead AWF-D/E fold into their rates).
    Clock::time_point chunk_t0 = t0;
    double acquire_seconds = 0.0;

    team.parallel([&](int tid) {
        auto& mine = stats[static_cast<std::size_t>(tid)];
        trace::WorkerTracer& tracer = tracers[static_cast<std::size_t>(tid)];
        const bool tracing = tracer.enabled();
        metrics::worker_enter(ctx.rank() * threads_per_node + tid, hooks.watchdog);
        for (;;) {
            if (tid == 0) {
                // The join barrier below serialized the team, so the
                // previous chunk is fully executed here: report it before
                // fetching the next (funneled model — master talks to MPI).
                if (feedback && current) {
                    const double elapsed = seconds_since(chunk_t0);
                    chain.report(current->size, elapsed, acquire_seconds);
                    if (tracing) {
                        tracer.instant(trace::EventKind::FeedbackReport, tracer.now(),
                                       current->size, dls::feedback_ns(elapsed));
                    }
                }
                const double acq_t0 = tracing ? tracer.now() : 0.0;
                const Clock::time_point a0 = Clock::now();
                current = chain.try_acquire();
                // Multi-tenant gate: one slot covers the whole team while
                // it workshares this chunk (funneled model). A refusal
                // cancels the run — dropping the chunk ends the team loop.
                if (current && hooks.gate != nullptr &&
                    !hooks.gate->begin_chunk(ctx.rank())) {
                    current.reset();
                }
                acquire_seconds = seconds_since(a0);
                chunk_t0 = Clock::now();
                if (count_master_acquire && current) {
                    m.acquire_latency_ns[midx]->observe(
                        static_cast<std::uint64_t>(acquire_seconds * 1e9));
                    (current->stolen ? m.steals : m.acquires)[midx]->inc();
                }
                if (tracing) {
                    tracer.record(current && current->stolen ? trace::EventKind::Steal
                                                             : trace::EventKind::GlobalAcquire,
                                  acq_t0, tracer.now(), current ? current->start : 0,
                                  current ? current->size : 0, 0.0, pull_level);
                }
                if (current) {
                    ++mine.global_refills;
                }
            }
            // Chunk bounds published to the team; non-masters idle here
            // while the master fetches (part of Figure 2's sync time).
            const double publish_t0 = tracing ? tracer.now() : 0.0;
            team.barrier();
            if (tracing) {
                tracer.record(trace::EventKind::BarrierWait, publish_t0, tracer.now());
            }
            if (!current) {
                break;
            }
            const auto chunk = *current;
            // #pragma omp for schedule(...) over the chunk — implicit
            // barrier at the end (Figure 2's synchronization points). The
            // time between a thread's last sub-chunk and the construct's
            // return is its barrier wait.
            double last_busy = tracing ? tracer.now() : 0.0;
            team.for_chunks(chunk.start, chunk.start + chunk.size, schedule,
                            [&](std::int64_t b, std::int64_t e, int thread_id) {
                                auto& ws = stats[static_cast<std::size_t>(thread_id)];
                                auto& thread_tracer =
                                    tracers[static_cast<std::size_t>(thread_id)];
                                if (thread_tracer.enabled()) {
                                    thread_tracer.instant(trace::EventKind::ChunkExecBegin,
                                                          thread_tracer.now(), b, e);
                                }
                                const Clock::time_point b0 = Clock::now();
                                body(b, e);
                                const double thread_busy = seconds_since(b0);
                                ws.busy_seconds += thread_busy;
                                ws.iterations += e - b;
                                ++ws.chunks;
                                m.exec_chunks->inc();
                                m.exec_iterations->inc(static_cast<std::uint64_t>(e - b));
                                m.chunk_exec_ns->observe(
                                    static_cast<std::uint64_t>(thread_busy * 1e9));
                                metrics::worker_beat(
                                    ctx.rank() * threads_per_node + thread_id, pull_level,
                                    b, /*prefetch_outstanding=*/false, thread_busy,
                                    hooks.watchdog);
                                if (thread_tracer.enabled()) {
                                    const double end = thread_tracer.now();
                                    thread_tracer.instant(trace::EventKind::ChunkExecEnd, end,
                                                          b, e);
                                    if (thread_id == tid) {
                                        last_busy = end;
                                    }
                                }
                            });
            if (tracing) {
                tracer.record(trace::EventKind::BarrierWait, last_busy, tracer.now());
            }
            if (tid == 0 && hooks.gate != nullptr) {
                // The worksharing construct's implicit barrier has passed:
                // the chunk is fully executed, release the team's slot.
                hooks.gate->end_chunk(ctx.rank(), chunk.size);
            }
        }
        if (tid == 0) {
            // Close chain-side wait spans (no-op at depth 2); the team's
            // own Terminate events follow below.
            hier.finish(/*terminate_top=*/false);
        }
        if (tracing) {
            tracer.instant(trace::EventKind::Terminate, tracer.now());
        }
        metrics::worker_leave(ctx.rank() * threads_per_node + tid, hooks.watchdog);
        mine.finish_seconds = seconds_since(t0);
    });

    hier.free();
    return stats;
}

}  // namespace hdls::core
