#include "core/hybrid_executor.hpp"

#include <chrono>
#include <optional>
#include <string>

#include "core/adaptive_queue.hpp"
#include "ompsim/team.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] ompsim::ForOptions intra_schedule_or_throw(const HierConfig& cfg) {
    if (const auto std_opt = ompsim::openmp_equivalent(cfg.intra)) {
        return *std_opt;
    }
    if (cfg.allow_extended_openmp_schedules) {
        if (const auto ext = ompsim::extended_equivalent(cfg.intra)) {
            return *ext;
        }
    }
    throw UnsupportedCombination(
        std::string("MPI+OpenMP cannot schedule ") + std::string(dls::technique_name(cfg.intra)) +
        " at the intra-node level (the OpenMP schedule clause offers only static, dynamic and "
        "guided; enable allow_extended_openmp_schedules for the libGOMP-style extensions)");
}
}  // namespace

std::vector<WorkerStats> run_hybrid_rank(minimpi::Context& ctx, int threads_per_node,
                                         std::int64_t n, const HierConfig& cfg,
                                         const ChunkBody& body, trace::TraceSession* session) {
    if (ctx.topology().ranks_per_node != 1) {
        throw UnsupportedCombination(
            "run_hybrid_rank: the MPI+OpenMP model maps exactly one rank per node");
    }
    const ompsim::ForOptions schedule = intra_schedule_or_throw(cfg);
    const minimpi::Comm& world = ctx.world();

    // One rank per node: the world size is the node count and this rank's
    // id is its node id, so the feedback slot is just ctx.node().
    const auto global = make_inter_queue(world, n, cfg, world.size(), ctx.node());
    const bool feedback = global->wants_feedback();
    ompsim::ThreadTeam team(threads_per_node);

    std::vector<WorkerStats> stats(static_cast<std::size_t>(threads_per_node));
    std::vector<trace::WorkerTracer> tracers(static_cast<std::size_t>(threads_per_node));
    for (int t = 0; t < threads_per_node; ++t) {
        stats[static_cast<std::size_t>(t)].node = ctx.node();
        stats[static_cast<std::size_t>(t)].worker_in_node = t;
        if (session != nullptr) {
            tracers[static_cast<std::size_t>(t)] =
                session->tracer(ctx.rank() * threads_per_node + t, ctx.node());
        }
    }

    world.barrier();  // common start line
    const Clock::time_point t0 = Clock::now();

    // Shared between the team's threads within the region below.
    std::optional<InterQueue::Chunk> current;
    // Feedback bookkeeping (master thread only): the previous chunk's
    // bounds, when its execution started, and the acquire time that
    // obtained it (the overhead AWF-D/E fold into their rates).
    Clock::time_point chunk_t0 = t0;
    double acquire_seconds = 0.0;

    team.parallel([&](int tid) {
        auto& mine = stats[static_cast<std::size_t>(tid)];
        trace::WorkerTracer& tracer = tracers[static_cast<std::size_t>(tid)];
        const bool tracing = tracer.enabled();
        for (;;) {
            if (tid == 0) {
                // The join barrier below serialized the team, so the
                // previous chunk is fully executed here: report it before
                // fetching the next (funneled model — master talks to MPI).
                if (feedback && current) {
                    const double elapsed = seconds_since(chunk_t0);
                    global->report(current->size, elapsed, acquire_seconds);
                    if (tracing) {
                        tracer.instant(trace::EventKind::FeedbackReport, tracer.now(),
                                       current->size, dls::feedback_ns(elapsed));
                    }
                }
                const double acq_t0 = tracing ? tracer.now() : 0.0;
                const Clock::time_point a0 = Clock::now();
                current = global->try_acquire();
                acquire_seconds = seconds_since(a0);
                chunk_t0 = Clock::now();
                if (tracing) {
                    tracer.record(current && current->stolen ? trace::EventKind::Steal
                                                             : trace::EventKind::GlobalAcquire,
                                  acq_t0, tracer.now(), current ? current->start : 0,
                                  current ? current->size : 0);
                }
                if (current) {
                    ++mine.global_refills;
                }
            }
            // Chunk bounds published to the team; non-masters idle here
            // while the master fetches (part of Figure 2's sync time).
            const double publish_t0 = tracing ? tracer.now() : 0.0;
            team.barrier();
            if (tracing) {
                tracer.record(trace::EventKind::BarrierWait, publish_t0, tracer.now());
            }
            if (!current) {
                break;
            }
            const auto chunk = *current;
            // #pragma omp for schedule(...) over the chunk — implicit
            // barrier at the end (Figure 2's synchronization points). The
            // time between a thread's last sub-chunk and the construct's
            // return is its barrier wait.
            double last_busy = tracing ? tracer.now() : 0.0;
            team.for_chunks(chunk.start, chunk.start + chunk.size, schedule,
                            [&](std::int64_t b, std::int64_t e, int thread_id) {
                                auto& ws = stats[static_cast<std::size_t>(thread_id)];
                                auto& thread_tracer =
                                    tracers[static_cast<std::size_t>(thread_id)];
                                if (thread_tracer.enabled()) {
                                    thread_tracer.instant(trace::EventKind::ChunkExecBegin,
                                                          thread_tracer.now(), b, e);
                                }
                                const Clock::time_point b0 = Clock::now();
                                body(b, e);
                                ws.busy_seconds += seconds_since(b0);
                                ws.iterations += e - b;
                                ++ws.chunks;
                                if (thread_tracer.enabled()) {
                                    const double end = thread_tracer.now();
                                    thread_tracer.instant(trace::EventKind::ChunkExecEnd, end,
                                                          b, e);
                                    if (thread_id == tid) {
                                        last_busy = end;
                                    }
                                }
                            });
            if (tracing) {
                tracer.record(trace::EventKind::BarrierWait, last_busy, tracer.now());
            }
        }
        if (tracing) {
            tracer.instant(trace::EventKind::Terminate, tracer.now());
        }
        mine.finish_seconds = seconds_since(t0);
    });

    global->free();
    return stats;
}

}  // namespace hdls::core
