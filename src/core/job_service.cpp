#include "core/job_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/env_config.hpp"
#include "core/runner.hpp"
#include "metrics/metrics.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

[[nodiscard]] std::uint64_t to_ns(double seconds) {
    return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}
}  // namespace

/// Everything the service tracks about one job, protected by the service
/// mutex (except `thread`, which only the collector joins, and the fields
/// the runner thread fills before raising `done`).
struct JobService::JobState {
    std::uint64_t id = 0;
    LoopJob job;
    HierConfig config;  ///< resolved effective config (base + override)
    Clock::time_point submit_time{};
    Clock::time_point start_time{};
    std::uint64_t governor_id = 0;
    bool governor_registered = false;
    bool started = false;
    bool done = false;
    bool collected = false;
    std::uint64_t completion_seq = 0;
    JobResult result;
    std::exception_ptr error;
    std::thread thread;
};

JobService::JobService(Config cfg) : cfg_(std::move(cfg)), governor_([&] {
    if (cfg_.shape.nodes < 1 || cfg_.shape.workers_per_node < 1) {
        throw std::invalid_argument("JobService: cluster shape must be positive");
    }
    return cfg_.shape.total_workers();
}()) {
    if (cfg_.max_active == 0) {
        cfg_.max_active = max_jobs_from_env();
    }
    if (cfg_.max_active < 1) {
        throw std::invalid_argument("JobService: max_active must be >= 1");
    }
    if (cfg_.queue_depth < 0) {
        cfg_.queue_depth = job_queue_depth_from_env();
    }
    // The base config must be runnable as-is: a malformed default should
    // fail service construction, not the first submit that relies on it.
    validate_combination(cfg_.shape, cfg_.approach, cfg_.base);
}

JobService::~JobService() {
    try {
        shutdown(/*cancel=*/false);
    } catch (...) {
        // Destructor must not throw; shutdown errors die here.
    }
}

std::uint64_t JobService::submit(LoopJob job) {
    if (job.iterations < 0) {
        throw std::invalid_argument("JobService::submit: iterations must be >= 0");
    }
    if (!job.body) {
        throw std::invalid_argument("JobService::submit: body must not be empty");
    }
    if (!(job.priority > 0.0)) {
        throw std::invalid_argument("JobService::submit: priority must be > 0");
    }
    HierConfig effective = job.config ? *job.config : cfg_.base;
    if (cfg_.trace_jobs) {
        effective.trace = true;
    }
    // Per-job overrides are validated at the admission boundary so a bad
    // config is the submitter's synchronous error, not a later surprise
    // inside an anonymous runner thread.
    validate_combination(cfg_.shape, cfg_.approach, effective);

    const metrics::RuntimeMetrics& m = metrics::rt();
    auto state = std::make_shared<JobState>();
    state->job = std::move(job);
    state->config = std::move(effective);
    state->submit_time = Clock::now();

    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
        throw std::runtime_error("JobService::submit: service is shut down");
    }
    // Admission control: run now, queue, or push back on the caller.
    if (running_ >= cfg_.max_active &&
        static_cast<int>(pending_.size()) >= cfg_.queue_depth) {
        m.jobs_rejected->inc();
        throw minimpi::Error(minimpi::ErrorCode::Resource,
                             "JobService::submit: pending-job queue is full (" +
                                 std::to_string(pending_.size()) + "/" +
                                 std::to_string(cfg_.queue_depth) +
                                 " queued, " + std::to_string(running_) +
                                 " running); retry later or raise HDLS_JOB_QUEUE_DEPTH");
    }
    state->id = next_id_++;
    jobs_.emplace(state->id, state);
    pending_.push_back(state);
    m.jobs_submitted->inc();
    m.jobs_pending->add(1);
    launch_ready_locked();
    return state->id;
}

void JobService::launch_ready_locked() {
    const metrics::RuntimeMetrics& m = metrics::rt();
    while (running_ < cfg_.max_active && !pending_.empty()) {
        std::shared_ptr<JobState> state = pending_.front();
        pending_.erase(pending_.begin());
        m.jobs_pending->add(-1);
        m.jobs_active->add(1);
        state->started = true;
        state->start_time = Clock::now();
        m.job_queue_wait_ns->observe(
            to_ns(seconds_between(state->submit_time, state->start_time)));
        ++running_;
        state->thread = std::thread([this, state] { run_job(state); });
    }
}

void JobService::run_job(std::shared_ptr<JobState> state) {
    const std::uint64_t gid =
        governor_.add_job(state->job.priority, state->job.iterations);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        state->governor_id = gid;
        state->governor_registered = true;
        if (cancel_requested_) {
            governor_.cancel_job(gid);
        }
    }

    RunOptions opts;
    opts.gate = &governor_.gate(gid);
    opts.job = static_cast<int>(state->id);

    JobResult result;
    result.id = state->id;
    result.name = state->job.name;
    try {
        result.report = run_hierarchical(cfg_.shape, cfg_.approach, state->config,
                                         state->job.iterations, state->job.body, opts);
    } catch (...) {
        state->error = std::current_exception();
    }

    const SlotGovernor::JobShare share = governor_.share(gid);
    governor_.remove_job(gid);
    const Clock::time_point finish = Clock::now();

    result.queue_seconds = seconds_between(state->submit_time, state->start_time);
    result.run_seconds = seconds_between(state->start_time, finish);
    result.latency_seconds = seconds_between(state->submit_time, finish);
    result.slot_seconds = share.occupancy_seconds;
    result.entitled_slot_seconds = share.entitled_seconds;
    result.cancelled = state->error == nullptr &&
                       result.report.executed_iterations() < state->job.iterations;

    const metrics::RuntimeMetrics& m = metrics::rt();
    m.jobs_active->add(-1);
    (result.cancelled ? m.jobs_cancelled : m.jobs_completed)->inc();
    m.job_latency_ns->observe(to_ns(result.latency_seconds));
    if (cfg_.per_job_metrics && !result.name.empty()) {
        metrics::registry()
            .histogram("hdls_job_latency_ns",
                       "Job latency (submit to completion) in nanoseconds",
                       {{"job", result.name}})
            .observe(to_ns(result.latency_seconds));
    }

    finalize(*state, std::move(result));
}

void JobService::finalize(JobState& state, JobResult result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    state.result = std::move(result);
    state.done = true;
    state.completion_seq = completion_counter_++;
    --running_;
    launch_ready_locked();
    done_cv_.notify_all();
}

JobResult JobService::wait(std::uint64_t id) {
    std::shared_ptr<JobState> state;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            throw std::invalid_argument("JobService::wait: unknown job id " +
                                        std::to_string(id));
        }
        state = it->second;
        done_cv_.wait(lock, [&] { return state->done; });
        if (state->collected) {
            throw std::logic_error("JobService::wait: job " + std::to_string(id) +
                                   " was already collected");
        }
        state->collected = true;
    }
    if (state->thread.joinable()) {
        state->thread.join();
    }
    if (state->error != nullptr) {
        std::rethrow_exception(state->error);
    }
    return std::move(state->result);
}

std::vector<JobResult> JobService::drain() {
    std::vector<std::shared_ptr<JobState>> collected;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return pending_.empty() &&
                   std::all_of(jobs_.begin(), jobs_.end(),
                               [](const auto& kv) { return kv.second->done; });
        });
        for (auto& [id, state] : jobs_) {
            if (!state->collected) {
                state->collected = true;
                collected.push_back(state);
            }
        }
    }
    std::sort(collected.begin(), collected.end(), [](const auto& a, const auto& b) {
        return a->completion_seq < b->completion_seq;
    });
    std::vector<JobResult> results;
    results.reserve(collected.size());
    for (const auto& state : collected) {
        if (state->thread.joinable()) {
            state->thread.join();
        }
        if (state->error != nullptr) {
            std::rethrow_exception(state->error);
        }
        results.push_back(std::move(state->result));
    }
    return results;
}

void JobService::shutdown(bool cancel) {
    std::vector<std::shared_ptr<JobState>> to_join;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
        if (cancel && !cancel_requested_) {
            cancel_requested_ = true;
            const metrics::RuntimeMetrics& m = metrics::rt();
            // Queued jobs never start: mark them cancelled-complete with
            // pure queue latency and no report.
            for (const auto& state : pending_) {
                state->result.id = state->id;
                state->result.name = state->job.name;
                state->result.cancelled = true;
                state->result.queue_seconds =
                    seconds_between(state->submit_time, Clock::now());
                state->result.latency_seconds = state->result.queue_seconds;
                state->done = true;
                state->completion_seq = completion_counter_++;
                m.jobs_pending->add(-1);
                m.jobs_cancelled->inc();
            }
            pending_.clear();
            // Running jobs stop at their next chunk boundary.
            for (const auto& [id, state] : jobs_) {
                if (state->started && !state->done && state->governor_registered) {
                    governor_.cancel_job(state->governor_id);
                }
            }
            done_cv_.notify_all();
        }
        done_cv_.wait(lock, [&] {
            return pending_.empty() &&
                   std::all_of(jobs_.begin(), jobs_.end(),
                               [](const auto& kv) { return kv.second->done; });
        });
        for (const auto& [id, state] : jobs_) {
            to_join.push_back(state);
        }
    }
    for (const auto& state : to_join) {
        if (state->thread.joinable()) {
            state->thread.join();
        }
    }
}

int JobService::active_jobs() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

int JobService::pending_jobs() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(pending_.size());
}

}  // namespace hdls::core
