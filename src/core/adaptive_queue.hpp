#pragma once
/// \file adaptive_queue.hpp
/// The adaptive inter-node work queue: FAC, WF and AWF-B/C/D/E at level 1.
///
/// Extends the paper's rank-0-hosted RMA window with a *feedback region*
/// (all cells are std::int64_t so every access stays a native atomic):
///
///   cell 0                      remaining iterations R (CAS-protected)
///   cell 1                      scheduling-step counter
///   cells 2+3i .. 4+3i          node i: iterations, compute ns, overhead ns
///
/// Chunk acquisition is masterless, passive-target only:
///   1. read the feedback region and derive this node's weight via
///      dls::awf_weights (WF uses its static weight; FAC skips this);
///   2. R -> R - size with size = dls::remaining_based_chunk(R, weight),
///      through a compare_and_swap retry loop (Window::atomic_update) — the
///      CAS protection is what makes the tiling exact under concurrency;
///   3. fetch_and_op(+1) on the step counter for the chunk's step id.
/// The acquired chunk is [N - R_old, N - R_old + size).
///
/// After executing a chunk a rank posts report(): three fetch_and_op sums
/// into its node's feedback cells (times as integer nanoseconds). AWF-C/E
/// re-derive weights on every acquisition; AWF-B/D only when the
/// halving-batch index advances (dls::halving_batch_index), mirroring the
/// centralized schedulers' batch-boundary adaptation.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/inter_queue.hpp"
#include "dls/adaptive.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class AdaptiveGlobalQueue final : public InterQueue {
public:
    using Chunk = InterQueue::Chunk;

    /// Collective over `comm`. `level_workers` is P in the chunk formulas
    /// (the paper uses the node count); `node` is the caller's level-1
    /// entity id in [0, level_workers). `node_weights` are WF's static
    /// weights (empty = equal; otherwise size must be level_workers).
    AdaptiveGlobalQueue(const minimpi::Comm& comm, std::int64_t total_iterations,
                        dls::Technique technique, int level_workers, int node,
                        std::int64_t min_chunk, std::vector<double> node_weights = {},
                        double fac_sigma = 0.0, double fac_mu = 1.0);

    [[nodiscard]] std::optional<Chunk> try_acquire() override;

    /// Accumulates executed iterations and their times into this node's
    /// feedback cells (atomic sums; callable concurrently from every rank
    /// of the node).
    void report(std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override;

    [[nodiscard]] bool wants_feedback() const noexcept override {
        return dls::is_adaptive(technique_);
    }

    [[nodiscard]] std::int64_t acquired() const noexcept override { return acquired_; }
    [[nodiscard]] dls::Technique technique() const noexcept override { return technique_; }

    /// Exact remaining-iterations count (atomic read; monotone under use).
    [[nodiscard]] std::int64_t remaining() const;

    /// Snapshot of node `i`'s accumulated feedback (for tests/telemetry).
    [[nodiscard]] dls::NodeFeedback feedback_of(int node) const;

    void free() override;

private:
    static constexpr int kHost = 0;
    static constexpr std::size_t kRemaining = 0;
    static constexpr std::size_t kStep = 1;
    static constexpr std::size_t kFeedbackBase = 2;
    static constexpr std::size_t kFeedbackFields = 3;  // iters, compute ns, overhead ns

    [[nodiscard]] static constexpr std::size_t cell_of(int node, std::size_t field) noexcept {
        return kFeedbackBase + kFeedbackFields * static_cast<std::size_t>(node) + field;
    }

    /// This node's current weight, refreshed per the technique's cadence.
    [[nodiscard]] double current_weight(std::int64_t remaining_now);

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::LoopParams params_;
    dls::Technique technique_{};
    std::int64_t total_ = 0;
    int level_workers_ = 0;
    int node_ = 0;
    std::int64_t acquired_ = 0;
    std::vector<double> static_weights_;  // WF; mean-1 normalized
    dls::AwfWeightCache weight_cache_;    // per-handle AWF refresh cadence
};

}  // namespace hdls::core
