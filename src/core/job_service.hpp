#pragma once
/// \file job_service.hpp
/// The persistent multi-tenant loop service: a submit()/wait() front end
/// over the hierarchical executor, multiplexing a *stream* of concurrent
/// loop jobs across one shared cluster shape.
///
/// Execution model. Each admitted job gets its own full scheduling
/// hierarchy — a private WorkSource chain built by run_hierarchical with
/// the job's (possibly overridden) HierConfig — so per-job replay parity
/// holds by construction: a job's chunk multiset under multiplexing is
/// identical to its solo run, because the chain never changes, only the
/// *pace* at which chunks execute. Pacing is the SlotGovernor's job: the
/// service's worker slots (shape.total_workers()) are apportioned across
/// the running jobs by dls::shard_partition with weight = priority ×
/// remaining iterations, re-apportioned at every chunk completion, and
/// each rank passes the per-job ChunkGate between acquiring a chunk and
/// executing it.
///
/// Admission control. At most `max_active` jobs run concurrently; beyond
/// that, jobs wait in a bounded pending queue of depth `queue_depth`, and
/// a submit() that finds the queue full throws
/// minimpi::Error{ErrorCode::Resource} — backpressure the caller can act
/// on. drain() waits for everything; shutdown(cancel=true) additionally
/// cancels queued jobs and stops handing new chunks to running ones
/// (in-flight chunks always complete).
///
/// Observability. Every job is timed (queue wait, run time, latency) into
/// the hdls_job_* metrics families plus an optional per-job-name labeled
/// latency histogram; with Config::trace (or a per-job config override)
/// each job records a private, job-stamped trace session whose result
/// rides on its JobResult — merge them with trace::merge_job_traces for
/// one multi-tenant timeline.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/slot_governor.hpp"
#include "core/types.hpp"

namespace hdls::core {

/// One unit of the job stream: a loop plus how to schedule and weigh it.
struct LoopJob {
    std::string name;             ///< label for metrics/traces ("" = unnamed)
    std::int64_t iterations = 0;  ///< loop is [0, iterations)
    ChunkBody body;               ///< thread-safe across disjoint ranges
    double priority = 1.0;        ///< fair-share weight multiplier (> 0)
    /// Per-job scheduling override; the service's base config otherwise.
    std::optional<HierConfig> config;
};

/// What wait() returns.
struct JobResult {
    std::uint64_t id = 0;
    std::string name;
    /// True when the job was cancelled (shutdown(cancel) before or during
    /// its run); `report` then covers only the iterations that executed.
    bool cancelled = false;
    ExecutionReport report;
    double queue_seconds = 0.0;    ///< submit -> run start
    double run_seconds = 0.0;      ///< run start -> completion
    double latency_seconds = 0.0;  ///< submit -> completion
    /// Fairness accounting from the SlotGovernor: slot-seconds the job
    /// actually held vs. slot-seconds its entitlement integrated to.
    double slot_seconds = 0.0;
    double entitled_slot_seconds = 0.0;
};

/// The persistent service. Thread-safe: submit/wait/drain may be called
/// from any thread, concurrently.
class JobService {
public:
    struct Config {
        ClusterShape shape{};                    ///< the shared cluster
        Approach approach = Approach::MpiMpi;    ///< execution model for all jobs
        HierConfig base{};                       ///< default per-job scheduling config
        /// Maximum jobs running concurrently. 0 = HDLS_MAX_JOBS (default 4).
        int max_active = 0;
        /// Bounded pending-queue depth; submit() past it throws
        /// minimpi::Error{ErrorCode::Resource}. -1 = HDLS_JOB_QUEUE_DEPTH
        /// (default 16). 0 = no queue (reject unless a run slot is free).
        int queue_depth = -1;
        /// Trace every job into a private job-stamped session (per-job
        /// HierConfig overrides can also set trace individually).
        bool trace_jobs = false;
        /// Register a per-job-name labeled latency histogram
        /// (hdls_job_latency_ns{job="<name>"}) for named jobs.
        bool per_job_metrics = true;
    };

    explicit JobService(Config cfg);
    /// Drains in-flight work (shutdown(cancel=false)) before destruction.
    ~JobService();

    JobService(const JobService&) = delete;
    JobService& operator=(const JobService&) = delete;

    /// Admits a job into the stream and returns its id. Throws
    /// minimpi::Error{ErrorCode::Resource} when the pending queue is
    /// full, std::invalid_argument for malformed jobs or configs, and
    /// std::runtime_error after shutdown.
    std::uint64_t submit(LoopJob job);

    /// Blocks until the job completes (or is cancelled) and returns its
    /// result. Each id can be waited once; a second wait throws.
    [[nodiscard]] JobResult wait(std::uint64_t id);

    /// Waits for every submitted job and returns the results not yet
    /// collected through wait(), in completion order.
    std::vector<JobResult> drain();

    /// Stops admission (subsequent submits throw). cancel=false completes
    /// everything already admitted; cancel=true cancels queued jobs and
    /// stops handing new chunks to running jobs (in-flight chunks finish).
    /// Idempotent.
    void shutdown(bool cancel = false);

    [[nodiscard]] int active_jobs() const;
    [[nodiscard]] int pending_jobs() const;
    [[nodiscard]] const SlotGovernor& governor() const noexcept { return governor_; }

private:
    struct JobState;

    /// Starts as many pending jobs as run slots allow (locked).
    void launch_ready_locked();
    /// The per-job runner thread body.
    void run_job(std::shared_ptr<JobState> state);
    void finalize(JobState& state, JobResult result);

    Config cfg_;
    SlotGovernor governor_;

    mutable std::mutex mutex_;
    std::condition_variable done_cv_;
    bool shutdown_ = false;
    bool cancel_requested_ = false;
    std::uint64_t next_id_ = 0;
    std::uint64_t completion_counter_ = 0;
    int running_ = 0;
    std::vector<std::shared_ptr<JobState>> pending_;
    std::map<std::uint64_t, std::shared_ptr<JobState>> jobs_;
};

}  // namespace hdls::core
