#include "core/sharded_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hdls::core {

ShardedInterQueue::ShardedInterQueue(const minimpi::Comm& comm, std::int64_t total_iterations,
                                     dls::Technique technique, int level_workers, int node,
                                     std::int64_t min_chunk,
                                     std::vector<double> node_weights)
    : comm_(comm), min_chunk_(min_chunk), level_workers_(level_workers), node_(node) {
    if (!dls::supports_sharded(technique)) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "ShardedInterQueue: technique has no sharded form (needs the "
                             "global remaining count; use the centralized backend)");
    }
    if (level_workers < 1) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "ShardedInterQueue: level_workers must be >= 1");
    }
    if (node < 0 || node >= level_workers) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "ShardedInterQueue: node id out of range");
    }
    if (min_chunk < 1) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "ShardedInterQueue: min_chunk must be >= 1");
    }
    technique_ = technique;
    try {
        sizes_ = dls::shard_partition(total_iterations, std::move(node_weights), level_workers);
    } catch (const std::invalid_argument& e) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             std::string("ShardedInterQueue: ") + e.what());
    }
    lo_.resize(static_cast<std::size_t>(level_workers));
    std::int64_t acc = 0;
    for (int j = 0; j < level_workers; ++j) {
        lo_[static_cast<std::size_t>(j)] = acc;
        acc += sizes_[static_cast<std::size_t>(j)];
    }

    // Every rank learns which world rank hosts each shard: the lowest rank
    // of the shard's node (the allgather doubles as the layout agreement).
    const std::vector<int> node_of = comm.allgather(node);
    host_of_.assign(static_cast<std::size_t>(level_workers), -1);
    for (int r = 0; r < comm.size(); ++r) {
        const int n = node_of[static_cast<std::size_t>(r)];
        if (n < 0 || n >= level_workers) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "ShardedInterQueue: a rank reported a node id out of range");
        }
        if (host_of_[static_cast<std::size_t>(n)] < 0) {
            host_of_[static_cast<std::size_t>(n)] = r;
        }
    }
    for (int j = 0; j < level_workers; ++j) {
        if (host_of_[static_cast<std::size_t>(j)] < 0) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "ShardedInterQueue: node " + std::to_string(j) +
                                     " has no rank in the communicator to host its shard");
        }
    }

    const bool am_host = host_of_[static_cast<std::size_t>(node_)] == comm.rank();
    window_ = minimpi::Window::allocate_shared(
        comm, am_host ? kShardCells * sizeof(std::int64_t) : 0);
    if (am_host) {
        auto cells = window_.shared_span<std::int64_t>(comm.rank());
        cells[kRemaining] = sizes_[static_cast<std::size_t>(node_)];
        cells[kStep] = 0;
    }
    window_.sync();
    comm_.barrier();
}

std::optional<ShardedInterQueue::Chunk> ShardedInterQueue::take_from(int shard) {
    const int host = host_of_[static_cast<std::size_t>(shard)];
    const std::int64_t glance = window_.atomic_read<std::int64_t>(host, kRemaining);
    if (glance <= 0) {
        return std::nullopt;
    }
    const std::int64_t step =
        window_.fetch_and_op<std::int64_t>(1, host, kStep, minimpi::AccumulateOp::Sum);
    const std::int64_t hint = dls::shard_chunk_hint(
        technique_, sizes_[static_cast<std::size_t>(shard)], level_workers_, min_chunk_, step);
    // hint <= 0 (formula ran dry before the shard did — possible only
    // through clamping races) takes the whole remainder; either way the
    // transform is a pure function of R, as atomic_update requires.
    const std::int64_t before =
        window_.atomic_update<std::int64_t>(host, kRemaining, [&](std::int64_t r) {
            return r - (hint > 0 ? std::min(hint, r) : r);
        });
    if (before <= 0) {
        return std::nullopt;  // raced to empty between the glance and the CAS
    }
    const std::int64_t take = hint > 0 ? std::min(hint, before) : before;
    ++acquired_;
    return Chunk{lo_[static_cast<std::size_t>(shard)] +
                     sizes_[static_cast<std::size_t>(shard)] - before,
                 take, step, false};
}

std::optional<ShardedInterQueue::Chunk> ShardedInterQueue::try_acquire() {
    // Own shard first: node-local window traffic only.
    if (auto own = take_from(node_)) {
        return own;
    }
    // Shard drained: steal half the remainder of the most-loaded victim.
    // Each round either succeeds or observes strictly less remaining work
    // (R cells only decrease), so the loop terminates; nullopt means a
    // full scan found every shard empty — all N iterations are assigned.
    for (;;) {
        int victim = -1;
        std::int64_t best = 0;
        for (int j = 0; j < level_workers_; ++j) {
            if (j == node_) {
                continue;
            }
            const std::int64_t r = window_.atomic_read<std::int64_t>(
                host_of_[static_cast<std::size_t>(j)], kRemaining);
            if (r > best) {
                best = r;
                victim = j;
            }
        }
        if (victim < 0) {
            // Peers are dry; re-check the own shard once (a peer may have
            // been mid-carve during our scan, but R cells never grow, so
            // finding everything empty is conclusive).
            if (auto own = take_from(node_)) {
                return own;
            }
            return std::nullopt;
        }
        const int host = host_of_[static_cast<std::size_t>(victim)];
        // A dead host's shard has no owner left to drain it: take the
        // whole remainder in one carve instead of halving — membership
        // loss re-apportions the shard to the survivor outright (the
        // fault-tolerance path; host death is declared by the heartbeat
        // failure detector and is sticky). The cells live in the shared
        // window, which outlives the dead rank's thread.
        const bool host_dead = comm_.is_dead(host);
        const std::int64_t before =
            window_.atomic_update<std::int64_t>(host, kRemaining, [&](std::int64_t r) {
                return r - (host_dead ? r : dls::steal_amount(r, min_chunk_));
            });
        const std::int64_t take =
            host_dead ? before : dls::steal_amount(before, min_chunk_);
        if (take <= 0) {
            continue;  // victim drained since the scan; rescan
        }
        // The step id is telemetry, not an input to any formula: this
        // handle's chunk ordinal does, with no extra window traffic.
        const std::int64_t step = acquired_;
        ++acquired_;
        ++stolen_;
        return Chunk{lo_[static_cast<std::size_t>(victim)] +
                         sizes_[static_cast<std::size_t>(victim)] - before,
                     take, step, true};
    }
}

std::int64_t ShardedInterQueue::remaining_of(int node) const {
    if (node < 0 || node >= level_workers_) {
        throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                             "ShardedInterQueue::remaining_of: node out of range");
    }
    return window_.atomic_read<std::int64_t>(host_of_[static_cast<std::size_t>(node)],
                                             kRemaining);
}

std::int64_t ShardedInterQueue::shard_lo(int node) const {
    return lo_.at(static_cast<std::size_t>(node));
}

std::int64_t ShardedInterQueue::shard_size(int node) const {
    return sizes_.at(static_cast<std::size_t>(node));
}

void ShardedInterQueue::free() {
    comm_.barrier();
    window_.free();
}

}  // namespace hdls::core
