#pragma once
/// \file sharded_queue.hpp
/// The *sharded* inter-node work source: one RMA window segment per node
/// instead of the centralized rank-0 queue.
///
/// Every node owns a shard of the iteration space, sized by its static
/// weight (dls::shard_partition), hosted on the node's lowest world rank as
/// two window cells:
///
///   cell 0   remaining iterations R of the shard (CAS-protected)
///   cell 1   the shard's scheduling-step counter
///
/// A node's ranks self-schedule the shard with the step-indexed formulas
/// (dls::shard_chunk_hint, P = node count: the shard runs the technique's
/// full decreasing schedule over its own range — finer carves than the
/// centralized per-node subsequence, which keeps the shard stealable
/// longer at node-local cost):
///
///   step   <- fetch_and_op(+1, own step cell)
///   hint   <- shard_chunk_hint(technique, shard, step)
///   R_old  <- atomic_update(own R cell, R -> R - min(hint, R))
///   chunk  =  [lo + S - R_old, lo + S - R_old + min(hint, R_old))
///
/// Acquisitions touch only the node-local window — no inter-node traffic
/// at all while a shard lasts, which is exactly the coordinator hotspot
/// the 2021 distributed-chunk-calculation follow-up removes. Once the own
/// shard drains, the rank scans every peer shard's R, picks the most
/// loaded victim and steals half its remainder with the same CAS
/// (Window::atomic_update) — both owners and thieves carve min(take, R)
/// from the single R cell, so the shard tiles [lo, lo+S) exactly no
/// matter how the two interleave, and the whole loop tiles [0, N).
/// try_acquire returns std::nullopt only after a scan finds every shard
/// empty, at which point all N iterations are assigned (R never grows).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/inter_queue.hpp"
#include "dls/sharding.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class ShardedInterQueue final : public InterQueue {
public:
    using Chunk = InterQueue::Chunk;

    /// Collective over `comm`. `level_workers` is the node (= shard) count;
    /// `node` is the caller's shard in [0, level_workers). `node_weights`
    /// size the shards (empty = equal; otherwise size must be
    /// level_workers; only ratios matter).
    ShardedInterQueue(const minimpi::Comm& comm, std::int64_t total_iterations,
                      dls::Technique technique, int level_workers, int node,
                      std::int64_t min_chunk, std::vector<double> node_weights = {});

    [[nodiscard]] std::optional<Chunk> try_acquire() override;

    [[nodiscard]] std::int64_t acquired() const noexcept override { return acquired_; }
    [[nodiscard]] dls::Technique technique() const noexcept override { return technique_; }

    /// Chunks this handle stole from peer shards (per-rank statistic).
    [[nodiscard]] std::int64_t stolen() const noexcept { return stolen_; }

    /// Exact remaining count of `node`'s shard (atomic read).
    [[nodiscard]] std::int64_t remaining_of(int node) const;

    /// The shard layout (for tests/telemetry): shard `node` covers
    /// [shard_lo(node), shard_lo(node) + shard_size(node)).
    [[nodiscard]] std::int64_t shard_lo(int node) const;
    [[nodiscard]] std::int64_t shard_size(int node) const;

    void free() override;

private:
    static constexpr std::size_t kRemaining = 0;
    static constexpr std::size_t kStep = 1;
    static constexpr std::size_t kShardCells = 2;

    /// Owner-path carve from shard `shard`; nullopt when it is empty.
    [[nodiscard]] std::optional<Chunk> take_from(int shard);

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::Technique technique_{};
    std::int64_t min_chunk_ = 1;
    int level_workers_ = 0;
    int node_ = 0;
    std::vector<int> host_of_;          ///< shard -> hosting world rank
    std::vector<std::int64_t> sizes_;   ///< shard sizes (sum = N)
    std::vector<std::int64_t> lo_;      ///< shard lower bounds (prefix sums)
    std::int64_t acquired_ = 0;
    std::int64_t stolen_ = 0;
};

}  // namespace hdls::core
