#pragma once
/// \file mpi_mpi_executor.hpp
/// The paper's proposed approach: hierarchical DLS with a single
/// programming model (MPI+MPI).
///
/// Every worker is an MPI rank. Ranks on one node share a NodeWorkQueue
/// (an MPI_Win_allocate_shared window); all nodes share the GlobalWorkQueue
/// (an RMA window on world rank 0). A free rank first tries a sub-chunk
/// from its node queue; if the node queue is drained, *whichever rank got
/// there first* refills it from the global queue — no implicit barrier
/// exists anywhere, which is the property Figures 3/5/6/7 credit for the
/// MPI+MPI wins with intra-node STATIC.

#include "core/exec_hooks.hpp"
#include "core/hierarchy.hpp"
#include "core/report.hpp"
#include "core/types.hpp"
#include "minimpi/minimpi.hpp"
#include "trace/recorder.hpp"

namespace hdls::core {

/// Executes the calling rank's share of the hierarchical loop [0, n)
/// through the scheduling chain `rh` describes (any depth; the classic
/// two-level run is the {nodes, cores} instance). Collective over
/// ctx.world(); every rank must call it with identical arguments. Returns
/// this rank's statistics (finish time is measured from the common
/// post-setup barrier). A default-constructed (disabled) `tracer` records
/// nothing and costs nothing; an enabled one records the rank's
/// chunk-lifecycle events, level-tagged. `hooks` carries the run-scoped
/// seams: the multi-tenant chunk gate (consulted between acquisition and
/// execution; a false begin_chunk cancels this rank's loop) and the run's
/// own stall watchdog.
[[nodiscard]] WorkerStats run_mpi_mpi_rank(minimpi::Context& ctx, std::int64_t n,
                                           const HierConfig& cfg, const ResolvedHierarchy& rh,
                                           const ChunkBody& body,
                                           trace::WorkerTracer tracer = {},
                                           const RankHooks& hooks = {});

}  // namespace hdls::core
