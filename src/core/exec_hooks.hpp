#pragma once
/// \file exec_hooks.hpp
/// Per-run execution hooks threaded from run_hierarchical into the rank
/// executors. Two concerns live here:
///
///  - ChunkGate: the multi-tenancy seam. A gate sits between chunk
///    *acquisition* and chunk *execution*: after a rank pulls a chunk off
///    its WorkSource chain it must pass begin_chunk() before running the
///    body, and calls end_chunk() when the body returns. The JobService's
///    SlotGovernor implements this to enforce weighted-fair slot sharing
///    across concurrent jobs. Gating deliberately happens *after*
///    try_acquire: the refill/termination protocol inside the chain must
///    never block on another job's slot, or a rank holding a job's last
///    slot could deadlock the peer whose refill it is waiting on.
///
///  - StallWatchdog: each run beats its *own* watchdog instance (threaded
///    here by the runner) instead of a process-global pointer, so
///    overlapping runs never cross heartbeats.
///
/// A default-constructed RankHooks is free: null gate, null watchdog.

#include <cstdint>

namespace hdls::metrics {
class StallWatchdog;
}  // namespace hdls::metrics

namespace hdls::core {

/// Admission gate around the execution of one acquired chunk.
/// Implementations must be safe to call concurrently from every rank of
/// the run (begin_chunk may block).
class ChunkGate {
public:
    virtual ~ChunkGate() = default;

    /// Called by rank `rank` after acquiring a chunk, before executing it.
    /// May block until capacity is available. Returns false to cancel the
    /// run: the rank drops the acquired chunk unexecuted and exits its
    /// acquire loop (in-flight chunks of other ranks still complete).
    [[nodiscard]] virtual bool begin_chunk(int rank) = 0;

    /// Called after the chunk's body returned; releases the capacity taken
    /// by begin_chunk and reports the progress made.
    virtual void end_chunk(int rank, std::int64_t iterations) = 0;
};

/// The per-run hook bundle handed to run_mpi_mpi_rank / run_hybrid_rank.
struct RankHooks {
    ChunkGate* gate = nullptr;                     ///< multi-tenant slot gate (may be null)
    metrics::StallWatchdog* watchdog = nullptr;    ///< this run's watchdog (may be null)
};

}  // namespace hdls::core
