#include "core/slot_governor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "dls/sharding.hpp"

namespace hdls::core {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

SlotGovernor::SlotGovernor(int slots)
    : slots_(slots), capacity_(slots), last_advance_(Clock::now()) {
    if (slots < 1) {
        throw std::invalid_argument("SlotGovernor: need at least one slot");
    }
}

void SlotGovernor::set_capacity(int live_slots) {
    if (live_slots < 1 || live_slots > slots_) {
        throw std::invalid_argument("SlotGovernor::set_capacity: live slots must be in [1, " +
                                    std::to_string(slots_) + "]");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    advance_locked(Clock::now());
    capacity_ = live_slots;
    apportion_locked();
    cv_.notify_all();
}

int SlotGovernor::capacity() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

std::uint64_t SlotGovernor::add_job(double priority, std::int64_t remaining_iterations) {
    if (!(priority > 0.0)) {
        throw std::invalid_argument("SlotGovernor: job priority must be > 0");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    advance_locked(Clock::now());
    const std::uint64_t id = next_id_++;
    Job& job = jobs_[id];
    job.priority = priority;
    job.remaining = std::max<std::int64_t>(remaining_iterations, 1);
    job.gate = std::make_unique<Gate>(this, id);
    apportion_locked();
    cv_.notify_all();
    return id;
}

void SlotGovernor::remove_job(std::uint64_t job) {
    const std::lock_guard<std::mutex> lock(mutex_);
    advance_locked(Clock::now());
    jobs_.erase(job);
    apportion_locked();
    cv_.notify_all();
}

void SlotGovernor::cancel_job(std::uint64_t job) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job);
    if (it != jobs_.end()) {
        it->second.cancelled = true;
        cv_.notify_all();
    }
}

ChunkGate& SlotGovernor::gate(std::uint64_t job) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
        throw std::invalid_argument("SlotGovernor: unknown job id");
    }
    return *it->second.gate;
}

SlotGovernor::JobShare SlotGovernor::share(std::uint64_t job) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    // advance_locked is non-const by design (it mutates integrals); read
    // the integrals as of the last event plus the current partial span.
    const auto it = jobs_.find(job);
    JobShare s;
    if (it == jobs_.end()) {
        return s;
    }
    const double dt = std::chrono::duration<double>(Clock::now() - last_advance_).count();
    const Job& j = it->second;
    s.entitlement = j.entitlement;
    s.running = j.running;
    s.occupancy_seconds = j.occupancy_seconds + j.running * dt;
    s.entitled_seconds = j.entitled_seconds + j.entitlement * dt;
    s.remaining = j.remaining;
    s.completed = j.completed;
    return s;
}

int SlotGovernor::active_jobs() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(jobs_.size());
}

bool SlotGovernor::begin_chunk(std::uint64_t job, int /*rank*/) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto predicate = [&]() -> bool {
        const auto it = jobs_.find(job);
        if (it == jobs_.end()) {
            return true;  // job vanished: treat as cancelled below
        }
        return it->second.cancelled || it->second.running < it->second.entitlement;
    };
    cv_.wait(lock, predicate);
    const auto it = jobs_.find(job);
    if (it == jobs_.end() || it->second.cancelled) {
        return false;
    }
    advance_locked(Clock::now());
    ++it->second.running;
    return true;
}

void SlotGovernor::end_chunk(std::uint64_t job, int /*rank*/, std::int64_t iterations) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
        return;
    }
    advance_locked(Clock::now());
    Job& j = it->second;
    j.running = std::max(j.running - 1, 0);
    j.completed += iterations;
    j.remaining = std::max<std::int64_t>(j.remaining - iterations, 0);
    // The service's refill boundary: every completed chunk shrinks this
    // job's remaining-work weight, so the apportionment drifts toward
    // jobs with more work left (and newly arrived short jobs) instead of
    // locking in the admission-time split.
    apportion_locked();
    cv_.notify_all();
}

void SlotGovernor::advance_locked(Clock::time_point now) {
    const double dt = std::chrono::duration<double>(now - last_advance_).count();
    if (dt > 0.0) {
        for (auto& [id, j] : jobs_) {
            j.occupancy_seconds += j.running * dt;
            j.entitled_seconds += j.entitlement * dt;
        }
    }
    last_advance_ = now;
}

void SlotGovernor::apportion_locked() {
    if (jobs_.empty()) {
        return;
    }
    const int n = static_cast<int>(jobs_.size());
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(n));
    std::vector<Job*> order;
    order.reserve(static_cast<std::size_t>(n));
    for (auto& [id, j] : jobs_) {
        // A cancelled or drained job keeps weight ~0: its in-flight chunks
        // finish on slots it already holds, everything else flows to live
        // jobs. (shard_partition requires weights >= 0; all-zero weight
        // vectors fall back to equal shares, which is harmless here.)
        const bool live = !j.cancelled && j.remaining > 0;
        weights.push_back(live ? j.priority * static_cast<double>(j.remaining) : 0.0);
        order.push_back(&j);
    }
    const std::vector<std::int64_t> shares =
        dls::shard_partition(static_cast<std::int64_t>(capacity_), weights, n);
    for (int i = 0; i < n; ++i) {
        order[static_cast<std::size_t>(i)]->entitlement =
            static_cast<int>(shares[static_cast<std::size_t>(i)]);
    }
    // Progress floor: whenever the live jobs fit in the slots, each gets
    // at least one — largest-remainder can round a low-weight job to zero,
    // which would stall it until the heavy jobs drain (exactly the
    // starvation the re-apportionment exists to prevent). Slots are taken
    // from the most-entitled donors, ties toward later jobs.
    std::vector<Job*> live;
    for (Job* j : order) {
        if (!j->cancelled && j->remaining > 0) {
            live.push_back(j);
        }
    }
    if (!live.empty() && static_cast<int>(live.size()) <= capacity_) {
        for (Job* starved : live) {
            if (starved->entitlement > 0) {
                continue;
            }
            Job* donor = nullptr;
            for (Job* candidate : live) {
                if (candidate->entitlement > 1 &&
                    (donor == nullptr || candidate->entitlement >= donor->entitlement)) {
                    donor = candidate;
                }
            }
            if (donor != nullptr) {
                --donor->entitlement;
                starved->entitlement = 1;
            }
        }
    }
}

}  // namespace hdls::core
