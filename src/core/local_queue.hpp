#pragma once
/// \file local_queue.hpp
/// The *local (node-level) work queue* of the paper's Figure 1 —
/// generalized to serve any non-root level of a topology tree.
///
/// One MPI_Win_allocate_shared window per group (hosted by group rank 0,
/// directly addressable by every rank of the group communicator) holding a
/// small FIFO of parent-level chunks plus, per chunk, the distributed
/// chunk-calculation state of this level (sub-step counter and scheduled
/// count). All queue accesses happen inside an MPI_Win_lock /
/// MPI_Win_unlock exclusive epoch on the host rank — the exact
/// synchronization whose lock-polling cost the paper's evaluation
/// dissects (and the reason intra-node SS performs poorly under MPI+MPI).
///
/// The refill protocol implements the paper's "the fastest MPI process
/// always takes this responsibility": no designated refiller exists; a rank
/// that finds the queue empty announces an in-flight refill (atomic
/// counter), fetches a chunk from the parent level, and appends it. Ranks
/// terminate only when the parent is exhausted, the queue is drained *and*
/// no refill is in flight.
///
/// LevelQueue is the abstract face of this protocol: ComposedWorkSource
/// (work_source.hpp) drives any implementation at any depth. Two exist —
/// NodeWorkQueue here (the centralized shared FIFO) and ShardedRelayQueue
/// (sharded_relay.hpp: per-child shards of every arriving chunk with
/// work stealing between children).

#include <chrono>
#include <cstdint>
#include <optional>

#include "dls/chunk_formulas.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

/// A non-root level's relay queue: receives parent-level chunks and hands
/// out sub-chunks sliced by this level's technique among its children.
class LevelQueue {
public:
    /// One sub-chunk: execute (or pass down) [begin, end). `stolen` marks
    /// a share carved from a sibling child's shard (sharded relay only).
    struct SubChunk {
        std::int64_t begin = 0;
        std::int64_t end = 0;
        bool stolen = false;
    };

    virtual ~LevelQueue() = default;

    /// Grabs a sub-chunk already queued at this level, or std::nullopt
    /// when no chunk currently holds unassigned work. When `lock_wait_s`
    /// is non-null it receives the lock-grant latency of the access.
    [[nodiscard]] virtual std::optional<SubChunk> try_pop(double* lock_wait_s) = 0;

    /// Announce an in-flight refill *before* touching the parent level so
    /// peers do not terminate while a chunk is on its way.
    virtual void begin_refill() = 0;

    /// Nonblocking begin_refill(): posts the in-flight announcement as a
    /// request-based window op (Window::start_atomic_update) and returns
    /// the handle. The caller must complete it — wait() — before touching
    /// the parent level (the announcement-precedes-parent ordering of the
    /// termination protocol), but may overlap anything else first; that is
    /// the prefetcher's issue path. The default falls back to the blocking
    /// announcement and returns an already-complete request.
    [[nodiscard]] virtual minimpi::AtomicUpdateRequest<std::int64_t> begin_refill_async() {
        begin_refill();
        return {};
    }

    /// Withdraw the announcement (the parent turned out to be empty).
    virtual void end_refill() = 0;

    /// Append a fresh parent chunk and immediately pop the caller's first
    /// sub-chunk from it (single lock epoch), then withdraw the in-flight
    /// announcement (on every exit path, including throws).
    [[nodiscard]] virtual std::optional<SubChunk> push_and_pop(std::int64_t start,
                                                               std::int64_t size,
                                                               double* lock_wait_s) = 0;

    /// True while any queued chunk still has unassigned iterations.
    [[nodiscard]] virtual bool has_pending() = 0;

    /// True while some rank is between begin_refill() and its completion.
    [[nodiscard]] virtual bool refills_in_flight() = 0;

    /// Sub-chunks popped through this handle (per-rank statistic).
    [[nodiscard]] virtual std::int64_t popped() const noexcept = 0;

    /// The technique slicing this level's chunks.
    [[nodiscard]] virtual dls::Technique technique() const noexcept = 0;

    /// Collective teardown over the level's communicator.
    virtual void free() = 0;
};

class NodeWorkQueue final : public LevelQueue {
public:
    using SubChunk = LevelQueue::SubChunk;

    /// Collective over the level communicator (split_type(Shared) for the
    /// leaf level, a plain split for interior levels). `technique` must
    /// have a step-indexed form. `level_workers` is P in its formulas —
    /// the number of schedulable children at this level; 0 (the default)
    /// means the communicator size, the paper's leaf-level convention.
    NodeWorkQueue(const minimpi::Comm& comm, dls::Technique technique, std::int64_t min_chunk,
                  int level_workers = 0)
        : comm_(comm),
          level_workers_(level_workers > 0 ? level_workers : comm.size()),
          capacity_(comm.size() + 4) {
        if (!dls::supports_step_indexed(technique)) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "NodeWorkQueue: technique lacks a step-indexed form");
        }
        technique_ = technique;
        min_chunk_ = min_chunk;
        const std::size_t cells = kSlotBase + kSlotFields * static_cast<std::size_t>(capacity_);
        window_ = minimpi::Window::allocate_shared(
            comm, comm.rank() == 0 ? cells * sizeof(std::int64_t) : 0);
        if (comm.rank() == 0) {
            auto mem = window_.shared_span<std::int64_t>(0);
            for (auto& v : mem) {
                v = 0;
            }
        }
        window_.sync();
        comm_.barrier();
    }

    /// Stage 2 of the paper's protocol: grab a sub-chunk from the queue.
    /// Returns std::nullopt when no chunk currently holds unassigned work.
    /// When `lock_wait_s` is non-null it receives the seconds between the
    /// lock request and its grant (the contention quantity the tracing
    /// subsystem reports); timing is only taken when requested.
    [[nodiscard]] std::optional<SubChunk> try_pop(double* lock_wait_s = nullptr) override {
        lock_timed(lock_wait_s);
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    /// Announce an in-flight refill *before* touching the parent level so
    /// peers do not terminate while a chunk is on its way.
    void begin_refill() override {
        (void)window_.fetch_and_op<std::int64_t>(1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    /// The announcement as a nonblocking window op (the prefetch issue
    /// path): +1 on the in-flight counter, completed via the request.
    [[nodiscard]] minimpi::AtomicUpdateRequest<std::int64_t> begin_refill_async() override {
        return window_.start_atomic_update<std::int64_t>(
            kHost, kInflight, [](std::int64_t v) { return v + 1; });
    }

    /// Withdraw the announcement (the parent turned out to be empty).
    void end_refill() override {
        (void)window_.fetch_and_op<std::int64_t>(-1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    /// Stage 1+2 combined: append a fresh parent chunk and immediately pop
    /// this rank's first sub-chunk from it (single lock epoch), then
    /// withdraw the in-flight announcement. The announcement is released on
    /// *every* exit path, including the capacity-exceeded throw — leaving
    /// it raised would keep kInflight > 0 forever and spin every peer rank
    /// in the termination protocol.
    [[nodiscard]] std::optional<SubChunk> push_and_pop(std::int64_t start, std::int64_t size,
                                                       double* lock_wait_s = nullptr) override {
        const RefillAnnouncementGuard release(*this);
        lock_timed(lock_wait_s);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        const std::int64_t head = mem[kHead];
        const std::int64_t tail = mem[kTail];
        if (tail - head >= capacity_) {
            window_.unlock(kHost);
            throw minimpi::Error(minimpi::ErrorCode::Internal,
                                 "NodeWorkQueue: queue capacity exceeded");
        }
        std::int64_t* slot = slot_of(mem, tail);
        slot[kChunkStart] = start;
        slot[kChunkSize] = size;
        slot[kSubStep] = 0;
        slot[kSubScheduled] = 0;
        mem[kTail] = tail + 1;
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    /// True while any chunk in the queue still has unassigned iterations.
    [[nodiscard]] bool has_pending() override {
        window_.lock(minimpi::LockType::Shared, kHost);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        bool pending = false;
        for (std::int64_t i = mem[kHead]; i < mem[kTail]; ++i) {
            const std::int64_t* slot = slot_of(mem, i);
            if (slot[kSubScheduled] < slot[kChunkSize]) {
                pending = true;
                break;
            }
        }
        window_.unlock(kHost);
        return pending;
    }

    /// True while some rank is between begin_refill() and its completion.
    [[nodiscard]] bool refills_in_flight() override {
        return window_.atomic_read<std::int64_t>(kHost, kInflight) > 0;
    }

    /// Sub-chunks popped through this handle (per-rank statistic).
    [[nodiscard]] std::int64_t popped() const noexcept override { return popped_; }

    /// The technique slicing the queued chunks.
    [[nodiscard]] dls::Technique technique() const noexcept override { return technique_; }

    /// Collective teardown.
    void free() override {
        comm_.barrier();
        window_.free();
    }

private:
    /// Scope guard pairing begin_refill() with end_refill() across every
    /// exit path of a refill completion (normal return and throw alike).
    class RefillAnnouncementGuard {
    public:
        explicit RefillAnnouncementGuard(NodeWorkQueue& queue) noexcept : queue_(queue) {}
        ~RefillAnnouncementGuard() { queue_.end_refill(); }
        RefillAnnouncementGuard(const RefillAnnouncementGuard&) = delete;
        RefillAnnouncementGuard& operator=(const RefillAnnouncementGuard&) = delete;

    private:
        NodeWorkQueue& queue_;
    };

    /// Exclusive lock on the host segment, optionally timing the grant.
    void lock_timed(double* lock_wait_s) {
        if (lock_wait_s == nullptr) {
            window_.lock(minimpi::LockType::Exclusive, kHost);
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        window_.lock(minimpi::LockType::Exclusive, kHost);
        *lock_wait_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    static constexpr int kHost = 0;  // group rank hosting the queue memory
    static constexpr std::size_t kHead = 0;
    static constexpr std::size_t kTail = 1;
    static constexpr std::size_t kInflight = 2;
    static constexpr std::size_t kSlotBase = 4;  // one spare cell keeps slots aligned
    static constexpr std::size_t kSlotFields = 4;
    static constexpr std::size_t kChunkStart = 0;
    static constexpr std::size_t kChunkSize = 1;
    static constexpr std::size_t kSubStep = 2;
    static constexpr std::size_t kSubScheduled = 3;

    [[nodiscard]] std::int64_t* slot_of(std::span<std::int64_t> mem,
                                        std::int64_t index) const noexcept {
        const auto s = static_cast<std::size_t>(index % capacity_);
        return mem.data() + kSlotBase + kSlotFields * s;
    }

    /// Core allocation step; caller holds the exclusive lock.
    [[nodiscard]] std::optional<SubChunk> pop_locked() {
        auto mem = window_.shared_span<std::int64_t>(kHost);
        while (mem[kHead] < mem[kTail]) {
            std::int64_t* slot = slot_of(mem, mem[kHead]);
            const std::int64_t size = slot[kChunkSize];
            const std::int64_t scheduled = slot[kSubScheduled];
            if (scheduled >= size) {
                ++mem[kHead];  // chunk fully assigned; retire it
                continue;
            }
            dls::LoopParams p;
            p.total_iterations = size;
            p.workers = level_workers_;
            p.min_chunk = min_chunk_;
            const std::int64_t hint = dls::chunk_size_for_step(technique_, p, slot[kSubStep]);
            if (hint <= 0) {
                // Defensive: a formula that runs dry before the chunk is
                // fully assigned (cannot happen for the supported
                // techniques) — hand out the remainder.
                const std::int64_t begin = slot[kChunkStart] + scheduled;
                slot[kSubScheduled] = size;
                ++slot[kSubStep];
                ++popped_;
                return SubChunk{begin, slot[kChunkStart] + size, false};
            }
            const std::int64_t take = std::min(hint, size - scheduled);
            slot[kSubScheduled] = scheduled + take;
            ++slot[kSubStep];
            ++popped_;
            const std::int64_t begin = slot[kChunkStart] + scheduled;
            return SubChunk{begin, begin + take, false};
        }
        return std::nullopt;
    }

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::Technique technique_{};
    std::int64_t min_chunk_ = 1;
    int level_workers_ = 0;
    std::int64_t capacity_ = 0;
    std::int64_t popped_ = 0;
};

}  // namespace hdls::core
