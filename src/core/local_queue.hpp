#pragma once
/// \file local_queue.hpp
/// The *local (node-level) work queue* of the paper's Figure 1.
///
/// One MPI_Win_allocate_shared window per compute node (hosted by node rank
/// 0, directly addressable by every rank of the node communicator) holding
/// a small FIFO of level-1 chunks plus, per chunk, the intra-node
/// distributed chunk-calculation state (sub-step counter and scheduled
/// count). All queue accesses happen inside an MPI_Win_lock /
/// MPI_Win_unlock exclusive epoch on the host rank — the exact
/// synchronization whose lock-polling cost the paper's evaluation
/// dissects (and the reason intra-node SS performs poorly under MPI+MPI).
///
/// The refill protocol implements the paper's "the fastest MPI process
/// always takes this responsibility": no designated refiller exists; a rank
/// that finds the queue empty announces an in-flight refill (atomic
/// counter), fetches a chunk from the global queue, and appends it. Ranks
/// terminate only when the global queue is exhausted, the local queue is
/// drained *and* no refill is in flight.

#include <chrono>
#include <cstdint>
#include <optional>

#include "dls/chunk_formulas.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class NodeWorkQueue {
public:
    /// One intra-node sub-chunk: execute [begin, end).
    struct SubChunk {
        std::int64_t begin = 0;
        std::int64_t end = 0;
    };

    /// Collective over the node communicator (from split_type(Shared)).
    /// `intra` must have a step-indexed form; P in its formulas is the node
    /// communicator size.
    NodeWorkQueue(const minimpi::Comm& node_comm, dls::Technique intra, std::int64_t min_chunk)
        : comm_(node_comm), capacity_(node_comm.size() + 4) {
        if (!dls::supports_step_indexed(intra)) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "NodeWorkQueue: technique lacks a step-indexed form");
        }
        intra_ = intra;
        min_chunk_ = min_chunk;
        const std::size_t cells = kSlotBase + kSlotFields * static_cast<std::size_t>(capacity_);
        window_ = minimpi::Window::allocate_shared(
            node_comm, node_comm.rank() == 0 ? cells * sizeof(std::int64_t) : 0);
        if (node_comm.rank() == 0) {
            auto mem = window_.shared_span<std::int64_t>(0);
            for (auto& v : mem) {
                v = 0;
            }
        }
        window_.sync();
        comm_.barrier();
    }

    /// Stage 2 of the paper's protocol: grab a sub-chunk from the queue.
    /// Returns std::nullopt when no chunk currently holds unassigned work.
    /// When `lock_wait_s` is non-null it receives the seconds between the
    /// lock request and its grant (the contention quantity the tracing
    /// subsystem reports); timing is only taken when requested.
    [[nodiscard]] std::optional<SubChunk> try_pop(double* lock_wait_s = nullptr) {
        lock_timed(lock_wait_s);
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    /// Announce an in-flight refill *before* touching the global queue so
    /// peers do not terminate while a chunk is on its way.
    void begin_refill() {
        (void)window_.fetch_and_op<std::int64_t>(1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    /// Withdraw the announcement (global queue turned out to be empty).
    void end_refill() {
        (void)window_.fetch_and_op<std::int64_t>(-1, kHost, kInflight,
                                                 minimpi::AccumulateOp::Sum);
    }

    /// Stage 1+2 combined: append a fresh level-1 chunk and immediately pop
    /// this rank's first sub-chunk from it (single lock epoch), then
    /// withdraw the in-flight announcement. The announcement is released on
    /// *every* exit path, including the capacity-exceeded throw — leaving
    /// it raised would keep kInflight > 0 forever and spin every peer rank
    /// in the termination protocol.
    [[nodiscard]] std::optional<SubChunk> push_and_pop(std::int64_t start, std::int64_t size,
                                                       double* lock_wait_s = nullptr) {
        const RefillAnnouncementGuard release(*this);
        lock_timed(lock_wait_s);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        const std::int64_t head = mem[kHead];
        const std::int64_t tail = mem[kTail];
        if (tail - head >= capacity_) {
            window_.unlock(kHost);
            throw minimpi::Error(minimpi::ErrorCode::Internal,
                                 "NodeWorkQueue: queue capacity exceeded");
        }
        std::int64_t* slot = slot_of(mem, tail);
        slot[kChunkStart] = start;
        slot[kChunkSize] = size;
        slot[kSubStep] = 0;
        slot[kSubScheduled] = 0;
        mem[kTail] = tail + 1;
        const auto sub = pop_locked();
        window_.unlock(kHost);
        return sub;
    }

    /// True while any chunk in the queue still has unassigned iterations.
    [[nodiscard]] bool has_pending() {
        window_.lock(minimpi::LockType::Shared, kHost);
        auto mem = window_.shared_span<std::int64_t>(kHost);
        bool pending = false;
        for (std::int64_t i = mem[kHead]; i < mem[kTail]; ++i) {
            const std::int64_t* slot = slot_of(mem, i);
            if (slot[kSubScheduled] < slot[kChunkSize]) {
                pending = true;
                break;
            }
        }
        window_.unlock(kHost);
        return pending;
    }

    /// True while some rank is between begin_refill() and its completion.
    [[nodiscard]] bool refills_in_flight() {
        return window_.atomic_read<std::int64_t>(kHost, kInflight) > 0;
    }

    /// Sub-chunks popped through this handle (per-rank statistic).
    [[nodiscard]] std::int64_t popped() const noexcept { return popped_; }

    /// The intra-node technique slicing the queued chunks.
    [[nodiscard]] dls::Technique technique() const noexcept { return intra_; }

    /// Collective teardown.
    void free() {
        comm_.barrier();
        window_.free();
    }

private:
    /// Scope guard pairing begin_refill() with end_refill() across every
    /// exit path of a refill completion (normal return and throw alike).
    class RefillAnnouncementGuard {
    public:
        explicit RefillAnnouncementGuard(NodeWorkQueue& queue) noexcept : queue_(queue) {}
        ~RefillAnnouncementGuard() { queue_.end_refill(); }
        RefillAnnouncementGuard(const RefillAnnouncementGuard&) = delete;
        RefillAnnouncementGuard& operator=(const RefillAnnouncementGuard&) = delete;

    private:
        NodeWorkQueue& queue_;
    };

    /// Exclusive lock on the host segment, optionally timing the grant.
    void lock_timed(double* lock_wait_s) {
        if (lock_wait_s == nullptr) {
            window_.lock(minimpi::LockType::Exclusive, kHost);
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        window_.lock(minimpi::LockType::Exclusive, kHost);
        *lock_wait_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    static constexpr int kHost = 0;  // node rank hosting the queue memory
    static constexpr std::size_t kHead = 0;
    static constexpr std::size_t kTail = 1;
    static constexpr std::size_t kInflight = 2;
    static constexpr std::size_t kSlotBase = 4;  // one spare cell keeps slots aligned
    static constexpr std::size_t kSlotFields = 4;
    static constexpr std::size_t kChunkStart = 0;
    static constexpr std::size_t kChunkSize = 1;
    static constexpr std::size_t kSubStep = 2;
    static constexpr std::size_t kSubScheduled = 3;

    [[nodiscard]] std::int64_t* slot_of(std::span<std::int64_t> mem,
                                        std::int64_t index) const noexcept {
        const auto s = static_cast<std::size_t>(index % capacity_);
        return mem.data() + kSlotBase + kSlotFields * s;
    }

    /// Core allocation step; caller holds the exclusive lock.
    [[nodiscard]] std::optional<SubChunk> pop_locked() {
        auto mem = window_.shared_span<std::int64_t>(kHost);
        while (mem[kHead] < mem[kTail]) {
            std::int64_t* slot = slot_of(mem, mem[kHead]);
            const std::int64_t size = slot[kChunkSize];
            const std::int64_t scheduled = slot[kSubScheduled];
            if (scheduled >= size) {
                ++mem[kHead];  // chunk fully assigned; retire it
                continue;
            }
            dls::LoopParams p;
            p.total_iterations = size;
            p.workers = comm_.size();
            p.min_chunk = min_chunk_;
            const std::int64_t hint = dls::chunk_size_for_step(intra_, p, slot[kSubStep]);
            if (hint <= 0) {
                // Defensive: a formula that runs dry before the chunk is
                // fully assigned (cannot happen for the supported
                // techniques) — hand out the remainder.
                const std::int64_t begin = slot[kChunkStart] + scheduled;
                slot[kSubScheduled] = size;
                ++slot[kSubStep];
                ++popped_;
                return SubChunk{begin, slot[kChunkStart] + size};
            }
            const std::int64_t take = std::min(hint, size - scheduled);
            slot[kSubScheduled] = scheduled + take;
            ++slot[kSubStep];
            ++popped_;
            const std::int64_t begin = slot[kChunkStart] + scheduled;
            return SubChunk{begin, begin + take};
        }
        return std::nullopt;
    }

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::Technique intra_{};
    std::int64_t min_chunk_ = 1;
    std::int64_t capacity_ = 0;
    std::int64_t popped_ = 0;
};

}  // namespace hdls::core
