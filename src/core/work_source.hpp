#pragma once
/// \file work_source.hpp
/// WorkSource — the one recursive interface behind every level of the
/// scheduling hierarchy.
///
/// The paper's two hard-coded levels (an inter-node queue feeding an
/// intra-node queue) generalize to a chain of WorkSources built along the
/// machine's topology tree: the root is served by any of the three
/// inter-backends — GlobalWorkQueue, AdaptiveGlobalQueue (both centralized
/// on rank 0) or ShardedInterQueue (one window per entity with CAS work
/// stealing) — and every deeper level is a ComposedWorkSource that slices
/// the chunks of its parent through that level's relay queue (LevelQueue:
/// the centralized NodeWorkQueue or the work-stealing ShardedRelayQueue).
/// core::build_hierarchy (hierarchy.hpp) assembles the chain from a
/// topology spec; executors only ever talk to the top of the chain.

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>

#include "core/lease_board.hpp"
#include "core/local_queue.hpp"
#include "dls/technique.hpp"
#include "metrics/metrics.hpp"
#include "trace/recorder.hpp"

namespace hdls::core {

class WorkSource {
public:
    /// One scheduled chunk: execute [start, start + size).
    struct Chunk {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
        /// True when the chunk was carved from a peer's share (the sharded
        /// backends' work stealing); executors and composed sources record
        /// it as a Steal rather than a GlobalAcquire trace event.
        bool stolen = false;
    };

    virtual ~WorkSource() = default;

    /// Acquires the next chunk, or std::nullopt once this source (and,
    /// for composed sources, every source beneath it) is exhausted.
    [[nodiscard]] virtual std::optional<Chunk> try_acquire() = 0;

    /// Runtime feedback for the adaptive techniques: executed iterations
    /// with their compute and scheduling-overhead time, accumulated into
    /// the caller's node rate. Composed sources forward to their parent;
    /// a no-op for non-adaptive backends.
    virtual void report(std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// True when report() calls influence future chunk sizes (AWF-*); lets
    /// executors skip the feedback timing entirely otherwise.
    [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }

    /// Chunks acquired through *this* handle (per-rank statistic).
    [[nodiscard]] virtual std::int64_t acquired() const noexcept = 0;

    /// The technique this source schedules with (its own level).
    [[nodiscard]] virtual dls::Technique technique() const noexcept = 0;

    /// Collective teardown. Composed sources free their whole chain.
    virtual void free() = 0;
};

/// A non-root level of the scheduling hierarchy: pops sub-chunks from the
/// level's relay queue and, when it drains, refills it from the parent
/// source under the paper's "fastest rank refills" protocol — including
/// the termination condition (parent exhausted, queue drained, no refill
/// in flight). Works at any depth: the parent may be the root backend or
/// another ComposedWorkSource. Records the full chunk-lifecycle trace
/// (LocalPop, RefillBegin/End, GlobalAcquire/Steal, coalesced
/// BarrierWait), each event tagged with its hierarchy level: pops and
/// refills carry this source's level, parent acquisitions the parent's.
class ComposedWorkSource final : public WorkSource {
public:
    /// `level` is this source's depth in the tree (>= 1; the root is 0).
    /// `before_refill` (optional) runs right before every parent acquire —
    /// the executors flush accumulated adaptive feedback there (attached
    /// to the level-1 source, so rates are published before the next root
    /// decision); it can also be attached later via set_before_refill.
    ComposedWorkSource(LevelQueue& local, WorkSource& parent, trace::WorkerTracer& tracer,
                       int level, std::function<void()> before_refill = {})
        : local_(local),
          parent_(parent),
          tracer_(tracer),
          tracing_(tracer.enabled()),
          level_(level),
          before_refill_(std::move(before_refill)),
          // Metric handles resolved once: increments on the acquire path
          // are a single relaxed fetch_add through these pointers. Parent
          // acquisitions are attributed to the parent's level, as in the
          // trace events above.
          m_pops_(metrics::rt().pops[midx(level)]),
          m_refills_(metrics::rt().refills[midx(level)]),
          m_acquires_(metrics::rt().acquires[midx(level - 1)]),
          m_steals_(metrics::rt().steals[midx(level - 1)]),
          m_acquire_latency_(metrics::rt().acquire_latency_ns[midx(level - 1)]),
          m_prefetch_hits_(metrics::rt().prefetch_hits),
          m_prefetch_misses_(metrics::rt().prefetch_misses) {}

    /// Attaches the pre-acquire callback after construction (the feedback
    /// flush needs the fully-built chain to exist first).
    void set_before_refill(std::function<void()> fn) { before_refill_ = std::move(fn); }

    /// Enables the double-buffered prefetch slot (HierConfig::prefetch):
    /// returning a chunk also fills the slot with the *next* acquisition,
    /// so it is in flight while the caller executes — the following
    /// try_acquire is a constant-time slot read (a Prefetch hit). Enabled
    /// on the chain's top source only: that is the handle whose acquire
    /// latency sits between the caller's chunk executions. Exact tiling is
    /// unaffected (the slot holds an already-assigned sub-chunk, consumed
    /// before termination can be reached).
    void set_prefetch(bool on) { prefetch_ = on; }
    [[nodiscard]] bool prefetch_enabled() const noexcept { return prefetch_; }

    /// Attaches the fault-tolerance lease board (HierConfig::lease; the
    /// chain's top source only — the handle whose chunks the executor
    /// runs). Every sub-chunk is leased the moment it is carved from the
    /// level queue — *including* prefetch-slot fills, so a chunk sitting
    /// in the slot of a rank that dies is reclaimed like any other. The
    /// executor completes the lease after the body (LeaseBoard::complete).
    void set_lease_board(LeaseBoard* board) noexcept { lease_board_ = board; }

    /// Fail-stop support (the chaos drill): converts every sub-chunk still
    /// visible in this level's queue into a lease without executing it.
    /// A dying rank's level queue may hold refilled-but-undispatched work
    /// that only its own node's workers can see — on a whole-node loss
    /// that work would be stranded, because the leaf window's communicator
    /// is node-scoped and survivors elsewhere cannot pop it. Leasing it
    /// here moves it under the board's exactly-once reclamation before the
    /// owner abandons its leases. Adjacent sub-chunks coalesce into single
    /// leases so the board's slot budget is not exhausted by a long queue.
    void abandon_pending() {
        if (lease_board_ == nullptr) {
            return;
        }
        std::int64_t run_begin = -1;
        std::int64_t run_end = -1;
        while (const auto sub = local_.try_pop(nullptr)) {
            if (run_begin >= 0 && sub->begin == run_end) {
                run_end = sub->end;
                continue;
            }
            if (run_begin >= 0) {
                lease_board_->lease(run_begin, run_end - run_begin);
            }
            run_begin = sub->begin;
            run_end = sub->end;
        }
        if (run_begin >= 0) {
            lease_board_->lease(run_begin, run_end - run_begin);
        }
    }

    [[nodiscard]] std::optional<Chunk> try_acquire() override {
        if (prefetch_ && slot_) {
            m_prefetch_hits_->inc();
            const Chunk chunk = *slot_;
            slot_.reset();
            if (tracing_) {
                const double now = tracer_.now();
                tracer_.record(trace::EventKind::Prefetch, now, now, 1, chunk.start,
                               slot_fill_seconds_, level_);
            }
            fill_slot();
            return chunk;
        }
        const auto chunk = acquire_sync();
        if (prefetch_ && chunk) {
            m_prefetch_misses_->inc();
            if (tracing_) {
                // Miss: the slot was empty and the acquisition above ran on
                // the critical path.
                const double now = tracer_.now();
                tracer_.record(trace::EventKind::Prefetch, now, now, 0, chunk->start, 0.0,
                               level_);
            }
            fill_slot();
        }
        return chunk;
    }

private:
    /// The synchronous acquisition loop (the pre-prefetch try_acquire):
    /// pop, else refill from the parent, else run the termination
    /// protocol.
    [[nodiscard]] std::optional<Chunk> acquire_sync() {
        for (;;) {
            // Termination-spin coalescing: while the parent is exhausted
            // but peers are mid-refill, the rank polls; recording every
            // poll would flood the ring buffer, so the whole wait becomes
            // one BarrierWait event — and the per-poll LocalPop /
            // GlobalAcquire probes are muted.
            const bool record_probe = tracing_ && wait_start_ < 0.0;
            // Stage 2 first: the level queue may already hold sub-chunks.
            double pop_t0 = 0.0;
            double lock_wait = 0.0;
            if (tracing_) {
                pop_t0 = tracer_.now();
            }
            if (const auto sub = local_.try_pop(tracing_ ? &lock_wait : nullptr)) {
                m_pops_->inc();
                if (tracing_) {
                    close_wait(pop_t0);
                    // Every pop epoch is a LocalPop at this level; a pop
                    // that carved a sibling's shard (sharded relay) keeps
                    // its `stolen` flag on the returned chunk, and the
                    // *puller* one level down records it as the level's
                    // Steal — one acquire-side event per transfer.
                    tracer_.record(trace::EventKind::LocalPop, pop_t0, tracer_.now(),
                                   sub->begin, sub->end, lock_wait, level_);
                }
                return as_chunk(*sub);
            }
            if (record_probe) {
                tracer_.record(trace::EventKind::LocalPop, pop_t0, tracer_.now(), -1, -1,
                               lock_wait, level_);
            }
            // Queue drained: this rank happens to be the fastest — refill.
            local_.begin_refill();
            if (record_probe) {
                tracer_.instant(trace::EventKind::RefillBegin, tracer_.now(), 0, 0, level_);
            }
            if (before_refill_) {
                before_refill_();
            }
            const double acq_t0 = tracing_ ? tracer_.now() : 0.0;
            const auto par_t0 = std::chrono::steady_clock::now();
            if (const auto chunk = parent_.try_acquire()) {
                observe_parent_acquire(*chunk, par_t0);
                if (tracing_) {
                    close_wait(acq_t0);
                    tracer_.record(chunk->stolen ? trace::EventKind::Steal
                                                 : trace::EventKind::GlobalAcquire,
                                   acq_t0, tracer_.now(), chunk->start, chunk->size, 0.0,
                                   level_ - 1);
                }
                ++refills_;
                m_refills_->inc();
                double push_t0 = 0.0;
                double push_wait = 0.0;
                if (tracing_) {
                    push_t0 = tracer_.now();
                }
                const auto sub = local_.push_and_pop(chunk->start, chunk->size,
                                                     tracing_ ? &push_wait : nullptr);
                if (tracing_) {
                    tracer_.record(trace::EventKind::LocalPop, push_t0, tracer_.now(),
                                   sub ? sub->begin : -1, sub ? sub->end : -1, push_wait,
                                   level_);
                    tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), chunk->start,
                                    chunk->size, level_);
                }
                if (sub) {
                    m_pops_->inc();
                    return as_chunk(*sub);
                }
                continue;
            }
            if (record_probe) {
                tracer_.record(trace::EventKind::GlobalAcquire, acq_t0, tracer_.now(), 0, 0,
                               0.0, level_ - 1);
            }
            local_.end_refill();
            if (record_probe) {
                tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), 0, 0, level_);
            }
            // Parent exhausted. Terminate only when no peer is mid-refill
            // and nothing is left to pop, otherwise work could still appear.
            if (!local_.refills_in_flight() && !local_.has_pending()) {
                return std::nullopt;
            }
            if (tracing_ && wait_start_ < 0.0) {
                wait_start_ = tracer_.now();
            }
            metrics::rt().termination_spins->inc();
            std::this_thread::yield();
        }
    }

    /// Starts the next acquisition while the caller executes the chunk
    /// just returned (the double buffer's back side). One non-spinning
    /// pass: pop the level queue; on empty, refill from the parent — the
    /// in-flight announcement issued as a nonblocking window op
    /// (begin_refill_async) and completed before the parent is touched,
    /// per the termination protocol's ordering. Never blocks on peers: an
    /// empty parent simply leaves the slot empty (the next try_acquire
    /// falls back to the synchronous path, which owns the termination
    /// protocol). When the root is adaptive (wants_feedback) the refill
    /// boundary is NOT crossed: the next root decision must see the
    /// feedback of the chunk whose execution this prefetch would overlap,
    /// so only already-queued sub-chunks are prefetched and the refill
    /// stays synchronous, after the flush — feedback-flush ordering is
    /// exactly the synchronous run's.
    void fill_slot() {
        const double fill_t0 = tracing_ ? tracer_.now() : 0.0;
        double lock_wait = 0.0;
        if (const auto sub = local_.try_pop(tracing_ ? &lock_wait : nullptr)) {
            m_pops_->inc();
            if (tracing_) {
                tracer_.record(trace::EventKind::LocalPop, fill_t0, tracer_.now(), sub->begin,
                               sub->end, lock_wait, level_);
                slot_fill_seconds_ = tracer_.now() - fill_t0;
            }
            slot_ = as_chunk(*sub);
            return;
        }
        if (parent_.wants_feedback()) {
            return;  // adaptive root: the refill must follow the flush
        }
        // The announcement flies as a nonblocking op while the refill's
        // bookkeeping (trace marker, pre-acquire callback) runs; it must
        // only have *landed* before the parent is touched, per the
        // termination protocol's announce-before-parent ordering.
        auto announce = local_.begin_refill_async();
        if (tracing_) {
            tracer_.instant(trace::EventKind::RefillBegin, tracer_.now(), 0, 0, level_);
        }
        if (before_refill_) {
            before_refill_();
        }
        (void)announce.wait();
        const double acq_t0 = tracing_ ? tracer_.now() : 0.0;
        const auto par_t0 = std::chrono::steady_clock::now();
        if (const auto chunk = parent_.try_acquire()) {
            observe_parent_acquire(*chunk, par_t0);
            if (tracing_) {
                tracer_.record(chunk->stolen ? trace::EventKind::Steal
                                             : trace::EventKind::GlobalAcquire,
                               acq_t0, tracer_.now(), chunk->start, chunk->size, 0.0,
                               level_ - 1);
            }
            ++refills_;
            m_refills_->inc();
            double push_t0 = 0.0;
            double push_wait = 0.0;
            if (tracing_) {
                push_t0 = tracer_.now();
            }
            const auto sub = local_.push_and_pop(chunk->start, chunk->size,
                                                 tracing_ ? &push_wait : nullptr);
            if (tracing_) {
                tracer_.record(trace::EventKind::LocalPop, push_t0, tracer_.now(),
                               sub ? sub->begin : -1, sub ? sub->end : -1, push_wait, level_);
                tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), chunk->start,
                                chunk->size, level_);
                slot_fill_seconds_ = tracer_.now() - fill_t0;
            }
            if (sub) {
                m_pops_->inc();
                slot_ = as_chunk(*sub);
            }
            return;
        }
        if (tracing_) {
            tracer_.record(trace::EventKind::GlobalAcquire, acq_t0, tracer_.now(), 0, 0, 0.0,
                           level_ - 1);
        }
        local_.end_refill();
        if (tracing_) {
            tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), 0, 0, level_);
        }
    }

public:
    void report(std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override {
        parent_.report(iterations, compute_seconds, overhead_seconds);
    }

    [[nodiscard]] bool wants_feedback() const noexcept override {
        return parent_.wants_feedback();
    }

    /// Sub-chunks handed out through this handle.
    [[nodiscard]] std::int64_t acquired() const noexcept override { return local_.popped(); }

    [[nodiscard]] dls::Technique technique() const noexcept override {
        return local_.technique();
    }

    /// This source's depth in the hierarchy (the root is 0).
    [[nodiscard]] int level() const noexcept { return level_; }

    /// True while the prefetch slot holds a chunk awaiting execution (the
    /// stall watchdog reports it as "outstanding prefetch").
    [[nodiscard]] bool has_prefetched() const noexcept { return slot_.has_value(); }

    /// Parent chunks this handle pulled down (the rank's refill count).
    [[nodiscard]] std::int64_t refills() const noexcept { return refills_; }

    /// Closes any open wait span and, when `terminate` is set, marks the
    /// worker's departure from the scheduling loop; call once per source
    /// after the final try_acquire() (Terminate only on the chain's top).
    void finish(bool terminate = true) {
        close_wait(tracer_.now());
        if (tracing_ && terminate) {
            tracer_.instant(trace::EventKind::Terminate, tracer_.now());
        }
    }

    /// Frees the whole chain: this level's queue, then the parent.
    void free() override {
        local_.free();
        parent_.free();
    }

private:
    [[nodiscard]] Chunk as_chunk(const LevelQueue::SubChunk& sub) const {
        // Lease before the chunk can reach the caller (or the prefetch
        // slot): from here on a dying owner's chunk is reclaimable.
        if (lease_board_ != nullptr) {
            lease_board_->lease(sub.begin, sub.end - sub.begin);
        }
        // The sub-chunk index doubles as this level's step id.
        return Chunk{sub.begin, sub.end - sub.begin, local_.popped() - 1, sub.stolen};
    }

    [[nodiscard]] static std::size_t midx(int level) noexcept {
        return static_cast<std::size_t>(metrics::RuntimeMetrics::level_index(level));
    }

    /// Successful parent acquisition: latency histogram plus the owned /
    /// stolen counter, all at the parent's level.
    void observe_parent_acquire(const Chunk& chunk,
                                std::chrono::steady_clock::time_point t0) const noexcept {
        m_acquire_latency_->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        (chunk.stolen ? m_steals_ : m_acquires_)->inc();
    }

    /// `end` is the start of the transaction that found work, so the wait
    /// span never overlaps the recorded LocalPop/GlobalAcquire epoch.
    void close_wait(double end) {
        if (tracing_ && wait_start_ >= 0.0) {
            tracer_.record(trace::EventKind::BarrierWait, wait_start_, end);
            wait_start_ = -1.0;
        }
    }

    LevelQueue& local_;
    WorkSource& parent_;
    trace::WorkerTracer& tracer_;
    bool tracing_ = false;
    int level_ = 1;
    std::function<void()> before_refill_;
    std::int64_t refills_ = 0;
    double wait_start_ = -1.0;
    /// Double-buffered prefetching (set_prefetch): the slot holds the next
    /// chunk, acquired while the previous one executed; fill_seconds is
    /// the acquisition time the slot hid off the critical path (traced on
    /// the Prefetch hit event).
    bool prefetch_ = false;
    std::optional<Chunk> slot_;
    double slot_fill_seconds_ = 0.0;
    /// Fault-tolerance lease board (null = lease mode off; see
    /// set_lease_board).
    LeaseBoard* lease_board_ = nullptr;
    // Resolved metric handles (see constructor).
    metrics::Counter* m_pops_;
    metrics::Counter* m_refills_;
    metrics::Counter* m_acquires_;
    metrics::Counter* m_steals_;
    metrics::Histogram* m_acquire_latency_;
    metrics::Counter* m_prefetch_hits_;
    metrics::Counter* m_prefetch_misses_;
};

}  // namespace hdls::core
