#pragma once
/// \file work_source.hpp
/// WorkSource — the one recursive interface behind every level of the
/// scheduling hierarchy.
///
/// The paper's two hard-coded levels (an inter-node queue feeding an
/// intra-node queue) generalize to a chain of WorkSources: a source hands
/// out chunks, and a *composed* source (LocalWorkSource) slices the chunks
/// of its parent through a node-local queue. Level 1 is served by any of
/// the three inter-node backends — GlobalWorkQueue, AdaptiveGlobalQueue
/// (both centralized on rank 0) or ShardedInterQueue (one window per node
/// with CAS work stealing) — selected by make_inter_queue from
/// HierConfig::inter_backend; level 2 wraps the NodeWorkQueue. Executors
/// only ever talk to the top of the chain.

#include <cstdint>
#include <functional>
#include <optional>
#include <thread>

#include "core/local_queue.hpp"
#include "dls/technique.hpp"
#include "trace/recorder.hpp"

namespace hdls::core {

class WorkSource {
public:
    /// One scheduled chunk: execute [start, start + size).
    struct Chunk {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
        /// True when the chunk was carved from a peer node's shard (the
        /// sharded backend's work stealing); executors record it as a
        /// Steal rather than a GlobalAcquire trace event.
        bool stolen = false;
    };

    virtual ~WorkSource() = default;

    /// Acquires the next chunk, or std::nullopt once this source (and,
    /// for composed sources, every source beneath it) is exhausted.
    [[nodiscard]] virtual std::optional<Chunk> try_acquire() = 0;

    /// Runtime feedback for the adaptive techniques: executed iterations
    /// with their compute and scheduling-overhead time, accumulated into
    /// the caller's node rate. Composed sources forward to their parent;
    /// a no-op for non-adaptive backends.
    virtual void report(std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// True when report() calls influence future chunk sizes (AWF-*); lets
    /// executors skip the feedback timing entirely otherwise.
    [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }

    /// Chunks acquired through *this* handle (per-rank statistic).
    [[nodiscard]] virtual std::int64_t acquired() const noexcept = 0;

    /// The technique this source schedules with (its own level).
    [[nodiscard]] virtual dls::Technique technique() const noexcept = 0;

    /// Collective teardown. Composed sources free their whole chain.
    virtual void free() = 0;
};

/// Level-2 source of the MPI+MPI executor: pops sub-chunks from the
/// node-local queue and, when it drains, refills it from the parent
/// source under the paper's "fastest rank refills" protocol — including
/// the termination condition (parent exhausted, queue drained, no refill
/// in flight). Records the full chunk-lifecycle trace (LocalPop,
/// RefillBegin/End, GlobalAcquire/Steal, coalesced BarrierWait) exactly
/// as the executor's inlined loop used to.
class LocalWorkSource final : public WorkSource {
public:
    /// `before_refill` (optional) runs right before every parent acquire —
    /// the executors flush accumulated adaptive feedback there, so rates
    /// are published before the next level-1 decision.
    LocalWorkSource(NodeWorkQueue& local, WorkSource& parent, trace::WorkerTracer& tracer,
                    std::function<void()> before_refill = {})
        : local_(local),
          parent_(parent),
          tracer_(tracer),
          tracing_(tracer.enabled()),
          before_refill_(std::move(before_refill)) {}

    [[nodiscard]] std::optional<Chunk> try_acquire() override {
        for (;;) {
            // Termination-spin coalescing: while the parent is exhausted
            // but peers are mid-refill, the rank polls; recording every
            // poll would flood the ring buffer, so the whole wait becomes
            // one BarrierWait event — and the per-poll LocalPop /
            // GlobalAcquire probes are muted.
            const bool record_probe = tracing_ && wait_start_ < 0.0;
            // Stage 2 first: the node queue may already hold sub-chunks.
            double pop_t0 = 0.0;
            double lock_wait = 0.0;
            if (tracing_) {
                pop_t0 = tracer_.now();
            }
            if (const auto sub = local_.try_pop(tracing_ ? &lock_wait : nullptr)) {
                if (tracing_) {
                    close_wait(pop_t0);
                    tracer_.record(trace::EventKind::LocalPop, pop_t0, tracer_.now(),
                                   sub->begin, sub->end, lock_wait);
                }
                return as_chunk(*sub);
            }
            if (record_probe) {
                tracer_.record(trace::EventKind::LocalPop, pop_t0, tracer_.now(), -1, -1,
                               lock_wait);
            }
            // Queue drained: this rank happens to be the fastest — refill.
            local_.begin_refill();
            if (record_probe) {
                tracer_.instant(trace::EventKind::RefillBegin, tracer_.now());
            }
            if (before_refill_) {
                before_refill_();
            }
            const double acq_t0 = tracing_ ? tracer_.now() : 0.0;
            if (const auto chunk = parent_.try_acquire()) {
                if (tracing_) {
                    close_wait(acq_t0);
                    tracer_.record(chunk->stolen ? trace::EventKind::Steal
                                                 : trace::EventKind::GlobalAcquire,
                                   acq_t0, tracer_.now(), chunk->start, chunk->size);
                }
                ++refills_;
                double push_t0 = 0.0;
                double push_wait = 0.0;
                if (tracing_) {
                    push_t0 = tracer_.now();
                }
                const auto sub = local_.push_and_pop(chunk->start, chunk->size,
                                                     tracing_ ? &push_wait : nullptr);
                if (tracing_) {
                    tracer_.record(trace::EventKind::LocalPop, push_t0, tracer_.now(),
                                   sub ? sub->begin : -1, sub ? sub->end : -1, push_wait);
                    tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), chunk->start,
                                    chunk->size);
                }
                if (sub) {
                    return as_chunk(*sub);
                }
                continue;
            }
            if (record_probe) {
                tracer_.record(trace::EventKind::GlobalAcquire, acq_t0, tracer_.now(), 0, 0);
            }
            local_.end_refill();
            if (record_probe) {
                tracer_.instant(trace::EventKind::RefillEnd, tracer_.now(), 0, 0);
            }
            // Parent exhausted. Terminate only when no peer is mid-refill
            // and nothing is left to pop, otherwise work could still appear.
            if (!local_.refills_in_flight() && !local_.has_pending()) {
                return std::nullopt;
            }
            if (tracing_ && wait_start_ < 0.0) {
                wait_start_ = tracer_.now();
            }
            std::this_thread::yield();
        }
    }

    void report(std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override {
        parent_.report(iterations, compute_seconds, overhead_seconds);
    }

    [[nodiscard]] bool wants_feedback() const noexcept override {
        return parent_.wants_feedback();
    }

    /// Sub-chunks handed out through this handle.
    [[nodiscard]] std::int64_t acquired() const noexcept override { return local_.popped(); }

    [[nodiscard]] dls::Technique technique() const noexcept override {
        return local_.technique();
    }

    /// Parent chunks this handle pulled down (the rank's refill count).
    [[nodiscard]] std::int64_t refills() const noexcept { return refills_; }

    /// Closes any open wait span and marks the worker's departure from the
    /// scheduling loop; call once after the final try_acquire().
    void finish() {
        close_wait(tracer_.now());
        if (tracing_) {
            tracer_.instant(trace::EventKind::Terminate, tracer_.now());
        }
    }

    /// Frees the whole chain: the node queue, then the parent.
    void free() override {
        local_.free();
        parent_.free();
    }

private:
    [[nodiscard]] Chunk as_chunk(const NodeWorkQueue::SubChunk& sub) const noexcept {
        // The sub-chunk index doubles as the level-2 step id.
        return Chunk{sub.begin, sub.end - sub.begin, local_.popped() - 1, false};
    }

    /// `end` is the start of the transaction that found work, so the wait
    /// span never overlaps the recorded LocalPop/GlobalAcquire epoch.
    void close_wait(double end) {
        if (tracing_ && wait_start_ >= 0.0) {
            tracer_.record(trace::EventKind::BarrierWait, wait_start_, end);
            wait_start_ = -1.0;
        }
    }

    NodeWorkQueue& local_;
    WorkSource& parent_;
    trace::WorkerTracer& tracer_;
    bool tracing_ = false;
    std::function<void()> before_refill_;
    std::int64_t refills_ = 0;
    double wait_start_ = -1.0;
};

}  // namespace hdls::core
