#include "core/report.hpp"

#include "util/stats.hpp"
#include "util/table.hpp"

namespace hdls::core {

std::int64_t ExecutionReport::executed_iterations() const noexcept {
    std::int64_t total = 0;
    for (const auto& w : workers) {
        total += w.iterations;
    }
    return total;
}

std::int64_t ExecutionReport::global_chunks() const noexcept {
    std::int64_t total = 0;
    for (const auto& w : workers) {
        total += w.global_refills;
    }
    return total;
}

std::int64_t ExecutionReport::executed_chunks() const noexcept {
    std::int64_t total = 0;
    for (const auto& w : workers) {
        total += w.chunks;
    }
    return total;
}

double ExecutionReport::finish_cov() const noexcept {
    util::OnlineStats s;
    for (const auto& w : workers) {
        s.add(w.finish_seconds);
    }
    return s.cov();
}

int ExecutionReport::distinct_refillers() const noexcept {
    int count = 0;
    for (const auto& w : workers) {
        count += w.global_refills > 0 ? 1 : 0;
    }
    return count;
}

void ExecutionReport::print(std::ostream& os) const {
    os << approach_name(approach) << "  " << dls::technique_name(inter) << "+"
       << dls::technique_name(intra);
    if (inter_backend == dls::InterBackend::Sharded) {
        os << " (" << dls::inter_backend_name(inter_backend) << ")";
    }
    if (prefetch) {
        os << " [prefetch]";
    }
    if (transport != minimpi::TransportKind::Threads) {
        os << " {" << minimpi::transport_name(transport) << "}";
    }
    os << " simd=" << simd::backend_name(simd_backend);
    if (simd_mode != simd::SimdMode::Auto) {
        os << "(" << simd::mode_name(simd_mode) << ")";
    }
    os << " pin=" << minimpi::pin_policy_name(pin);
    os << "  nodes=" << shape.nodes
       << " workers/node=" << shape.workers_per_node << " N=" << total_iterations << "\n";
    if (topology.size() > 2) {
        os << "  hierarchy:";
        for (std::size_t d = 0; d < topology.size(); ++d) {
            os << (d == 0 ? " " : " -> ") << topology[d].name << "=" << topology[d].fan_out
               << " [" << dls::technique_name(levels[d].technique);
            if (levels[d].backend) {
                os << "/" << dls::inter_backend_name(*levels[d].backend);
            }
            os << "]";
        }
        os << "\n";
    }
    os
       << "  parallel time: " << util::format_seconds(parallel_seconds)
       << "  finish CoV: " << util::format_double(finish_cov(), 4)
       << "  global chunks: " << global_chunks()
       << "  executed chunks: " << executed_chunks()
       << "  refillers: " << distinct_refillers() << "\n";
    if (trace) {
        os << "  trace: " << trace->events.size() << " events";
        if (trace->dropped() > 0) {
            os << " (" << trace->dropped() << " dropped on ring-buffer overflow)";
        }
        os << "\n";
    }
    if (!metrics.empty()) {
        const std::uint64_t acquires = metrics.counter_total("hdls_sched_acquires_total");
        const std::uint64_t steals = metrics.counter_total("hdls_sched_steals_total");
        const std::uint64_t hits = metrics.counter_total("hdls_sched_prefetch_hits_total");
        const std::uint64_t misses =
            metrics.counter_total("hdls_sched_prefetch_misses_total");
        os << "  metrics: acquires=" << acquires << " steals=" << steals
           << " lock_retries=" << metrics.counter_total("hdls_window_lock_retries_total")
           << " cas_retries=" << metrics.counter_total("hdls_window_cas_retries_total");
        if (hits + misses > 0) {
            os << " prefetch_hit_rate="
               << util::format_double(
                      static_cast<double>(hits) / static_cast<double>(hits + misses), 2);
        }
        const std::uint64_t stalls = metrics.counter_total("hdls_watchdog_stalls_total");
        if (stalls > 0) {
            os << " WATCHDOG_STALLS=" << stalls;
        }
        os << "\n";
    }
}

}  // namespace hdls::core
