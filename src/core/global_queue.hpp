#pragma once
/// \file global_queue.hpp
/// The *global work queue* of the paper's Figure 1.
///
/// An RMA window hosted on rank 0 of a communicator holding the two values
/// of the distributed chunk-calculation protocol (the paper's ref [15]):
/// the latest scheduling step and the total scheduled iterations. Any rank
/// obtains a chunk with two atomic fetch-and-ops and a purely local
/// chunk-size computation — no master process:
///
///     step  <- fetch_and_op(+1, window[kStep])
///     hint  <- chunk_size_for_step(technique, params, step)
///     start <- fetch_and_op(+hint, window[kScheduled])
///     size  <- min(hint, N - start)        // size <= 0 => loop exhausted
///
/// The technique's "worker count" is the number of *level-1 schedulable
/// entities* — compute nodes for the paper's inter-node level — which is
/// why it is a constructor parameter independent of comm.size().

#include <cstdint>
#include <optional>

#include "core/inter_queue.hpp"
#include "dls/chunk_formulas.hpp"
#include "minimpi/minimpi.hpp"

namespace hdls::core {

class GlobalWorkQueue final : public InterQueue {
public:
    /// One level-1 chunk.
    using Chunk = InterQueue::Chunk;

    /// Collective over `comm`. `level_workers` is P in the chunk formulas
    /// (the paper uses the node count). Rank 0 hosts and zero-initializes
    /// the window; everyone leaves through a barrier.
    GlobalWorkQueue(const minimpi::Comm& comm, std::int64_t total_iterations,
                    dls::Technique technique, int level_workers, std::int64_t min_chunk)
        : comm_(comm), total_(total_iterations) {
        params_.total_iterations = total_iterations;
        params_.workers = level_workers;
        params_.min_chunk = min_chunk;
        params_.validate();
        if (!dls::supports_step_indexed(technique)) {
            throw minimpi::Error(minimpi::ErrorCode::InvalidArgument,
                                 "GlobalWorkQueue: technique lacks a step-indexed form");
        }
        technique_ = technique;
        window_ = minimpi::Window::allocate_shared(
            comm, comm.rank() == 0 ? 2 * sizeof(std::int64_t) : 0);
        if (comm.rank() == 0) {
            auto cells = window_.shared_span<std::int64_t>(0);
            cells[kStep] = 0;
            cells[kScheduled] = 0;
        }
        window_.sync();
        comm_.barrier();
    }

    /// Acquires the next chunk, or std::nullopt once the loop is exhausted.
    [[nodiscard]] std::optional<Chunk> try_acquire() override {
        const std::int64_t step =
            window_.fetch_and_op<std::int64_t>(1, 0, kStep, minimpi::AccumulateOp::Sum);
        const std::int64_t hint = dls::chunk_size_for_step(technique_, params_, step);
        if (hint <= 0) {
            return std::nullopt;  // e.g. STATIC past its P chunks
        }
        const std::int64_t start =
            window_.fetch_and_op<std::int64_t>(hint, 0, kScheduled, minimpi::AccumulateOp::Sum);
        if (start >= total_) {
            return std::nullopt;
        }
        ++acquired_;
        return Chunk{start, std::min(hint, total_ - start), step};
    }

    /// Chunks acquired through *this* handle (per-rank statistic).
    [[nodiscard]] std::int64_t acquired() const noexcept override { return acquired_; }

    [[nodiscard]] dls::Technique technique() const noexcept override { return technique_; }

    /// Collective teardown.
    void free() override {
        comm_.barrier();
        window_.free();
    }

private:
    static constexpr std::size_t kStep = 0;
    static constexpr std::size_t kScheduled = 1;

    minimpi::Comm comm_;
    minimpi::Window window_;
    dls::LoopParams params_;
    dls::Technique technique_{};
    std::int64_t total_ = 0;
    std::int64_t acquired_ = 0;
};

}  // namespace hdls::core
