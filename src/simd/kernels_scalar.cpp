/// \file kernels_scalar.cpp
/// Scalar backend instantiation of the batch kernels: scalar_vec<1> runs
/// the exact per-lane operation sequence every vector backend must match,
/// so this TU *is* the parity reference. Always compiled, on every target.

#include "simd/batch_kernels.hpp"

namespace hdls::simd::detail_kernels {

void mandelbrot_scalar(const MandelbrotGeom& g, std::int64_t first_pixel,
                       std::int64_t count, int* out) noexcept {
    kernels::mandelbrot_batch<scalar_vec<1>>(g, first_pixel, count, out);
}

std::int64_t spin_support_scalar(const double* aos, std::int64_t begin,
                                 std::int64_t count, const SpinFilter& f,
                                 double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<scalar_vec<1>, false>(aos, begin, count, f,
                                                             out_alpha, out_beta);
}

std::int64_t spin_support_prefetch_scalar(const double* aos, std::int64_t begin,
                                          std::int64_t count, const SpinFilter& f,
                                          double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<scalar_vec<1>, true>(aos, begin, count, f,
                                                            out_alpha, out_beta);
}

double burn_scalar(std::int64_t rounds) noexcept {
    return kernels::burn_rounds<scalar_vec<1>>(rounds);
}

}  // namespace hdls::simd::detail_kernels
