#pragma once
/// \file simd.hpp
/// Fixed-width SIMD vector abstraction for the app kernels, modeled on
/// arbor's simd/avx.hpp idiom: one small value type per backend exposing
/// the handful of operations the batch kernels need (lane-wise +,-,*,
/// sqrt, abs, comparisons-to-mask, select), with the backend chosen at
/// compile time per translation unit.
///
/// Three backends:
///  * scalar_vec<N>  — plain double lanes; always available, any width.
///                     scalar_vec<1> IS the scalar reference semantics.
///  * avx2_vec       — 4 x double on __m256d; defined only when the TU is
///                     compiled with AVX2 (-mavx2 or -march>=haswell).
///  * neon_vec       — 2 x double on float64x2_t; defined only under
///                     __ARM_NEON (aarch64).
///
/// Each backend type has a distinct name, and backend-specific kernels are
/// instantiated only in their own translation units (kernels_scalar.cpp /
/// kernels_avx2.cpp / kernels_neon.cpp), so a binary can mix an AVX2 TU
/// with scalar TUs without ODR hazards; runtime selection between the
/// compiled-in backends lives in simd/dispatch.hpp.
///
/// Bit-exactness contract (what makes scalar-vs-vector checksum parity
/// tests possible): every lane operation is a single correctly-rounded
/// IEEE-754 double operation — add/sub/mul/sqrt/abs map to one instruction
/// per lane with no fused multiply-add anywhere (the repo builds with
/// -ffp-contract=off and the kernels never use FMA intrinsics), so a lane
/// of avx2_vec computes bit-identical results to scalar_vec<1> executing
/// the same expression.
///
/// The generic-width alias the kernels and tests use:
///     simd::vec<double, N>
/// resolves to the widest backend this TU was compiled for at that width,
/// falling back to scalar_vec<N>.

#include <cmath>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace hdls::simd {

// ------------------------------------------------------------- scalar ----

template <int N>
struct scalar_mask {
    static_assert(N >= 1);
    bool lane[N];

    [[nodiscard]] static scalar_mask all_true() noexcept {
        scalar_mask m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = true;
        }
        return m;
    }

    [[nodiscard]] bool test(int l) const noexcept { return lane[l]; }

    [[nodiscard]] bool any() const noexcept {
        for (int l = 0; l < N; ++l) {
            if (lane[l]) {
                return true;
            }
        }
        return false;
    }

    [[nodiscard]] bool none() const noexcept { return !any(); }

    friend scalar_mask operator&(scalar_mask a, scalar_mask b) noexcept {
        scalar_mask m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = a.lane[l] && b.lane[l];
        }
        return m;
    }

    friend scalar_mask operator~(scalar_mask a) noexcept {
        scalar_mask m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = !a.lane[l];
        }
        return m;
    }
};

/// Reference backend: N plain double lanes. scalar_vec<1> is, by
/// construction, exactly the scalar code the vector backends must match.
template <int N>
struct scalar_vec {
    static_assert(N >= 1);
    static constexpr int width = N;
    using mask_type = scalar_mask<N>;

    double lane[N];

    [[nodiscard]] static scalar_vec broadcast(double v) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = v;
        }
        return r;
    }

    [[nodiscard]] static scalar_vec zero() noexcept { return broadcast(0.0); }

    [[nodiscard]] static scalar_vec load(const double* p) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = p[l];
        }
        return r;
    }

    void store(double* p) const noexcept {
        for (int l = 0; l < N; ++l) {
            p[l] = lane[l];
        }
    }

    friend scalar_vec operator+(scalar_vec a, scalar_vec b) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = a.lane[l] + b.lane[l];
        }
        return r;
    }

    friend scalar_vec operator-(scalar_vec a, scalar_vec b) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = a.lane[l] - b.lane[l];
        }
        return r;
    }

    friend scalar_vec operator*(scalar_vec a, scalar_vec b) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = a.lane[l] * b.lane[l];
        }
        return r;
    }

    [[nodiscard]] friend scalar_vec abs(scalar_vec a) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = std::abs(a.lane[l]);
        }
        return r;
    }

    [[nodiscard]] friend scalar_vec sqrt(scalar_vec a) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = std::sqrt(a.lane[l]);
        }
        return r;
    }

    [[nodiscard]] friend scalar_mask<N> cmp_gt(scalar_vec a, scalar_vec b) noexcept {
        scalar_mask<N> m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = a.lane[l] > b.lane[l];
        }
        return m;
    }

    [[nodiscard]] friend scalar_mask<N> cmp_lt(scalar_vec a, scalar_vec b) noexcept {
        scalar_mask<N> m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = a.lane[l] < b.lane[l];
        }
        return m;
    }

    [[nodiscard]] friend scalar_mask<N> cmp_le(scalar_vec a, scalar_vec b) noexcept {
        scalar_mask<N> m;
        for (int l = 0; l < N; ++l) {
            m.lane[l] = a.lane[l] <= b.lane[l];
        }
        return m;
    }

    [[nodiscard]] friend scalar_vec select(scalar_mask<N> m, scalar_vec a,
                                           scalar_vec b) noexcept {
        scalar_vec r;
        for (int l = 0; l < N; ++l) {
            r.lane[l] = m.lane[l] ? a.lane[l] : b.lane[l];
        }
        return r;
    }
};

// --------------------------------------------------------------- AVX2 ----

#if defined(__AVX2__)

struct avx2_mask {
    __m256d m;

    [[nodiscard]] static avx2_mask all_true() noexcept {
        return {_mm256_castsi256_pd(_mm256_set1_epi64x(-1))};
    }

    [[nodiscard]] bool test(int l) const noexcept {
        return (_mm256_movemask_pd(m) & (1 << l)) != 0;
    }

    [[nodiscard]] bool any() const noexcept { return _mm256_movemask_pd(m) != 0; }
    [[nodiscard]] bool none() const noexcept { return _mm256_movemask_pd(m) == 0; }

    friend avx2_mask operator&(avx2_mask a, avx2_mask b) noexcept {
        return {_mm256_and_pd(a.m, b.m)};
    }

    friend avx2_mask operator~(avx2_mask a) noexcept {
        return {_mm256_andnot_pd(a.m, all_true().m)};
    }
};

/// 4 x double on AVX2. No FMA: multiply and add stay separate, correctly
/// rounded instructions so lanes match the scalar reference bit-for-bit.
struct avx2_vec {
    static constexpr int width = 4;
    using mask_type = avx2_mask;

    __m256d v;

    [[nodiscard]] static avx2_vec broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
    [[nodiscard]] static avx2_vec zero() noexcept { return {_mm256_setzero_pd()}; }
    [[nodiscard]] static avx2_vec load(const double* p) noexcept {
        return {_mm256_loadu_pd(p)};
    }
    void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }

    friend avx2_vec operator+(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend avx2_vec operator-(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend avx2_vec operator*(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_mul_pd(a.v, b.v)};
    }

    [[nodiscard]] friend avx2_vec abs(avx2_vec a) noexcept {
        return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
    }

    [[nodiscard]] friend avx2_vec sqrt(avx2_vec a) noexcept {
        return {_mm256_sqrt_pd(a.v)};
    }

    // _CMP_*_OQ: quiet, ordered — NaN compares false, like the scalar
    // operators (only the exception flags differ, which nothing reads).
    [[nodiscard]] friend avx2_mask cmp_gt(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
    }
    [[nodiscard]] friend avx2_mask cmp_lt(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
    }
    [[nodiscard]] friend avx2_mask cmp_le(avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
    }

    [[nodiscard]] friend avx2_vec select(avx2_mask m, avx2_vec a, avx2_vec b) noexcept {
        return {_mm256_blendv_pd(b.v, a.v, m.m)};
    }
};

#endif  // __AVX2__

// --------------------------------------------------------------- NEON ----

#if defined(__ARM_NEON) && defined(__aarch64__)

struct neon_mask {
    uint64x2_t m;

    [[nodiscard]] static neon_mask all_true() noexcept { return {vdupq_n_u64(~0ULL)}; }

    [[nodiscard]] bool test(int l) const noexcept {
        return (l == 0 ? vgetq_lane_u64(m, 0) : vgetq_lane_u64(m, 1)) != 0;
    }

    [[nodiscard]] bool any() const noexcept {
        return (vgetq_lane_u64(m, 0) | vgetq_lane_u64(m, 1)) != 0;
    }
    [[nodiscard]] bool none() const noexcept { return !any(); }

    friend neon_mask operator&(neon_mask a, neon_mask b) noexcept {
        return {vandq_u64(a.m, b.m)};
    }
    friend neon_mask operator~(neon_mask a) noexcept {
        return {veorq_u64(a.m, vdupq_n_u64(~0ULL))};
    }
};

/// 2 x double on NEON (aarch64). Same no-FMA, correctly-rounded contract.
struct neon_vec {
    static constexpr int width = 2;
    using mask_type = neon_mask;

    float64x2_t v;

    [[nodiscard]] static neon_vec broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
    [[nodiscard]] static neon_vec zero() noexcept { return {vdupq_n_f64(0.0)}; }
    [[nodiscard]] static neon_vec load(const double* p) noexcept { return {vld1q_f64(p)}; }
    void store(double* p) const noexcept { vst1q_f64(p, v); }

    friend neon_vec operator+(neon_vec a, neon_vec b) noexcept {
        return {vaddq_f64(a.v, b.v)};
    }
    friend neon_vec operator-(neon_vec a, neon_vec b) noexcept {
        return {vsubq_f64(a.v, b.v)};
    }
    friend neon_vec operator*(neon_vec a, neon_vec b) noexcept {
        return {vmulq_f64(a.v, b.v)};
    }

    [[nodiscard]] friend neon_vec abs(neon_vec a) noexcept { return {vabsq_f64(a.v)}; }
    [[nodiscard]] friend neon_vec sqrt(neon_vec a) noexcept { return {vsqrtq_f64(a.v)}; }

    [[nodiscard]] friend neon_mask cmp_gt(neon_vec a, neon_vec b) noexcept {
        return {vcgtq_f64(a.v, b.v)};
    }
    [[nodiscard]] friend neon_mask cmp_lt(neon_vec a, neon_vec b) noexcept {
        return {vcltq_f64(a.v, b.v)};
    }
    [[nodiscard]] friend neon_mask cmp_le(neon_vec a, neon_vec b) noexcept {
        return {vcleq_f64(a.v, b.v)};
    }

    [[nodiscard]] friend neon_vec select(neon_mask m, neon_vec a, neon_vec b) noexcept {
        return {vbslq_f64(m.m, a.v, b.v)};
    }
};

#endif  // __ARM_NEON && __aarch64__

// ------------------------------------------------------- width aliases ----

namespace detail {

template <typename T, int N>
struct vec_for {
    using type = scalar_vec<N>;
};

#if defined(__AVX2__)
template <>
struct vec_for<double, 4> {
    using type = avx2_vec;
};
#elif defined(__ARM_NEON) && defined(__aarch64__)
template <>
struct vec_for<double, 2> {
    using type = neon_vec;
};
#endif

}  // namespace detail

/// The widest backend this TU was compiled for at width N (scalar
/// otherwise). `vec<double, 4>` is avx2_vec inside an AVX2 TU and
/// scalar_vec<4> elsewhere — backend-specific code must therefore live in
/// backend-specific TUs (see kernels_*.cpp), which is exactly how the
/// dispatch layer arranges it.
template <typename T, int N>
using vec = typename detail::vec_for<T, N>::type;

}  // namespace hdls::simd
