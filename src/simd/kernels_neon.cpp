/// \file kernels_neon.cpp
/// NEON backend instantiation of the batch kernels (2 x double lanes,
/// aarch64 only — AdvSIMD is baseline there, so no special flags needed;
/// the guard compiles this TU empty elsewhere). Scalar multiply + add,
/// never vfma: bit-parity with the scalar reference is the contract.

#if defined(__ARM_NEON) && defined(__aarch64__)

#include "simd/batch_kernels.hpp"

namespace hdls::simd::detail_kernels {

void mandelbrot_neon(const MandelbrotGeom& g, std::int64_t first_pixel,
                     std::int64_t count, int* out) noexcept {
    kernels::mandelbrot_batch<neon_vec>(g, first_pixel, count, out);
}

std::int64_t spin_support_neon(const double* aos, std::int64_t begin,
                               std::int64_t count, const SpinFilter& f,
                               double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<neon_vec, false>(aos, begin, count, f,
                                                        out_alpha, out_beta);
}

std::int64_t spin_support_prefetch_neon(const double* aos, std::int64_t begin,
                                        std::int64_t count, const SpinFilter& f,
                                        double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<neon_vec, true>(aos, begin, count, f,
                                                       out_alpha, out_beta);
}

double burn_neon(std::int64_t rounds) noexcept {
    return kernels::burn_rounds<neon_vec>(rounds);
}

}  // namespace hdls::simd::detail_kernels

#endif  // __ARM_NEON && __aarch64__
