#pragma once
/// \file dispatch.hpp
/// Runtime backend selection for the batch kernels.
///
/// The backends are compiled into backend-specific translation units
/// (kernels_scalar.cpp always; kernels_avx2.cpp when the build enables it
/// on x86 — see HDLS_HAVE_AVX2_KERNELS; kernels_neon.cpp on aarch64), and
/// this layer picks among them at runtime: compiled-in AND supported by
/// the executing CPU (__builtin_cpu_supports), narrowed by the process-
/// wide mode (HDLS_SIMD):
///
///   SimdMode::Auto        — widest usable backend (the default)
///   SimdMode::ForceScalar — scalar reference kernels, always
///   SimdMode::Native      — require a vector backend; set_mode throws if
///                           only scalar is usable (a run that *must* be
///                           vectorized should fail loudly, not silently
///                           measure scalar)
///
/// Every entry point below is also instrumented into the metrics registry
/// (hdls_simd_batch_calls_total / hdls_simd_batch_elements_total, labeled
/// by backend), so exposition shows which backend actually executed.

#include <cstdint>
#include <string_view>
#include <vector>

#include "simd/batch_kernels.hpp"

namespace hdls::simd {

enum class Backend {
    Scalar,
    Avx2,
    Neon,
};

enum class SimdMode {
    Auto,
    ForceScalar,
    Native,
};

[[nodiscard]] std::string_view backend_name(Backend b) noexcept;
[[nodiscard]] std::string_view mode_name(SimdMode m) noexcept;

/// One backend's kernel entry points (function pointers into its TU).
struct KernelTable {
    int width = 1;
    void (*mandelbrot)(const MandelbrotGeom&, std::int64_t first_pixel,
                       std::int64_t count, int* out) = nullptr;
    std::int64_t (*spin_support)(const double* aos, std::int64_t begin,
                                 std::int64_t count, const SpinFilter& f,
                                 double* out_alpha, double* out_beta) = nullptr;
    std::int64_t (*spin_support_prefetch)(const double* aos, std::int64_t begin,
                                          std::int64_t count, const SpinFilter& f,
                                          double* out_alpha,
                                          double* out_beta) = nullptr;
    double (*burn)(std::int64_t rounds) = nullptr;
};

/// Whether the backend's kernels were compiled into this binary.
[[nodiscard]] bool backend_compiled(Backend b) noexcept;

/// Compiled in AND supported by the CPU we are running on.
[[nodiscard]] bool backend_usable(Backend b) noexcept;

/// The widest usable backend (Scalar is always usable).
[[nodiscard]] Backend best_backend() noexcept;

/// Every usable backend, scalar first.
[[nodiscard]] std::vector<Backend> usable_backends();

/// Sets the process-wide mode. Throws std::runtime_error for
/// SimdMode::Native when no vector backend is usable on this host.
void set_mode(SimdMode m);
[[nodiscard]] SimdMode mode() noexcept;

/// The backend the current mode resolves to, and its kernels/lane width.
[[nodiscard]] Backend active_backend() noexcept;
[[nodiscard]] int active_width() noexcept;
[[nodiscard]] const KernelTable& active_kernels() noexcept;

/// A specific backend's table; throws std::runtime_error if not usable.
[[nodiscard]] const KernelTable& kernels_for(Backend b);

// --- instrumented entry points (forward to the active backend) -----------

void run_mandelbrot_batch(const MandelbrotGeom& g, std::int64_t first_pixel,
                          std::int64_t count, int* out) noexcept;

std::int64_t run_spin_support_batch(const double* aos, std::int64_t begin,
                                    std::int64_t count, const SpinFilter& f,
                                    bool prefetch, double* out_alpha,
                                    double* out_beta) noexcept;

double run_burn(std::int64_t rounds) noexcept;

// --- honesty probe --------------------------------------------------------

/// Measured mandelbrot throughput (pixels/second) of `backend` on the
/// calling thread, from a short deterministic render repeated until
/// `min_seconds` of wall time. Results are cached per (backend, cpu) — the
/// cpu is the caller's current pinned CPU, or -1 when unpinned — so the
/// probe costs ~min_seconds once per distinct placement, not per run.
/// This is the measured per-core rate that feeds dls::awf_weights /
/// HierConfig::node_weights: AWF-* and WF see heterogeneous vector widths
/// and placements as honest speed ratios instead of assuming uniformity.
[[nodiscard]] double probe_mandelbrot_rate(Backend b, double min_seconds = 0.002);

/// Drops the probe cache (tests).
void reset_probe_cache() noexcept;

}  // namespace hdls::simd
