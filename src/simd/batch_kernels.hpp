#pragma once
/// \file batch_kernels.hpp
/// Width-templated batch forms of the app kernels (mandelbrot escape loop,
/// PSIA support filter, synthetic FLOP burner), shared by every backend:
/// kernels_scalar.cpp instantiates them with scalar_vec<1>,
/// kernels_avx2.cpp with avx2_vec, kernels_neon.cpp with neon_vec.
///
/// The templates are written so each lane executes the *same IEEE-754
/// operation sequence* as the scalar app code (same association, no FMA,
/// squares cached exactly where the scalar loop caches them). That is the
/// load-bearing property behind the checksum-parity tests: an image
/// rendered through any backend is bit-identical to the scalar render.
///
/// These headers know nothing of the app types — callers lower their
/// configs to the plain geometry/filter structs below (apps/mandelbrot.cpp
/// and apps/psia.cpp do the lowering).

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "simd/simd.hpp"
#include "util/prefetch.hpp"

namespace hdls::simd {

/// Chunk-invariant mandelbrot geometry: everything `mandelbrot_iterations`
/// used to recompute per pixel, hoisted out once per config/chunk.
struct MandelbrotGeom {
    double re_min = 0.0;
    double im_min = 0.0;
    double dx = 0.0;  ///< (re_max - re_min) / width
    double dy = 0.0;  ///< (im_max - im_min) / height
    std::int64_t width = 1;
    int max_iter = 0;
};

/// Chunk-invariant PSIA support filter for one spin-image center: the
/// center point, its normal, and the acceptance thresholds of in_support.
struct SpinFilter {
    double cx = 0.0, cy = 0.0, cz = 0.0;  ///< center position
    double nx = 0.0, ny = 0.0, nz = 0.0;  ///< center normal
    double cos_min = -1.0;                ///< support_angle_cos threshold
    double beta_max = 0.0;
    double alpha2_max = 0.0;  ///< alpha_max^2
};

/// Doubles per OrientedPoint in the AoS gather (position + normal).
inline constexpr int kSpinPointStride = 6;

/// Prefetch distance (in vector blocks) of the PSIA gather ring.
inline constexpr std::int64_t kSpinPrefetchBlocks = 8;

namespace kernels {

/// One W-pixel block of the escape loop, lane-masked. The `active` mask is
/// sticky: once a lane escapes it never re-arms, so escaped lanes may keep
/// iterating to inf/NaN without affecting their recorded count — exactly
/// the count the scalar loop produces for that pixel.
template <typename V>
inline void mandelbrot_block(const MandelbrotGeom& g, std::int64_t first_pixel,
                             int* out) noexcept {
    constexpr int W = V::width;
    using M = typename V::mask_type;

    double crl[W];
    double cil[W];
    for (int l = 0; l < W; ++l) {
        const std::int64_t p = first_pixel + l;
        const auto x = static_cast<double>(p % g.width);
        const auto y = static_cast<double>(p / g.width);
        // Same expressions as the scalar kernel: pixel centers, one mul +
        // one add each, dx/dy hoisted into the geometry.
        crl[l] = g.re_min + (x + 0.5) * g.dx;
        cil[l] = g.im_min + (y + 0.5) * g.dy;
    }

    const V cr = V::load(crl);
    const V ci = V::load(cil);
    const V four = V::broadcast(4.0);
    const V two = V::broadcast(2.0);
    const V one = V::broadcast(1.0);
    V zr = V::zero();
    V zi = V::zero();
    V count = V::zero();
    M active = M::all_true();

    for (int it = 0; it < g.max_iter; ++it) {
        const V zr2 = zr * zr;
        const V zi2 = zi * zi;
        active = active & ~cmp_gt(zr2 + zi2, four);
        if (active.none()) {
            break;
        }
        count = count + select(active, one, V::zero());
        zi = two * zr * zi + ci;
        zr = zr2 - zi2 + cr;
    }

    double cl[W];
    count.store(cl);
    for (int l = 0; l < W; ++l) {
        out[l] = static_cast<int>(cl[l]);
    }
}

/// Escape-time iteration counts of pixels [first_pixel, first_pixel +
/// count), row-major, written to out[0..count). The scalar remainder
/// (count % W) runs through scalar_vec<1>, which is the scalar reference.
template <typename V>
inline void mandelbrot_batch(const MandelbrotGeom& g, std::int64_t first_pixel,
                             std::int64_t count, int* out) noexcept {
    constexpr int W = V::width;
    std::int64_t i = 0;
    for (; i + W <= count; i += W) {
        mandelbrot_block<V>(g, first_pixel + i, out + i);
    }
    for (; i < count; ++i) {
        mandelbrot_block<scalar_vec<1>>(g, first_pixel + i, out + i);
    }
}

/// PSIA support filter over candidates [begin, begin + count) of an AoS
/// point cloud (kSpinPointStride doubles per point: px py pz nx ny nz).
/// Appends the (alpha, beta) of every candidate passing in_support to
/// out_alpha/out_beta *in candidate order* (so the caller's bilinear
/// accumulation order — float adds — matches the scalar loop exactly) and
/// returns how many were written. With Prefetch set, the gather issues a
/// software prefetch kSpinPrefetchBlocks vector-blocks ahead: the 48-byte
/// point stride plus the filter between loads is where the hardware
/// prefetcher loses the pattern.
template <typename V, bool Prefetch>
inline std::int64_t spin_support_batch(const double* aos, std::int64_t begin,
                                       std::int64_t count, const SpinFilter& f,
                                       double* out_alpha, double* out_beta) noexcept {
    constexpr int W = V::width;

    const V cx = V::broadcast(f.cx);
    const V cy = V::broadcast(f.cy);
    const V cz = V::broadcast(f.cz);
    const V nx = V::broadcast(f.nx);
    const V ny = V::broadcast(f.ny);
    const V nz = V::broadcast(f.nz);
    const V cos_min = V::broadcast(f.cos_min);
    const V beta_max = V::broadcast(f.beta_max);
    const V alpha2_max = V::broadcast(f.alpha2_max);

    std::int64_t written = 0;
    std::int64_t i = 0;
    for (; i + W <= count; i += W) {
        if constexpr (Prefetch) {
            // One prefetch per block covers the leading line of the block
            // kSpinPrefetchBlocks ahead; at 48 B/point a W-point block
            // spans at most ceil(48W/64)+1 lines, so touch those too.
            const double* ahead =
                aos + kSpinPointStride * (begin + i + kSpinPrefetchBlocks * W);
            for (int line = 0; line < (kSpinPointStride * W + 7) / 8; ++line) {
                util::prefetch_read(ahead + 8 * line);
            }
        }

        double pxl[W], pyl[W], pzl[W];
        double qxl[W], qyl[W], qzl[W];
        for (int l = 0; l < W; ++l) {
            const double* p = aos + kSpinPointStride * (begin + i + l);
            pxl[l] = p[0];
            pyl[l] = p[1];
            pzl[l] = p[2];
            qxl[l] = p[3];
            qyl[l] = p[4];
            qzl[l] = p[5];
        }

        // center.normal . candidate.normal, same association as Vec3::dot.
        const V qx = V::load(qxl);
        const V qy = V::load(qyl);
        const V qz = V::load(qzl);
        const V ndot = nx * qx + ny * qy + nz * qz;

        const V dx = V::load(pxl) - cx;
        const V dy = V::load(pyl) - cy;
        const V dz = V::load(pzl) - cz;
        const V beta = nx * dx + ny * dy + nz * dz;
        const V norm2 = dx * dx + dy * dy + dz * dz;
        const V alpha2 = norm2 - beta * beta;

        // in_support's rejections, negated verbatim (NaN behaviour included):
        //   reject if ndot <  cos_min
        //   reject if |beta| > beta_max
        //   accept iff alpha2 <= alpha_max^2
        const auto keep = ~cmp_lt(ndot, cos_min) & ~cmp_gt(abs(beta), beta_max) &
                          cmp_le(alpha2, alpha2_max);
        if (keep.any()) {
            double bl[W], a2l[W];
            beta.store(bl);
            alpha2.store(a2l);
            for (int l = 0; l < W; ++l) {
                if (keep.test(l)) {
                    // Same expression as the scalar accumulate path.
                    out_alpha[written] = std::sqrt(std::max(a2l[l], 0.0));
                    out_beta[written] = bl[l];
                    ++written;
                }
            }
        }
    }

    if constexpr (W > 1) {
        written += spin_support_batch<scalar_vec<1>, false>(
            aos, begin + i, count - i, f, out_alpha + written, out_beta + written);
    }
    return written;
}

/// Synthetic-trace burner: executes `rounds` multiply-add work units
/// spread over W independent lane chains (so a wider backend finishes the
/// same amount of virtual work in proportionally fewer steps — the honest
/// hardware heterogeneity AWF-* should see). Returns the folded
/// accumulator to keep the loop observable; the value is backend-dependent
/// by design and excluded from parity checks.
template <typename V>
inline double burn_rounds(std::int64_t rounds) noexcept {
    constexpr int W = V::width;
    double init[W];
    for (int l = 0; l < W; ++l) {
        // Every lane must start OFF the map's fixed point (x* = 1.0):
        // a lane sitting exactly on it makes the whole loop invariant, and
        // the compiler folds it away — turning the burner into a no-op.
        init[l] = 1.001 + 0.001 * static_cast<double>(l);
    }
    V x = V::load(init);
    const V a = V::broadcast(0.999999);
    const V b = V::broadcast(1e-6);
    const std::int64_t steps = (rounds + W - 1) / W;
    for (std::int64_t s = 0; s < steps; ++s) {
        x = x * a + b;
    }
    double out[W];
    x.store(out);
    double sum = 0.0;
    for (int l = 0; l < W; ++l) {
        sum += out[l];
    }
    return sum;
}

}  // namespace kernels
}  // namespace hdls::simd
