/// \file kernels_avx2.cpp
/// AVX2 backend instantiation of the batch kernels (4 x double lanes).
///
/// CMake compiles this one file with -mavx2 on x86 builds (see
/// HDLS_ENABLE_AVX2_KERNELS), so the rest of the library keeps the
/// baseline ISA and the dispatch layer gates entry on a runtime
/// __builtin_cpu_supports("avx2") check. Deliberately *not* compiled with
/// -mfma: fused multiply-add would contract the escape-loop arithmetic and
/// break bit-parity with the scalar reference. If the flag was not applied
/// (non-x86 target, option off), the guard below compiles this TU empty.

#if defined(__AVX2__)

#include "simd/batch_kernels.hpp"

namespace hdls::simd::detail_kernels {

void mandelbrot_avx2(const MandelbrotGeom& g, std::int64_t first_pixel,
                     std::int64_t count, int* out) noexcept {
    kernels::mandelbrot_batch<avx2_vec>(g, first_pixel, count, out);
}

std::int64_t spin_support_avx2(const double* aos, std::int64_t begin,
                               std::int64_t count, const SpinFilter& f,
                               double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<avx2_vec, false>(aos, begin, count, f,
                                                        out_alpha, out_beta);
}

std::int64_t spin_support_prefetch_avx2(const double* aos, std::int64_t begin,
                                        std::int64_t count, const SpinFilter& f,
                                        double* out_alpha, double* out_beta) noexcept {
    return kernels::spin_support_batch<avx2_vec, true>(aos, begin, count, f,
                                                       out_alpha, out_beta);
}

double burn_avx2(std::int64_t rounds) noexcept {
    return kernels::burn_rounds<avx2_vec>(rounds);
}

}  // namespace hdls::simd::detail_kernels

#endif  // __AVX2__
