#include "simd/dispatch.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "metrics/metrics.hpp"

namespace hdls::simd {

// Backend entry points, one TU each (see kernels_*.cpp). Declared here and
// referenced only when the matching backend is compiled in.
namespace detail_kernels {

void mandelbrot_scalar(const MandelbrotGeom&, std::int64_t, std::int64_t,
                       int*) noexcept;
std::int64_t spin_support_scalar(const double*, std::int64_t, std::int64_t,
                                 const SpinFilter&, double*, double*) noexcept;
std::int64_t spin_support_prefetch_scalar(const double*, std::int64_t, std::int64_t,
                                          const SpinFilter&, double*,
                                          double*) noexcept;
double burn_scalar(std::int64_t) noexcept;

#if defined(HDLS_HAVE_AVX2_KERNELS)
void mandelbrot_avx2(const MandelbrotGeom&, std::int64_t, std::int64_t,
                     int*) noexcept;
std::int64_t spin_support_avx2(const double*, std::int64_t, std::int64_t,
                               const SpinFilter&, double*, double*) noexcept;
std::int64_t spin_support_prefetch_avx2(const double*, std::int64_t, std::int64_t,
                                        const SpinFilter&, double*, double*) noexcept;
double burn_avx2(std::int64_t) noexcept;
#endif

#if defined(__ARM_NEON) && defined(__aarch64__)
void mandelbrot_neon(const MandelbrotGeom&, std::int64_t, std::int64_t,
                     int*) noexcept;
std::int64_t spin_support_neon(const double*, std::int64_t, std::int64_t,
                               const SpinFilter&, double*, double*) noexcept;
std::int64_t spin_support_prefetch_neon(const double*, std::int64_t, std::int64_t,
                                        const SpinFilter&, double*, double*) noexcept;
double burn_neon(std::int64_t) noexcept;
#endif

}  // namespace detail_kernels

namespace {

constexpr std::size_t kBackendCount = 3;

[[nodiscard]] std::size_t index_of(Backend b) noexcept {
    return static_cast<std::size_t>(b);
}

const KernelTable kScalarTable{
    1,
    &detail_kernels::mandelbrot_scalar,
    &detail_kernels::spin_support_scalar,
    &detail_kernels::spin_support_prefetch_scalar,
    &detail_kernels::burn_scalar,
};

#if defined(HDLS_HAVE_AVX2_KERNELS)
const KernelTable kAvx2Table{
    4,
    &detail_kernels::mandelbrot_avx2,
    &detail_kernels::spin_support_avx2,
    &detail_kernels::spin_support_prefetch_avx2,
    &detail_kernels::burn_avx2,
};
#endif

#if defined(__ARM_NEON) && defined(__aarch64__)
const KernelTable kNeonTable{
    2,
    &detail_kernels::mandelbrot_neon,
    &detail_kernels::spin_support_neon,
    &detail_kernels::spin_support_prefetch_neon,
    &detail_kernels::burn_neon,
};
#endif

[[nodiscard]] const KernelTable* table_of(Backend b) noexcept {
    switch (b) {
        case Backend::Scalar:
            return &kScalarTable;
        case Backend::Avx2:
#if defined(HDLS_HAVE_AVX2_KERNELS)
            return &kAvx2Table;
#else
            return nullptr;
#endif
        case Backend::Neon:
#if defined(__ARM_NEON) && defined(__aarch64__)
            return &kNeonTable;
#else
            return nullptr;
#endif
    }
    return nullptr;
}

[[nodiscard]] bool cpu_has(Backend b) noexcept {
    switch (b) {
        case Backend::Scalar:
            return true;
        case Backend::Avx2:
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_cpu_supports("avx2") != 0;
#else
            return false;
#endif
        case Backend::Neon:
#if defined(__aarch64__)
            return true;  // AdvSIMD is baseline on aarch64
#else
            return false;
#endif
    }
    return false;
}

std::atomic<SimdMode> g_mode{SimdMode::Auto};

struct BackendMetrics {
    metrics::Counter* calls = nullptr;
    metrics::Counter* elements = nullptr;
};

[[nodiscard]] BackendMetrics& backend_metrics(Backend b) {
    static std::array<BackendMetrics, kBackendCount> all = [] {
        std::array<BackendMetrics, kBackendCount> r{};
        for (std::size_t i = 0; i < kBackendCount; ++i) {
            const metrics::Labels labels{
                {"backend", std::string(backend_name(static_cast<Backend>(i)))}};
            r[i].calls = &metrics::registry().counter(
                "hdls_simd_batch_calls_total",
                "Batch kernel invocations through the SIMD dispatch layer", labels);
            r[i].elements = &metrics::registry().counter(
                "hdls_simd_batch_elements_total",
                "Elements (pixels, cloud points, burn rounds) processed by the "
                "batch kernels",
                labels);
        }
        return r;
    }();
    return all[index_of(b)];
}

/// Pinned CPU of the calling thread, or -1 when the affinity mask covers
/// more than one CPU (the probe cache key).
[[nodiscard]] int pinned_cpu_of_caller() noexcept {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
        return -1;
    }
    if (CPU_COUNT(&set) != 1) {
        return -1;
    }
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &set)) {
            return c;
        }
    }
#endif
    return -1;
}

std::mutex g_probe_mutex;
std::map<std::pair<int, int>, double> g_probe_cache;

}  // namespace

std::string_view backend_name(Backend b) noexcept {
    switch (b) {
        case Backend::Scalar:
            return "scalar";
        case Backend::Avx2:
            return "avx2";
        case Backend::Neon:
            return "neon";
    }
    return "?";
}

std::string_view mode_name(SimdMode m) noexcept {
    switch (m) {
        case SimdMode::Auto:
            return "auto";
        case SimdMode::ForceScalar:
            return "scalar";
        case SimdMode::Native:
            return "native";
    }
    return "?";
}

bool backend_compiled(Backend b) noexcept { return table_of(b) != nullptr; }

bool backend_usable(Backend b) noexcept {
    return backend_compiled(b) && cpu_has(b);
}

Backend best_backend() noexcept {
    if (backend_usable(Backend::Avx2)) {
        return Backend::Avx2;
    }
    if (backend_usable(Backend::Neon)) {
        return Backend::Neon;
    }
    return Backend::Scalar;
}

std::vector<Backend> usable_backends() {
    std::vector<Backend> out{Backend::Scalar};
    if (backend_usable(Backend::Neon)) {
        out.push_back(Backend::Neon);
    }
    if (backend_usable(Backend::Avx2)) {
        out.push_back(Backend::Avx2);
    }
    return out;
}

void set_mode(SimdMode m) {
    if (m == SimdMode::Native && best_backend() == Backend::Scalar) {
        throw std::runtime_error(
            "HDLS_SIMD=native requires a vector backend, but only the scalar "
            "backend is usable on this host (compiled backends: scalar" +
            std::string(backend_compiled(Backend::Avx2) ? ", avx2" : "") +
            std::string(backend_compiled(Backend::Neon) ? ", neon" : "") +
            "); rebuild with AVX2/NEON kernels or run on a supporting CPU");
    }
    g_mode.store(m, std::memory_order_relaxed);
}

SimdMode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

Backend active_backend() noexcept {
    return mode() == SimdMode::ForceScalar ? Backend::Scalar : best_backend();
}

int active_width() noexcept { return active_kernels().width; }

const KernelTable& active_kernels() noexcept {
    const KernelTable* t = table_of(active_backend());
    return t != nullptr ? *t : kScalarTable;
}

const KernelTable& kernels_for(Backend b) {
    if (!backend_usable(b)) {
        throw std::runtime_error("simd backend '" + std::string(backend_name(b)) +
                                 "' is not usable on this host (" +
                                 (backend_compiled(b) ? "CPU lacks the ISA"
                                                      : "not compiled in") +
                                 ")");
    }
    return *table_of(b);
}

void run_mandelbrot_batch(const MandelbrotGeom& g, std::int64_t first_pixel,
                          std::int64_t count, int* out) noexcept {
    const Backend b = active_backend();
    active_kernels().mandelbrot(g, first_pixel, count, out);
    BackendMetrics& m = backend_metrics(b);
    m.calls->inc();
    m.elements->inc(static_cast<std::uint64_t>(count));
}

std::int64_t run_spin_support_batch(const double* aos, std::int64_t begin,
                                    std::int64_t count, const SpinFilter& f,
                                    bool prefetch, double* out_alpha,
                                    double* out_beta) noexcept {
    const Backend b = active_backend();
    const KernelTable& t = active_kernels();
    const std::int64_t written =
        prefetch ? t.spin_support_prefetch(aos, begin, count, f, out_alpha, out_beta)
                 : t.spin_support(aos, begin, count, f, out_alpha, out_beta);
    BackendMetrics& m = backend_metrics(b);
    m.calls->inc();
    m.elements->inc(static_cast<std::uint64_t>(count));
    return written;
}

double run_burn(std::int64_t rounds) noexcept {
    const Backend b = active_backend();
    const double folded = active_kernels().burn(rounds);
    BackendMetrics& m = backend_metrics(b);
    m.calls->inc();
    m.elements->inc(static_cast<std::uint64_t>(rounds));
    return folded;
}

double probe_mandelbrot_rate(Backend b, double min_seconds) {
    const KernelTable& t = kernels_for(b);
    const std::pair<int, int> key{static_cast<int>(b), pinned_cpu_of_caller()};
    {
        const std::lock_guard<std::mutex> lock(g_probe_mutex);
        if (const auto it = g_probe_cache.find(key); it != g_probe_cache.end()) {
            return it->second;
        }
    }

    // A small deterministic render straddling the set boundary, so lanes
    // see the realistic mix of fast escapes and max_iter interiors.
    constexpr std::int64_t kSide = 96;
    MandelbrotGeom g;
    g.re_min = -2.0;
    g.im_min = -1.2;
    g.dx = 2.6 / static_cast<double>(kSide);
    g.dy = 2.4 / static_cast<double>(kSide);
    g.width = kSide;
    g.max_iter = 64;

    std::array<int, kSide * kSide> out{};
    const auto start = std::chrono::steady_clock::now();
    std::int64_t pixels = 0;
    double elapsed = 0.0;
    do {
        t.mandelbrot(g, 0, kSide * kSide, out.data());
        pixels += kSide * kSide;
        elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start)
                      .count();
    } while (elapsed < min_seconds);

    const double rate = static_cast<double>(pixels) / elapsed;
    const std::lock_guard<std::mutex> lock(g_probe_mutex);
    // First measurement wins on a race; later callers reuse it.
    return g_probe_cache.emplace(key, rate).first->second;
}

void reset_probe_cache() noexcept {
    const std::lock_guard<std::mutex> lock(g_probe_mutex);
    g_probe_cache.clear();
}

}  // namespace hdls::simd
