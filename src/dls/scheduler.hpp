#pragma once
/// \file scheduler.hpp
/// Stateful, sequential ("master-side") chunk generators for every DLS
/// technique.
///
/// A Scheduler instance owns the scheduling state of ONE loop execution. It
/// is deliberately not thread-safe: in master-worker designs a single entity
/// serializes next() calls; in the paper's distributed design the step-
/// indexed formulas (chunk_formulas.hpp) are used instead and the shared
/// counters provide the serialization. The test suite cross-validates the
/// two forms against each other.

#include <cstdint>
#include <memory>
#include <optional>

#include "dls/params.hpp"
#include "dls/technique.hpp"

namespace hdls::dls {

/// One chunk assignment produced by a Scheduler.
struct Assignment {
    std::int64_t start = 0;  ///< first iteration index (0-based, inclusive)
    std::int64_t size = 0;   ///< number of iterations (> 0)
    std::int64_t step = 0;   ///< scheduling step that produced this chunk

    [[nodiscard]] std::int64_t end() const noexcept { return start + size; }
    friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// Interface of a stateful chunk generator.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Produces the next chunk for `worker` (0-based id), or std::nullopt
    /// when all iterations have been assigned. Chunks partition [0, N):
    /// consecutive calls return contiguous, non-overlapping ranges.
    [[nodiscard]] virtual std::optional<Assignment> next(int worker) = 0;

    /// Runtime feedback hook used by the adaptive techniques (AWF-*).
    /// `compute_seconds` is the pure loop-body time for the chunk;
    /// `overhead_seconds` the scheduling overhead attributable to it
    /// (AWF-D/E include the latter in their rate estimate, AWF-B/C do not).
    virtual void report(int worker, std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)worker;
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// Remaining unassigned iterations.
    [[nodiscard]] virtual std::int64_t remaining() const noexcept = 0;

    /// Scheduling steps issued so far.
    [[nodiscard]] virtual std::int64_t steps_issued() const noexcept = 0;

    /// The technique this scheduler implements.
    [[nodiscard]] virtual Technique technique() const noexcept = 0;
};

/// Creates a scheduler for `t`. Validates `params` (throws
/// std::invalid_argument on bad input).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(Technique t, const LoopParams& params);

/// Convenience: drains a scheduler round-robin over `workers` and returns
/// every assignment in issue order (used by tests, Table-1 bench and docs).
[[nodiscard]] std::vector<Assignment> enumerate_chunks(Technique t, const LoopParams& params);

}  // namespace hdls::dls
