#pragma once
/// \file technique.hpp
/// Enumeration and registry of the dynamic loop self-scheduling (DLS)
/// techniques implemented by this library.
///
/// The paper evaluates STATIC, SS, GSS, TSS and FAC2; the remaining
/// techniques (FSC, FAC, WF, TFSS, AWF-B/C/D/E, RND) are the direct
/// descendants/ancestors the paper's Section 2 surveys, implemented here as
/// extensions so the library is usable as a general DLS toolbox (the "DLS
/// library" the paper's Section 3 plans as future work).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdls::dls {

/// Loop self-scheduling techniques.
enum class Technique {
    Static,  ///< one chunk of ~N/P per worker; lowest overhead
    SS,      ///< pure self-scheduling, chunk = 1; highest overhead, best balance
    FSC,     ///< fixed-size chunking (Kruskal & Weiss)
    GSS,     ///< guided self-scheduling: chunk = ceil(remaining/P)
    TSS,     ///< trapezoid self-scheduling: linear decrease from N/2P to 1
    FAC,     ///< factoring with sigma/mu-derived batch ratio (Hummel et al.)
    FAC2,    ///< practical factoring: each batch = half the remaining, P chunks
    WF,      ///< weighted factoring: FAC2 scaled by static worker weights
    TFSS,    ///< trapezoid factoring self-scheduling (Chronopoulos et al.)
    AWFB,    ///< adaptive weighted factoring, batch-boundary adaptation
    AWFC,    ///< adaptive weighted factoring, chunk-boundary adaptation
    AWFD,    ///< AWF-B variant whose rates include scheduling overhead time
    AWFE,    ///< AWF-C variant whose rates include scheduling overhead time
    RND,     ///< random chunk sizes in [lo, hi] (Ciorba et al., iWomp'18)
};

/// Canonical short name ("STATIC", "SS", "GSS", "TSS", "FAC2", ...).
[[nodiscard]] std::string_view technique_name(Technique t) noexcept;

/// Parses a canonical name (case-insensitive); std::nullopt if unknown.
[[nodiscard]] std::optional<Technique> technique_from_string(std::string_view name) noexcept;

/// True if the technique adapts its chunk sizes from runtime feedback
/// (requires Scheduler::report() calls to be effective).
[[nodiscard]] bool is_adaptive(Technique t) noexcept;

/// True if chunk sizes can be computed from the scheduling-step index alone
/// (the *distributed chunk-calculation* requirement; Eleliemy & Ciorba, PDP'19).
/// Adaptive techniques and FAC (which needs the exact remaining count) are
/// excluded.
[[nodiscard]] bool supports_step_indexed(Technique t) noexcept;

/// True if the technique has a *remaining-count-based* distributed form: the
/// chunk size is computable from the exact remaining-iterations count (a
/// CAS-protected window cell) plus, for the weighted family, the requester's
/// current weight (static for WF, derived from the per-node feedback region
/// for AWF-B/C/D/E). These techniques are servable at the inter-node level
/// through the adaptive global queue — still no master process.
[[nodiscard]] bool supports_remaining_based(Technique t) noexcept;

/// True if the technique is usable at the inter-node (first) level under
/// the distributed protocol, through either form:
/// supports_step_indexed(t) || supports_remaining_based(t).
[[nodiscard]] bool supports_internode(Technique t) noexcept;

/// All techniques, in declaration order.
[[nodiscard]] const std::vector<Technique>& all_techniques();

/// The techniques the paper uses at the inter-node (first) level.
[[nodiscard]] const std::vector<Technique>& paper_internode_techniques();

/// The techniques the paper uses at the intra-node (second) level.
[[nodiscard]] const std::vector<Technique>& paper_intranode_techniques();

/// The intra-node techniques expressible with the (Intel) OpenMP `schedule`
/// clause: STATIC -> schedule(static), SS -> schedule(dynamic,1),
/// GSS -> schedule(guided,1). TSS/FAC2 are not (Table 1 of the paper).
[[nodiscard]] bool openmp_supports(Technique t) noexcept;

}  // namespace hdls::dls
