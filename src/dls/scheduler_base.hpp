#pragma once
/// \file scheduler_base.hpp
/// Internal base class shared by the stateful scheduler implementations.
/// Not part of the public API (include scheduler.hpp instead).

#include <algorithm>
#include <stdexcept>

#include "dls/scheduler.hpp"

namespace hdls::dls::detail {

/// Implements the next()/remaining bookkeeping common to all techniques;
/// derived classes only provide the chunk-size rule.
class SchedulerBase : public Scheduler {
public:
    SchedulerBase(Technique t, const LoopParams& params) : tech_(t), p_(params) {
        p_.validate();
    }

    [[nodiscard]] std::optional<Assignment> next(int worker) final {
        if (worker < 0 || worker >= p_.workers) {
            throw std::out_of_range("Scheduler::next: worker id out of range");
        }
        if (scheduled_ >= p_.total_iterations) {
            return std::nullopt;
        }
        std::int64_t size = compute_size(worker);
        size = std::clamp<std::int64_t>(size, 1, p_.total_iterations - scheduled_);
        const Assignment a{scheduled_, size, step_};
        scheduled_ += size;
        ++step_;
        on_issued(worker, a);
        return a;
    }

    [[nodiscard]] std::int64_t remaining() const noexcept final {
        return p_.total_iterations - scheduled_;
    }
    [[nodiscard]] std::int64_t steps_issued() const noexcept final { return step_; }
    [[nodiscard]] Technique technique() const noexcept final { return tech_; }

protected:
    /// Chunk-size rule; called only while iterations remain. The returned
    /// value is clamped to [1, remaining] by the caller.
    [[nodiscard]] virtual std::int64_t compute_size(int worker) = 0;

    /// Hook invoked after an assignment is issued (batch bookkeeping).
    virtual void on_issued(int worker, const Assignment& a) {
        (void)worker;
        (void)a;
    }

    [[nodiscard]] const LoopParams& params() const noexcept { return p_; }
    [[nodiscard]] std::int64_t scheduled() const noexcept { return scheduled_; }
    [[nodiscard]] std::int64_t step() const noexcept { return step_; }

private:
    Technique tech_;
    LoopParams p_;
    std::int64_t scheduled_ = 0;
    std::int64_t step_ = 0;
};

}  // namespace hdls::dls::detail
