#include "dls/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hdls::dls {

double fac_batch_factor(const LoopParams& p, std::int64_t remaining) noexcept {
    const auto workers = static_cast<double>(p.workers);
    const double b =
        (workers * p.sigma) / (2.0 * std::sqrt(static_cast<double>(remaining)) * p.mu);
    return 1.0 + b * b + b * std::sqrt(b * b + 2.0);
}

// Unlike the centralized AwfScheduler::refresh_weights (which tracks
// per-worker state and keeps its current weights — including any static
// priors — when nothing was observed yet), this is a stateless snapshot:
// no observations mean neutral weights. The distributed protocol has no
// per-requester weight state to preserve, only the feedback region.
std::vector<double> awf_weights(Technique t, std::span<const NodeFeedback> feedback) {
    const bool with_overhead = rate_includes_overhead(t);
    std::vector<double> rates(feedback.size(), -1.0);
    double sum = 0.0;
    std::size_t observed = 0;
    for (std::size_t i = 0; i < feedback.size(); ++i) {
        const NodeFeedback& f = feedback[i];
        const double time =
            f.compute_seconds + (with_overhead ? f.overhead_seconds : 0.0);
        if (f.iterations > 0 && time > 0.0) {
            rates[i] = static_cast<double>(f.iterations) / time;
            sum += rates[i];
            ++observed;
        }
    }
    std::vector<double> weights(feedback.size(), 1.0);
    if (observed == 0) {
        return weights;  // bootstrap: no measurements, equal weights
    }
    const double mean = sum / static_cast<double>(observed);
    if (mean <= 0.0) {
        return weights;  // degenerate (all-zero rates); keep neutral
    }
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = rates[i] > 0.0 ? rates[i] / mean : 1.0;
    }
    // Renormalize to mean 1 (unobserved nodes were pinned to 1 above).
    double wsum = 0.0;
    for (const double w : weights) {
        wsum += w;
    }
    if (wsum > 0.0) {
        const double scale = static_cast<double>(weights.size()) / wsum;
        for (double& w : weights) {
            w *= scale;
        }
    }
    return weights;
}

std::int64_t remaining_based_chunk(Technique t, const LoopParams& p, std::int64_t remaining,
                                   double weight) {
    if (remaining <= 0) {
        return 0;
    }
    const auto workers = static_cast<double>(p.workers);
    double share = 0.0;
    switch (t) {
        case Technique::FAC: {
            share = static_cast<double>(remaining) /
                    (fac_batch_factor(p, remaining) * workers);
            break;
        }
        case Technique::WF:
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE: {
            const auto batch = static_cast<double>((remaining + 1) / 2);
            share = batch * std::max(weight, 0.0) / workers;
            break;
        }
        default:
            throw std::invalid_argument(std::string("remaining_based_chunk: ") +
                                        std::string(technique_name(t)) +
                                        " has no remaining-count-based form");
    }
    auto size = static_cast<std::int64_t>(std::ceil(share));
    size = std::max(size, p.min_chunk);
    return std::min(size, remaining);
}

std::int64_t halving_batch_index(std::int64_t total, std::int64_t remaining) noexcept {
    if (total <= 0 || remaining <= 0) {
        return 0;
    }
    remaining = std::min(remaining, total);
    std::int64_t index = 0;
    std::int64_t boundary = total;
    while (boundary / 2 >= remaining) {
        boundary /= 2;
        ++index;
    }
    return index;
}

bool per_chunk_adaptation(Technique t) noexcept {
    return t == Technique::AWFC || t == Technique::AWFE;
}

bool rate_includes_overhead(Technique t) noexcept {
    return t == Technique::AWFD || t == Technique::AWFE;
}

std::int64_t feedback_ns(double seconds) noexcept {
    if (!(seconds > 0.0)) {
        return 0;
    }
    return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

std::vector<double> normalize_static_weights(std::vector<double> weights, int workers) {
    if (weights.empty()) {
        weights.assign(static_cast<std::size_t>(workers), 1.0);
        return weights;
    }
    if (weights.size() != static_cast<std::size_t>(workers)) {
        throw std::invalid_argument(
            "normalize_static_weights: size must equal the level's worker count");
    }
    double sum = 0.0;
    for (const double w : weights) {
        if (w < 0.0) {
            throw std::invalid_argument("normalize_static_weights: weights must be >= 0");
        }
        sum += w;
    }
    if (sum <= 0.0) {
        std::fill(weights.begin(), weights.end(), 1.0);
        return weights;
    }
    const double scale = static_cast<double>(weights.size()) / sum;
    for (double& w : weights) {
        w *= scale;
    }
    return weights;
}

}  // namespace hdls::dls
