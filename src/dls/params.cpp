#include "dls/params.hpp"

#include <stdexcept>
#include <string>

namespace hdls::dls {

void LoopParams::validate() const {
    if (total_iterations < 0) {
        throw std::invalid_argument("LoopParams: total_iterations must be >= 0");
    }
    if (workers < 1) {
        throw std::invalid_argument("LoopParams: workers must be >= 1");
    }
    if (!weights.empty() && weights.size() != static_cast<std::size_t>(workers)) {
        throw std::invalid_argument("LoopParams: weights size (" +
                                    std::to_string(weights.size()) +
                                    ") must equal workers (" + std::to_string(workers) + ")");
    }
    for (const double w : weights) {
        if (!(w > 0.0)) {
            throw std::invalid_argument("LoopParams: weights must be positive");
        }
    }
    if (sigma < 0.0) {
        throw std::invalid_argument("LoopParams: sigma must be >= 0");
    }
    if (mu <= 0.0) {
        throw std::invalid_argument("LoopParams: mu must be > 0");
    }
    if (min_chunk < 1) {
        throw std::invalid_argument("LoopParams: min_chunk must be >= 1");
    }
    if (fsc_chunk < 0 || tss_first < 0 || tss_last < 0 || rnd_lo < 0 || rnd_hi < 0) {
        throw std::invalid_argument("LoopParams: sizes must be >= 0");
    }
    if (tss_first != 0 && tss_last != 0 && tss_last > tss_first) {
        throw std::invalid_argument("LoopParams: tss_last must be <= tss_first");
    }
    if (rnd_lo != 0 && rnd_hi != 0 && rnd_hi < rnd_lo) {
        throw std::invalid_argument("LoopParams: rnd_hi must be >= rnd_lo");
    }
    if (overhead_h < 0.0) {
        throw std::invalid_argument("LoopParams: overhead_h must be >= 0");
    }
}

}  // namespace hdls::dls
