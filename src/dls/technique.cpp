#include "dls/technique.hpp"

#include <algorithm>
#include <cctype>

namespace hdls::dls {

std::string_view technique_name(Technique t) noexcept {
    switch (t) {
        case Technique::Static:
            return "STATIC";
        case Technique::SS:
            return "SS";
        case Technique::FSC:
            return "FSC";
        case Technique::GSS:
            return "GSS";
        case Technique::TSS:
            return "TSS";
        case Technique::FAC:
            return "FAC";
        case Technique::FAC2:
            return "FAC2";
        case Technique::WF:
            return "WF";
        case Technique::TFSS:
            return "TFSS";
        case Technique::AWFB:
            return "AWF-B";
        case Technique::AWFC:
            return "AWF-C";
        case Technique::AWFD:
            return "AWF-D";
        case Technique::AWFE:
            return "AWF-E";
        case Technique::RND:
            return "RND";
    }
    return "?";
}

std::optional<Technique> technique_from_string(std::string_view name) noexcept {
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    for (const Technique t : all_techniques()) {
        if (upper == technique_name(t)) {
            return t;
        }
    }
    // Accept the dash-less spellings too ("AWFB" for "AWF-B").
    if (upper == "AWFB") {
        return Technique::AWFB;
    }
    if (upper == "AWFC") {
        return Technique::AWFC;
    }
    if (upper == "AWFD") {
        return Technique::AWFD;
    }
    if (upper == "AWFE") {
        return Technique::AWFE;
    }
    return std::nullopt;
}

bool is_adaptive(Technique t) noexcept {
    switch (t) {
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE:
            return true;
        default:
            return false;
    }
}

bool supports_step_indexed(Technique t) noexcept {
    switch (t) {
        case Technique::Static:
        case Technique::SS:
        case Technique::FSC:
        case Technique::GSS:
        case Technique::TSS:
        case Technique::FAC2:
        case Technique::TFSS:
        case Technique::RND:
            return true;
        case Technique::FAC:   // needs the exact remaining-iterations count
        case Technique::WF:    // needs the requester identity *and* batch state
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE:
            return false;
    }
    return false;
}

bool supports_remaining_based(Technique t) noexcept {
    switch (t) {
        case Technique::FAC:  // needs the exact remaining-iterations count
        case Technique::WF:   // FAC2 batches scaled by static node weights
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE:
            return true;
        default:
            return false;
    }
}

bool supports_internode(Technique t) noexcept {
    return supports_step_indexed(t) || supports_remaining_based(t);
}

const std::vector<Technique>& all_techniques() {
    static const std::vector<Technique> kAll = {
        Technique::Static, Technique::SS,   Technique::FSC,  Technique::GSS,  Technique::TSS,
        Technique::FAC,    Technique::FAC2, Technique::WF,   Technique::TFSS, Technique::AWFB,
        Technique::AWFC,   Technique::AWFD, Technique::AWFE, Technique::RND};
    return kAll;
}

const std::vector<Technique>& paper_internode_techniques() {
    static const std::vector<Technique> kInter = {Technique::Static, Technique::GSS,
                                                  Technique::TSS, Technique::FAC2};
    return kInter;
}

const std::vector<Technique>& paper_intranode_techniques() {
    static const std::vector<Technique> kIntra = {Technique::Static, Technique::SS, Technique::GSS,
                                                  Technique::TSS, Technique::FAC2};
    return kIntra;
}

bool openmp_supports(Technique t) noexcept {
    switch (t) {
        case Technique::Static:  // schedule(static)
        case Technique::SS:      // schedule(dynamic,1)
        case Technique::GSS:     // schedule(guided,1)
            return true;
        default:
            return false;
    }
}

}  // namespace hdls::dls
