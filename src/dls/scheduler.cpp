/// \file scheduler.cpp
/// Factory and convenience helpers for the stateful schedulers.

#include "dls/scheduler.hpp"

#include <stdexcept>
#include <string>

namespace hdls::dls {

namespace detail {
std::unique_ptr<Scheduler> make_simple_scheduler(Technique t, const LoopParams& p);
std::unique_ptr<Scheduler> make_factoring_scheduler(Technique t, const LoopParams& p);
std::unique_ptr<Scheduler> make_weighted_scheduler(Technique t, const LoopParams& p);
}  // namespace detail

std::unique_ptr<Scheduler> make_scheduler(Technique t, const LoopParams& params) {
    params.validate();
    if (auto s = detail::make_simple_scheduler(t, params)) {
        return s;
    }
    if (auto s = detail::make_factoring_scheduler(t, params)) {
        return s;
    }
    if (auto s = detail::make_weighted_scheduler(t, params)) {
        return s;
    }
    throw std::invalid_argument(std::string("make_scheduler: unhandled technique ") +
                                std::string(technique_name(t)));
}

std::vector<Assignment> enumerate_chunks(Technique t, const LoopParams& params) {
    auto sched = make_scheduler(t, params);
    std::vector<Assignment> out;
    // Round-robin requesters; only the weighted techniques are sensitive to
    // requester identity, and round-robin matches their classic "one chunk
    // per worker per batch" formulation.
    int worker = 0;
    while (auto a = sched->next(worker)) {
        out.push_back(*a);
        worker = (worker + 1) % params.workers;
    }
    return out;
}

}  // namespace hdls::dls
