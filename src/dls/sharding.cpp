#include "dls/sharding.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <stdexcept>
#include <string>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"

namespace hdls::dls {

std::string_view inter_backend_name(InterBackend b) noexcept {
    switch (b) {
        case InterBackend::Centralized:
            return "centralized";
        case InterBackend::Sharded:
            return "sharded";
    }
    return "?";
}

std::optional<InterBackend> inter_backend_from_string(std::string_view name) noexcept {
    std::string lower;
    lower.reserve(name.size());
    for (const char ch : name) {
        lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    }
    if (lower == "centralized" || lower == "central") {
        return InterBackend::Centralized;
    }
    if (lower == "sharded" || lower == "shard") {
        return InterBackend::Sharded;
    }
    return std::nullopt;
}

bool supports_sharded(Technique t) noexcept {
    return supports_step_indexed(t) || t == Technique::WF;
}

Technique shard_formula(Technique t) {
    if (!supports_sharded(t)) {
        throw std::invalid_argument(
            "shard_formula: technique has no sharded form (needs the global remaining count)");
    }
    return t == Technique::WF ? Technique::FAC2 : t;
}

std::vector<std::int64_t> shard_partition(std::int64_t total, std::vector<double> weights,
                                          int nodes) {
    if (nodes < 1) {
        throw std::invalid_argument("shard_partition: nodes must be >= 1");
    }
    if (total < 0) {
        throw std::invalid_argument("shard_partition: total must be >= 0");
    }
    // Mean-1 normalization (same canonicalization WF uses), so node i's
    // ideal share is total * w_i / nodes.
    const std::vector<double> w = normalize_static_weights(std::move(weights), nodes);
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(nodes), 0);
    std::vector<double> fractions(static_cast<std::size_t>(nodes), 0.0);
    std::int64_t assigned = 0;
    for (int i = 0; i < nodes; ++i) {
        const double ideal = static_cast<double>(total) * w[static_cast<std::size_t>(i)] /
                             static_cast<double>(nodes);
        const auto floor_share = static_cast<std::int64_t>(ideal);
        sizes[static_cast<std::size_t>(i)] = floor_share;
        fractions[static_cast<std::size_t>(i)] = ideal - static_cast<double>(floor_share);
        assigned += floor_share;
    }
    // Largest remainder: hand the leftover iterations out one by one, by
    // descending fractional part, ties to the lower node id.
    std::vector<int> order(static_cast<std::size_t>(nodes));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return fractions[static_cast<std::size_t>(a)] > fractions[static_cast<std::size_t>(b)];
    });
    const std::int64_t leftover = total - assigned;
    for (std::int64_t k = 0; k < leftover; ++k) {
        ++sizes[static_cast<std::size_t>(order[static_cast<std::size_t>(k % nodes)])];
    }
    return sizes;
}

std::int64_t shard_chunk_hint(Technique t, std::int64_t shard_size, int level_workers,
                              std::int64_t min_chunk, std::int64_t step) {
    if (shard_size <= 0) {
        return 0;
    }
    LoopParams p;
    p.total_iterations = shard_size;
    p.workers = level_workers;
    p.min_chunk = min_chunk;
    const std::int64_t hint = chunk_size_for_step(shard_formula(t), p, step);
    return hint > 0 ? hint : 0;
}

std::int64_t steal_amount(std::int64_t remaining, std::int64_t min_chunk) noexcept {
    if (remaining <= 0) {
        return 0;
    }
    if (remaining <= min_chunk) {
        return remaining;
    }
    return remaining - remaining / 2;  // ceil(R / 2)
}

}  // namespace hdls::dls
