#include "dls/chunk_formulas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace hdls::dls {

namespace {

[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
    return (a + b - 1) / b;
}

struct TssShape {
    double first;
    double last;
    double delta;
    std::int64_t steps;
};

[[nodiscard]] TssShape tss_shape(const LoopParams& p) noexcept {
    const auto n = p.total_iterations;
    const auto workers = static_cast<std::int64_t>(p.workers);
    const double first =
        p.tss_first > 0 ? static_cast<double>(p.tss_first)
                        : static_cast<double>(ceil_div(n, 2 * workers));
    const double last =
        p.tss_last > 0 ? static_cast<double>(p.tss_last) : static_cast<double>(p.min_chunk);
    const double f = std::max(first, 1.0);
    const double l = std::clamp(last, 1.0, f);
    const auto steps = static_cast<std::int64_t>(
        std::ceil(2.0 * static_cast<double>(n) / (f + l)));
    const double delta = steps > 1 ? (f - l) / static_cast<double>(steps - 1) : 0.0;
    return {f, l, delta, std::max<std::int64_t>(steps, 1)};
}

}  // namespace

std::int64_t static_chunk(const LoopParams& p, std::int64_t step) noexcept {
    const auto workers = static_cast<std::int64_t>(p.workers);
    if (step >= workers || p.total_iterations <= 0) {
        return 0;
    }
    const std::int64_t base = p.total_iterations / workers;
    const std::int64_t extra = p.total_iterations % workers;
    return base + (step < extra ? 1 : 0);
}

std::int64_t gss_chunk(const LoopParams& p, std::int64_t step) noexcept {
    const auto n = static_cast<double>(p.total_iterations);
    const auto workers = static_cast<double>(p.workers);
    if (p.total_iterations <= 0) {
        return 0;
    }
    if (p.workers == 1) {
        // GSS degenerates to one chunk of N.
        return step == 0 ? p.total_iterations : p.min_chunk;
    }
    const double raw = (n / workers) * std::pow(1.0 - 1.0 / workers, static_cast<double>(step));
    const auto size = static_cast<std::int64_t>(std::ceil(raw));
    return std::max(size, p.min_chunk);
}

std::int64_t tss_chunk(const LoopParams& p, std::int64_t step) noexcept {
    if (p.total_iterations <= 0) {
        return 0;
    }
    const TssShape s = tss_shape(p);
    const double raw = s.first - s.delta * static_cast<double>(step);
    const auto size = static_cast<std::int64_t>(std::llround(raw));
    return std::max({size, static_cast<std::int64_t>(s.last), p.min_chunk});
}

std::int64_t fac2_chunk(const LoopParams& p, std::int64_t step) noexcept {
    if (p.total_iterations <= 0) {
        return 0;
    }
    const auto workers = static_cast<std::int64_t>(p.workers);
    const std::int64_t batch = step / workers;
    // 2^(batch+1); saturate the shift to avoid UB for very deep batches.
    if (batch >= 62) {
        return p.min_chunk;
    }
    const std::int64_t denom = workers << (batch + 1);
    if (denom <= 0) {
        return p.min_chunk;
    }
    return std::max(ceil_div(p.total_iterations, denom), p.min_chunk);
}

std::int64_t tfss_chunk(const LoopParams& p, std::int64_t step) noexcept {
    if (p.total_iterations <= 0) {
        return 0;
    }
    const auto workers = static_cast<std::int64_t>(p.workers);
    const TssShape s = tss_shape(p);
    const std::int64_t batch = step / workers;
    // Mean of TSS chunk sizes for steps [batch*P, batch*P + P).
    const double start_step = static_cast<double>(batch * workers);
    const double mean =
        s.first - s.delta * (start_step + static_cast<double>(workers - 1) / 2.0);
    const auto size = static_cast<std::int64_t>(std::llround(mean));
    return std::max({size, static_cast<std::int64_t>(s.last), p.min_chunk});
}

std::int64_t fsc_chunk(const LoopParams& p) noexcept {
    if (p.total_iterations <= 0) {
        return 0;
    }
    if (p.fsc_chunk > 0) {
        return p.fsc_chunk;
    }
    if (p.sigma > 0.0 && p.overhead_h > 0.0 && p.workers > 1) {
        const auto n = static_cast<double>(p.total_iterations);
        const auto workers = static_cast<double>(p.workers);
        const double num = std::numbers::sqrt2 * n * p.overhead_h;
        const double den = p.sigma * workers * std::sqrt(std::log(workers));
        const auto size = static_cast<std::int64_t>(std::ceil(std::pow(num / den, 2.0 / 3.0)));
        return std::max(size, p.min_chunk);
    }
    // Fallback when the probabilistic inputs are unknown: a quarter of the
    // STATIC chunk, a common practical choice.
    return std::max(ceil_div(p.total_iterations, 4 * static_cast<std::int64_t>(p.workers)),
                    p.min_chunk);
}

std::int64_t rnd_chunk(const LoopParams& p, std::int64_t step) noexcept {
    if (p.total_iterations <= 0) {
        return 0;
    }
    const auto workers = static_cast<std::int64_t>(p.workers);
    std::int64_t lo = p.rnd_lo > 0 ? p.rnd_lo
                                   : std::max<std::int64_t>(1, p.total_iterations / (100 * workers));
    std::int64_t hi = p.rnd_hi > 0 ? p.rnd_hi
                                   : std::max<std::int64_t>(lo, p.total_iterations / (2 * workers));
    lo = std::max(lo, p.min_chunk);
    hi = std::max(hi, lo);
    const std::uint64_t h = util::mix64(p.seed ^ util::mix64(static_cast<std::uint64_t>(step)));
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<std::int64_t>(h % span);
}

std::int64_t chunk_size_for_step(Technique t, const LoopParams& p, std::int64_t step,
                                 int /*worker*/) {
    if (step < 0) {
        throw std::invalid_argument("chunk_size_for_step: step must be >= 0");
    }
    switch (t) {
        case Technique::Static:
            return static_chunk(p, step);
        case Technique::SS:
            return p.total_iterations > 0 ? std::max<std::int64_t>(1, p.min_chunk) : 0;
        case Technique::FSC:
            return fsc_chunk(p);
        case Technique::GSS:
            return gss_chunk(p, step);
        case Technique::TSS:
            return tss_chunk(p, step);
        case Technique::FAC2:
            return fac2_chunk(p, step);
        case Technique::TFSS:
            return tfss_chunk(p, step);
        case Technique::RND:
            return rnd_chunk(p, step);
        case Technique::FAC:
        case Technique::WF:
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE:
            break;
    }
    throw std::invalid_argument(std::string("chunk_size_for_step: technique ") +
                                std::string(technique_name(t)) +
                                " has no step-indexed form (see supports_step_indexed)");
}

}  // namespace hdls::dls
