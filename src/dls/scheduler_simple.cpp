/// \file scheduler_simple.cpp
/// Stateful schedulers for the non-batched techniques: STATIC, SS, FSC,
/// GSS, TSS and RND. The batched (factoring-family) techniques live in
/// scheduler_factoring.cpp / scheduler_weighted.cpp.

#include <cmath>

#include "dls/chunk_formulas.hpp"
#include "dls/scheduler_base.hpp"

namespace hdls::dls::detail {

/// STATIC: exactly P chunks of ~N/P. Chunk sizes follow the step-indexed
/// closed form so both forms agree bit-for-bit.
class StaticScheduler final : public SchedulerBase {
public:
    using SchedulerBase::SchedulerBase;

private:
    std::int64_t compute_size(int /*worker*/) override {
        return static_chunk(params(), step());
    }
};

/// SS: pure self-scheduling; every chunk is min_chunk (1 by default).
class SsScheduler final : public SchedulerBase {
public:
    using SchedulerBase::SchedulerBase;

private:
    std::int64_t compute_size(int /*worker*/) override { return params().min_chunk; }
};

/// FSC: fixed chunk from the Kruskal–Weiss formula (or an explicit size).
class FscScheduler final : public SchedulerBase {
public:
    FscScheduler(Technique t, const LoopParams& p)
        : SchedulerBase(t, p), chunk_(fsc_chunk(params())) {}

private:
    std::int64_t compute_size(int /*worker*/) override { return chunk_; }

    std::int64_t chunk_;
};

/// GSS: chunk = ceil(remaining / P). The stateful form uses the *exact*
/// remaining count (master semantics); the step-indexed closed form
/// (gss_chunk) approximates it — the tests bound the divergence.
class GssScheduler final : public SchedulerBase {
public:
    using SchedulerBase::SchedulerBase;

private:
    std::int64_t compute_size(int /*worker*/) override {
        const auto workers = static_cast<std::int64_t>(params().workers);
        const std::int64_t size = (remaining() + workers - 1) / workers;
        return std::max(size, params().min_chunk);
    }
};

/// TSS: linear decrease c_{s+1} = c_s - delta from F = ceil(N/2P) to L = 1.
class TssScheduler final : public SchedulerBase {
public:
    TssScheduler(Technique t, const LoopParams& p) : SchedulerBase(t, p) {}

private:
    std::int64_t compute_size(int /*worker*/) override {
        return tss_chunk(params(), step());
    }
};

/// RND: uniformly random chunk in [lo, hi], deterministic per (seed, step).
class RndScheduler final : public SchedulerBase {
public:
    using SchedulerBase::SchedulerBase;

private:
    std::int64_t compute_size(int /*worker*/) override {
        return rnd_chunk(params(), step());
    }
};

std::unique_ptr<Scheduler> make_simple_scheduler(Technique t, const LoopParams& p) {
    switch (t) {
        case Technique::Static:
            return std::make_unique<StaticScheduler>(t, p);
        case Technique::SS:
            return std::make_unique<SsScheduler>(t, p);
        case Technique::FSC:
            return std::make_unique<FscScheduler>(t, p);
        case Technique::GSS:
            return std::make_unique<GssScheduler>(t, p);
        case Technique::TSS:
            return std::make_unique<TssScheduler>(t, p);
        case Technique::RND:
            return std::make_unique<RndScheduler>(t, p);
        default:
            return nullptr;
    }
}

}  // namespace hdls::dls::detail
