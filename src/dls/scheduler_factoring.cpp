/// \file scheduler_factoring.cpp
/// Stateful schedulers for the factoring family: FAC (probabilistic), FAC2
/// (practical halving) and TFSS (trapezoid factoring).
///
/// All three schedule *batches* of P equally-sized chunks; they differ in
/// how the batch size is derived from the remaining iterations.

#include <cmath>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"
#include "dls/scheduler_base.hpp"

namespace hdls::dls::detail {

/// Shared batch bookkeeping: a new batch of P chunks opens whenever the
/// previous one is exhausted; derived classes compute the per-chunk size of
/// a fresh batch.
class BatchedScheduler : public SchedulerBase {
public:
    using SchedulerBase::SchedulerBase;

protected:
    /// Per-chunk size for a new batch, given the remaining iterations.
    [[nodiscard]] virtual std::int64_t batch_chunk_size(std::int64_t remaining_iters) = 0;

    std::int64_t compute_size(int /*worker*/) final {
        if (slots_left_ == 0 || quota_left_ <= 0) {
            open_batch();
        }
        --slots_left_;
        const std::int64_t size = std::min(chunk_, quota_left_);
        quota_left_ -= size;
        return size;
    }

    void open_batch() {
        chunk_ = std::max(batch_chunk_size(remaining()), params().min_chunk);
        slots_left_ = params().workers;
        quota_left_ = chunk_ * params().workers;
        ++batch_index_;
    }

    [[nodiscard]] std::int64_t batch_index() const noexcept { return batch_index_; }

private:
    std::int64_t chunk_ = 0;
    int slots_left_ = 0;
    std::int64_t quota_left_ = 0;
    std::int64_t batch_index_ = -1;
};

/// FAC: batch ratio x_j = 1 + b_j^2 + b_j*sqrt(b_j^2 + 2) with
/// b_j = P*sigma / (2*sqrt(R_j)*mu); chunk = ceil(R_j / (x_j * P)).
/// With sigma = 0 this degenerates to one batch of size R (b = 0, x = 1),
/// matching the theory: no variance means no reason to hold anything back.
class FacScheduler final : public BatchedScheduler {
public:
    using BatchedScheduler::BatchedScheduler;

private:
    std::int64_t batch_chunk_size(std::int64_t remaining_iters) override {
        const auto r = static_cast<double>(remaining_iters);
        const double x = fac_batch_factor(params(), remaining_iters);
        return static_cast<std::int64_t>(
            std::ceil(r / (x * static_cast<double>(params().workers))));
    }
};

/// FAC2: every batch assigns half of the remaining iterations as P equal
/// chunks: chunk = ceil(R / (2P)). Its first chunk is half of GSS's.
class Fac2Scheduler final : public BatchedScheduler {
public:
    using BatchedScheduler::BatchedScheduler;

private:
    std::int64_t batch_chunk_size(std::int64_t remaining_iters) override {
        const auto workers = static_cast<std::int64_t>(params().workers);
        return (remaining_iters + 2 * workers - 1) / (2 * workers);
    }
};

/// TFSS: batches of P chunks whose size follows TSS's linear decrease — the
/// batch chunk is the mean of the next P TSS chunk sizes.
class TfssScheduler final : public BatchedScheduler {
public:
    using BatchedScheduler::BatchedScheduler;

private:
    std::int64_t batch_chunk_size(std::int64_t /*remaining_iters*/) override {
        const auto workers = static_cast<std::int64_t>(params().workers);
        const std::int64_t first_step = (batch_index() + 1) * workers;
        return tfss_chunk(params(), first_step);
    }
};

std::unique_ptr<Scheduler> make_factoring_scheduler(Technique t, const LoopParams& p) {
    switch (t) {
        case Technique::FAC:
            return std::make_unique<FacScheduler>(t, p);
        case Technique::FAC2:
            return std::make_unique<Fac2Scheduler>(t, p);
        case Technique::TFSS:
            return std::make_unique<TfssScheduler>(t, p);
        default:
            return nullptr;
    }
}

}  // namespace hdls::dls::detail
