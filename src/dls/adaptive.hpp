#pragma once
/// \file adaptive.hpp
/// Remaining-count-based ("feedback") chunk formulas for the adaptive
/// inter-node level.
///
/// The step-indexed forms (chunk_formulas.hpp) cannot express FAC (which
/// needs the exact remaining-iterations count) or the weighted family WF /
/// AWF-B/C/D/E (which additionally needs the requester's weight). This
/// module provides the distributed form both can use: the shared state is a
/// single CAS-protected *remaining iterations* cell plus, for AWF, a
/// per-node feedback region of (iterations, compute time, overhead time)
/// accumulators. A requester
///
///   1. reads the feedback region and derives its weight (awf_weights),
///   2. reads R and computes a size hint (remaining_based_chunk),
///   3. CAS-updates R -> R - min(hint, R); on success its chunk is
///      [N - R, N - R + size) — exact tiling with no master process.
///
/// The same formulas drive core::AdaptiveGlobalQueue (real RMA window) and
/// sim::InterChunkSource (virtual time), so the simulator and the real
/// executors schedule identically.
///
/// Because every request recomputes its share from the *current* R, the
/// batched factoring of the centralized schedulers becomes "continuous"
/// factoring here: each request receives its weighted slice of half the
/// remaining work. AWF-B/D approximate their batch-boundary adaptation
/// cadence with halving_batch_index(N, R), which advances exactly when a
/// centralized FAC2 batch would retire.

#include <cstdint>
#include <span>
#include <vector>

#include "dls/params.hpp"
#include "dls/technique.hpp"

namespace hdls::dls {

/// Per-node accumulated execution feedback — a snapshot of the adaptive
/// queue's RMA feedback region.
struct NodeFeedback {
    std::int64_t iterations = 0;
    double compute_seconds = 0.0;
    double overhead_seconds = 0.0;
};

/// AWF weighted performance rates: rate_i = iterations_i / time_i where
/// time includes scheduling overhead for AWF-D/E (rate_includes_overhead).
/// Returns mean-1-normalized weights; nodes with no measurements (no
/// iterations or zero accumulated time) get the neutral weight 1. With no
/// observations at all, every node gets 1 (the WF/FAC2 bootstrap batch).
[[nodiscard]] std::vector<double> awf_weights(Technique t,
                                              std::span<const NodeFeedback> feedback);

/// FAC's batch divisor x_j = 1 + b^2 + b*sqrt(b^2 + 2) with
/// b = P * sigma / (2 * sqrt(R) * mu) (Hummel et al.). Shared by the
/// centralized FacScheduler and the remaining-based distributed form so
/// the two cannot drift. Requires R > 0 and mu > 0.
[[nodiscard]] double fac_batch_factor(const LoopParams& p, std::int64_t remaining) noexcept;

/// Chunk-size hint from the exact remaining count `remaining` and the
/// requester's weight (ignored by FAC):
///   FAC        ceil(R / (x * P)), x = 1 + b^2 + b*sqrt(b^2 + 2),
///              b = P * sigma / (2 * sqrt(R) * mu)
///   WF, AWF-*  ceil(ceil(R / 2) * w / P)  (weighted half-remaining share)
/// The result is clamped to [min_chunk, R]; 0 when R <= 0.
/// Preconditions: supports_remaining_based(t) and params validated.
/// Throws std::invalid_argument for techniques without this form.
[[nodiscard]] std::int64_t remaining_based_chunk(Technique t, const LoopParams& p,
                                                 std::int64_t remaining, double weight);

/// Index of the FAC2-style halving batch that `remaining` falls in:
/// 0 while R > N/2, 1 while R > N/4, ... AWF-B/D refresh their weights
/// only when this index advances; AWF-C/E refresh on every chunk.
[[nodiscard]] std::int64_t halving_batch_index(std::int64_t total,
                                               std::int64_t remaining) noexcept;

/// True when `t` refreshes weights on every chunk (AWF-C/E) rather than at
/// batch boundaries (AWF-B/D). WF and FAC never refresh.
[[nodiscard]] bool per_chunk_adaptation(Technique t) noexcept;

/// True when `t`'s rates include scheduling-overhead time (AWF-D/E).
[[nodiscard]] bool rate_includes_overhead(Technique t) noexcept;

/// Seconds -> non-negative integer nanoseconds, the unit of the feedback
/// region's time cells (and of FeedbackReport trace payloads).
[[nodiscard]] std::int64_t feedback_ns(double seconds) noexcept;

/// Canonicalizes WF's static weights: empty -> `workers` equal weights;
/// all-zero -> equal weights; otherwise mean-1 normalized. Throws
/// std::invalid_argument on a size mismatch or negative entries. Both the
/// real AdaptiveGlobalQueue and the simulator's InterChunkSource go
/// through here, so the two schedule identically.
[[nodiscard]] std::vector<double> normalize_static_weights(std::vector<double> weights,
                                                           int workers);

/// Per-requester weight cache implementing the AWF refresh cadence:
/// AWF-C/E re-derive weights on every chunk, AWF-B/D hold them until the
/// halving-batch index advances. `snapshot` is invoked only when a refresh
/// is due and must return the per-node feedback (anything convertible to
/// std::span<const NodeFeedback>).
class AwfWeightCache {
public:
    template <typename SnapshotFn>
    [[nodiscard]] double weight(Technique t, int node, std::int64_t total,
                                std::int64_t remaining, SnapshotFn&& snapshot) {
        const std::int64_t batch = halving_batch_index(total, remaining);
        if (!per_chunk_adaptation(t) && batch == batch_) {
            return weight_;
        }
        const auto feedback = snapshot();
        const std::vector<double> weights = awf_weights(t, feedback);
        batch_ = batch;
        weight_ = weights[static_cast<std::size_t>(node)];
        return weight_;
    }

private:
    std::int64_t batch_ = -1;
    double weight_ = 1.0;
};

}  // namespace hdls::dls
