#pragma once
/// \file sharding.hpp
/// Shard math of the *sharded* inter-node backend.
///
/// The centralized level-1 queues serialize every acquisition through one
/// rank-0 RMA window. The sharded backend removes that hotspot the way
/// "A Distributed Chunk Calculation Approach for Self-scheduling of
/// Parallel Applications on Distributed-memory Systems" (Eleliemy &
/// Ciorba, 2021) does: the iteration space is pre-partitioned over the
/// nodes (by static node weight), each node self-schedules its own shard
/// through the step-indexed formulas, and an idle node steals half the
/// remainder of the most-loaded victim's shard with one CAS.
///
/// Everything here is pure shard arithmetic shared by the real queue
/// (core::ShardedInterQueue) and the simulator's virtual-time source
/// (sim::detail::ShardedInterSource), so the two cannot drift:
///  * shard_partition  — largest-remainder apportionment of N by weight;
///  * shard_chunk_hint — the within-shard step-indexed chunk size;
///  * steal_amount     — the thief's half-remainder share.
/// All three are deterministic, and every carve (owner or thief) removes
/// `min(hint, R)` from a single per-shard remaining count R, so the shard
/// tiles exactly no matter how acquisitions and steals interleave.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "dls/technique.hpp"

namespace hdls::dls {

/// Which level-1 queue implementation serves the inter-node level.
enum class InterBackend {
    Centralized,  ///< one rank-0 window (GlobalWorkQueue / AdaptiveGlobalQueue)
    Sharded,      ///< one window per node + CAS work stealing (ShardedInterQueue)
};

/// Canonical lower-case name ("centralized" / "sharded").
[[nodiscard]] std::string_view inter_backend_name(InterBackend b) noexcept;

/// Scheduling choice of one level of a topology tree: the technique that
/// partitions a group's work among its children, and (for levels backed by
/// a queue window) which backend implementation serves it. An unset
/// backend inherits the run's default (HierConfig/SimConfig::inter_backend
/// for interior levels; the leaf level is always the shared local queue).
struct LevelScheme {
    Technique technique = Technique::GSS;
    std::optional<InterBackend> backend;
};

/// Parses a canonical name (case-insensitive); std::nullopt if unknown.
[[nodiscard]] std::optional<InterBackend> inter_backend_from_string(
    std::string_view name) noexcept;

/// True if the technique can be served by the sharded backend: every
/// step-indexed technique, plus WF (whose static weights become the shard
/// partition, with FAC2 halving inside each shard — weighted factoring by
/// construction). The adaptive family and FAC need the exact *global*
/// remaining count and stay centralized.
[[nodiscard]] bool supports_sharded(Technique t) noexcept;

/// The step-indexed formula used *within* a shard: the technique itself,
/// except WF which maps to FAC2 (its weight already shaped the shard).
/// Precondition: supports_sharded(t).
[[nodiscard]] Technique shard_formula(Technique t);

/// Largest-remainder apportionment of `total` iterations over `nodes`
/// shards proportional to `weights` (empty = equal; negative entries or a
/// size mismatch throw std::invalid_argument). The returned sizes are
/// non-negative and sum to exactly `total`; ties go to the lower node id.
[[nodiscard]] std::vector<std::int64_t> shard_partition(std::int64_t total,
                                                        std::vector<double> weights,
                                                        int nodes);

/// Chunk-size hint for scheduling step `step` within a shard of
/// `shard_size` iterations; `level_workers` is P in the formulas, so each
/// shard runs the technique's full decreasing schedule over its own range.
/// That is deliberately finer-grained than the centralized per-node
/// subsequence (FAC2's first sharded chunk is S/2P, not the centralized
/// N/2P = S/2): shard acquisitions are cheap node-local atomics, and the
/// smaller carves keep a remainder available to thieves for longer.
/// Returns 0 when the formula has run dry (e.g. STATIC past its P
/// chunks) — the caller then takes the remainder.
[[nodiscard]] std::int64_t shard_chunk_hint(Technique t, std::int64_t shard_size,
                                            int level_workers, std::int64_t min_chunk,
                                            std::int64_t step);

/// Iterations a thief removes from a shard with `remaining` unassigned
/// iterations: half of the remainder (rounded up), or all of it once the
/// remainder is at most `min_chunk` (no point leaving a crumb behind).
/// 0 when nothing remains — a CAS with this in its transform is a no-op.
[[nodiscard]] std::int64_t steal_amount(std::int64_t remaining,
                                        std::int64_t min_chunk) noexcept;

}  // namespace hdls::dls
