#pragma once
/// \file chunk_formulas.hpp
/// Step-indexed ("distributed chunk calculation") chunk-size formulas.
///
/// This is the form required by the paper's execution model: a worker
/// atomically increments the *latest scheduling step* counter in the global
/// (or node-local) work queue, then computes its chunk size locally from the
/// step index alone — no master and no serialized chunk computation
/// (Eleliemy & Ciorba, "Dynamic Loop Scheduling Using MPI Passive-Target
/// Remote Memory Access", PDP 2019; the paper's ref [15]).
///
/// The returned value is a *size hint*: because closed forms cannot track
/// exact remaining-iteration counts under concurrent clamping, callers must
/// clamp the hint against the shared `scheduled` counter:
///
///   step   = fetch_add(&queue.step, 1)
///   hint   = chunk_size_for_step(tech, params, step)
///   start  = fetch_add(&queue.scheduled, hint)   // then clamp:
///   size   = min(hint, N - start)                // 0 or negative => done
///
/// The invariant tested by the suite: for every technique and every (N, P),
/// iterating steps 0,1,2,... with that clamping covers [0, N) exactly once.

#include <cstdint>

#include "dls/params.hpp"
#include "dls/technique.hpp"

namespace hdls::dls {

/// Chunk-size hint for scheduling step `step` (0-based). `worker` is only
/// consulted by techniques whose step-indexed form is worker-dependent
/// (none of the paper's five; kept for extension symmetry).
/// Preconditions: supports_step_indexed(t) and params validated.
/// Throws std::invalid_argument for techniques without a step-indexed form.
[[nodiscard]] std::int64_t chunk_size_for_step(Technique t, const LoopParams& p,
                                               std::int64_t step, int worker = 0);

// --- Individual closed forms (exposed for tests and documentation) ---------

/// STATIC: P chunks; chunk s gets floor(N/P) + 1 extra while s < N mod P.
[[nodiscard]] std::int64_t static_chunk(const LoopParams& p, std::int64_t step) noexcept;

/// GSS closed form: ceil((N/P) * (1 - 1/P)^step), >= min_chunk.
[[nodiscard]] std::int64_t gss_chunk(const LoopParams& p, std::int64_t step) noexcept;

/// TSS linear decrease: F - step*delta with F = ceil(N/2P), L = 1,
/// S = ceil(2N/(F+L)), delta = (F-L)/(S-1).
[[nodiscard]] std::int64_t tss_chunk(const LoopParams& p, std::int64_t step) noexcept;

/// FAC2: batch b = floor(step/P); chunk = ceil(N / (2^(b+1) * P)).
[[nodiscard]] std::int64_t fac2_chunk(const LoopParams& p, std::int64_t step) noexcept;

/// TFSS: batch b = floor(step/P); chunk = mean of the next P TSS chunk sizes.
[[nodiscard]] std::int64_t tfss_chunk(const LoopParams& p, std::int64_t step) noexcept;

/// FSC: fixed chunk from Kruskal & Weiss' formula
/// (sqrt(2)*N*h / (sigma*P*sqrt(ln P)))^(2/3), or p.fsc_chunk when given.
[[nodiscard]] std::int64_t fsc_chunk(const LoopParams& p) noexcept;

/// RND: deterministic hash of (seed, step) mapped to [lo, hi].
[[nodiscard]] std::int64_t rnd_chunk(const LoopParams& p, std::int64_t step) noexcept;

}  // namespace hdls::dls
