/// \file scheduler_weighted.cpp
/// Stateful schedulers for the weighted factoring family: WF (static
/// weights) and the four adaptive-weighted-factoring variants AWF-B/C/D/E.
///
/// All five schedule FAC2-style batches (half the remaining iterations per
/// batch, one slot per worker) but size each requester's chunk by its
/// weight. WF's weights are fixed inputs; AWF's are measured rates:
///
///   AWF-B  adapt at batch boundaries, rate = iterations / compute time
///   AWF-C  adapt at every chunk,      rate = iterations / compute time
///   AWF-D  adapt at batch boundaries, rate includes scheduling overhead
///   AWF-E  adapt at every chunk,      rate includes scheduling overhead
///
/// (Banicescu et al., Cluster Computing 2003; Carino & Banicescu 2008.)

#include <cmath>
#include <numeric>
#include <vector>

#include "dls/scheduler_base.hpp"

namespace hdls::dls::detail {

/// Common machinery: batches with per-worker weighted shares.
class WeightedBatchScheduler : public SchedulerBase {
public:
    WeightedBatchScheduler(Technique t, const LoopParams& p) : SchedulerBase(t, p) {
        weights_.assign(static_cast<std::size_t>(params().workers), 1.0);
        if (!params().weights.empty()) {
            weights_ = params().weights;
        }
        normalize(weights_);
    }

protected:
    /// Recomputes `weights_` (mean 1). Default: keep current (WF).
    virtual void refresh_weights() {}

    /// Whether weights refresh on every chunk (AWF-C/E) rather than only at
    /// batch boundaries (WF, AWF-B/D).
    [[nodiscard]] virtual bool per_chunk_adaptation() const noexcept { return false; }

    std::int64_t compute_size(int worker) final {
        if (slots_left_ == 0 || quota_left_ <= 0) {
            refresh_weights();
            open_batch();
        } else if (per_chunk_adaptation()) {
            refresh_weights();
        }
        --slots_left_;
        const auto share = static_cast<double>(batch_total_) *
                           weights_[static_cast<std::size_t>(worker)] /
                           static_cast<double>(params().workers);
        auto size = static_cast<std::int64_t>(std::ceil(share));
        size = std::max(size, params().min_chunk);
        size = std::min(size, quota_left_);
        quota_left_ -= size;
        return size;
    }

    static void normalize(std::vector<double>& w) {
        const double sum = std::accumulate(w.begin(), w.end(), 0.0);
        if (sum <= 0.0) {
            std::fill(w.begin(), w.end(), 1.0);
            return;
        }
        const double scale = static_cast<double>(w.size()) / sum;
        for (double& x : w) {
            x *= scale;
        }
    }

    std::vector<double> weights_;

private:
    void open_batch() {
        const auto workers = static_cast<std::int64_t>(params().workers);
        // FAC2 batch: half the remaining iterations.
        batch_total_ = std::max<std::int64_t>((remaining() + 1) / 2, params().min_chunk);
        quota_left_ = batch_total_;
        slots_left_ = static_cast<int>(workers);
    }

    std::int64_t batch_total_ = 0;
    std::int64_t quota_left_ = 0;
    int slots_left_ = 0;
};

/// WF: fixed user-provided weights.
class WfScheduler final : public WeightedBatchScheduler {
public:
    using WeightedBatchScheduler::WeightedBatchScheduler;
};

/// AWF: weights derived from reported per-worker execution rates.
class AwfScheduler final : public WeightedBatchScheduler {
public:
    AwfScheduler(Technique t, const LoopParams& p)
        : WeightedBatchScheduler(t, p),
          per_chunk_(t == Technique::AWFC || t == Technique::AWFE),
          include_overhead_(t == Technique::AWFD || t == Technique::AWFE) {
        const auto n = static_cast<std::size_t>(params().workers);
        iters_.assign(n, 0);
        compute_s_.assign(n, 0.0);
        overhead_s_.assign(n, 0.0);
    }

    void report(int worker, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override {
        if (worker < 0 || worker >= params().workers) {
            throw std::out_of_range("Scheduler::report: worker id out of range");
        }
        const auto w = static_cast<std::size_t>(worker);
        iters_[w] += iterations;
        compute_s_[w] += compute_seconds;
        overhead_s_[w] += overhead_seconds;
    }

private:
    [[nodiscard]] bool per_chunk_adaptation() const noexcept override { return per_chunk_; }

    void refresh_weights() override {
        // Rate pi_p = executed iterations / elapsed time. Workers without
        // measurements keep a neutral weight equal to the mean of observed
        // rates (i.e. 1 after normalization).
        std::vector<double> rates(iters_.size(), -1.0);
        double sum = 0.0;
        std::size_t observed = 0;
        for (std::size_t w = 0; w < iters_.size(); ++w) {
            const double time = compute_s_[w] + (include_overhead_ ? overhead_s_[w] : 0.0);
            if (iters_[w] > 0 && time > 0.0) {
                rates[w] = static_cast<double>(iters_[w]) / time;
                sum += rates[w];
                ++observed;
            }
        }
        if (observed == 0) {
            return;  // no data yet; keep current weights
        }
        const double mean = sum / static_cast<double>(observed);
        for (std::size_t w = 0; w < rates.size(); ++w) {
            weights_[w] = rates[w] > 0.0 ? rates[w] / mean : 1.0;
        }
        normalize(weights_);
    }

    bool per_chunk_;
    bool include_overhead_;
    std::vector<std::int64_t> iters_;
    std::vector<double> compute_s_;
    std::vector<double> overhead_s_;
};

std::unique_ptr<Scheduler> make_weighted_scheduler(Technique t, const LoopParams& p) {
    switch (t) {
        case Technique::WF:
            return std::make_unique<WfScheduler>(t, p);
        case Technique::AWFB:
        case Technique::AWFC:
        case Technique::AWFD:
        case Technique::AWFE:
            return std::make_unique<AwfScheduler>(t, p);
        default:
            return nullptr;
    }
}

}  // namespace hdls::dls::detail
