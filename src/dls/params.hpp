#pragma once
/// \file params.hpp
/// Parameters describing one self-scheduled loop execution.

#include <cstdint>
#include <vector>

namespace hdls::dls {

/// Parameters for scheduling a loop of `total_iterations` over `workers`
/// processing elements. Everything beyond the first two fields has sensible
/// defaults; technique-specific fields are ignored by other techniques.
struct LoopParams {
    std::int64_t total_iterations = 0;  ///< N >= 0
    int workers = 1;                    ///< P >= 1

    // --- FAC / FSC probabilistic inputs -------------------------------
    double sigma = 0.0;  ///< stddev of iteration execution time (seconds)
    double mu = 1.0;     ///< mean iteration execution time (seconds)
    double overhead_h = 0.0;  ///< per-chunk scheduling overhead (seconds), FSC

    // --- FSC ------------------------------------------------------------
    std::int64_t fsc_chunk = 0;  ///< explicit chunk; 0 = derive from formula

    // --- TSS / TFSS -------------------------------------------------------
    /// First/last chunk sizes; 0 means the canonical defaults
    /// F = ceil(N / (2P)), L = 1.
    std::int64_t tss_first = 0;
    std::int64_t tss_last = 0;

    // --- WF / AWF-* -------------------------------------------------------
    /// Relative worker speeds; empty = all equal. When non-empty the size
    /// must equal `workers`. Values are normalized internally so only ratios
    /// matter.
    std::vector<double> weights;

    // --- RND ---------------------------------------------------------------
    std::uint64_t seed = 0x5eedULL;  ///< per-loop RNG seed
    std::int64_t rnd_lo = 0;         ///< 0 = default max(1, N/(100P))
    std::int64_t rnd_hi = 0;         ///< 0 = default max(lo, N/(2P))

    /// Smallest chunk any dynamic technique may emit (>= 1).
    std::int64_t min_chunk = 1;

    /// Throws std::invalid_argument on inconsistent values.
    void validate() const;
};

}  // namespace hdls::dls
