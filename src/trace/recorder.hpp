#pragma once
/// \file recorder.hpp
/// Live recording: a TraceSession owns one SPSC ring buffer per worker and
/// hands each worker a WorkerTracer — a trivially-copyable handle that is
/// a complete no-op when default-constructed (the disabled state), so
/// executors thread it through unconditionally at zero cost.
///
/// Two clock modes share one API:
///  * real executors stamp events with `now()` (steady-clock seconds since
///    the session epoch);
///  * the discrete-event simulator passes its own virtual timestamps to
///    `record()` / `instant()` directly.

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/event.hpp"
#include "trace/ring_buffer.hpp"
#include "trace/trace.hpp"

namespace hdls::trace {

/// Per-worker recording handle. Cheap to copy; safe to use from exactly
/// one thread at a time (the SPSC producer side).
class WorkerTracer {
public:
    using Clock = std::chrono::steady_clock;

    /// Disabled handle: every record call is a no-op, `enabled()` is false.
    WorkerTracer() = default;

    [[nodiscard]] bool enabled() const noexcept { return buffer_ != nullptr; }

    /// Seconds since the session epoch (0 when disabled — callers guard
    /// clock reads behind enabled() so disabled tracing costs nothing).
    [[nodiscard]] double now() const noexcept {
        if (!enabled()) {
            return 0.0;
        }
        return std::chrono::duration<double>(Clock::now() - epoch_).count();
    }

    /// Records an interval event [t0, t1] (drop-counted when full).
    /// `level` tags the scheduling-hierarchy level (see Event::level).
    void record(EventKind kind, double t0, double t1, std::int64_t a = 0, std::int64_t b = 0,
                double wait = 0.0, int level = 0) noexcept {
        if (!enabled()) {
            return;
        }
        Event e;
        e.t0 = t0;
        e.t1 = t1;
        e.wait = wait;
        e.a = a;
        e.b = b;
        e.worker = worker_;
        e.node = node_;
        e.job = job_;
        e.kind = kind;
        e.level = static_cast<std::int8_t>(level);
        (void)buffer_->try_push(e);
    }

    /// Records an instant event at time t.
    void instant(EventKind kind, double t, std::int64_t a = 0, std::int64_t b = 0,
                 int level = 0) noexcept {
        record(kind, t, t, a, b, 0.0, level);
    }

private:
    friend class TraceSession;
    WorkerTracer(SpscRingBuffer<Event>* buffer, Clock::time_point epoch, std::int32_t worker,
                 std::int32_t node, std::int32_t job) noexcept
        : buffer_(buffer), epoch_(epoch), worker_(worker), node_(node), job_(job) {}

    SpscRingBuffer<Event>* buffer_ = nullptr;
    Clock::time_point epoch_{};
    std::int32_t worker_ = -1;
    std::int32_t node_ = -1;
    std::int32_t job_ = -1;
};

/// Owns the per-worker buffers of one traced run.
///
///   TraceSession session(shape.total_workers());
///   ... each worker records through session.tracer(w, node) ...
///   Trace trace = session.merge();   // after all workers finished
class TraceSession {
public:
    static constexpr std::size_t kDefaultCapacity = 1 << 14;  ///< events per worker

    /// `job` >= 0 makes this a per-job session: every recorded event is
    /// stamped with the id, so merge_job_traces needs no rewriting pass
    /// and partial traces stay attributable.
    explicit TraceSession(int workers, std::size_t capacity_per_worker = kDefaultCapacity,
                          std::int32_t job = -1);

    [[nodiscard]] int workers() const noexcept { return static_cast<int>(buffers_.size()); }

    /// Handle for one worker. Thread-safe (buffers are preallocated); each
    /// handle must then be used by a single thread.
    [[nodiscard]] WorkerTracer tracer(int worker, int node) noexcept;

    /// Drains every buffer into a time-sorted, origin-normalized Trace.
    /// Call only after all producers have stopped recording.
    [[nodiscard]] Trace merge();

    /// merge() plus metadata, wrapped for a report: the one-liner every
    /// run owner (runner, sim engines) ends a traced run with.
    [[nodiscard]] std::shared_ptr<const Trace> finish(TraceMeta meta);

private:
    std::vector<std::unique_ptr<SpscRingBuffer<Event>>> buffers_;
    WorkerTracer::Clock::time_point epoch_;
    std::int32_t job_ = -1;
};

}  // namespace hdls::trace
