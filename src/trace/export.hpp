#pragma once
/// \file export.hpp
/// Trace exporters: Chrome trace-event JSON (load via chrome://tracing or
/// https://ui.perfetto.dev), flat CSV for ad-hoc analysis, and an ASCII
/// Gantt chart for terminals (the Figure-2/3 timeline at a glance).

#include <ostream>

#include "trace/trace.hpp"

namespace hdls::trace {

/// Writes the Chrome trace-event format: a JSON object whose "traceEvents"
/// array holds one entry per event (pid = node, tid = worker, timestamps
/// in microseconds). Interval events map to complete ("X") events,
/// ChunkExec/Refill begin-end pairs to duration ("B"/"E") pairs and
/// Terminate to an instant ("i") event.
void export_chrome_json(const Trace& trace, std::ostream& os);

/// Writes one CSV row per event: kind,worker,node,t0,t1,wait,a,b
/// (times in seconds since the trace origin).
void export_csv(const Trace& trace, std::ostream& os);

/// Renders a per-worker timeline of `width` columns. Legend:
///   '#' executing the loop body    '+' scheduling overhead (queue/lock/RMA)
///   '.' waiting (barrier/work)     ' ' untraced / idle
void ascii_gantt(const Trace& trace, std::ostream& os, int width = 80);

}  // namespace hdls::trace
