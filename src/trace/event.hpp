#pragma once
/// \file event.hpp
/// The chunk-lifecycle event model of the tracing subsystem.
///
/// A trace is a flat sequence of Events, each stamped with the recording
/// worker and its node. Two shapes coexist:
///  * interval events (t0 < t1): GlobalAcquire (request -> return of the
///    distributed chunk calculation), LocalPop (lock request -> epoch
///    release on the node queue; `wait` isolates the lock-grant latency,
///    the quantity the paper's lock-polling discussion revolves around)
///    and BarrierWait (entering -> leaving a wait for work or a barrier);
///  * instant events (t0 == t1): RefillBegin/RefillEnd bracketing a refill
///    announcement, ChunkExecBegin/ChunkExecEnd bracketing one sub-chunk's
///    loop-body execution, and Terminate when the worker leaves the loop.
///
/// Timestamps are seconds relative to the trace origin (the earliest
/// recorded event after merging); the simulator records virtual time with
/// the same schema, so every exporter and analysis works on both.

#include <cstdint>
#include <string_view>

namespace hdls::trace {

enum class EventKind : std::uint8_t {
    GlobalAcquire,   ///< global-queue chunk acquisition (a=start, b=size; b==0: exhausted probe)
    LocalPop,        ///< node-queue pop epoch (a=begin, b=end of sub-chunk; a==b==-1: empty)
    RefillBegin,     ///< refill announced (in-flight counter raised)
    RefillEnd,       ///< refill completed/withdrawn (a=start, b=size pushed; b==0: none)
    ChunkExecBegin,  ///< loop body entered for [a, b)
    ChunkExecEnd,    ///< loop body left for [a, b)
    BarrierWait,     ///< waiting: team barrier / work not yet visible / termination spin
    Terminate,       ///< worker left the scheduling loop
    FeedbackReport,  ///< adaptive feedback posted (a=iterations, b=the rate denominator in
                     ///< ns: pure body time under MPI+MPI, node wall time under MPI+OpenMP
                     ///< whose funneled master reports whole chunks)
    Steal,           ///< level-1 work steal under the sharded backend (a=start, b=size
                     ///< carved from a peer shard; the victim is recoverable from the
                     ///< range, shard boundaries being deterministic)
    Prefetch,        ///< prefetch-slot outcome at acquire time: a=1 hit (the chunk was
                     ///< already in the slot, acquired ahead of demand; `wait` holds the
                     ///< acquisition seconds spent filling it, b the chunk start) or a=0
                     ///< miss (the slot was empty; the acquisition ran on demand). Under
                     ///< the simulators' overlap pricing the hit's `wait` is latency
                     ///< hidden behind chunk execution — genuinely off the critical
                     ///< path; the thread-backed real executor repositions that work
                     ///< rather than removing it (its RMA has no flight time to hide)
    Reclaim,         ///< lease reclaimed from a dead owner and re-executed by the
                     ///< recording worker (a=start, b=size of the reclaimed chunk;
                     ///< docs/fault-tolerance.md)
};

inline constexpr int kEventKinds = 12;

[[nodiscard]] constexpr std::string_view event_kind_name(EventKind k) noexcept {
    switch (k) {
        case EventKind::GlobalAcquire:
            return "GlobalAcquire";
        case EventKind::LocalPop:
            return "LocalPop";
        case EventKind::RefillBegin:
            return "RefillBegin";
        case EventKind::RefillEnd:
            return "RefillEnd";
        case EventKind::ChunkExecBegin:
            return "ChunkExecBegin";
        case EventKind::ChunkExecEnd:
            return "ChunkExecEnd";
        case EventKind::BarrierWait:
            return "BarrierWait";
        case EventKind::Terminate:
            return "Terminate";
        case EventKind::FeedbackReport:
            return "FeedbackReport";
        case EventKind::Steal:
            return "Steal";
        case EventKind::Prefetch:
            return "Prefetch";
        case EventKind::Reclaim:
            return "Reclaim";
    }
    return "?";
}

/// One recorded event. Kept POD and small: it is the unit the per-worker
/// ring buffers move on the executors' hot path (the `level` and `job`
/// tags fit the existing padding, so the struct stays 56 bytes).
struct Event {
    double t0 = 0.0;        ///< seconds since trace origin (start of the span)
    double t1 = 0.0;        ///< end of the span (== t0 for instant events)
    double wait = 0.0;      ///< lock-grant latency inside the span (LocalPop)
    std::int64_t a = 0;     ///< payload: iteration-range begin / chunk start
    std::int64_t b = 0;     ///< payload: iteration-range end / chunk size
    std::int32_t worker = 0;
    std::int32_t node = 0;
    /// Job the event belongs to: -1 for single-tenant runs, the JobService
    /// job id in merged multi-job traces (see trace::merge_job_traces).
    std::int32_t job = -1;
    EventKind kind{};
    /// Scheduling-hierarchy level the event belongs to: the level of the
    /// queue acquired from (GlobalAcquire/Steal) or popped/refilled
    /// (LocalPop, Refill*). 0 = the root; in the classic two-level tree
    /// GlobalAcquire is level 0 and LocalPop level 1.
    std::int8_t level = 0;

    [[nodiscard]] double duration() const noexcept { return t1 - t0; }
};

}  // namespace hdls::trace
