#include "trace/recorder.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "util/log.hpp"

namespace hdls::trace {

TraceSession::TraceSession(int workers, std::size_t capacity_per_worker, std::int32_t job)
    : epoch_(WorkerTracer::Clock::now()), job_(job) {
    if (workers < 1) {
        throw std::invalid_argument("TraceSession: need at least one worker");
    }
    buffers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        buffers_.push_back(std::make_unique<SpscRingBuffer<Event>>(capacity_per_worker));
    }
}

WorkerTracer TraceSession::tracer(int worker, int node) noexcept {
    if (worker < 0 || worker >= workers()) {
        return WorkerTracer{};
    }
    return WorkerTracer(buffers_[static_cast<std::size_t>(worker)].get(), epoch_, worker, node,
                        job_);
}

Trace TraceSession::merge() {
    Trace trace;
    trace.dropped_per_worker.assign(buffers_.size(), 0);
    std::int64_t total_dropped = 0;
    for (std::size_t w = 0; w < buffers_.size(); ++w) {
        auto events = buffers_[w]->drain();
        trace.events.insert(trace.events.end(), events.begin(), events.end());
        trace.dropped_per_worker[w] = static_cast<std::int64_t>(buffers_[w]->dropped());
        total_dropped += trace.dropped_per_worker[w];
    }
    if (total_dropped > 0) {
        // The drop counts used to be visible only to callers who went on to
        // run trace::analyze — surface the loss where it happens.
        metrics::rt().trace_ring_dropped->inc(static_cast<std::uint64_t>(total_dropped));
        util::log_warn("trace: ring buffers dropped ", total_dropped,
                       " event(s); the merged trace is incomplete (raise "
                       "HierConfig::trace_capacity to keep them)");
    }
    std::stable_sort(trace.events.begin(), trace.events.end(),
                     [](const Event& x, const Event& y) {
                         return x.t0 != y.t0 ? x.t0 < y.t0 : x.worker < y.worker;
                     });
    // Normalize to the trace origin: t=0 is the earliest recorded event.
    if (!trace.events.empty()) {
        const double origin = trace.events.front().t0;
        for (Event& e : trace.events) {
            e.t0 -= origin;
            e.t1 -= origin;
        }
    }
    return trace;
}

std::shared_ptr<const Trace> TraceSession::finish(TraceMeta meta) {
    Trace merged = merge();
    merged.meta = std::move(meta);
    return std::make_shared<const Trace>(std::move(merged));
}

}  // namespace hdls::trace
