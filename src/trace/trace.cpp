#include "trace/trace.hpp"

#include <algorithm>

namespace hdls::trace {

std::int64_t Trace::dropped() const noexcept {
    std::int64_t total = 0;
    for (const std::int64_t d : dropped_per_worker) {
        total += d;
    }
    return total;
}

std::int64_t Trace::count(EventKind kind) const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(),
                      [kind](const Event& e) { return e.kind == kind; }));
}

std::int64_t Trace::count(EventKind kind, int worker) const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(), [kind, worker](const Event& e) {
            return e.kind == kind && e.worker == worker;
        }));
}

std::int64_t Trace::global_chunks() const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(), [](const Event& e) {
            return e.kind == EventKind::GlobalAcquire && e.b > 0;
        }));
}

double Trace::duration() const noexcept {
    double end = 0.0;
    for (const Event& e : events) {
        end = std::max(end, e.t1);
    }
    return end;
}

std::vector<Event> Trace::worker_events(int worker) const {
    std::vector<Event> out;
    for (const Event& e : events) {
        if (e.worker == worker) {
            out.push_back(e);
        }
    }
    return out;
}

}  // namespace hdls::trace
