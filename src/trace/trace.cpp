#include "trace/trace.hpp"

#include <algorithm>

namespace hdls::trace {

std::int64_t Trace::dropped() const noexcept {
    std::int64_t total = 0;
    for (const std::int64_t d : dropped_per_worker) {
        total += d;
    }
    return total;
}

std::int64_t Trace::count(EventKind kind) const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(),
                      [kind](const Event& e) { return e.kind == kind; }));
}

std::int64_t Trace::count(EventKind kind, int worker) const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(), [kind, worker](const Event& e) {
            return e.kind == kind && e.worker == worker;
        }));
}

std::int64_t Trace::global_chunks() const noexcept {
    return static_cast<std::int64_t>(
        std::count_if(events.begin(), events.end(), [](const Event& e) {
            return e.kind == EventKind::GlobalAcquire && e.b > 0;
        }));
}

double Trace::duration() const noexcept {
    double end = 0.0;
    for (const Event& e : events) {
        end = std::max(end, e.t1);
    }
    return end;
}

std::vector<Event> Trace::worker_events(int worker) const {
    std::vector<Event> out;
    for (const Event& e : events) {
        if (e.worker == worker) {
            out.push_back(e);
        }
    }
    return out;
}

std::vector<Event> Trace::job_events(int job) const {
    std::vector<Event> out;
    for (const Event& e : events) {
        if (e.job == job || (job < 0 && e.job < 0)) {
            out.push_back(e);
        }
    }
    return out;
}

Trace merge_job_traces(const std::vector<JobTraceInput>& inputs) {
    Trace merged;
    std::size_t max_workers = 0;
    for (const JobTraceInput& in : inputs) {
        if (in.trace == nullptr) {
            continue;
        }
        if (merged.meta.approach.empty()) {
            merged.meta = in.trace->meta;
            merged.meta.job = -1;
            merged.meta.job_name.clear();
            merged.meta.jobs.clear();
        }
        merged.meta.jobs.emplace_back(in.job, in.name);
        for (Event e : in.trace->events) {
            e.job = in.job;
            e.t0 += in.t_offset;
            e.t1 += in.t_offset;
            merged.events.push_back(e);
        }
        max_workers = std::max(max_workers, in.trace->dropped_per_worker.size());
    }
    merged.dropped_per_worker.assign(max_workers, 0);
    for (const JobTraceInput& in : inputs) {
        if (in.trace == nullptr) {
            continue;
        }
        for (std::size_t w = 0; w < in.trace->dropped_per_worker.size(); ++w) {
            merged.dropped_per_worker[w] += in.trace->dropped_per_worker[w];
        }
    }
    std::stable_sort(merged.events.begin(), merged.events.end(),
                     [](const Event& x, const Event& y) {
                         return x.t0 != y.t0 ? x.t0 < y.t0 : x.worker < y.worker;
                     });
    if (!merged.events.empty()) {
        const double origin = merged.events.front().t0;
        for (Event& e : merged.events) {
            e.t0 -= origin;
            e.t1 -= origin;
        }
    }
    return merged;
}

}  // namespace hdls::trace
