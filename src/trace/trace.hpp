#pragma once
/// \file trace.hpp
/// The merged, immutable result of one traced run.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace hdls::trace {

/// What was traced — filled by whoever owns the run (runner, simulator,
/// bench) so exporters can label the output.
struct TraceMeta {
    std::string approach;  ///< "MPI+MPI", "MPI+OpenMP", sim model name, ...
    std::string inter;     ///< inter-node technique name
    std::string intra;     ///< intra-node technique name
    int nodes = 0;
    int workers_per_node = 0;
    std::int64_t total_iterations = 0;
};

/// Merged trace: events of every worker, sorted by (t0, worker) and
/// normalized so the earliest event starts at t=0.
class Trace {
public:
    TraceMeta meta;
    std::vector<Event> events;                    ///< sorted by (t0, worker)
    std::vector<std::int64_t> dropped_per_worker; ///< ring-buffer overflow counts

    [[nodiscard]] int workers() const noexcept {
        return static_cast<int>(dropped_per_worker.size());
    }

    /// Total events the ring buffers had to discard (0 = complete trace).
    [[nodiscard]] std::int64_t dropped() const noexcept;

    /// Number of events of one kind.
    [[nodiscard]] std::int64_t count(EventKind kind) const noexcept;

    /// Number of events of one kind recorded by one worker.
    [[nodiscard]] std::int64_t count(EventKind kind, int worker) const noexcept;

    /// Successful global-queue acquisitions (GlobalAcquire with size > 0).
    [[nodiscard]] std::int64_t global_chunks() const noexcept;

    /// End of the last event (the traced makespan).
    [[nodiscard]] double duration() const noexcept;

    /// Events of one worker, in time order.
    [[nodiscard]] std::vector<Event> worker_events(int worker) const;
};

}  // namespace hdls::trace
