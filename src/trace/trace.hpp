#pragma once
/// \file trace.hpp
/// The merged, immutable result of one traced run.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace hdls::trace {

/// What was traced — filled by whoever owns the run (runner, simulator,
/// bench) so exporters can label the output.
struct TraceMeta {
    std::string approach;  ///< "MPI+MPI", "MPI+OpenMP", sim model name, ...
    std::string inter;     ///< inter-node technique name
    std::string intra;     ///< intra-node technique name
    int nodes = 0;
    int workers_per_node = 0;
    std::int64_t total_iterations = 0;
    /// Job identity when this trace belongs to one JobService job
    /// (-1 / "" for classic single-tenant runs).
    int job = -1;
    std::string job_name;
    /// For multi-job traces built by merge_job_traces: the ids and names
    /// of every job present, in merge order. Exporters switch to per-job
    /// grouping when this is non-empty.
    std::vector<std::pair<int, std::string>> jobs;
};

/// Merged trace: events of every worker, sorted by (t0, worker) and
/// normalized so the earliest event starts at t=0.
class Trace {
public:
    TraceMeta meta;
    std::vector<Event> events;                    ///< sorted by (t0, worker)
    std::vector<std::int64_t> dropped_per_worker; ///< ring-buffer overflow counts

    [[nodiscard]] int workers() const noexcept {
        return static_cast<int>(dropped_per_worker.size());
    }

    /// Total events the ring buffers had to discard (0 = complete trace).
    [[nodiscard]] std::int64_t dropped() const noexcept;

    /// Number of events of one kind.
    [[nodiscard]] std::int64_t count(EventKind kind) const noexcept;

    /// Number of events of one kind recorded by one worker.
    [[nodiscard]] std::int64_t count(EventKind kind, int worker) const noexcept;

    /// Successful global-queue acquisitions (GlobalAcquire with size > 0).
    [[nodiscard]] std::int64_t global_chunks() const noexcept;

    /// End of the last event (the traced makespan).
    [[nodiscard]] double duration() const noexcept;

    /// Events of one worker, in time order.
    [[nodiscard]] std::vector<Event> worker_events(int worker) const;

    /// Events of one job, in time order (job < 0 selects untagged events).
    [[nodiscard]] std::vector<Event> job_events(int job) const;
};

/// One per-job trace feeding a multi-job merge. `t_offset` realigns the
/// job's private origin (each TraceSession normalizes t=0 to its own
/// earliest event) onto a shared service clock — typically the job's run
/// start measured from the service epoch.
struct JobTraceInput {
    int job = 0;
    std::string name;
    const Trace* trace = nullptr;
    double t_offset = 0.0;
};

/// Merges per-job traces into one multi-job timeline: every event is
/// stamped with its job id, shifted by its job's offset, the union is
/// re-sorted and re-normalized to the earliest event, and meta.jobs lists
/// the jobs present (meta.approach/... are taken from the first input).
/// Worker ids are kept as-is — concurrent jobs share the physical worker
/// slots, so lane w shows every job's activity on that slot; use
/// Event::job (or analyze()'s per-job breakdown) to disentangle them.
[[nodiscard]] Trace merge_job_traces(const std::vector<JobTraceInput>& inputs);

}  // namespace hdls::trace
