#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "util/table.hpp"

namespace hdls::trace {

namespace {

/// Pairs ChunkExecBegin/ChunkExecEnd per worker. Executors emit them
/// strictly nested and in order, so the last unmatched Begin matches the
/// next End of the same worker.
struct ExecPairing {
    double begin_time = 0.0;
    bool open = false;
};

}  // namespace

TraceAnalysis analyze(const Trace& trace) {
    TraceAnalysis out;
    std::map<int, std::size_t> index_of;  // worker id -> index in out.workers
    // Exec pairing is keyed by (worker, job): in a merged multi-job trace
    // the same worker-slot lane carries several jobs' Begin/End streams,
    // which interleave in time but stay strictly nested *within* a job.
    std::map<std::pair<int, int>, ExecPairing> pending;
    std::vector<double> lock_waits;

    std::map<int, JobBreakdown> jobs;
    std::map<int, std::set<int>> job_workers;
    const auto job_slot = [&](const Event& e) -> JobBreakdown* {
        if (e.job < 0) {
            return nullptr;
        }
        const auto [it, inserted] = jobs.try_emplace(e.job);
        JobBreakdown& jb = it->second;
        if (inserted) {
            jb.job = e.job;
            jb.first_event = e.t0;
        }
        jb.first_event = std::min(jb.first_event, e.t0);
        jb.last_event = std::max(jb.last_event, e.t1);
        job_workers[e.job].insert(e.worker);
        return &jb;
    };

    std::map<int, LevelOverhead> levels;
    const auto level_slot = [&](const Event& e) -> LevelOverhead& {
        LevelOverhead& lo = levels[e.level];
        lo.level = e.level;
        return lo;
    };

    const auto slot = [&](const Event& e) -> WorkerBreakdown& {
        const auto [it, inserted] = index_of.try_emplace(e.worker, out.workers.size());
        if (inserted) {
            WorkerBreakdown wb;
            wb.worker = e.worker;
            wb.node = e.node;
            out.workers.push_back(wb);
        }
        return out.workers[it->second];
    };

    for (const Event& e : trace.events) {
        WorkerBreakdown& w = slot(e);
        ExecPairing& pair = pending[{e.worker, e.job}];
        JobBreakdown* const jb = job_slot(e);
        w.finish = std::max(w.finish, e.t1);
        switch (e.kind) {
            case EventKind::GlobalAcquire:
            case EventKind::Steal: {
                w.sched_overhead += e.duration();
                if (jb != nullptr) {
                    jb->sched_overhead += e.duration();
                }
                LevelOverhead& lo = level_slot(e);
                lo.acquire_seconds += e.duration();
                if (e.b > 0) {
                    ++w.global_chunks;
                    ++lo.acquires;
                    if (e.kind == EventKind::Steal) {
                        ++lo.steals;
                    }
                }
                break;
            }
            case EventKind::LocalPop: {
                w.sched_overhead += e.duration();
                w.lock_wait += e.wait;
                if (jb != nullptr) {
                    jb->sched_overhead += e.duration();
                    jb->lock_wait += e.wait;
                }
                lock_waits.push_back(e.wait);
                LevelOverhead& lo = level_slot(e);
                lo.pop_seconds += e.duration();
                lo.lock_wait_seconds += e.wait;
                if (e.a >= 0) {  // empty probes record a == b == -1
                    ++lo.pops;
                }
                break;
            }
            case EventKind::ChunkExecBegin:
                pair.begin_time = e.t0;
                pair.open = true;
                break;
            case EventKind::ChunkExecEnd:
                if (pair.open) {
                    w.compute += e.t1 - pair.begin_time;
                    if (jb != nullptr) {
                        jb->compute += e.t1 - pair.begin_time;
                    }
                    pair.open = false;
                } // an unmatched End (Begin dropped on overflow) adds nothing
                ++w.chunks;
                w.iterations += e.b - e.a;
                if (jb != nullptr) {
                    ++jb->chunks;
                    jb->iterations += e.b - e.a;
                }
                break;
            case EventKind::BarrierWait:
                w.barrier_wait += e.duration();
                if (jb != nullptr) {
                    jb->barrier_wait += e.duration();
                }
                break;
            case EventKind::Prefetch:
                if (e.a != 0) {
                    ++out.prefetch_hits;
                } else {
                    ++out.prefetch_misses;
                }
                out.prefetch_hidden_seconds += e.wait;
                break;
            case EventKind::Reclaim:
                out.reclaimed.emplace_back(e.a, e.b);
                out.reclaimed_iterations += e.b;
                break;
            case EventKind::RefillBegin:
            case EventKind::RefillEnd:
            case EventKind::Terminate:
            case EventKind::FeedbackReport:
                break;  // markers: no time attributed
        }
    }

    std::sort(out.workers.begin(), out.workers.end(),
              [](const WorkerBreakdown& x, const WorkerBreakdown& y) {
                  return x.worker < y.worker;
              });

    util::OnlineStats finish;
    for (const WorkerBreakdown& w : out.workers) {
        finish.add(w.finish);
        out.total_compute += w.compute;
        out.total_sched_overhead += w.sched_overhead;
        out.total_lock_wait += w.lock_wait;
        out.total_barrier_wait += w.barrier_wait;
    }
    out.max_finish = finish.max();
    out.mean_finish = finish.mean();
    out.makespan = finish.max();
    out.finish_cov = finish.cov();
    if (out.mean_finish > 0.0) {
        out.max_over_mean = out.max_finish / out.mean_finish;
        out.percent_imbalance = (out.max_over_mean - 1.0) * 100.0;
    }
    out.lock_wait_stats = util::summarize(lock_waits);
    out.levels.reserve(levels.size());
    for (const auto& [level, lo] : levels) {
        out.levels.push_back(lo);  // std::map iterates in level order
    }
    out.jobs.reserve(jobs.size());
    for (auto& [id, jb] : jobs) {  // std::map iterates in job-id order
        jb.workers = static_cast<int>(job_workers[id].size());
        for (const auto& [jid, name] : trace.meta.jobs) {
            if (jid == id) {
                jb.name = name;
                break;
            }
        }
        out.jobs.push_back(std::move(jb));
    }
    return out;
}

double TraceAnalysis::overhead_fraction() const noexcept {
    const double accounted = total_compute + total_sched_overhead + total_barrier_wait;
    return accounted > 0.0 ? total_sched_overhead / accounted : 0.0;
}

void TraceAnalysis::print(std::ostream& os) const {
    util::TextTable table({"worker", "node", "compute (ms)", "overhead (ms)", "lock wait (ms)",
                           "barrier wait (ms)", "finish (ms)", "chunks", "iterations"});
    for (const WorkerBreakdown& w : workers) {
        table.add_row({std::to_string(w.worker), std::to_string(w.node),
                       util::format_double(w.compute * 1e3, 3),
                       util::format_double(w.sched_overhead * 1e3, 3),
                       util::format_double(w.lock_wait * 1e3, 3),
                       util::format_double(w.barrier_wait * 1e3, 3),
                       util::format_double(w.finish * 1e3, 3), std::to_string(w.chunks),
                       std::to_string(w.iterations)});
    }
    table.print(os);
    if (!levels.empty()) {
        util::TextTable per_level({"level", "acquire (ms)", "acquires", "steals",
                                   "mean acquire", "pop (ms)", "pops", "lock wait (ms)"});
        for (const LevelOverhead& lo : levels) {
            per_level.add_row({std::to_string(lo.level),
                               util::format_double(lo.acquire_seconds * 1e3, 3),
                               std::to_string(lo.acquires), std::to_string(lo.steals),
                               util::format_seconds(lo.mean_acquire_seconds()),
                               util::format_double(lo.pop_seconds * 1e3, 3),
                               std::to_string(lo.pops),
                               util::format_double(lo.lock_wait_seconds * 1e3, 3)});
        }
        os << "per-level scheduling overhead (level 0 = root):\n";
        per_level.print(os);
    }
    if (!jobs.empty()) {
        util::TextTable per_job({"job", "name", "workers", "span (ms)", "compute (ms)",
                                 "overhead (ms)", "barrier wait (ms)", "chunks",
                                 "iterations"});
        for (const JobBreakdown& j : jobs) {
            per_job.add_row({std::to_string(j.job), j.name.empty() ? "-" : j.name,
                             std::to_string(j.workers),
                             util::format_double(j.span() * 1e3, 3),
                             util::format_double(j.compute * 1e3, 3),
                             util::format_double(j.sched_overhead * 1e3, 3),
                             util::format_double(j.barrier_wait * 1e3, 3),
                             std::to_string(j.chunks), std::to_string(j.iterations)});
        }
        os << "per-job breakdown (multi-tenant trace):\n";
        per_job.print(os);
    }
    if (!reclaimed.empty()) {
        os << "reclaimed: " << reclaimed.size() << " chunk(s), " << reclaimed_iterations
           << " iteration(s) re-executed after owner failure:";
        for (const auto& [start, size] : reclaimed) {
            os << " [" << start << "," << start + size << ")";
        }
        os << "\n";
    }
    if (prefetch_hits + prefetch_misses > 0) {
        os << "prefetch: " << prefetch_hits << " hits / " << prefetch_misses << " misses ("
           << util::format_double(prefetch_hit_rate() * 100.0, 1) << "% hit rate), "
           << util::format_seconds(prefetch_hidden_seconds)
           << " of acquisition prefetched ahead of demand\n";
    }
    os << "makespan: " << util::format_seconds(makespan)
       << "  imbalance: " << util::format_double(percent_imbalance, 2) << "%"
       << "  finish CoV: " << util::format_double(finish_cov, 4)
       << "  overhead share: " << util::format_double(overhead_fraction() * 100.0, 2) << "%\n"
       << "lock wait: mean " << util::format_seconds(lock_wait_stats.mean) << "  p99 "
       << util::format_seconds(lock_wait_stats.p99) << "  max "
       << util::format_seconds(lock_wait_stats.max) << "  (" << lock_wait_stats.count
       << " epochs)\n";
}

}  // namespace hdls::trace
