#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace hdls::trace {

namespace {

/// JSON string escaping (the strings here are technique/approach names,
/// but stay correct for arbitrary content).
[[nodiscard]] std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

[[nodiscard]] std::string json_number(double v) {
    if (!std::isfinite(v)) {
        return "0";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

[[nodiscard]] double us(double seconds) { return seconds * 1e6; }

/// Full-precision compact rendering for second-valued CSV columns
/// (json_number's fixed %.3f is sized for microsecond Chrome values and
/// would quantize seconds to 1 ms).
[[nodiscard]] std::string csv_number(double v) {
    if (!std::isfinite(v)) {
        return "0";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

void export_chrome_json(const Trace& trace, std::ostream& os) {
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"approach\":\"" << json_escape(trace.meta.approach) << "\","
       << "\"inter\":\"" << json_escape(trace.meta.inter) << "\","
       << "\"intra\":\"" << json_escape(trace.meta.intra) << "\","
       << "\"nodes\":" << trace.meta.nodes << ","
       << "\"workers_per_node\":" << trace.meta.workers_per_node << ","
       << "\"total_iterations\":" << trace.meta.total_iterations << ","
       << "\"dropped_events\":" << trace.dropped() << "},\"traceEvents\":[";

    bool first = true;
    const auto emit = [&](const std::string& entry) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << entry;
    };

    // Multi-job (JobService) traces group by job: each job becomes a
    // Chrome "process" so one job's lanes sit together and carry its name;
    // classic single-tenant traces keep pid = node.
    const bool by_job = !trace.meta.jobs.empty();
    const auto pid_of = [&](const Event& e) { return by_job ? e.job : e.node; };
    if (by_job) {
        for (const auto& [job, name] : trace.meta.jobs) {
            emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(job) +
                 ",\"args\":{\"name\":\"job " + std::to_string(job) +
                 (name.empty() ? std::string{} : ": " + json_escape(name)) + "\"}}");
        }
    }

    // Thread-name metadata: label every worker lane.
    std::map<std::pair<int, int>, bool> seen;
    for (const Event& e : trace.events) {
        if (seen.emplace(std::pair{pid_of(e), e.worker}, true).second) {
            emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid_of(e)) +
                 ",\"tid\":" + std::to_string(e.worker) +
                 ",\"args\":{\"name\":\"worker " + std::to_string(e.worker) + "\"}}");
        }
    }

    for (const Event& e : trace.events) {
        const std::string common = "\"pid\":" + std::to_string(pid_of(e)) +
                                   ",\"tid\":" + std::to_string(e.worker) +
                                   ",\"ts\":" + json_number(us(e.t0));
        // Every tagged event names its job in args so job identity
        // survives re-grouping in the viewer.
        const std::string job_arg =
            e.job >= 0 ? ",\"job\":" + std::to_string(e.job) : std::string{};
        switch (e.kind) {
            case EventKind::GlobalAcquire:
                emit("{\"name\":\"GlobalAcquire\",\"ph\":\"X\"," + common +
                     ",\"dur\":" + json_number(us(e.duration())) +
                     ",\"args\":{\"start\":" + std::to_string(e.a) +
                     ",\"size\":" + std::to_string(e.b) +
                     ",\"level\":" + std::to_string(e.level) + job_arg + "}}");
                break;
            case EventKind::LocalPop:
                emit("{\"name\":\"LocalPop\",\"ph\":\"X\"," + common +
                     ",\"dur\":" + json_number(us(e.duration())) +
                     ",\"args\":{\"begin\":" + std::to_string(e.a) +
                     ",\"end\":" + std::to_string(e.b) +
                     ",\"lock_wait_us\":" + json_number(us(e.wait)) +
                     ",\"level\":" + std::to_string(e.level) + job_arg + "}}");
                break;
            case EventKind::BarrierWait:
                emit("{\"name\":\"BarrierWait\",\"ph\":\"X\"," + common +
                     ",\"dur\":" + json_number(us(e.duration())) + "}");
                break;
            case EventKind::ChunkExecBegin:
                emit("{\"name\":\"ChunkExec\",\"ph\":\"B\"," + common +
                     ",\"args\":{\"begin\":" + std::to_string(e.a) +
                     ",\"end\":" + std::to_string(e.b) + job_arg + "}}");
                break;
            case EventKind::ChunkExecEnd:
                emit("{\"name\":\"ChunkExec\",\"ph\":\"E\"," + common + "}");
                break;
            case EventKind::RefillBegin:
                emit("{\"name\":\"Refill\",\"ph\":\"B\"," + common + "}");
                break;
            case EventKind::RefillEnd:
                emit("{\"name\":\"Refill\",\"ph\":\"E\"," + common +
                     ",\"args\":{\"start\":" + std::to_string(e.a) +
                     ",\"size\":" + std::to_string(e.b) + "}}");
                break;
            case EventKind::Terminate:
                emit("{\"name\":\"Terminate\",\"ph\":\"i\",\"s\":\"t\"," + common + "}");
                break;
            case EventKind::FeedbackReport:
                emit("{\"name\":\"FeedbackReport\",\"ph\":\"i\",\"s\":\"t\"," + common +
                     ",\"args\":{\"iterations\":" + std::to_string(e.a) +
                     ",\"time_ns\":" + std::to_string(e.b) + "}}");
                break;
            case EventKind::Steal:
                emit("{\"name\":\"Steal\",\"ph\":\"X\"," + common +
                     ",\"dur\":" + json_number(us(e.duration())) +
                     ",\"args\":{\"start\":" + std::to_string(e.a) +
                     ",\"size\":" + std::to_string(e.b) +
                     ",\"level\":" + std::to_string(e.level) + "}}");
                break;
            case EventKind::Prefetch:
                emit("{\"name\":\"Prefetch\",\"ph\":\"i\",\"s\":\"t\"," + common +
                     ",\"args\":{\"hit\":" + std::to_string(e.a) +
                     ",\"start\":" + std::to_string(e.b) +
                     ",\"hidden_us\":" + json_number(us(e.wait)) +
                     ",\"level\":" + std::to_string(e.level) + "}}");
                break;
            case EventKind::Reclaim:
                emit("{\"name\":\"Reclaim\",\"ph\":\"i\",\"s\":\"t\"," + common +
                     ",\"args\":{\"start\":" + std::to_string(e.a) +
                     ",\"size\":" + std::to_string(e.b) + "}}");
                break;
        }
    }
    os << "\n]}\n";
}

void export_csv(const Trace& trace, std::ostream& os) {
    os << "kind,worker,node,level,job,t0,t1,wait,a,b\n";
    for (const Event& e : trace.events) {
        os << event_kind_name(e.kind) << "," << e.worker << "," << e.node << ","
           << static_cast<int>(e.level) << "," << e.job << "," << csv_number(e.t0) << ","
           << csv_number(e.t1) << "," << csv_number(e.wait) << "," << e.a << "," << e.b << "\n";
    }
}

void ascii_gantt(const Trace& trace, std::ostream& os, int width) {
    width = std::max(width, 10);
    const double span = trace.duration();
    if (trace.events.empty() || span <= 0.0) {
        os << "(empty trace)\n";
        return;
    }

    // Collect worker ids in order.
    std::vector<int> workers;
    for (const Event& e : trace.events) {
        if (std::find(workers.begin(), workers.end(), e.worker) == workers.end()) {
            workers.push_back(e.worker);
        }
    }
    std::sort(workers.begin(), workers.end());

    const double col_w = span / width;
    const auto col_of = [&](double t) {
        return std::clamp(static_cast<int>(t / col_w), 0, width - 1);
    };
    // Painting priority: exec over overhead over wait over idle.
    const auto paint = [&](std::string& row, double t0, double t1, char c) {
        const auto rank = [](char ch) {
            switch (ch) {
                case '#':
                    return 3;
                case '+':
                    return 2;
                case '.':
                    return 1;
                default:
                    return 0;
            }
        };
        for (int col = col_of(t0); col <= col_of(std::max(t0, t1 - 1e-12)); ++col) {
            if (rank(c) > rank(row[static_cast<std::size_t>(col)])) {
                row[static_cast<std::size_t>(col)] = c;
            }
        }
    };

    for (const int worker : workers) {
        std::string row(static_cast<std::size_t>(width), ' ');
        double exec_begin = -1.0;
        for (const Event& e : trace.events) {
            if (e.worker != worker) {
                continue;
            }
            switch (e.kind) {
                case EventKind::GlobalAcquire:
                case EventKind::Steal:
                case EventKind::LocalPop:
                    paint(row, e.t0, e.t1, '+');
                    break;
                case EventKind::BarrierWait:
                    paint(row, e.t0, e.t1, '.');
                    break;
                case EventKind::ChunkExecBegin:
                    exec_begin = e.t0;
                    break;
                case EventKind::ChunkExecEnd:
                    if (exec_begin >= 0.0) {
                        paint(row, exec_begin, e.t1, '#');
                        exec_begin = -1.0;
                    }
                    break;
                default:
                    break;
            }
        }
        char label[16];
        std::snprintf(label, sizeof(label), "w%-3d |", worker);
        os << label << row << "|\n";
    }
    os << "      0" << std::string(static_cast<std::size_t>(std::max(0, width - 1)), ' ')
       << "t=" << json_number(span * 1e3) << "ms\n"
       << "      '#' compute  '+' scheduling overhead  '.' wait  ' ' idle\n";
}

}  // namespace hdls::trace
