#pragma once
/// \file ring_buffer.hpp
/// Fixed-capacity lock-free SPSC ring buffer.
///
/// One producer (the traced worker thread) and one consumer (the post-run
/// merge) — the classic single-producer/single-consumer discipline, so
/// both sides progress with one relaxed load and one release store per
/// operation and never block. When the buffer is full the producer *drops*
/// the event and counts the drop instead of waiting: tracing must never
/// perturb the schedule it observes. The drop count is carried into the
/// merged Trace so analyses can flag truncated workers.

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace hdls::trace {

template <typename T>
class SpscRingBuffer {
public:
    /// Capacity is rounded up to a power of two (index masking instead of
    /// modulo on the hot path); at least 2.
    explicit SpscRingBuffer(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity) {
            cap <<= 1;
        }
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRingBuffer(const SpscRingBuffer&) = delete;
    SpscRingBuffer& operator=(const SpscRingBuffer&) = delete;

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

    /// Producer side. Returns false (and counts a drop) when full.
    bool try_push(const T& value) noexcept {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[tail & mask_] = value;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side.
    std::optional<T> try_pop() noexcept {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) {
            return std::nullopt;
        }
        T value = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return value;
    }

    /// Consumer side: pops everything currently visible.
    [[nodiscard]] std::vector<T> drain() {
        std::vector<T> out;
        out.reserve(size());
        while (auto v = try_pop()) {
            out.push_back(*v);
        }
        return out;
    }

    /// Events currently buffered (consumer-side estimate).
    [[nodiscard]] std::size_t size() const noexcept {
        return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
    }

    /// Events the producer had to discard because the buffer was full.
    [[nodiscard]] std::size_t dropped() const noexcept {
        return dropped_.load(std::memory_order_acquire);
    }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
    std::atomic<std::size_t> dropped_{0};
};

}  // namespace hdls::trace
