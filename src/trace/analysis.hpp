#pragma once
/// \file analysis.hpp
/// Derives the paper's diagnostics from a merged trace: the per-worker
/// scheduling-overhead vs. compute decomposition behind Figures 2/3, the
/// load-imbalance metrics of the DLS literature, and the lock-contention
/// distribution (time between lock request and grant) that explains the
/// intra-node SS behaviour under MPI+MPI.

#include <cstdint>
#include <ostream>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace hdls::trace {

/// Per-worker time decomposition derived purely from events.
struct WorkerBreakdown {
    int worker = 0;
    int node = 0;
    double compute = 0.0;         ///< inside the loop body (ChunkExec pairs)
    double sched_overhead = 0.0;  ///< GlobalAcquire + LocalPop epochs
    double lock_wait = 0.0;       ///< part of sched_overhead: lock request -> grant
    double barrier_wait = 0.0;    ///< BarrierWait spans (idle / sync)
    double finish = 0.0;          ///< end of the worker's last event
    std::int64_t chunks = 0;      ///< executed sub-chunks (ChunkExecEnd count)
    std::int64_t iterations = 0;  ///< iterations covered by executed sub-chunks
    std::int64_t global_chunks = 0;  ///< successful GlobalAcquire count
};

/// Per-hierarchy-level scheduling-overhead decomposition: where the
/// acquire time goes in a deep topology tree (level 0 = the root). An
/// acquire/steal event contributes to the level it pulled *from*; a pop or
/// refill contributes to the level of the queue it touched.
struct LevelOverhead {
    int level = 0;
    double acquire_seconds = 0.0;   ///< GlobalAcquire + Steal epochs at this level
    std::int64_t acquires = 0;      ///< successful acquisitions (size > 0)
    std::int64_t steals = 0;        ///< the subset carved from a peer's share
    double pop_seconds = 0.0;       ///< LocalPop epochs on this level's queue
    std::int64_t pops = 0;          ///< successful pops (non-empty)
    double lock_wait_seconds = 0.0; ///< lock-grant latency inside those pops

    /// Mean duration of one successful acquisition at this level.
    [[nodiscard]] double mean_acquire_seconds() const noexcept {
        return acquires > 0 ? acquire_seconds / static_cast<double>(acquires) : 0.0;
    }
};

/// Per-job time decomposition of a multi-job (JobService) trace: the same
/// compute/overhead/wait split as WorkerBreakdown, aggregated over every
/// event carrying one job id, plus the job's observed span — so one job's
/// imbalance or queueing is never blamed on its neighbours.
struct JobBreakdown {
    int job = -1;
    std::string name;             ///< from meta.jobs when available
    double first_event = 0.0;     ///< earliest event start (trace clock)
    double last_event = 0.0;      ///< latest event end
    double compute = 0.0;
    double sched_overhead = 0.0;
    double lock_wait = 0.0;
    double barrier_wait = 0.0;
    std::int64_t chunks = 0;
    std::int64_t iterations = 0;
    int workers = 0;              ///< distinct worker slots that served the job

    /// The job's wall-clock footprint on the shared timeline.
    [[nodiscard]] double span() const noexcept { return last_event - first_event; }
};

/// Whole-run diagnostics.
struct TraceAnalysis {
    std::vector<WorkerBreakdown> workers;

    /// Per-job breakdown, sorted by job id. Empty for single-tenant
    /// traces (no event carries a job tag).
    std::vector<JobBreakdown> jobs;

    /// Per-level overhead breakdown, sorted by level (empty for traces
    /// with no scheduling events).
    std::vector<LevelOverhead> levels;

    double makespan = 0.0;      ///< max worker finish (the paper's metric)
    double mean_finish = 0.0;
    double max_finish = 0.0;
    /// Percent load imbalance lambda = (max/mean - 1) * 100 of worker
    /// finish times (0 = perfectly balanced).
    double percent_imbalance = 0.0;
    /// Coefficient of variation of worker finish times.
    double finish_cov = 0.0;
    /// max/mean finish ratio (1 = perfectly balanced).
    double max_over_mean = 0.0;

    double total_compute = 0.0;
    double total_sched_overhead = 0.0;
    double total_lock_wait = 0.0;
    double total_barrier_wait = 0.0;

    /// Asynchronous-prefetch accounting (zero for runs without prefetch):
    /// acquisitions served from the prefetch slot vs. ones that fell back
    /// to the on-demand path, and the acquisition seconds spent filling
    /// slots ahead of demand. In *simulator* traces that time is priced
    /// off the critical path (hidden behind chunk execution — the overlap
    /// model); in thread-backed real-executor traces it is repositioned
    /// work, not removed work, since the runtime's RMA has no flight time
    /// to hide — there the number says how much acquisition a real fabric
    /// could overlap, not what this run saved.
    std::int64_t prefetch_hits = 0;
    std::int64_t prefetch_misses = 0;
    double prefetch_hidden_seconds = 0.0;

    /// Fraction of acquisitions served from the prefetch slot.
    [[nodiscard]] double prefetch_hit_rate() const noexcept {
        const std::int64_t total = prefetch_hits + prefetch_misses;
        return total > 0 ? static_cast<double>(prefetch_hits) / static_cast<double>(total)
                         : 0.0;
    }

    /// Chunks reclaimed from dead owners and re-executed by survivors
    /// (Reclaim events), as [start, start+size) ranges in recording order.
    /// Empty for runs without failures — the fault-tolerance accounting of
    /// docs/fault-tolerance.md.
    std::vector<std::pair<std::int64_t, std::int64_t>> reclaimed;
    std::int64_t reclaimed_iterations = 0;

    /// Distribution of per-epoch lock-grant latencies (every LocalPop's
    /// request->grant wait), the contended-handoff cost of ref [38].
    util::Summary lock_wait_stats;

    /// Scheduling overhead as a fraction of total accounted worker time.
    [[nodiscard]] double overhead_fraction() const noexcept;

    /// Compact human-readable rendering (one row per worker + totals).
    void print(std::ostream& os) const;
};

/// Runs the full analysis over a merged trace.
[[nodiscard]] TraceAnalysis analyze(const Trace& trace);

}  // namespace hdls::trace
