#include "apps/synthetic.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace hdls::apps {

std::vector<double> make_workload(const WorkloadSpec& spec) {
    if (spec.mean_seconds <= 0.0) {
        throw std::invalid_argument("make_workload: mean_seconds must be > 0");
    }
    if (spec.cov < 0.0) {
        throw std::invalid_argument("make_workload: cov must be >= 0");
    }
    std::vector<double> costs(spec.iterations);
    util::Xoshiro256 rng(spec.seed);
    const double floor_cost = spec.mean_seconds / 100.0;
    switch (spec.kind) {
        case WorkloadKind::Constant:
            std::fill(costs.begin(), costs.end(), spec.mean_seconds);
            break;
        case WorkloadKind::Uniform: {
            // U(a,b) has CoV = (b-a)/((a+b)*sqrt(3)); center at mean with
            // half-width s*mean, s = sqrt(3)*cov (clamped to keep costs > 0).
            const double s = std::min(std::sqrt(3.0) * spec.cov, 0.99);
            for (auto& c : costs) {
                c = spec.mean_seconds * rng.uniform(1.0 - s, 1.0 + s);
            }
            break;
        }
        case WorkloadKind::Gaussian:
            for (auto& c : costs) {
                c = std::max(rng.normal(spec.mean_seconds, spec.cov * spec.mean_seconds),
                             floor_cost);
            }
            break;
        case WorkloadKind::Exponential:
            for (auto& c : costs) {
                c = std::max(rng.exponential(spec.mean_seconds), floor_cost);
            }
            break;
        case WorkloadKind::Bimodal: {
            // Fraction f of iterations cost 10x the cheap cost; f derived
            // from the cov knob (f in (0, 0.5]); mean preserved.
            const double f = std::clamp(spec.cov * spec.cov / (spec.cov * spec.cov + 9.0 / 4.0),
                                        0.01, 0.5);
            const double cheap = spec.mean_seconds / (1.0 + 9.0 * f);
            for (auto& c : costs) {
                c = rng.uniform01() < f ? 10.0 * cheap : cheap;
            }
            break;
        }
        case WorkloadKind::IncreasingRamp:
            for (std::size_t i = 0; i < costs.size(); ++i) {
                const double t =
                    costs.size() > 1 ? static_cast<double>(i) / (costs.size() - 1) : 0.0;
                costs[i] = spec.mean_seconds * (0.1 + 1.8 * t);
            }
            break;
        case WorkloadKind::DecreasingRamp:
            for (std::size_t i = 0; i < costs.size(); ++i) {
                const double t =
                    costs.size() > 1 ? static_cast<double>(i) / (costs.size() - 1) : 0.0;
                costs[i] = spec.mean_seconds * (1.9 - 1.8 * t);
            }
            break;
    }
    return costs;
}

double burner_rounds_per_second() {
    // One calibration per (thread, backend): threads pinned to different
    // cores (or forced to different backends) each get their own honest
    // rate, which is exactly the heterogeneity the AWF feedback loop sees.
    thread_local double rate[3] = {0.0, 0.0, 0.0};
    const auto idx = static_cast<std::size_t>(simd::active_backend());
    if (rate[idx] > 0.0) {
        return rate[idx];
    }
    std::int64_t rounds = 1 << 14;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        simd::run_burn(rounds);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        if (elapsed >= 1e-3) {
            rate[idx] = static_cast<double>(rounds) / elapsed;
            return rate[idx];
        }
        rounds *= 2;
    }
}

double burn_seconds(double seconds) noexcept {
    if (seconds <= 0.0) {
        return 0.0;
    }
    const double rounds = seconds * burner_rounds_per_second();
    return simd::run_burn(std::max<std::int64_t>(static_cast<std::int64_t>(rounds), 1));
}

std::string_view workload_name(WorkloadKind k) noexcept {
    switch (k) {
        case WorkloadKind::Constant:
            return "constant";
        case WorkloadKind::Uniform:
            return "uniform";
        case WorkloadKind::Gaussian:
            return "gaussian";
        case WorkloadKind::Exponential:
            return "exponential";
        case WorkloadKind::Bimodal:
            return "bimodal";
        case WorkloadKind::IncreasingRamp:
            return "increasing";
        case WorkloadKind::DecreasingRamp:
            return "decreasing";
    }
    return "?";
}

std::optional<WorkloadKind> workload_from_string(std::string_view name) noexcept {
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    for (const WorkloadKind k :
         {WorkloadKind::Constant, WorkloadKind::Uniform, WorkloadKind::Gaussian,
          WorkloadKind::Exponential, WorkloadKind::Bimodal, WorkloadKind::IncreasingRamp,
          WorkloadKind::DecreasingRamp}) {
        if (lower == workload_name(k)) {
            return k;
        }
    }
    return std::nullopt;
}

}  // namespace hdls::apps
