#pragma once
/// \file psia.hpp
/// PSIA — the parallel spin-image application of the paper's evaluation.
///
/// The spin-image algorithm (Johnson, CMU 1997) turns a 3D oriented point
/// cloud into per-point 2D histograms ("spin images") used as rotation-
/// invariant shape descriptors. For an oriented point (p, n) every cloud
/// point x maps to cylindrical coordinates
///     beta  = n . (x - p)                    (signed height)
///     alpha = sqrt(|x - p|^2 - beta^2)       (radial distance)
/// and is bilinearly binned into a W x H image clipped to a support region.
/// PSIA parallelizes the loop over oriented points; the per-iteration cost
/// is proportional to the point's local neighbourhood size, which gives the
/// *moderate, spatially-correlated* load imbalance the paper contrasts with
/// Mandelbrot's extreme imbalance.
///
/// The paper's input meshes are not public, so PointCloud::synthetic builds
/// a parametric scene (torus with non-uniform angular density plus a dense
/// spherical lobe plus noise) with the same qualitative density profile —
/// see DESIGN.md, substitution table.

#include <cstdint>
#include <span>
#include <vector>

namespace hdls::apps {

/// Minimal 3-vector (double precision).
struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    friend Vec3 operator+(Vec3 a, Vec3 b) noexcept { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
    friend Vec3 operator-(Vec3 a, Vec3 b) noexcept { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
    friend Vec3 operator*(double s, Vec3 v) noexcept { return {s * v.x, s * v.y, s * v.z}; }

    [[nodiscard]] double dot(Vec3 o) const noexcept { return x * o.x + y * o.y + z * o.z; }
    [[nodiscard]] double norm2() const noexcept { return dot(*this); }
    [[nodiscard]] double norm() const noexcept;
    [[nodiscard]] Vec3 normalized() const noexcept;
};

/// A surface sample: position + unit normal.
struct OrientedPoint {
    Vec3 position;
    Vec3 normal;
};

/// Spin-image generation parameters.
struct PsiaConfig {
    int image_width = 16;   ///< alpha bins
    int image_height = 16;  ///< beta bins (symmetric around beta = 0)
    double bin_size = 0.05;
    /// Cosine threshold of the support angle between the center normal and
    /// a candidate's normal; -1 accepts every point (no angle filter).
    double support_angle_cos = -1.0;

    [[nodiscard]] double alpha_max() const noexcept { return image_width * bin_size; }
    [[nodiscard]] double beta_max() const noexcept { return image_height * bin_size / 2.0; }
};

/// One W x H spin image (row-major; row 0 = beta_max edge as in Johnson).
class SpinImage {
public:
    SpinImage(int width, int height);

    /// Bilinearly deposits one support point at (alpha, beta); weight
    /// falling outside the image is clipped (edge behaviour of the paper).
    void accumulate(double alpha, double beta, const PsiaConfig& cfg) noexcept;

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }
    [[nodiscard]] float at(int row, int col) const;
    [[nodiscard]] std::span<const float> data() const noexcept { return bins_; }

    /// Total deposited mass (= number of fully-interior support points plus
    /// clipped fractions).
    [[nodiscard]] double mass() const noexcept;

private:
    int width_;
    int height_;
    std::vector<float> bins_;
};

/// An oriented point cloud.
class PointCloud {
public:
    [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
    [[nodiscard]] const OrientedPoint& operator[](std::size_t i) const { return points_[i]; }
    [[nodiscard]] std::span<const OrientedPoint> points() const noexcept { return points_; }

    void add(const OrientedPoint& p) { points_.push_back(p); }

    /// Deterministic synthetic scene: a torus (major radius 1, minor 0.35)
    /// with angularly non-uniform sampling, a dense spherical lobe (~15% of
    /// points) and Gaussian surface noise. `n` total points.
    [[nodiscard]] static PointCloud synthetic(std::size_t n, std::uint64_t seed);

private:
    std::vector<OrientedPoint> points_;
};

/// Whether cloud point `candidate` lies in the support of `center`.
[[nodiscard]] bool in_support(const OrientedPoint& center, const OrientedPoint& candidate,
                              const PsiaConfig& cfg) noexcept;

/// Brute-force support size (tests / cost ground truth).
[[nodiscard]] std::size_t support_count(const PointCloud& cloud, std::size_t center,
                                        const PsiaConfig& cfg) noexcept;

/// The PSIA loop body: the spin image of oriented point `center`. The
/// candidate filter (angle + cylinder tests) runs through the SIMD batch
/// kernels (src/simd/), N candidates per step, with the point-cloud gather
/// software-prefetched ahead of use (util/prefetch.hpp); survivors are
/// binned in candidate order, so results are bit-identical to the scalar
/// reference loop on every backend.
[[nodiscard]] SpinImage compute_spin_image(const PointCloud& cloud, std::size_t center,
                                           const PsiaConfig& cfg);

/// Same, with the intra-chunk software prefetch explicitly on or off (the
/// three-argument overload uses the HDLS_PREFETCH-style default: on).
[[nodiscard]] SpinImage compute_spin_image(const PointCloud& cloud, std::size_t center,
                                           const PsiaConfig& cfg, bool use_prefetch);

/// Uniform spatial hash grid for O(1) neighbourhood-size estimates; used to
/// derive the simulator cost trace in O(N) instead of O(N^2).
class SupportGrid {
public:
    SupportGrid(const PointCloud& cloud, double cell_size);

    /// Number of cloud points in the 3x3x3 cell neighbourhood of `p` — an
    /// upper-ish estimate of |support| for supports smaller than cell_size.
    [[nodiscard]] std::size_t neighbourhood_count(Vec3 p) const noexcept;

private:
    [[nodiscard]] std::int64_t cell_key(std::int64_t cx, std::int64_t cy,
                                        std::int64_t cz) const noexcept;

    double cell_;
    Vec3 origin_;
    std::int64_t nx_ = 0, ny_ = 0, nz_ = 0;
    std::vector<std::uint32_t> counts_;
};

/// Virtual-cost trace for the simulator: cost of PSIA loop iteration i =
/// base + per_neighbour * neighbourhood(i). This is the PSIA workload of
/// Figures 4-7 (moderate CoV, spatially correlated).
[[nodiscard]] std::vector<double> psia_cost_trace(const PointCloud& cloud, const PsiaConfig& cfg,
                                                  double base_seconds,
                                                  double seconds_per_neighbour);

}  // namespace hdls::apps
