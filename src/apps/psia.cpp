#include "apps/psia.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace hdls::apps {

double Vec3::norm() const noexcept { return std::sqrt(norm2()); }

Vec3 Vec3::normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{0.0, 0.0, 0.0};
}

// ---------------------------------------------------------------- SpinImage

SpinImage::SpinImage(int width, int height) : width_(width), height_(height) {
    if (width < 1 || height < 1) {
        throw std::invalid_argument("SpinImage: dimensions must be positive");
    }
    bins_.assign(static_cast<std::size_t>(width) * height, 0.0F);
}

void SpinImage::accumulate(double alpha, double beta, const PsiaConfig& cfg) noexcept {
    // Johnson's bilinear update: continuous bin coordinates, weight split
    // over the four surrounding bins; out-of-image weight is clipped.
    const double col_f = alpha / cfg.bin_size;
    const double row_f = (cfg.beta_max() - beta) / cfg.bin_size;
    const auto col = static_cast<std::int64_t>(std::floor(col_f));
    const auto row = static_cast<std::int64_t>(std::floor(row_f));
    const double a = col_f - static_cast<double>(col);  // fraction toward col+1
    const double b = row_f - static_cast<double>(row);  // fraction toward row+1
    const double w[4] = {(1 - a) * (1 - b), a * (1 - b), (1 - a) * b, a * b};
    const std::int64_t rr[4] = {row, row, row + 1, row + 1};
    const std::int64_t cc[4] = {col, col + 1, col, col + 1};
    for (int k = 0; k < 4; ++k) {
        if (rr[k] >= 0 && rr[k] < height_ && cc[k] >= 0 && cc[k] < width_) {
            bins_[static_cast<std::size_t>(rr[k]) * width_ + static_cast<std::size_t>(cc[k])] +=
                static_cast<float>(w[k]);
        }
    }
}

float SpinImage::at(int row, int col) const {
    if (row < 0 || row >= height_ || col < 0 || col >= width_) {
        throw std::out_of_range("SpinImage::at");
    }
    return bins_[static_cast<std::size_t>(row) * width_ + static_cast<std::size_t>(col)];
}

double SpinImage::mass() const noexcept {
    double m = 0.0;
    for (const float v : bins_) {
        m += v;
    }
    return m;
}

// --------------------------------------------------------------- PointCloud

PointCloud PointCloud::synthetic(std::size_t n, std::uint64_t seed) {
    PointCloud cloud;
    cloud.points_.reserve(n);
    util::Xoshiro256 rng(seed);
    constexpr double kMajor = 1.0;   // torus major radius
    constexpr double kMinor = 0.35;  // torus minor radius
    constexpr double kNoise = 0.01;
    const std::size_t lobe_points = n * 15 / 100;
    const std::size_t torus_points = n - lobe_points;

    std::vector<OrientedPoint> torus;
    torus.reserve(torus_points);
    for (std::size_t i = 0; i < torus_points; ++i) {
        // Non-uniform angular density (u^1.6 clusters samples near theta=0)
        // gives the spatially-correlated imbalance PSIA exhibits on real
        // scans, where some surface regions are denser than others.
        const double u = rng.uniform01();
        const double theta = 2.0 * std::numbers::pi * std::pow(u, 1.6);
        const double phi = 2.0 * std::numbers::pi * rng.uniform01();
        const Vec3 normal{std::cos(phi) * std::cos(theta), std::cos(phi) * std::sin(theta),
                          std::sin(phi)};
        const Vec3 ring{kMajor * std::cos(theta), kMajor * std::sin(theta), 0.0};
        Vec3 pos = ring + kMinor * normal;
        pos = pos + Vec3{rng.normal(0.0, kNoise), rng.normal(0.0, kNoise),
                         rng.normal(0.0, kNoise)};
        torus.push_back({pos, normal});
    }

    // Dense lobe: a sphere tangent to the torus' outer equator, sampled
    // about twice as densely as the torus surface (a moderate density
    // contrast — PSIA's imbalance is mild compared to Mandelbrot's).
    const Vec3 lobe_center{kMajor + kMinor + 0.33, 0.0, 0.0};
    constexpr double kLobeRadius = 0.3;
    std::vector<OrientedPoint> lobe;
    lobe.reserve(lobe_points);
    for (std::size_t i = 0; i < lobe_points; ++i) {
        // Uniform direction via normalized Gaussian triple.
        const Vec3 dir =
            Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
        Vec3 pos = lobe_center + kLobeRadius * dir;
        pos = pos + Vec3{rng.normal(0.0, kNoise), rng.normal(0.0, kNoise),
                         rng.normal(0.0, kNoise)};
        lobe.push_back({pos, dir});
    }

    // Interleave the lobe as several contiguous runs spread across the
    // point order. Scanners emit points surface-patch by surface-patch, so
    // dense patches appear as *runs* at arbitrary positions — not as one
    // block at the very end, which would be adversarial for every
    // decreasing-chunk technique in a way real inputs are not.
    constexpr std::size_t kLobeRuns = 64;
    std::size_t torus_cursor = 0;
    std::size_t lobe_cursor = 0;
    for (std::size_t run = 0; run < kLobeRuns; ++run) {
        const std::size_t torus_target = (run + 1) * torus_points / (kLobeRuns + 1);
        while (torus_cursor < torus_target) {
            cloud.points_.push_back(torus[torus_cursor++]);
        }
        const std::size_t lobe_target = (run + 1) * lobe_points / kLobeRuns;
        while (lobe_cursor < lobe_target) {
            cloud.points_.push_back(lobe[lobe_cursor++]);
        }
    }
    while (torus_cursor < torus_points) {
        cloud.points_.push_back(torus[torus_cursor++]);
    }
    return cloud;
}

// ------------------------------------------------------------- spin images

bool in_support(const OrientedPoint& center, const OrientedPoint& candidate,
                const PsiaConfig& cfg) noexcept {
    if (center.normal.dot(candidate.normal) < cfg.support_angle_cos) {
        return false;
    }
    const Vec3 d = candidate.position - center.position;
    const double beta = center.normal.dot(d);
    const double alpha2 = d.norm2() - beta * beta;
    if (std::abs(beta) > cfg.beta_max()) {
        return false;
    }
    const double amax = cfg.alpha_max();
    return alpha2 <= amax * amax;
}

std::size_t support_count(const PointCloud& cloud, std::size_t center,
                          const PsiaConfig& cfg) noexcept {
    std::size_t count = 0;
    const OrientedPoint& c = cloud[center];
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        if (in_support(c, cloud[i], cfg)) {
            ++count;
        }
    }
    return count;
}

SpinImage compute_spin_image(const PointCloud& cloud, std::size_t center,
                             const PsiaConfig& cfg) {
    return compute_spin_image(cloud, center, cfg, /*use_prefetch=*/true);
}

SpinImage compute_spin_image(const PointCloud& cloud, std::size_t center,
                             const PsiaConfig& cfg, bool use_prefetch) {
    if (center >= cloud.size()) {
        throw std::out_of_range("compute_spin_image: center index");
    }
    SpinImage img(cfg.image_width, cfg.image_height);
    const OrientedPoint& c = cloud[center];

    // The kernels index the cloud as a flat double[6] AoS stream.
    static_assert(sizeof(OrientedPoint) == simd::kSpinPointStride * sizeof(double),
                  "OrientedPoint must stay {position, normal} with no padding");
    static_assert(sizeof(Vec3) == 3 * sizeof(double), "Vec3 must stay 3 packed doubles");
    const auto* aos = reinterpret_cast<const double*>(cloud.points().data());

    simd::SpinFilter filter;
    filter.cx = c.position.x;
    filter.cy = c.position.y;
    filter.cz = c.position.z;
    filter.nx = c.normal.x;
    filter.ny = c.normal.y;
    filter.nz = c.normal.z;
    filter.cos_min = cfg.support_angle_cos;
    filter.beta_max = cfg.beta_max();
    const double amax = cfg.alpha_max();
    filter.alpha2_max = amax * amax;

    // Survivors of each block come back densely packed in candidate order,
    // so the float accumulation below deposits in exactly the order the
    // scalar reference loop would — bit-identical bins on every backend.
    constexpr std::int64_t kBlock = 512;
    double out_alpha[kBlock];
    double out_beta[kBlock];
    const auto total = static_cast<std::int64_t>(cloud.size());
    for (std::int64_t at = 0; at < total; at += kBlock) {
        const std::int64_t n = std::min(kBlock, total - at);
        const std::int64_t written = simd::run_spin_support_batch(
            aos, at, n, filter, use_prefetch, out_alpha, out_beta);
        for (std::int64_t k = 0; k < written; ++k) {
            img.accumulate(out_alpha[k], out_beta[k], cfg);
        }
    }
    return img;
}

// -------------------------------------------------------------- SupportGrid

SupportGrid::SupportGrid(const PointCloud& cloud, double cell_size) : cell_(cell_size) {
    if (!(cell_size > 0.0)) {
        throw std::invalid_argument("SupportGrid: cell size must be positive");
    }
    if (cloud.size() == 0) {
        return;
    }
    Vec3 lo = cloud[0].position;
    Vec3 hi = lo;
    for (const auto& p : cloud.points()) {
        lo.x = std::min(lo.x, p.position.x);
        lo.y = std::min(lo.y, p.position.y);
        lo.z = std::min(lo.z, p.position.z);
        hi.x = std::max(hi.x, p.position.x);
        hi.y = std::max(hi.y, p.position.y);
        hi.z = std::max(hi.z, p.position.z);
    }
    origin_ = lo;
    nx_ = static_cast<std::int64_t>((hi.x - lo.x) / cell_) + 1;
    ny_ = static_cast<std::int64_t>((hi.y - lo.y) / cell_) + 1;
    nz_ = static_cast<std::int64_t>((hi.z - lo.z) / cell_) + 1;
    counts_.assign(static_cast<std::size_t>(nx_ * ny_ * nz_), 0);
    for (const auto& p : cloud.points()) {
        const auto cx = static_cast<std::int64_t>((p.position.x - origin_.x) / cell_);
        const auto cy = static_cast<std::int64_t>((p.position.y - origin_.y) / cell_);
        const auto cz = static_cast<std::int64_t>((p.position.z - origin_.z) / cell_);
        ++counts_[static_cast<std::size_t>(cell_key(cx, cy, cz))];
    }
}

std::int64_t SupportGrid::cell_key(std::int64_t cx, std::int64_t cy,
                                   std::int64_t cz) const noexcept {
    cx = std::clamp<std::int64_t>(cx, 0, nx_ - 1);
    cy = std::clamp<std::int64_t>(cy, 0, ny_ - 1);
    cz = std::clamp<std::int64_t>(cz, 0, nz_ - 1);
    return (cx * ny_ + cy) * nz_ + cz;
}

std::size_t SupportGrid::neighbourhood_count(Vec3 p) const noexcept {
    if (counts_.empty()) {
        return 0;
    }
    const auto cx = static_cast<std::int64_t>((p.x - origin_.x) / cell_);
    const auto cy = static_cast<std::int64_t>((p.y - origin_.y) / cell_);
    const auto cz = static_cast<std::int64_t>((p.z - origin_.z) / cell_);
    std::size_t total = 0;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
            for (std::int64_t dz = -1; dz <= 1; ++dz) {
                const std::int64_t x = cx + dx;
                const std::int64_t y = cy + dy;
                const std::int64_t z = cz + dz;
                if (x < 0 || x >= nx_ || y < 0 || y >= ny_ || z < 0 || z >= nz_) {
                    continue;
                }
                total += counts_[static_cast<std::size_t>(cell_key(x, y, z))];
            }
        }
    }
    return total;
}

// --------------------------------------------------------------- cost trace

std::vector<double> psia_cost_trace(const PointCloud& cloud, const PsiaConfig& cfg,
                                    double base_seconds, double seconds_per_neighbour) {
    const double cell = std::max(cfg.alpha_max(), 2.0 * cfg.beta_max());
    const SupportGrid grid(cloud, cell);
    std::vector<double> costs(cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const auto neighbours = grid.neighbourhood_count(cloud[i].position);
        costs[i] = base_seconds + seconds_per_neighbour * static_cast<double>(neighbours);
    }
    return costs;
}

}  // namespace hdls::apps
