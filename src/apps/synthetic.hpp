#pragma once
/// \file synthetic.hpp
/// Synthetic workload traces for the simulator and the ablation benches.
///
/// A workload trace is simply the per-iteration execution cost vector of a
/// loop. The generators below produce the canonical distributions used in
/// the DLS literature (constant, uniform, gaussian, exponential, bimodal,
/// monotone ramps) with a controllable mean and dispersion so the
/// imbalance-crossover ablation can sweep CoV directly.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hdls::apps {

/// Shape of the per-iteration cost distribution.
enum class WorkloadKind {
    Constant,    ///< every iteration costs `mean`
    Uniform,     ///< U(mean*(1-s), mean*(1+s)) with s = sqrt(3)*cov
    Gaussian,    ///< N(mean, cov*mean), truncated at mean/100
    Exponential, ///< Exp(mean) (cov parameter ignored; CoV = 1)
    Bimodal,     ///< mostly cheap, a `cov`-controlled fraction 10x expensive
    IncreasingRamp,  ///< linear 0.1*mean .. 1.9*mean by iteration index
    DecreasingRamp,  ///< linear 1.9*mean .. 0.1*mean (adversarial for GSS)
};

/// Parameters of a synthetic trace.
struct WorkloadSpec {
    WorkloadKind kind = WorkloadKind::Constant;
    std::size_t iterations = 0;
    double mean_seconds = 1e-3;
    /// Dispersion knob; interpreted per kind (target CoV where meaningful).
    double cov = 0.5;
    std::uint64_t seed = 0xBADCAFEULL;
};

/// Generates the cost trace (deterministic in the spec).
[[nodiscard]] std::vector<double> make_workload(const WorkloadSpec& spec);

[[nodiscard]] std::string_view workload_name(WorkloadKind k) noexcept;
[[nodiscard]] std::optional<WorkloadKind> workload_from_string(std::string_view name) noexcept;

/// Measured throughput (rounds/second) of the SIMD multiply-add burner on
/// the calling thread's active backend, calibrated once and cached per
/// (backend, pinned CPU). This is what converts a virtual cost in seconds
/// into a concrete round count for burn_seconds.
[[nodiscard]] double burner_rounds_per_second();

/// Burns approximately `seconds` of CPU executing dependent multiply-add
/// rounds through the active SIMD backend — real vectorizable FLOPs, not a
/// clock-polling spin — so timed runs exercise the same execution ports the
/// real kernels do. Returns the folded lane sum (keeps the work alive).
double burn_seconds(double seconds) noexcept;

}  // namespace hdls::apps
