#include "apps/mandelbrot.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace hdls::apps {

int mandelbrot_iterations(const MandelbrotConfig& cfg, int x, int y) noexcept {
    const double dx = (cfg.re_max - cfg.re_min) / cfg.width;
    const double dy = (cfg.im_max - cfg.im_min) / cfg.height;
    const double cr = cfg.re_min + (x + 0.5) * dx;
    const double ci = cfg.im_min + (y + 0.5) * dy;
    // Cardioid / period-2 bulb shortcut keeps interior pixels cheap to
    // *classify* in tests while the plain loop below is what the examples
    // actually measure; we intentionally do NOT shortcut here because the
    // expensive interior pixels are the imbalance the paper relies on.
    double zr = 0.0;
    double zi = 0.0;
    int it = 0;
    while (it < cfg.max_iter) {
        const double zr2 = zr * zr;
        const double zi2 = zi * zi;
        if (zr2 + zi2 > 4.0) {
            break;
        }
        zi = 2.0 * zr * zi + ci;
        zr = zr2 - zi2 + cr;
        ++it;
    }
    return it;
}

int mandelbrot_iterations(const MandelbrotConfig& cfg, std::int64_t pixel) noexcept {
    const int x = static_cast<int>(pixel % cfg.width);
    const int y = static_cast<int>(pixel / cfg.width);
    return mandelbrot_iterations(cfg, x, y);
}

namespace {
constexpr int kUncomputed = -1;
}

MandelbrotImage::MandelbrotImage(const MandelbrotConfig& cfg)
    : cfg_(cfg), data_(static_cast<std::size_t>(cfg.pixels()), kUncomputed) {}

void MandelbrotImage::compute_pixel(std::int64_t pixel) noexcept {
    data_[static_cast<std::size_t>(pixel)] = mandelbrot_iterations(cfg_, pixel);
}

void MandelbrotImage::compute_range(std::int64_t begin, std::int64_t end) noexcept {
    for (std::int64_t i = begin; i < end; ++i) {
        compute_pixel(i);
    }
}

std::int64_t MandelbrotImage::uncomputed() const noexcept {
    return std::count(data_.begin(), data_.end(), kUncomputed);
}

std::uint64_t MandelbrotImage::checksum() const noexcept {
    // Position-sensitive but order-independent: hash(i, v_i) XOR-folded.
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        h ^= util::mix64((static_cast<std::uint64_t>(i) << 20) ^
                         static_cast<std::uint64_t>(static_cast<std::int64_t>(data_[i]) + 1));
    }
    return h;
}

void MandelbrotImage::write_ppm(std::ostream& os) const {
    os << "P2\n" << cfg_.width << ' ' << cfg_.height << "\n255\n";
    for (int y = 0; y < cfg_.height; ++y) {
        for (int x = 0; x < cfg_.width; ++x) {
            const int v = data_[static_cast<std::size_t>(y) * cfg_.width + x];
            const int shade =
                v <= 0 ? 0 : static_cast<int>(255.0 * v / cfg_.max_iter);
            os << std::min(shade, 255) << (x + 1 == cfg_.width ? '\n' : ' ');
        }
    }
}

std::vector<double> mandelbrot_cost_trace(const MandelbrotConfig& cfg,
                                          double seconds_per_iteration) {
    std::vector<double> costs(static_cast<std::size_t>(cfg.pixels()));
    for (std::int64_t i = 0; i < cfg.pixels(); ++i) {
        // +1: even an instantly-escaping pixel costs one loop-setup unit.
        costs[static_cast<std::size_t>(i)] =
            seconds_per_iteration * (mandelbrot_iterations(cfg, i) + 1);
    }
    return costs;
}

}  // namespace hdls::apps
