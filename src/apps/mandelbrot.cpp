#include "apps/mandelbrot.hpp"

#include <algorithm>

#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace hdls::apps {

simd::MandelbrotGeom mandelbrot_geometry(const MandelbrotConfig& cfg) noexcept {
    simd::MandelbrotGeom g;
    g.re_min = cfg.re_min;
    g.im_min = cfg.im_min;
    g.dx = (cfg.re_max - cfg.re_min) / cfg.width;
    g.dy = (cfg.im_max - cfg.im_min) / cfg.height;
    g.width = cfg.width;
    g.max_iter = cfg.max_iter;
    return g;
}

int mandelbrot_iterations(const MandelbrotConfig& cfg, int x, int y) noexcept {
    // Cardioid / period-2 bulb shortcut would keep interior pixels cheap to
    // *classify* in tests; we intentionally do NOT shortcut because the
    // expensive interior pixels are the imbalance the paper relies on.
    // The escape loop lives in simd/batch_kernels.hpp now; scalar_vec<1>
    // executes the identical operation sequence this function historically
    // inlined, so per-pixel results are unchanged bit-for-bit.
    const simd::MandelbrotGeom g = mandelbrot_geometry(cfg);
    int out = 0;
    simd::kernels::mandelbrot_block<simd::scalar_vec<1>>(
        g, static_cast<std::int64_t>(y) * cfg.width + x, &out);
    return out;
}

int mandelbrot_iterations(const MandelbrotConfig& cfg, std::int64_t pixel) noexcept {
    const int x = static_cast<int>(pixel % cfg.width);
    const int y = static_cast<int>(pixel / cfg.width);
    return mandelbrot_iterations(cfg, x, y);
}

void mandelbrot_iterations_batch(const MandelbrotConfig& cfg, std::int64_t first_pixel,
                                 std::int64_t count, int* out) noexcept {
    simd::run_mandelbrot_batch(mandelbrot_geometry(cfg), first_pixel, count, out);
}

namespace {
constexpr int kUncomputed = -1;

/// Per-call scratch block: big enough to amortize dispatch, small enough
/// to stay in L1 alongside the image cells it feeds.
constexpr std::int64_t kPixelBlock = 512;
}  // namespace

MandelbrotImage::MandelbrotImage(const MandelbrotConfig& cfg)
    : cfg_(cfg),
      data_(std::make_unique<int[]>(static_cast<std::size_t>(cfg.pixels()))) {
    std::fill_n(data_.get(), cfg.pixels(), kUncomputed);
}

MandelbrotImage::MandelbrotImage(const MandelbrotConfig& cfg, DeferInit)
    : cfg_(cfg),
      data_(std::make_unique_for_overwrite<int[]>(
          static_cast<std::size_t>(cfg.pixels()))) {}

void MandelbrotImage::init_range(std::int64_t begin, std::int64_t end) noexcept {
    std::fill(data_.get() + begin, data_.get() + end, kUncomputed);
}

void MandelbrotImage::compute_pixel(std::int64_t pixel) noexcept {
    const int v = mandelbrot_iterations(cfg_, pixel);
    int& cell = data_[static_cast<std::size_t>(pixel)];
    if (cell == kUncomputed) {
        computed_.fetch_add(1, std::memory_order_relaxed);
    }
    cell = v;
}

void MandelbrotImage::compute_range(std::int64_t begin, std::int64_t end) noexcept {
    const simd::MandelbrotGeom g = mandelbrot_geometry(cfg_);
    int block[kPixelBlock];
    for (std::int64_t at = begin; at < end; at += kPixelBlock) {
        const std::int64_t n = std::min(kPixelBlock, end - at);
        simd::run_mandelbrot_batch(g, at, n, block);
        std::int64_t newly = 0;
        for (std::int64_t l = 0; l < n; ++l) {
            int& cell = data_[static_cast<std::size_t>(at + l)];
            if (cell == kUncomputed) {
                ++newly;
            }
            cell = block[l];
        }
        if (newly > 0) {
            computed_.fetch_add(newly, std::memory_order_relaxed);
        }
    }
}

std::int64_t MandelbrotImage::uncomputed() const noexcept {
    return cfg_.pixels() - computed_.load(std::memory_order_relaxed);
}

std::uint64_t MandelbrotImage::checksum() const noexcept {
    // Position-sensitive but order-independent: hash(i, v_i) XOR-folded.
    std::uint64_t h = 0;
    const std::size_t n = static_cast<std::size_t>(cfg_.pixels());
    for (std::size_t i = 0; i < n; ++i) {
        h ^= util::mix64((static_cast<std::uint64_t>(i) << 20) ^
                         static_cast<std::uint64_t>(static_cast<std::int64_t>(data_[i]) + 1));
    }
    return h;
}

void MandelbrotImage::write_ppm(std::ostream& os) const {
    os << "P2\n" << cfg_.width << ' ' << cfg_.height << "\n255\n";
    for (int y = 0; y < cfg_.height; ++y) {
        for (int x = 0; x < cfg_.width; ++x) {
            const int v = data_[static_cast<std::size_t>(y) * cfg_.width + x];
            const int shade =
                v <= 0 ? 0 : static_cast<int>(255.0 * v / cfg_.max_iter);
            os << std::min(shade, 255) << (x + 1 == cfg_.width ? '\n' : ' ');
        }
    }
}

std::vector<double> mandelbrot_cost_trace(const MandelbrotConfig& cfg,
                                          double seconds_per_iteration) {
    const std::int64_t n = cfg.pixels();
    std::vector<int> iters(static_cast<std::size_t>(n));
    simd::run_mandelbrot_batch(mandelbrot_geometry(cfg), 0, n, iters.data());
    std::vector<double> costs(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        // +1: even an instantly-escaping pixel costs one loop-setup unit.
        costs[static_cast<std::size_t>(i)] =
            seconds_per_iteration * (iters[static_cast<std::size_t>(i)] + 1);
    }
    return costs;
}

}  // namespace hdls::apps
