#pragma once
/// \file mandelbrot.hpp
/// The Mandelbrot application of the paper's evaluation.
///
/// Mandelbrot is the canonical high-imbalance DLS kernel: escape-time
/// iteration counts vary from a handful (far exterior) to max_iter
/// (interior points), and interior pixels cluster spatially — exactly the
/// "algorithmic variation" the paper cites as motivation. The same kernel
/// serves three roles here:
///   1. real compute kernel for the thread-backed examples/tests,
///   2. per-pixel iteration counts -> virtual-cost trace for the simulator,
///   3. image output so scheduling correctness is verifiable bit-for-bit.
///
/// The escape loop itself runs through the SIMD batch kernels (src/simd/):
/// compute_range and the cost trace dispatch whole pixel ranges to the
/// active backend (scalar / AVX2 / NEON — HDLS_SIMD), with the viewport
/// geometry hoisted once per chunk instead of recomputed per pixel. Every
/// backend produces bit-identical iteration counts, so checksums are
/// backend-invariant.

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "simd/batch_kernels.hpp"

namespace hdls::apps {

/// Viewport and iteration budget of a Mandelbrot rendering.
struct MandelbrotConfig {
    int width = 1024;
    int height = 1024;
    int max_iter = 512;
    double re_min = -2.1;
    double re_max = 0.6;
    double im_min = -1.35;
    double im_max = 1.35;

    [[nodiscard]] std::int64_t pixels() const noexcept {
        return static_cast<std::int64_t>(width) * height;
    }
};

/// The chunk-invariant geometry of a config: dx/dy and the viewport
/// origin, computed once per config/chunk instead of once per pixel.
[[nodiscard]] simd::MandelbrotGeom mandelbrot_geometry(const MandelbrotConfig& cfg) noexcept;

/// Escape-time iterations of pixel (x, y): the number of z <- z^2 + c steps
/// until |z| > 2, capped at max_iter (pixel centers are sampled).
[[nodiscard]] int mandelbrot_iterations(const MandelbrotConfig& cfg, int x, int y) noexcept;

/// Same, addressed by linear pixel index (row-major) — the loop-iteration
/// space the schedulers partition.
[[nodiscard]] int mandelbrot_iterations(const MandelbrotConfig& cfg, std::int64_t pixel) noexcept;

/// Batch form: escape iterations of pixels [first_pixel, first_pixel +
/// count) written to out[0..count), N lanes at a time through the active
/// SIMD backend. Bit-identical to count calls of mandelbrot_iterations.
void mandelbrot_iterations_batch(const MandelbrotConfig& cfg, std::int64_t first_pixel,
                                 std::int64_t count, int* out) noexcept;

/// Render target accumulating per-pixel iteration counts.
class MandelbrotImage {
public:
    explicit MandelbrotImage(const MandelbrotConfig& cfg);

    /// Deferred-initialization constructor: pixel storage is allocated but
    /// NOT initialized, so the caller can first-touch it from the threads
    /// that will compute it (pages land on the touching thread's NUMA
    /// node — see ompsim::first_touch_fill). Every pixel must be covered
    /// by init_range calls before anything else touches the image.
    struct DeferInit {};
    MandelbrotImage(const MandelbrotConfig& cfg, DeferInit);

    /// First-touch initialization of [begin, end) to the "uncomputed"
    /// sentinel (thread-safe for disjoint ranges).
    void init_range(std::int64_t begin, std::int64_t end) noexcept;

    /// Computes one pixel (thread-safe for distinct pixels).
    void compute_pixel(std::int64_t pixel) noexcept;

    /// Computes [begin, end) — the natural chunk body — through the SIMD
    /// batch kernel, geometry hoisted once per call.
    void compute_range(std::int64_t begin, std::int64_t end) noexcept;

    [[nodiscard]] const MandelbrotConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] std::span<const int> data() const noexcept {
        return {data_.get(), static_cast<std::size_t>(cfg_.pixels())};
    }

    /// Number of pixels whose value is still the "uncomputed" sentinel.
    /// O(1): maintained as a computed-pixel count, not a full scan.
    [[nodiscard]] std::int64_t uncomputed() const noexcept;

    /// Order-independent content hash (verifies scheduler correctness).
    [[nodiscard]] std::uint64_t checksum() const noexcept;

    /// Grayscale PPM (P2) dump for eyeballing example output.
    void write_ppm(std::ostream& os) const;

private:
    MandelbrotConfig cfg_;
    std::unique_ptr<int[]> data_;
    /// Pixels whose sentinel has been overwritten (relaxed: the count is
    /// only totalled after the loop's join, never used for synchronization).
    std::atomic<std::int64_t> computed_{0};
};

/// Virtual-cost trace for the simulator: cost of loop iteration i =
/// `seconds_per_iteration` * escape iterations of pixel i. This is the
/// Mandelbrot workload of Figures 4-7.
[[nodiscard]] std::vector<double> mandelbrot_cost_trace(const MandelbrotConfig& cfg,
                                                        double seconds_per_iteration);

}  // namespace hdls::apps
