#pragma once
/// \file mandelbrot.hpp
/// The Mandelbrot application of the paper's evaluation.
///
/// Mandelbrot is the canonical high-imbalance DLS kernel: escape-time
/// iteration counts vary from a handful (far exterior) to max_iter
/// (interior points), and interior pixels cluster spatially — exactly the
/// "algorithmic variation" the paper cites as motivation. The same kernel
/// serves three roles here:
///   1. real compute kernel for the thread-backed examples/tests,
///   2. per-pixel iteration counts -> virtual-cost trace for the simulator,
///   3. image output so scheduling correctness is verifiable bit-for-bit.

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

namespace hdls::apps {

/// Viewport and iteration budget of a Mandelbrot rendering.
struct MandelbrotConfig {
    int width = 1024;
    int height = 1024;
    int max_iter = 512;
    double re_min = -2.1;
    double re_max = 0.6;
    double im_min = -1.35;
    double im_max = 1.35;

    [[nodiscard]] std::int64_t pixels() const noexcept {
        return static_cast<std::int64_t>(width) * height;
    }
};

/// Escape-time iterations of pixel (x, y): the number of z <- z^2 + c steps
/// until |z| > 2, capped at max_iter (pixel centers are sampled).
[[nodiscard]] int mandelbrot_iterations(const MandelbrotConfig& cfg, int x, int y) noexcept;

/// Same, addressed by linear pixel index (row-major) — the loop-iteration
/// space the schedulers partition.
[[nodiscard]] int mandelbrot_iterations(const MandelbrotConfig& cfg, std::int64_t pixel) noexcept;

/// Render target accumulating per-pixel iteration counts.
class MandelbrotImage {
public:
    explicit MandelbrotImage(const MandelbrotConfig& cfg);

    /// Computes one pixel (thread-safe for distinct pixels).
    void compute_pixel(std::int64_t pixel) noexcept;

    /// Computes [begin, end) — the natural chunk body.
    void compute_range(std::int64_t begin, std::int64_t end) noexcept;

    [[nodiscard]] const MandelbrotConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] std::span<const int> data() const noexcept { return data_; }

    /// Number of pixels whose value is still the "uncomputed" sentinel.
    [[nodiscard]] std::int64_t uncomputed() const noexcept;

    /// Order-independent content hash (verifies scheduler correctness).
    [[nodiscard]] std::uint64_t checksum() const noexcept;

    /// Grayscale PPM (P2) dump for eyeballing example output.
    void write_ppm(std::ostream& os) const;

private:
    MandelbrotConfig cfg_;
    std::vector<int> data_;
};

/// Virtual-cost trace for the simulator: cost of loop iteration i =
/// `seconds_per_iteration` * escape iterations of pixel i. This is the
/// Mandelbrot workload of Figures 4-7.
[[nodiscard]] std::vector<double> mandelbrot_cost_trace(const MandelbrotConfig& cfg,
                                                        double seconds_per_iteration);

}  // namespace hdls::apps
