/// \file engine_hybrid.cpp
/// Node-level simulation engine for the MPI+OpenMP baseline.
///
/// Nodes interact only through the global work queue, so the event loop
/// advances whole node "rounds": the node whose master is ready earliest
/// fetches the next chunk (global accesses thus serialize in virtual-time
/// order), then its thread team executes the chunk under the intra
/// schedule, and the implicit end-of-worksharing barrier (paper Figure 2)
/// synchronizes the team before the next fetch.

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "dls/chunk_formulas.hpp"
#include "sim/engine_trace.hpp"
#include "sim/engines.hpp"
#include "sim/inter_source.hpp"
#include "sim/resources.hpp"

namespace hdls::sim::detail {

namespace {

struct NodeRun {
    std::vector<double> clock;  // per-thread virtual time
};

struct Event {
    double time;
    int node;
    friend bool operator>(const Event& a, const Event& b) {
        return a.time != b.time ? a.time > b.time : a.node > b.node;
    }
};

}  // namespace

SimReport simulate_hybrid_barrier(const ClusterSpec& cluster, const SimConfig& config,
                                  const WorkloadTrace& workload) {
    const CostModel& costs = cluster.costs;
    const int team = cluster.workers_per_node;
    const std::int64_t n = workload.iterations();

    SimReport report;
    report.nodes = cluster.nodes;
    report.workers_per_node = team;
    report.topology = cluster.effective_tree();
    report.total_iterations = n;
    report.workers.assign(static_cast<std::size_t>(cluster.total_workers()), SimWorker{});
    for (int w = 0; w < cluster.total_workers(); ++w) {
        report.workers[static_cast<std::size_t>(w)].node = w / team;
        report.workers[static_cast<std::size_t>(w)].worker_in_node = w % team;
    }
    EngineTrace engine_trace(cluster, config);
    const auto attach_trace = [&] {
        engine_trace.attach(report, ExecModel::MpiOpenMp, cluster, config, n);
    };

    if (n == 0) {
        attach_trace();
        return report;
    }

    // The whole hierarchy above the thread-team leaves (root backend + any
    // relay levels of a deep tree), priced per level in one shared place.
    const SimPlan plan = resolve_sim_plan(cluster, config);
    const dls::Technique leaf_technique = plan.levels.back().technique;
    HierarchicalSource source(cluster, config, plan, n);

    std::vector<NodeRun> nodes(static_cast<std::size_t>(cluster.nodes));
    for (auto& nr : nodes) {
        nr.clock.assign(static_cast<std::size_t>(team), 0.0);
    }

    // Fail-stop injection (SimConfig::failure): the kill fires at the
    // first node round after `trigger_iters` iterations were fetched; the
    // dead node's team leaves at its next round boundary (the in-flight
    // chunk's workshare + barrier complete first — Figure 2 has no
    // preemption point inside the construct). Nothing is reclaimed: the
    // baseline keeps no node-local queue, so the unfetched remainder simply
    // drains through the surviving masters.
    const SimFailure& fail = config.failure;
    bool failure_armed = fail.enabled();
    const auto trigger_iters =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(
                                      fail.at_fraction * static_cast<double>(n)));
    std::int64_t assigned = 0;
    std::vector<char> node_dead(static_cast<std::size_t>(cluster.nodes), 0);

    const auto worker_of = [&](int node, int tid) -> SimWorker& {
        return report.workers[static_cast<std::size_t>(node * team + tid)];
    };

    /// Team barrier at the end of a phase: everyone waits for the slowest,
    /// then pays the barrier cost. The wait is the Figure-2 idle time.
    const auto barrier = [&](int node) {
        NodeRun& nr = nodes[static_cast<std::size_t>(node)];
        double latest = 0.0;
        for (const double c : nr.clock) {
            latest = std::max(latest, c);
        }
        const double done = latest + costs.barrier_s(team);
        for (int tid = 0; tid < team; ++tid) {
            SimWorker& w = worker_of(node, tid);
            w.idle += latest - nr.clock[static_cast<std::size_t>(tid)];
            w.overhead += costs.barrier_s(team);
            auto& tracer = engine_trace.tracer(node * team + tid);
            if (tracer.enabled()) {
                tracer.record(trace::EventKind::BarrierWait,
                              nr.clock[static_cast<std::size_t>(tid)], done);
            }
            nr.clock[static_cast<std::size_t>(tid)] = done;
        }
        return done;
    };

    /// Executes one level-1 chunk on the node's team under the intra
    /// schedule (no barrier here; the caller adds it).
    const auto workshare = [&](int node, std::int64_t start, std::int64_t size) {
        NodeRun& nr = nodes[static_cast<std::size_t>(node)];
        if (leaf_technique == dls::Technique::Static) {
            // schedule(static): one contiguous slice per thread, no shared
            // counter, no dequeue cost.
            const std::int64_t base = size / team;
            const std::int64_t extra = size % team;
            std::int64_t begin = start;
            for (int tid = 0; tid < team; ++tid) {
                const std::int64_t len = base + (tid < extra ? 1 : 0);
                if (len > 0) {
                    SimWorker& w = worker_of(node, tid);
                    const double compute =
                        workload.range_cost(begin, begin + len) / cluster.speed(node);
                    w.busy += compute;
                    w.overhead += costs.chunk_overhead_s();
                    w.iterations += len;
                    ++w.sub_chunks;
                    auto& tracer = engine_trace.tracer(node * team + tid);
                    if (tracer.enabled()) {
                        const double exec0 = nr.clock[static_cast<std::size_t>(tid)] +
                                             costs.chunk_overhead_s();
                        tracer.instant(trace::EventKind::ChunkExecBegin, exec0, begin,
                                       begin + len);
                        tracer.instant(trace::EventKind::ChunkExecEnd, exec0 + compute,
                                       begin, begin + len);
                    }
                    nr.clock[static_cast<std::size_t>(tid)] +=
                        costs.chunk_overhead_s() + compute;
                    begin += len;
                }
            }
            return;
        }
        // Self-scheduled kinds (dynamic/guided/tss/fac2 <-> SS/GSS/TSS/FAC2):
        // a shared counter serializes dequeues; threads advance min-clock
        // first, which is the order their requests would issue.
        dls::LoopParams p;
        p.total_iterations = size;
        p.workers = team;
        p.min_chunk = config.min_chunk;
        FcfsResource counter(costs.omp_dequeue_s());
        std::int64_t step = 0;
        std::int64_t scheduled = 0;
        std::vector<bool> done(static_cast<std::size_t>(team), false);
        int remaining_threads = team;
        while (remaining_threads > 0) {
            int tid = -1;
            double best = std::numeric_limits<double>::infinity();
            for (int i = 0; i < team; ++i) {
                if (!done[static_cast<std::size_t>(i)] &&
                    nr.clock[static_cast<std::size_t>(i)] < best) {
                    best = nr.clock[static_cast<std::size_t>(i)];
                    tid = i;
                }
            }
            SimWorker& w = worker_of(node, tid);
            auto& tracer = engine_trace.tracer(node * team + tid);
            const double before = counter.busy_until();
            const double completion = counter.acquire(best);
            const double dequeue_wait = std::max(0.0, before - best);
            w.lock_wait += dequeue_wait;
            w.overhead += completion - best;
            const std::int64_t hint = dls::chunk_size_for_step(leaf_technique, p, step);
            if (hint <= 0 || scheduled >= size) {
                // Failed dequeue: the thread leaves the construct.
                if (tracer.enabled()) {
                    tracer.record(trace::EventKind::LocalPop, best, completion, -1, -1,
                                  dequeue_wait, plan.depth() - 1);
                }
                nr.clock[static_cast<std::size_t>(tid)] = completion;
                done[static_cast<std::size_t>(tid)] = true;
                --remaining_threads;
                continue;
            }
            ++step;
            const std::int64_t take = std::min(hint, size - scheduled);
            const std::int64_t begin = start + scheduled;
            scheduled += take;
            const double compute =
                workload.range_cost(begin, begin + take) / cluster.speed(node);
            w.busy += compute;
            w.overhead += costs.chunk_overhead_s();
            w.iterations += take;
            ++w.sub_chunks;
            if (tracer.enabled()) {
                tracer.record(trace::EventKind::LocalPop, best, completion, begin,
                              begin + take, dequeue_wait, plan.depth() - 1);
                const double exec0 = completion + costs.chunk_overhead_s();
                tracer.instant(trace::EventKind::ChunkExecBegin, exec0, begin, begin + take);
                tracer.instant(trace::EventKind::ChunkExecEnd, exec0 + compute, begin,
                               begin + take);
            }
            nr.clock[static_cast<std::size_t>(tid)] =
                completion + costs.chunk_overhead_s() + compute;
        }
    };

    // Asynchronous prefetching (SimConfig::prefetch): the master's next
    // fetch is issued when the team starts on the current chunk, so its
    // latency hides under the chunk's team-execution window. Adaptive
    // roots are never discounted — the fetch must follow the feedback the
    // master posts after the join barrier. Depth-2 trees are not
    // discounted either, mirroring the real executor: the funneled
    // master workshares alongside its team and has no relay chain to
    // prefetch through (build_hierarchy leaves its chain root-only).
    const bool prefetch =
        config.prefetch && !source.wants_feedback() && plan.depth() > 2;
    std::vector<double> overlap_credit(static_cast<std::size_t>(cluster.nodes), 0.0);

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
    for (int node = 0; node < cluster.nodes; ++node) {
        events.push({0.0, node});
    }
    int finished_nodes = 0;
    while (finished_nodes < cluster.nodes) {
        const Event ev = events.top();
        events.pop();
        NodeRun& nr = nodes[static_cast<std::size_t>(ev.node)];
        SimWorker& master = worker_of(ev.node, 0);

        if (failure_armed && assigned >= trigger_iters) {
            failure_armed = false;
            node_dead[static_cast<std::size_t>(fail.node)] = 1;
        }
        if (node_dead[static_cast<std::size_t>(ev.node)] != 0) {
            // The killed node's team fail-stops at the round boundary; its
            // threads' clocks are already joined by the last barrier.
            for (int tid = 0; tid < team; ++tid) {
                worker_of(ev.node, tid).finish = nr.clock[static_cast<std::size_t>(tid)];
                auto& tracer = engine_trace.tracer(ev.node * team + tid);
                if (tracer.enabled()) {
                    tracer.instant(trace::EventKind::Terminate,
                                   nr.clock[static_cast<std::size_t>(tid)]);
                }
            }
            ++finished_nodes;
            continue;
        }

        // Master (thread 0) fetches the next chunk: MPI_THREAD_FUNNELED.
        const double t0 = nr.clock[0];
        auto& master_tracer = engine_trace.tracer(ev.node * team);
        std::optional<std::pair<std::int64_t, std::int64_t>> chunk;
        double fetch_overhead = 0.0;
        double& credit_slot = overlap_credit[static_cast<std::size_t>(ev.node)];
        const double my_credit = prefetch ? credit_slot : -1.0;
        credit_slot = 0.0;
        if (!source.exhausted(ev.node)) {
            double done = t0;
            double retry_at = 0.0;
            PrefetchCharge pf;
            const auto take =
                source.acquire(ev.node, t0, &done, &retry_at, my_credit, &pf);
            master.overhead += done - t0;
            if (take && my_credit >= 0.0 && master_tracer.enabled()) {
                master_tracer.record(trace::EventKind::Prefetch, done, done, pf.hit ? 1 : 0,
                                     take->start, pf.hidden, take->level);
            }
            nr.clock[0] = done;
            if (!take && std::isfinite(retry_at)) {
                // Work is in flight up the branch but not yet visible: the
                // master idles until it lands and retries (no barrier — the
                // team is still waiting for the publish).
                const double next = std::max(done, retry_at);
                master.idle += next - done;
                nr.clock[0] = next;
                events.push({next, ev.node});
                continue;
            }
            if (!take) {
                if (master_tracer.enabled()) {
                    master_tracer.record(trace::EventKind::GlobalAcquire, t0, done, 0, 0);
                }
            } else {
                chunk = std::pair{take->start, take->size};
                fetch_overhead = done - t0;
                assigned += take->size;
                ++master.global_refills;
                if (master_tracer.enabled()) {
                    // Prefetched fetches keep the physical flight time in
                    // the epoch (the hidden share rides the Prefetch
                    // event); `done` is the discounted completion.
                    const double epoch_end = my_credit >= 0.0 ? t0 + pf.raw : done;
                    master_tracer.record(take->stolen ? trace::EventKind::Steal
                                                      : trace::EventKind::GlobalAcquire,
                                         t0, epoch_end, chunk->first, chunk->second, 0.0,
                                         take->level);
                }
            }
        }

        // Publish barrier: the team learns the chunk bounds (and pays for
        // the funneled fetch by idling).
        const double published = barrier(ev.node);

        if (!chunk) {
            for (int tid = 0; tid < team; ++tid) {
                worker_of(ev.node, tid).finish = published;
                auto& tracer = engine_trace.tracer(ev.node * team + tid);
                if (tracer.enabled()) {
                    tracer.instant(trace::EventKind::Terminate, published);
                }
            }
            ++finished_nodes;
            continue;
        }

        workshare(ev.node, chunk->first, chunk->second);
        double joined = barrier(ev.node);  // the implicit barrier
        // The team-execution window the *next* fetch can hide under.
        credit_slot = std::max(0.0, joined - published);
        if (source.wants_feedback()) {
            // The master posts the chunk's feedback before the next fetch:
            // the node's wall time for the chunk is its rate denominator.
            // Priced as the real report(): three accumulator RMA updates.
            source.report(ev.node, chunk->second, joined - published, fetch_overhead);
            const double flush = feedback_flush_s(costs);
            master.overhead += flush;
            nr.clock[0] += flush;
            joined += flush;
        }
        events.push({joined, ev.node});
    }

    double max_finish = 0.0;
    for (const auto& w : report.workers) {
        max_finish = std::max(max_finish, w.finish);
    }
    report.parallel_time = max_finish;
    attach_trace();
    return report;
}

}  // namespace hdls::sim::detail
