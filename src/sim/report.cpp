#include "sim/report.hpp"

#include "util/stats.hpp"
#include "util/table.hpp"

namespace hdls::sim {

std::int64_t SimReport::executed_iterations() const noexcept {
    std::int64_t n = 0;
    for (const auto& w : workers) {
        n += w.iterations;
    }
    return n;
}

std::int64_t SimReport::global_chunks() const noexcept {
    std::int64_t n = 0;
    for (const auto& w : workers) {
        n += w.global_refills;
    }
    return n;
}

std::int64_t SimReport::sub_chunks() const noexcept {
    std::int64_t n = 0;
    for (const auto& w : workers) {
        n += w.sub_chunks;
    }
    return n;
}

double SimReport::total_busy() const noexcept {
    double s = 0.0;
    for (const auto& w : workers) {
        s += w.busy;
    }
    return s;
}

double SimReport::total_overhead() const noexcept {
    double s = 0.0;
    for (const auto& w : workers) {
        s += w.overhead;
    }
    return s;
}

double SimReport::total_lock_wait() const noexcept {
    double s = 0.0;
    for (const auto& w : workers) {
        s += w.lock_wait;
    }
    return s;
}

double SimReport::total_idle() const noexcept {
    double s = 0.0;
    for (const auto& w : workers) {
        s += w.idle;
    }
    return s;
}

double SimReport::efficiency() const noexcept {
    const double denom = parallel_time * static_cast<double>(workers.size());
    return denom > 0.0 ? total_busy() / denom : 0.0;
}

double SimReport::finish_cov() const noexcept {
    util::OnlineStats s;
    for (const auto& w : workers) {
        s.add(w.finish);
    }
    return s.cov();
}

void SimReport::print(std::ostream& os) const {
    os << "nodes=" << nodes << " workers/node=" << workers_per_node
       << " N=" << total_iterations << "\n";
    if (topology.size() > 2) {
        os << "  hierarchy:";
        for (std::size_t d = 0; d < topology.size(); ++d) {
            os << (d == 0 ? " " : " -> ") << topology[d].name << "=" << topology[d].fan_out;
        }
        os << "\n";
    }
    os
       << "  T_par=" << util::format_seconds(parallel_time)
       << "  efficiency=" << util::format_double(100.0 * efficiency(), 1) << "%"
       << "  finish CoV=" << util::format_double(finish_cov(), 4) << "\n"
       << "  busy=" << util::format_seconds(total_busy())
       << "  overhead=" << util::format_seconds(total_overhead())
       << " (lock wait " << util::format_seconds(total_lock_wait()) << ")"
       << "  idle=" << util::format_seconds(total_idle()) << "\n"
       << "  global chunks=" << global_chunks() << "  sub-chunks=" << sub_chunks() << "\n";
    if (reclaimed_iterations > 0) {
        os << "  reclaimed iterations=" << reclaimed_iterations << "\n";
    }
}

}  // namespace hdls::sim
